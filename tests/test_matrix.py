"""Unit tests for repro.graphdb.matrix (the Figure 2 representation)."""

import pytest

from repro.exceptions import GraphError
from repro.graphdb import AdjacencyMatrix, Graph, clique_matrix


class TestValidation:
    def test_rejects_non_square(self):
        with pytest.raises(GraphError):
            AdjacencyMatrix(["a", "b"], [[0, 1]])

    def test_rejects_nonzero_diagonal(self):
        with pytest.raises(GraphError):
            AdjacencyMatrix(["a"], [[1]])

    def test_rejects_asymmetry(self):
        with pytest.raises(GraphError):
            AdjacencyMatrix(["a", "b"], [[0, 1], [0, 0]])

    def test_rejects_non_bits(self):
        with pytest.raises(GraphError):
            AdjacencyMatrix(["a", "b"], [[0, 2], [2, 0]])


class TestConversions:
    def test_round_trip_graph(self, k4_graph):
        matrix = AdjacencyMatrix.from_graph(k4_graph)
        again = matrix.to_graph()
        assert again.edge_count == 6
        assert again.label_multiset(again.vertices()) == ("a", "b", "c", "d")

    def test_from_graph_respects_order(self, triangle_graph):
        matrix = AdjacencyMatrix.from_graph(triangle_graph, order=[2, 0, 1])
        assert matrix.labels == ("c", "a", "b")

    def test_from_graph_bad_order(self, triangle_graph):
        with pytest.raises(GraphError):
            AdjacencyMatrix.from_graph(triangle_graph, order=[0, 1])

    def test_paper_example_matrices_symmetric(self, paper_db):
        for graph in paper_db:
            matrix = AdjacencyMatrix.from_graph(graph)
            n = len(matrix.labels)
            for i in range(n):
                for j in range(n):
                    assert matrix.bits[i][j] == matrix.bits[j][i]


class TestCodes:
    def test_code_contains_labels_then_bits(self, triangle_graph):
        matrix = AdjacencyMatrix.from_graph(triangle_graph)
        assert matrix.code() == ("a", "b", "c", 1, 1, 1)

    def test_permuted_swaps(self, triangle_graph):
        matrix = AdjacencyMatrix.from_graph(triangle_graph)
        swapped = matrix.permuted([2, 1, 0])
        assert swapped.labels == ("c", "b", "a")

    def test_permuted_invalid(self, triangle_graph):
        matrix = AdjacencyMatrix.from_graph(triangle_graph)
        with pytest.raises(GraphError):
            matrix.permuted([0, 0, 1])

    def test_canonical_code_is_permutation_invariant(self):
        g = Graph.from_edges({0: "b", 1: "a", 2: "c"}, [(0, 1), (1, 2)])
        m1 = AdjacencyMatrix.from_graph(g, order=[0, 1, 2])
        m2 = AdjacencyMatrix.from_graph(g, order=[2, 1, 0])
        assert m1.canonical_code() == m2.canonical_code()

    def test_canonical_code_distinguishes_structures(self):
        path = Graph.from_edges({0: "a", 1: "a", 2: "a"}, [(0, 1), (1, 2)])
        tri = Graph.from_edges({0: "a", 1: "a", 2: "a"}, [(0, 1), (1, 2), (0, 2)])
        assert (
            AdjacencyMatrix.from_graph(path).canonical_code()
            != AdjacencyMatrix.from_graph(tri).canonical_code()
        )

    def test_canonical_code_size_cap(self):
        labels = {i: "a" for i in range(10)}
        g = Graph.from_edges(labels, [(i, (i + 1) % 10) for i in range(10)])
        with pytest.raises(GraphError):
            AdjacencyMatrix.from_graph(g).canonical_code()


class TestCliqueMatrices:
    def test_clique_matrix_is_clique(self):
        assert clique_matrix(["a", "b", "c"]).is_clique_matrix()

    def test_non_clique_detected(self, path_graph):
        assert not AdjacencyMatrix.from_graph(path_graph).is_clique_matrix()

    def test_single_vertex_is_clique(self):
        assert clique_matrix(["a"]).is_clique_matrix()

    def test_render_shows_labels_on_diagonal(self):
        text = clique_matrix(["a", "b"]).render()
        rows = text.splitlines()
        assert rows[0].split() == ["a", "1"]
        assert rows[1].split() == ["1", "b"]

    def test_equality_and_hash(self):
        assert clique_matrix(["a", "b"]) == clique_matrix(["a", "b"])
        assert hash(clique_matrix(["a"])) == hash(clique_matrix(["a"]))
        assert clique_matrix(["a", "b"]) != clique_matrix(["b", "a"])
