"""Structural fuzzing: arbitrary databases through every miner.

These complement the seed-based property tests with hypothesis-shrunk
structures: empty graphs, isolated vertices, unicode and multi-char
labels, degenerate databases.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import bruteforce_closed_cliques, mine_closed_cliques_bfs
from repro.core import mine_closed_cliques, mine_frequent_cliques, mine_maximal_cliques
from repro.io import gspan_format, json_format
from tests.strategies import graph_databases


@settings(max_examples=40, deadline=None)
@given(db=graph_databases(), min_sup=st.integers(1, 3))
def test_clan_equals_bruteforce_on_arbitrary_structures(db, min_sup):
    min_sup = min(min_sup, len(db))
    clan = sorted(p.key() for p in mine_closed_cliques(db, min_sup))
    brute = sorted(p.key() for p in bruteforce_closed_cliques(db, min_sup))
    assert clan == brute


@settings(max_examples=25, deadline=None)
@given(db=graph_databases(), min_sup=st.integers(1, 3))
def test_bfs_agrees_on_arbitrary_structures(db, min_sup):
    min_sup = min(min_sup, len(db))
    dfs = sorted(p.key() for p in mine_closed_cliques(db, min_sup))
    bfs = sorted(p.key() for p in mine_closed_cliques_bfs(db, min_sup))
    assert dfs == bfs


@settings(max_examples=25, deadline=None)
@given(db=graph_databases(), min_sup=st.integers(1, 3))
def test_maximal_below_closed_on_arbitrary_structures(db, min_sup):
    min_sup = min(min_sup, len(db))
    closed = {p.key() for p in mine_closed_cliques(db, min_sup)}
    maximal = {p.key() for p in mine_maximal_cliques(db, min_sup)}
    assert maximal <= closed


@settings(max_examples=30, deadline=None)
@given(db=graph_databases())
def test_io_round_trips_preserve_mining(db):
    """Any database must survive both text formats with identical output."""
    expected = sorted(p.key() for p in mine_frequent_cliques(db, 1))

    via_tve = gspan_format.loads_database(gspan_format.dumps_database(db))
    assert sorted(p.key() for p in mine_frequent_cliques(via_tve, 1)) == expected

    via_json = json_format.database_from_dict(json_format.database_to_dict(db))
    assert sorted(p.key() for p in mine_frequent_cliques(via_json, 1)) == expected


@settings(max_examples=25, deadline=None)
@given(db=graph_databases())
def test_witnesses_always_valid_on_arbitrary_structures(db):
    for pattern in mine_closed_cliques(db, 1):
        pattern.verify(db)


@settings(max_examples=25, deadline=None)
@given(db=graph_databases())
def test_unicode_labels_order_consistently(db):
    """Canonical order must match Python string order for any labels."""
    for pattern in mine_frequent_cliques(db, 1):
        labels = pattern.labels
        assert list(labels) == sorted(labels)
