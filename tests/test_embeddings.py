"""Unit tests for repro.core.embeddings (both strategies)."""

import pytest

from repro.core import CACHED, RESCAN, EmbeddingStore
from repro.exceptions import MiningError
from repro.graphdb import Graph, GraphDatabase, PseudoDatabase, paper_example_database


def store_for(db, label, strategy=CACHED):
    return EmbeddingStore.for_label(db, PseudoDatabase(db), label, strategy)


@pytest.fixture
def duplicate_label_db() -> GraphDatabase:
    """One transaction: a triangle of three 'a' vertices plus a 'b' tail."""
    g = Graph.from_edges(
        {0: "a", 1: "a", 2: "a", 3: "b"},
        [(0, 1), (0, 2), (1, 2), (2, 3)],
    )
    return GraphDatabase([g])


class TestInitialEmbeddings:
    def test_one_record_per_labelled_vertex(self, paper_db):
        store = store_for(paper_db, "d")
        assert store.support == 2
        assert store.embedding_count == 4  # two d's per graph

    def test_missing_label(self, paper_db):
        store = store_for(paper_db, "zz")
        assert store.support == 0
        assert store.embedding_count == 0

    def test_unknown_strategy_rejected(self, paper_db):
        with pytest.raises(MiningError):
            EmbeddingStore.for_label(paper_db, PseudoDatabase(paper_db), "a", "warp")


class TestExtensionSupports:
    def test_counts_old_and_new_labels(self, paper_db):
        store = store_for(paper_db, "c")
        supports = store.extension_supports()
        # c's neighbours: a, b, d (twice in G1) in both graphs.
        assert supports == {"a": 2, "b": 2, "d": 2}

    def test_transaction_counted_once(self, duplicate_label_db):
        store = store_for(duplicate_label_db, "a")
        supports = store.extension_supports()
        assert supports == {"a": 1, "b": 1}

    def test_strategies_agree(self, paper_db):
        for label in "abcde":
            cached = store_for(paper_db, label, CACHED).extension_supports()
            rescan = store_for(paper_db, label, RESCAN).extension_supports()
            assert cached == rescan, label


class TestExtend:
    def test_duplicate_labels_each_vertex_set_once(self, duplicate_label_db):
        store = store_for(duplicate_label_db, "a")
        pairs = store.extend("a", "a")
        assert pairs.embedding_count == 3  # {0,1}, {0,2}, {1,2}
        triples = pairs.extend("a", "a")
        assert triples.embedding_count == 1  # {0,1,2} exactly once
        assert triples.extend("a", "a").embedding_count == 0

    def test_vertices_in_per_label_ascending_order(self, duplicate_label_db):
        store = store_for(duplicate_label_db, "a").extend("a", "a")
        for _, vertices in store.iter_embeddings():
            assert vertices[0] < vertices[1]

    def test_mixed_label_extension(self, duplicate_label_db):
        store = store_for(duplicate_label_db, "a").extend("b", "a")
        # Only vertex 2 (a) is adjacent to 3 (b).
        assert store.embedding_count == 1
        assert next(store.iter_embeddings())[1] == (2, 3)

    def test_strategies_build_identical_embeddings(self, paper_db):
        cached = store_for(paper_db, "a", CACHED).extend("b", "a").extend("c", "b")
        rescan = store_for(paper_db, "a", RESCAN).extend("b", "a").extend("c", "b")
        collect = lambda s: sorted((tid, v) for tid, v in s.iter_embeddings())
        assert collect(cached) == collect(rescan)

    def test_unsupported_transactions_dropped(self, paper_db):
        store = store_for(paper_db, "a").extend("b", "a")
        assert set(store.by_transaction) == {0, 1}
        dead = store.extend("e", "b")  # no a-b-e triangle anywhere
        assert dead.support == 0

    def test_extend_unordered_deduplicates(self, duplicate_label_db):
        store = store_for(duplicate_label_db, "a")
        pairs = store.extend_unordered("a")
        # Unordered growth would see each {i, j} twice; dedup keeps 3.
        assert pairs.embedding_count == 3


class TestWitnessesAndRestriction:
    def test_witnesses_sorted_vertex_tuples(self, paper_db):
        store = store_for(paper_db, "a").extend("b", "a")
        witnesses = store.witnesses()
        assert set(witnesses) == {0, 1}
        for vertices in witnesses.values():
            assert vertices == tuple(sorted(vertices))

    def test_restrict_to(self, paper_db):
        store = store_for(paper_db, "a")
        only_g2 = store.restrict_to([1])
        assert only_g2.support == 1
        assert set(only_g2.by_transaction) == {1}

    def test_transactions_sorted(self, paper_db):
        assert store_for(paper_db, "a").transactions() == (0, 1)


class TestRescanLowDegreeInteraction:
    def test_rescan_without_pseudo_scans_everything(self, paper_db):
        store = EmbeddingStore.for_label(paper_db, None, "a", RESCAN)
        with_pruning = store_for(paper_db, "a", RESCAN)
        assert store.extension_supports() == with_pruning.extension_supports()

    def test_nonclosed_label_same_for_both_strategies(self, paper_db):
        for label in "abcde":
            cached = store_for(paper_db, label, CACHED).nonclosed_extension_label(label)
            rescan = store_for(paper_db, label, RESCAN).nonclosed_extension_label(label)
            assert cached == rescan, label
