"""Tests for the chemical substrate (CA-like database)."""

import random

import pytest

from repro.chem import (
    ATOM_LABELS,
    CLIQUE_FRAGMENTS,
    ChemConfig,
    FRAGMENT_LIBRARY,
    FRAGMENTS_BY_NAME,
    ca_like_database,
    chemical_database,
    generate_compound,
    sample_atom,
    sample_atoms,
)
from repro.core import mine_closed_cliques
from repro.exceptions import DataGenerationError


class TestAtoms:
    def test_sample_atom_in_alphabet(self):
        rng = random.Random(0)
        for _ in range(50):
            assert sample_atom(rng) in ATOM_LABELS

    def test_carbon_dominates(self):
        rng = random.Random(1)
        atoms = sample_atoms(rng, 2000)
        assert atoms.count("C") / len(atoms) > 0.5

    def test_sample_atoms_length(self):
        assert len(sample_atoms(random.Random(0), 17)) == 17


class TestFragments:
    def test_library_is_valid(self):
        for fragment in FRAGMENT_LIBRARY:
            fragment.validate()
            assert 0.0 < fragment.plant_rate <= 1.0

    def test_clique_fragments_are_triangles(self):
        for fragment in CLIQUE_FRAGMENTS:
            assert fragment.size == 3
            assert len(fragment.edges) == 3

    def test_by_name_index(self):
        assert FRAGMENTS_BY_NAME["benzene"].size == 6
        assert FRAGMENTS_BY_NAME["cyclopropane"].labels == ("C", "C", "C")


class TestGenerator:
    def test_characteristics_match_paper(self):
        db = ca_like_database()
        assert len(db) == 422
        assert abs(db.average_vertices() - 39) < 4
        assert abs(db.average_edges() - 42) < 6

    def test_deterministic(self):
        a = ca_like_database(n_compounds=10, seed=5)
        b = ca_like_database(n_compounds=10, seed=5)
        for g1, g2 in zip(a, b):
            assert g1 == g2

    def test_compounds_connected_skeleton(self):
        db = ca_like_database(n_compounds=20)
        for graph in db:
            # Fragments attach to the skeleton, so one component.
            assert len(graph.connected_components()) == 1

    def test_compound_size_bounds(self):
        cfg = ChemConfig(n_compounds=30, min_vertices=15, max_vertices=50)
        for graph in chemical_database(cfg):
            assert graph.vertex_count <= 50 + 0  # fragments respect budget

    def test_config_validation(self):
        with pytest.raises(DataGenerationError):
            ChemConfig(n_compounds=0)
        with pytest.raises(DataGenerationError):
            ChemConfig(min_vertices=2)
        with pytest.raises(DataGenerationError):
            ChemConfig(min_vertices=20, max_vertices=10)

    def test_planted_rings_are_frequent(self):
        db = ca_like_database()
        result = mine_closed_cliques(db, 0.10)
        mined_triangles = {p.labels for p in result.of_size(3)}
        assert ("C", "C", "C") in mined_triangles  # cyclopropane
        assert ("C", "C", "O") in mined_triangles  # oxirane

    def test_generate_compound_directly(self):
        rng = random.Random(3)
        graph = generate_compound(rng, ChemConfig())
        assert graph.vertex_count >= 10
        assert graph.edge_count >= graph.vertex_count - 1
