"""Tests for the protein contact-map substrate."""

import pytest

from repro.bio import (
    AMINO_ACIDS,
    DEFAULT_MOTIFS,
    FamilyConfig,
    MotifSpec,
    expected_motif_patterns,
    protein_family,
)
from repro.core import mine_closed_cliques
from repro.exceptions import DataGenerationError


class TestMotifSpec:
    def test_valid(self):
        MotifSpec(("C", "C", "H"), conservation=0.8)

    def test_unknown_amino_acid(self):
        with pytest.raises(DataGenerationError):
            MotifSpec(("C", "X9"),)

    def test_conservation_range(self):
        with pytest.raises(DataGenerationError):
            MotifSpec(("C", "C", "H"), conservation=0.0)
        with pytest.raises(DataGenerationError):
            MotifSpec(("C", "C", "H"), conservation=1.5)

    def test_minimum_size(self):
        with pytest.raises(DataGenerationError):
            MotifSpec(("C", "H"))


class TestFamilyGeneration:
    def test_deterministic(self):
        a = protein_family()
        b = protein_family()
        for g1, g2 in zip(a, b):
            assert g1 == g2

    def test_shape(self):
        family = protein_family()
        assert len(family) == 24
        for graph in family:
            assert graph.vertex_count >= 20
            assert graph.distinct_labels() <= set(AMINO_ACIDS)
            # Contact maps are connected along the backbone.
            assert len(graph.connected_components()) == 1

    def test_config_validation(self):
        with pytest.raises(DataGenerationError):
            FamilyConfig(n_proteins=0)
        with pytest.raises(DataGenerationError):
            FamilyConfig(mean_length=5)
        with pytest.raises(DataGenerationError):
            FamilyConfig(contact_window=0)

    def test_fully_conserved_motif_in_every_protein(self):
        family = protein_family()
        result = mine_closed_cliques(family, 1.0, min_size=4)
        keys = {p.key() for p in result}
        assert "CCHH:24" in keys

    def test_all_motifs_recovered(self):
        family = protein_family()
        result = mine_closed_cliques(family, 0.6, min_size=3)
        mined = {p.labels for p in result}
        for labels, _conservation in expected_motif_patterns():
            assert labels in mined, labels

    def test_motif_support_tracks_conservation(self):
        config = FamilyConfig(n_proteins=40)
        family = protein_family(config)
        result = mine_closed_cliques(family, 0.5, min_size=3)
        by_labels = {p.labels: p.support for p in result}
        for labels, conservation in expected_motif_patterns(config):
            support = by_labels[labels]
            expected = conservation * config.n_proteins
            assert abs(support - expected) <= 0.25 * config.n_proteins

    def test_default_motifs_disjointness_enforced(self):
        # A protein too short to host all motifs raises loudly.
        tight = FamilyConfig(mean_length=20, length_spread=0, fold_contacts=5,
                             motifs=tuple(MotifSpec(tuple("ACDEFGHIK"),) for _ in range(3)))
        with pytest.raises(DataGenerationError):
            protein_family(tight)
