"""Unit tests for closure checking (paper §4.3, Lemma 4.3)."""

import pytest

from repro.core import (
    CanonicalForm,
    HistoryClosureIndex,
    blocking_extension_labels,
    is_closed,
    make_pattern,
    split_extension_labels,
)


class TestScanBasedClosure:
    def test_closed_when_all_extensions_lose_support(self):
        assert is_closed(3, {"a": 2, "b": 1})
        assert is_closed(3, {})

    def test_nonclosed_on_equal_support_extension(self):
        assert not is_closed(3, {"a": 3})

    def test_blocking_labels_sorted(self):
        assert blocking_extension_labels(2, {"c": 2, "a": 2, "b": 1}) == ["a", "c"]

    def test_split_old_new(self):
        old, new = split_extension_labels({"a": 1, "c": 2, "d": 3}, "c")
        assert old == {"a": 1}
        assert new == {"c": 2, "d": 3}

    def test_split_with_empty_prefix(self):
        old, new = split_extension_labels({"a": 1}, None)
        assert old == {}
        assert new == {"a": 1}


class TestHistoryClosureIndex:
    def test_superclique_same_support_found(self):
        index = HistoryClosureIndex([make_pattern("abcd", 2)])
        assert index.has_superclique_with_support(CanonicalForm.from_labels("ab"), 2)

    def test_different_support_not_found(self):
        index = HistoryClosureIndex([make_pattern("abcd", 3)])
        assert not index.has_superclique_with_support(CanonicalForm.from_labels("ab"), 2)

    def test_equal_size_is_not_proper(self):
        index = HistoryClosureIndex([make_pattern("ab", 2)])
        assert not index.has_superclique_with_support(CanonicalForm.from_labels("ab"), 2)

    def test_non_subclique_not_found(self):
        index = HistoryClosureIndex([make_pattern("bcd", 2)])
        assert not index.has_superclique_with_support(CanonicalForm.from_labels("ab"), 2)

    def test_multiplicity_respected(self):
        index = HistoryClosureIndex([make_pattern("aab", 2)])
        assert index.has_superclique_with_support(CanonicalForm.from_labels("aa"), 2)
        assert not index.has_superclique_with_support(CanonicalForm.from_labels("aaa"), 2)

    def test_add_form_and_len(self):
        index = HistoryClosureIndex()
        assert len(index) == 0
        index.add_form(CanonicalForm.from_labels("abc"), 2)
        index.add(make_pattern("ab", 3))
        assert len(index) == 2

    def test_agrees_with_definition_on_running_example(self, paper_db):
        from repro.core import mine_frequent_cliques

        frequent = list(mine_frequent_cliques(paper_db, 2))
        index = HistoryClosureIndex(frequent)
        for pattern in frequent:
            by_index = not index.has_superclique_with_support(
                pattern.form, pattern.support
            )
            by_definition = not any(
                pattern.makes_nonclosed(other) for other in frequent
            )
            assert by_index == by_definition, pattern.key()
