"""Tests for the prediction-claim quantification (§5.1's motivation)."""

import numpy as np
import pytest

from repro.exceptions import DataGenerationError
from repro.stockmarket import (
    FIGURE5_TICKERS,
    StockMarketSimulator,
    clique_prediction_study,
    direction_prediction_score,
    market_config,
)
from repro.stockmarket.pricegen import PeriodPrices


def synthetic_panel():
    """Three coupled stocks (A follows B, C) and one independent (Z)."""
    rng = np.random.default_rng(3)
    base = np.cumsum(rng.normal(size=120)) * 0.5 + 100
    noise = rng.normal(size=(120, 4)) * 0.01
    prices = np.column_stack([
        base + noise[:, 0],
        base + noise[:, 1],
        base + noise[:, 2],
        np.cumsum(rng.normal(size=120)) * 0.5 + 100,
    ])
    return PeriodPrices(period=0, tickers=("A", "B", "C", "Z"), prices=prices)


class TestDirectionPrediction:
    def test_coupled_stocks_predict_well(self):
        panel = synthetic_panel()
        score = direction_prediction_score(panel, "A", ["B", "C"])
        assert score.hit_rate > 0.9
        assert score.days > 50

    def test_independent_stock_predicts_poorly(self):
        panel = synthetic_panel()
        score = direction_prediction_score(panel, "Z", ["A", "B", "C"])
        assert abs(score.hit_rate - 0.5) < 0.25

    def test_target_excluded_from_predictors(self):
        panel = synthetic_panel()
        score = direction_prediction_score(panel, "A", ["A", "B"])
        assert score.predictors == ("B",)

    def test_unknown_target_rejected(self):
        with pytest.raises(DataGenerationError):
            direction_prediction_score(synthetic_panel(), "Q", ["A"])

    def test_unknown_predictor_rejected(self):
        with pytest.raises(DataGenerationError):
            direction_prediction_score(synthetic_panel(), "A", ["Q"])

    def test_no_predictors_rejected(self):
        with pytest.raises(DataGenerationError):
            direction_prediction_score(synthetic_panel(), "A", ["A"])

    def test_describe(self):
        score = direction_prediction_score(synthetic_panel(), "A", ["B"])
        assert "A from 1 predictors" in score.describe()


class TestCliqueStudy:
    def test_figure5_clique_beats_controls(self):
        sim = StockMarketSimulator(market_config("tiny"))
        panel = sim.simulate_period(0)
        study = clique_prediction_study(panel, FIGURE5_TICKERS, seed=1)
        assert study["clique_hit_rate"] > 0.8
        assert study["control_hit_rate"] < 0.65
        assert study["advantage"] > 0.2

    def test_requires_two_members(self):
        sim = StockMarketSimulator(market_config("tiny"))
        panel = sim.simulate_period(0)
        with pytest.raises(DataGenerationError):
            clique_prediction_study(panel, ["DMF"])

    def test_deterministic_under_seed(self):
        sim = StockMarketSimulator(market_config("tiny"))
        panel = sim.simulate_period(0)
        a = clique_prediction_study(panel, FIGURE5_TICKERS, seed=5)
        b = clique_prediction_study(panel, FIGURE5_TICKERS, seed=5)
        assert a == b
