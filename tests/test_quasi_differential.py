"""Differential testing of ``task="quasi"`` — kernels, oracle, invariance.

The quasi task's closure lemma is *relaxed*, not inherited: per-prefix
closedness (Lemma 4.3) is undecidable for γ-quasi-cliques and the
Lemma 4.4 subtree cut is replaced by a c-closure bound, so nothing
about the clique kernels' byte-identity contract transfers for free.
This suite holds the port to the same bar as the clique kernels
(``test_kernel_differential.py``):

* set and bitset kernels are *byte identical* — same patterns, same
  supports and supporting transactions, same witnesses, same search
  statistics — on 50 seeded random databases spanning sparse to
  near-complete graphs and the γ grid the feasibility bounds key on;
* both kernels agree with the exhaustive brute-force oracle
  (:func:`repro.baselines.bruteforce.bruteforce_quasi_cliques`),
  witnesses included — both sides define the witness as the
  lexicographically smallest qualifying vertex set per transaction;
* mining is invariant under vertex-id permutation (the regression
  probe for state keyed by vertex id — the bitset kernel's vertex→bit
  mapping and the feasibility store's ascending-id candidate order).
"""

from __future__ import annotations

import pytest

from repro.baselines.bruteforce import bruteforce_quasi_cliques
from repro.core import BITSET, SET, mine
from repro.core.api import MiningRequest
from repro.graphdb import permute_vertex_ids

from tests.conftest import make_random_database

KERNELS = (SET, BITSET)

#: 50 seeded random databases spanning sparse to near-complete graphs,
#: few to many labels (duplicate labels exercise the same-label
#: ascending-id discipline of the feasibility store).
RANDOM_CASES = [
    (seed, 3 + seed % 3, 6 + seed % 4, 0.3 + 0.06 * (seed % 10), 3 + seed % 5)
    for seed in range(50)
]

#: γ grid: the clique edge (1.0), the connectivity floor (0.6), and
#: mid-relaxations; rotated per seed so every density regime meets
#: every graph shape.
GAMMA_GRID = (0.6, 0.75, 0.8, 1.0)

MAX_SIZE = 4


def case_parameters(seed):
    gamma = GAMMA_GRID[seed % len(GAMMA_GRID)]
    min_sup = 2 if seed % 2 else 1
    return gamma, min_sup


def signature(result):
    """Everything observable about a mining result, order-normalised."""
    return sorted(
        (
            pattern.form.labels,
            pattern.support,
            tuple(sorted(pattern.transactions)),
            tuple(sorted(pattern.witnesses.items())),
        )
        for pattern in result
    )


def structural_signature(result):
    """The permutation-invariant observables (witnesses are vertex ids,
    which the permutation probe deliberately moves)."""
    return sorted(
        (pattern.form.labels, pattern.support, tuple(sorted(pattern.transactions)))
        for pattern in result
    )


def database_for(case):
    seed, n_graphs, n_vertices, p, n_labels = case
    return make_random_database(
        seed,
        n_graphs=n_graphs,
        n_vertices=n_vertices,
        edge_probability=p,
        n_labels=n_labels,
    )


def mine_both_kernels(database, min_sup, gamma):
    outcomes = {
        kernel: mine(
            database,
            MiningRequest.from_options(
                min_sup, task="quasi", gamma=gamma, max_size=MAX_SIZE,
                kernel=kernel,
            ),
        )
        for kernel in KERNELS
    }
    reference = outcomes[SET]
    for kernel, result in outcomes.items():
        assert signature(result) == signature(reference), (kernel, database.name)
        assert str(result.statistics) == str(reference.statistics), (
            kernel,
            database.name,
        )
    return reference


class TestKernelsIdenticalAndMatchOracle:
    @pytest.mark.parametrize("case", RANDOM_CASES, ids=lambda c: f"seed{c[0]}")
    def test_differential(self, case):
        seed = case[0]
        gamma, min_sup = case_parameters(seed)
        database = database_for(case)
        reference = mine_both_kernels(database, min_sup, gamma)
        oracle = bruteforce_quasi_cliques(
            database, min_sup, gamma=gamma, min_size=2, max_size=MAX_SIZE
        )
        assert signature(reference) == signature(oracle), seed


class TestVertexPermutationInvariance:
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize(
        "case",
        [RANDOM_CASES[i] for i in (1, 7, 14, 26, 33, 45)],
        ids=lambda c: f"seed{c[0]}",
    )
    def test_permuted_database_mines_identically(self, kernel, case):
        seed = case[0]
        gamma, min_sup = case_parameters(seed)
        database = database_for(case)
        permuted = permute_vertex_ids(database, seed=seed + 17)
        base = mine(
            database,
            MiningRequest.from_options(
                min_sup, task="quasi", gamma=gamma, max_size=MAX_SIZE,
                kernel=kernel,
            ),
        )
        moved = mine(
            permuted,
            MiningRequest.from_options(
                min_sup, task="quasi", gamma=gamma, max_size=MAX_SIZE,
                kernel=kernel,
            ),
        )
        assert structural_signature(base) == structural_signature(moved)
        assert str(base.statistics) == str(moved.statistics)
        # The permuted run's witnesses must still be genuine witnesses
        # in the permuted database (ids moved, the guarantee did not).
        from repro.core import is_quasi_clique

        for pattern in moved:
            for tid, witness in pattern.witnesses.items():
                assert is_quasi_clique(permuted[tid], frozenset(witness), gamma)
                assert permuted[tid].label_multiset(witness) == pattern.form.labels
