"""Unit tests for pseudo low-degree vertex pruning (repro.graphdb.core_index)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphdb import (
    CoreIndex,
    Graph,
    GraphDatabase,
    PseudoDatabase,
    core_numbers,
    paper_example_database,
    paper_graph_g2,
)
from repro.graphdb.generators import default_label_alphabet, random_transaction


class TestCoreNumbers:
    def test_empty_graph(self):
        assert core_numbers(Graph()) == {}

    def test_isolated_vertices_have_core_zero(self):
        g = Graph.from_edges({0: "a", 1: "b"}, [])
        assert core_numbers(g) == {0: 0, 1: 0}

    def test_clique_core(self, k4_graph):
        assert set(core_numbers(k4_graph).values()) == {3}

    def test_path_core(self, path_graph):
        assert set(core_numbers(path_graph).values()) == {1}

    def test_triangle_with_tail(self):
        g = Graph.from_edges(
            {0: "a", 1: "b", 2: "c", 3: "d"}, [(0, 1), (0, 2), (1, 2), (2, 3)]
        )
        cores = core_numbers(g)
        assert cores[3] == 1
        assert cores[0] == cores[1] == cores[2] == 2

    def test_definition_against_peeling(self):
        """core(v) >= k iff v survives repeated removal of degree < k."""
        rng = random.Random(5)
        g = random_transaction(rng, 14, 0.35, default_label_alphabet(3))
        cores = core_numbers(g)
        for k in range(0, 6):
            survivor = g.copy()
            changed = True
            while changed:
                changed = False
                for v in list(survivor.vertices()):
                    if survivor.degree(v) < k:
                        survivor.remove_vertex(v)
                        changed = True
            expected = {v for v in g.vertices() if cores[v] >= k}
            assert set(survivor.vertices()) == expected

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_core_at_most_degree(self, seed):
        rng = random.Random(seed)
        g = random_transaction(rng, 10, 0.4, default_label_alphabet(3))
        cores = core_numbers(g)
        for v in g.vertices():
            assert 0 <= cores[v] <= g.degree(v)


class TestCoreIndex:
    def test_paper_g2_pruning_walkthrough(self):
        """Section 4.2: pruning v6 for 4-cliques drops v3 to degree 2."""
        index = CoreIndex(paper_graph_g2())
        # v6 (id 6) has degree 2, so core 2: unusable at clique size 4.
        assert index.core_number(6) == 2
        usable4 = index.usable_at(4)
        assert 6 not in usable4
        # v3 (id 3) is dragged down recursively, exactly as the paper says.
        assert 3 not in usable4
        # The 4-clique v1 v2 v4 v5 survives.
        assert {1, 2, 4, 5} <= usable4

    def test_usable_at_one_is_everything(self, k4_graph):
        index = CoreIndex(k4_graph)
        assert index.usable_at(1) == frozenset(k4_graph.vertices())

    def test_usable_above_bound_empty(self, k4_graph):
        index = CoreIndex(k4_graph)
        assert index.usable_at(5) == frozenset()
        assert index.usable_at(4) == frozenset(k4_graph.vertices())

    def test_max_clique_upper_bound(self, k4_graph, path_graph):
        assert CoreIndex(k4_graph).max_clique_upper_bound() == 4
        assert CoreIndex(path_graph).max_clique_upper_bound() == 2
        assert CoreIndex(Graph()).max_clique_upper_bound() == 0

    def test_usable_with_label(self):
        g = Graph.from_edges(
            {0: "a", 1: "a", 2: "b"}, [(0, 1), (0, 2), (1, 2)]
        )
        index = CoreIndex(g)
        assert index.usable_with_label(3, "a") == frozenset({0, 1})
        assert index.usable_with_label(3, "z") == frozenset()

    def test_pruned_graph_matches_usable(self, paper_db):
        for graph in paper_db:
            index = CoreIndex(graph)
            pruned = index.pruned_graph(4)
            assert set(pruned.vertices()) == set(index.usable_at(4))

    def test_cliques_live_in_their_core(self):
        """Observation 4.1: a k-clique's vertices are usable at level k."""
        rng = random.Random(3)
        g = random_transaction(rng, 12, 0.5, default_label_alphabet(3))
        index = CoreIndex(g)
        from repro.graphdb import all_cliques

        for clique in all_cliques(g, min_size=2):
            usable = index.usable_at(len(clique))
            assert clique <= usable


class TestPseudoDatabase:
    def test_one_index_per_transaction(self, paper_db):
        pseudo = PseudoDatabase(paper_db)
        assert len(pseudo) == 2
        assert pseudo.index(0).graph is paper_db[0]

    def test_global_bound(self, paper_db):
        assert PseudoDatabase(paper_db).max_clique_upper_bound() == 4

    def test_usable_transactions(self):
        g1 = Graph.from_edges({0: "a", 1: "b", 2: "c"}, [(0, 1), (0, 2), (1, 2)])
        g2 = Graph.from_edges({0: "a", 1: "b"}, [(0, 1)])
        pseudo = PseudoDatabase(GraphDatabase([g1, g2]))
        assert list(pseudo.usable_transactions(3)) == [0]
        assert list(pseudo.usable_transactions(2)) == [0, 1]
