"""Storage-backend and shard-merge differential suite.

The load-bearing promise of :mod:`repro.core.sharding`: for every
engine task and kernel, mining through any storage backend — the
in-memory list, the SQLite store, or the partition-parallel
shard-and-merge path — produces byte-identical canonical envelopes
(patterns, supports, transactions, witnesses).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import MiningRequest, MiningResultEnvelope, execute_request
from repro.core.sharding import (
    local_threshold,
    mine_sharded,
    shard_bounds,
    shard_database,
)
from repro.exceptions import MiningError
from repro.graphdb import GraphDatabase, import_graphs, open_source, random_database

from .strategies import graph_databases

TASKS = [
    ("closed", {}),
    ("frequent", {}),
    ("maximal", {}),
    ("topk", {"k": 5, "max_size": 6}),
    ("quasi", {"gamma": 0.8, "max_size": 5, "min_size": 2}),
]
KERNELS = ["set", "bitset", "slab"]


def canonical(request: MiningRequest, result) -> str:
    return MiningResultEnvelope.from_result(request, result).canonical_json()


@pytest.fixture(scope="module")
def seeded_db() -> GraphDatabase:
    return random_database(60, 12, 0.5, 4, seed=7, name="diff60")


@pytest.fixture(scope="module")
def sqlite_db(seeded_db, tmp_path_factory) -> GraphDatabase:
    path = tmp_path_factory.mktemp("stores") / "diff60.sqlite"
    import_graphs(path, iter(seeded_db), name=seeded_db.name)
    return GraphDatabase(source=open_source(path))


class TestShardBounds:
    def test_by_shard_count(self):
        assert shard_bounds(10, shards=3) == [(0, 4), (4, 7), (7, 10)]

    def test_by_shard_size(self):
        assert shard_bounds(10, shard_size=4) == [(0, 4), (4, 8), (8, 10)]

    def test_empty_and_oversubscribed(self):
        assert shard_bounds(0, shards=4) == []
        assert shard_bounds(2, shards=5) == [(0, 1), (1, 2)]

    def test_ranges_partition_the_id_space(self):
        for n in (1, 7, 100):
            for shards in (1, 2, 3, n):
                bounds = shard_bounds(n, shards=shards)
                assert bounds[0][0] == 0 and bounds[-1][1] == n
                assert all(lo < hi for lo, hi in bounds)
                assert all(
                    bounds[i][1] == bounds[i + 1][0] for i in range(len(bounds) - 1)
                )

    def test_both_specs_rejected(self):
        with pytest.raises(MiningError):
            shard_bounds(10, shards=2, shard_size=5)

    def test_shard_database_shares_graphs(self):
        db = random_database(9, 5, 0.5, 2, seed=1)
        pieces = list(shard_database(db, shards=3))
        assert [(lo, hi) for lo, hi, _ in pieces] == [(0, 3), (3, 6), (6, 9)]
        for lo, hi, shard in pieces:
            assert len(shard) == hi - lo
            assert shard[0] is db[lo]


class TestLocalThreshold:
    def test_never_below_one_or_above_share(self):
        for global_sup in (1, 3, 10):
            for n_i in (1, 4, 7):
                s = local_threshold(global_sup, n_i, 10)
                assert 1 <= s <= max(1, global_sup)

    def test_pigeonhole_bound(self):
        # Sum over any partition of (s_i - 1) stays below S: the recall
        # guarantee's arithmetic core.
        n, global_sup = 23, 9
        for shards in (1, 2, 3, 5, 8, 23):
            bounds = shard_bounds(n, shards=shards)
            slack = sum(
                local_threshold(global_sup, hi - lo, n) - 1 for lo, hi in bounds
            )
            assert slack < global_sup


class TestDifferentialSuite:
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("task,options", TASKS, ids=[t for t, _ in TASKS])
    def test_sharded_merge_matches_serial(self, seeded_db, task, options, kernel):
        request = MiningRequest.from_options(2, task=task, kernel=kernel, **options)
        serial = canonical(request, execute_request(seeded_db, request))
        sharded = canonical(request, mine_sharded(seeded_db, request, shards=4))
        assert sharded == serial

    @pytest.mark.parametrize("task,options", TASKS, ids=[t for t, _ in TASKS])
    def test_sqlite_backend_matches_in_memory(self, seeded_db, sqlite_db, task, options):
        request = MiningRequest.from_options(2, task=task, **options)
        in_memory = execute_request(seeded_db, request)
        from_sqlite = execute_request(sqlite_db, request)
        assert canonical(request, from_sqlite) == canonical(request, in_memory)
        # The serial engine does identical work whichever backend feeds
        # it, so the full statistics snapshot matches too.  (Sharded
        # statistics are per-shard aggregates by design and are only
        # checked for presence, not equality.)
        assert from_sqlite.statistics.snapshot() == in_memory.statistics.snapshot()

    @pytest.mark.parametrize("task,options", TASKS, ids=[t for t, _ in TASKS])
    def test_sharded_over_sqlite_matches_serial(
        self, seeded_db, sqlite_db, task, options
    ):
        request = MiningRequest.from_options(2, task=task, **options)
        serial = canonical(request, execute_request(seeded_db, request))
        sharded = canonical(request, mine_sharded(sqlite_db, request, shards=5))
        assert sharded == serial

    def test_size_windows_survive_the_merge(self, seeded_db):
        for task, options in [
            ("closed", {"min_size": 2, "max_size": 4}),
            ("closed", {"max_size": 3}),
            ("frequent", {"min_size": 2, "max_size": 3}),
            ("topk", {"k": 3, "min_size": 2, "max_size": 4}),
            ("quasi", {"gamma": 0.9, "min_size": 2, "max_size": 4}),
        ]:
            request = MiningRequest.from_options(3, task=task, **options)
            serial = canonical(request, execute_request(seeded_db, request))
            sharded = canonical(request, mine_sharded(seeded_db, request, shards=5))
            assert sharded == serial, (task, options)

    def test_single_shard_degenerates_to_serial(self, seeded_db):
        request = MiningRequest.from_options(2, task="closed")
        serial = canonical(request, execute_request(seeded_db, request))
        assert canonical(
            request, mine_sharded(seeded_db, request, shards=1)
        ) == serial

    def test_statistics_are_aggregated(self, seeded_db):
        request = MiningRequest.from_options(2, task="closed")
        result = mine_sharded(seeded_db, request, shards=4)
        assert result.statistics.prefixes_visited > 0

    def test_session_features_rejected(self, seeded_db):
        request = MiningRequest.from_options(2, task="closed", deadline=60.0)
        with pytest.raises(MiningError):
            mine_sharded(seeded_db, request, shards=2)


class TestShardBoundaryProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        database=graph_databases(min_graphs=2, max_graphs=8, max_vertices=6),
        data=st.data(),
    )
    def test_any_shard_geometry_is_exact(self, database, data):
        request = MiningRequest.from_options(1, task="closed")
        serial = canonical(request, execute_request(database, request))
        shards = data.draw(st.integers(1, len(database)), label="shards")
        sharded = canonical(request, mine_sharded(database, request, shards=shards))
        assert sharded == serial
