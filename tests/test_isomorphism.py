"""Tests for the VF2-style isomorphism matcher."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphdb import (
    Graph,
    are_isomorphic,
    find_subgraph_isomorphism,
    find_subgraph_isomorphisms,
    is_subgraph_isomorphic,
    paper_graph_g1,
)
from repro.graphdb.generators import default_label_alphabet, random_transaction


def triangle(labels="abc"):
    g = Graph()
    for i, l in enumerate(labels):
        g.add_vertex(i, l)
    g.add_edge(0, 1)
    g.add_edge(0, 2)
    g.add_edge(1, 2)
    return g


class TestSubgraphIsomorphism:
    def test_triangle_in_k4(self, k4_graph):
        assert is_subgraph_isomorphic(triangle(), k4_graph)
        mapping = find_subgraph_isomorphism(triangle(), k4_graph)
        assert mapping is not None
        assert len(set(mapping.values())) == 3

    def test_labels_respected(self, k4_graph):
        assert not is_subgraph_isomorphic(triangle("abz"), k4_graph)

    def test_edges_respected(self, path_graph):
        assert not is_subgraph_isomorphic(triangle(), path_graph)

    def test_monomorphism_allows_extra_edges(self):
        path = Graph.from_edges({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2)])
        assert is_subgraph_isomorphic(path, triangle())

    def test_induced_forbids_extra_edges(self):
        path = Graph.from_edges({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2)])
        assert not is_subgraph_isomorphic(path, triangle(), induced=True)

    def test_empty_pattern_matches_once(self, k4_graph):
        assert list(find_subgraph_isomorphisms(Graph(), k4_graph)) == [{}]

    def test_pattern_larger_than_target(self, triangle_graph, k4_graph):
        assert not is_subgraph_isomorphic(k4_graph, triangle_graph)

    def test_all_mappings_enumerated(self):
        """An 'aa' edge in a triangle of a's has 3 edges x 2 directions."""
        pattern = Graph.from_edges({0: "a", 1: "a"}, [(0, 1)])
        target = triangle("aaa")
        mappings = list(find_subgraph_isomorphisms(pattern, target))
        assert len(mappings) == 6

    def test_limit(self):
        pattern = Graph.from_edges({0: "a", 1: "a"}, [(0, 1)])
        target = triangle("aaa")
        assert len(list(find_subgraph_isomorphisms(pattern, target, limit=2))) == 2

    def test_disconnected_pattern(self):
        pattern = Graph.from_edges({0: "a", 1: "b"}, [])
        target = Graph.from_edges({0: "a", 1: "b", 2: "c"}, [(0, 2)])
        mapping = find_subgraph_isomorphism(pattern, target)
        assert mapping == {0: 0, 1: 1}

    def test_every_mapping_is_valid(self, paper_db):
        g1 = paper_graph_g1()
        pattern = triangle("abd")
        for mapping in find_subgraph_isomorphisms(pattern, g1):
            for u, v in pattern.edges():
                assert g1.has_edge(mapping[u], mapping[v])
            for v in pattern.vertices():
                assert g1.label(mapping[v]) == pattern.label(v)


class TestWholeGraphIsomorphism:
    def test_relabeled_ids(self):
        a = triangle()
        b = Graph.from_edges({7: "a", 9: "b", 11: "c"}, [(7, 9), (7, 11), (9, 11)])
        assert are_isomorphic(a, b)

    def test_label_mismatch(self):
        assert not are_isomorphic(triangle("abc"), triangle("abd"))

    def test_structure_mismatch(self):
        path = Graph.from_edges({0: "a", 1: "a", 2: "a"}, [(0, 1), (1, 2)])
        assert not are_isomorphic(path, triangle("aaa"))

    def test_counts_shortcut(self, k4_graph, triangle_graph):
        assert not are_isomorphic(k4_graph, triangle_graph)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_invariant_under_vertex_permutation(self, seed):
        rng = random.Random(seed)
        g = random_transaction(rng, 7, 0.45, default_label_alphabet(3))
        order = sorted(g.vertices())
        shuffled = list(order)
        rng.shuffle(shuffled)
        relabeling = dict(zip(order, shuffled))
        h = Graph()
        for v in order:
            h.add_vertex(relabeling[v], g.label(v))
        for u, v in g.edges():
            h.add_edge(relabeling[u], relabeling[v])
        assert are_isomorphic(g, h)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_agrees_with_min_dfs_code_on_connected_graphs(self, seed):
        """Two independent isomorphism deciders must agree."""
        from repro.baselines import minimum_dfs_code

        rng = random.Random(seed)
        g = random_transaction(rng, 6, 0.5, default_label_alphabet(2))
        h = random_transaction(rng, 6, 0.5, default_label_alphabet(2))
        if len(g.connected_components()) != 1 or len(h.connected_components()) != 1:
            return
        by_vf2 = are_isomorphic(g, h)
        by_code = minimum_dfs_code(g) == minimum_dfs_code(h)
        assert by_vf2 == by_code


class TestAgainstCliqueMachinery:
    def test_clique_embeddings_match_occurrences(self, paper_db):
        """VF2 on a clique pattern finds the same vertex sets as the
        miner's embedding store (each set size! times, as mappings)."""
        from repro.core import CanonicalForm, occurrence_counts

        pattern = triangle("abd")
        g1 = paper_graph_g1()
        vf2_sets = {
            frozenset(m.values())
            for m in find_subgraph_isomorphisms(pattern, g1)
        }
        from repro.core import embeddings_in_graph

        store_sets = {
            frozenset(e)
            for e in embeddings_in_graph(g1, CanonicalForm.from_labels("abd"))
        }
        assert vf2_sets == store_sets
