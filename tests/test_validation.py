"""Tests for database validation."""

import pytest

from repro.exceptions import DatabaseError
from repro.graphdb import Graph, GraphDatabase, paper_example_database, validate_database


class TestCleanDatabases:
    def test_paper_example_valid(self, paper_db):
        report = validate_database(paper_db)
        assert report.ok
        assert report.findings == []
        assert "no findings" in report.render()
        report.raise_if_invalid()

    def test_replicated_database_warns_about_duplicates(self, paper_db):
        report = validate_database(paper_db.replicate(2))
        assert report.ok  # duplicates are warnings, not errors
        assert any("identical to transaction" in f.message for f in report.warnings)


class TestProblemDetection:
    def test_empty_database_is_error(self):
        report = validate_database(GraphDatabase())
        assert not report.ok
        with pytest.raises(DatabaseError):
            report.raise_if_invalid()

    def test_empty_transaction_warns(self):
        db = GraphDatabase([Graph(), Graph.from_edges({0: "a"}, [])])
        report = validate_database(db)
        assert report.ok
        assert any("no vertices" in f.message for f in report.warnings)

    def test_edgeless_transaction_warns(self):
        db = GraphDatabase([Graph.from_edges({0: "a", 1: "b"}, [])])
        report = validate_database(db)
        assert any("no edges" in f.message for f in report.warnings)

    def test_empty_label_is_error(self):
        g = Graph()
        g.add_vertex(0, "")
        report = validate_database(GraphDatabase([g]))
        assert not report.ok
        assert any("empty label" in f.message for f in report.errors)

    def test_whitespace_label_warns(self):
        g = Graph()
        g.add_vertex(0, " a")
        report = validate_database(GraphDatabase([g]))
        assert report.ok
        assert any("whitespace" in f.message for f in report.warnings)

    def test_non_string_label_is_error(self):
        g = Graph()
        g.add_vertex(0, 42)  # type: ignore[arg-type]
        report = validate_database(GraphDatabase([g]))
        assert not report.ok

    def test_corrupted_adjacency_is_error(self):
        g = Graph.from_edges({0: "a", 1: "b"}, [(0, 1)])
        g._adjacency[0].add(99)  # simulate internal corruption
        report = validate_database(GraphDatabase([g]))
        assert not report.ok
        assert any("unknown vertex" in f.message for f in report.errors)

    def test_asymmetric_adjacency_is_error(self):
        g = Graph.from_edges({0: "a", 1: "b", 2: "c"}, [(0, 1)])
        g._adjacency[0].add(2)  # one-directional corruption
        report = validate_database(GraphDatabase([g]))
        assert not report.ok
        assert any("asymmetric" in f.message for f in report.errors)

    def test_finding_cap(self):
        g = Graph()
        for i in range(300):
            g.add_vertex(i, "")
        report = validate_database(GraphDatabase([g]), max_findings=10)
        assert len(report.findings) == 10

    def test_error_summary_truncated(self):
        g = Graph()
        for i in range(10):
            g.add_vertex(i, "")
        report = validate_database(GraphDatabase([g]))
        with pytest.raises(DatabaseError) as excinfo:
            report.raise_if_invalid()
        assert "more)" in str(excinfo.value)
