"""The shared support-threshold parser (CLI and Python API)."""

import pytest

from repro.core.support import parse_support
from repro.exceptions import InvalidSupportError


class TestParseSupport:
    def test_absolute_ints_pass_through(self):
        assert parse_support(1) == 1
        assert parse_support(10) == 10
        assert isinstance(parse_support(10), int)

    def test_fractions_pass_through(self):
        assert parse_support(0.85) == pytest.approx(0.85)
        assert parse_support(1.0) == pytest.approx(1.0)

    def test_count_strings(self):
        assert parse_support("2") == 2
        assert isinstance(parse_support("2"), int)

    def test_fraction_strings(self):
        assert parse_support("0.85") == pytest.approx(0.85)
        assert parse_support("1e-1") == pytest.approx(0.1)

    def test_percentage_strings(self):
        assert parse_support("85%") == pytest.approx(0.85)
        assert parse_support("100%") == pytest.approx(1.0)
        assert parse_support(" 85 % ".replace(" ", "")) == pytest.approx(0.85)

    def test_whitespace_tolerated(self):
        assert parse_support("  2  ") == 2

    @pytest.mark.parametrize(
        "bad",
        [0, -3, "0", "-3", 0.0, -0.5, 1.5, "1.5", "0%", "101%", "-5%",
         True, False, "", "  ", "dense", "85%%", None, [2]],
    )
    def test_rejections(self, bad):
        with pytest.raises(InvalidSupportError):
            parse_support(bad)

    def test_float_counts_are_ambiguous(self):
        # 2.0 might mean "count 2" or a fraction typo; both readings are
        # refused so the CLI and API cannot drift apart again.
        with pytest.raises(InvalidSupportError):
            parse_support(2.0)
        with pytest.raises(InvalidSupportError):
            parse_support("2.0")


class TestSurfacesAgree:
    """The CLI helper and the database arithmetic use the same parser."""

    def test_cli_helper_delegates(self):
        from repro.cli import _parse_min_sup

        assert _parse_min_sup("85%") == parse_support("85%")
        assert _parse_min_sup("2") == parse_support("2")
        with pytest.raises(InvalidSupportError):
            _parse_min_sup("nope")

    def test_database_accepts_all_spellings(self):
        from repro.graphdb import paper_example_database

        db = paper_example_database()  # 2 transactions
        assert db.absolute_support("100%") == 2
        assert db.absolute_support("0.5") == 1
        assert db.absolute_support("2") == 2
        assert db.absolute_support(2) == 2

    def test_facade_accepts_strings(self):
        from repro import mine, paper_example_database

        db = paper_example_database()
        assert [p.key() for p in mine(db, "100%")] == [
            p.key() for p in mine(db, 2)
        ]
