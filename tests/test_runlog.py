"""Tests for reproducible run records."""

import pytest

from repro.core import MinerConfig
from repro.exceptions import FormatError
from repro.graphdb import paper_example_database
from repro.io.runlog import (
    RunRecord,
    database_fingerprint,
    open_record,
    record_run,
    replay,
    save_record,
)


class TestFingerprint:
    def test_deterministic(self, paper_db):
        assert database_fingerprint(paper_db) == database_fingerprint(
            paper_example_database()
        )

    def test_sensitive_to_structure(self, paper_db):
        other = paper_example_database()
        other[0].remove_vertex(6)
        assert database_fingerprint(paper_db) != database_fingerprint(other)

    def test_sensitive_to_labels(self, paper_db):
        from repro.graphdb import relabel_database

        other = relabel_database(paper_db, {"a": "z"})
        assert database_fingerprint(paper_db) != database_fingerprint(other)


class TestRecordRun:
    def test_record_contents(self, paper_db):
        record = record_run(paper_db, 2)
        assert record.n_transactions == 2
        assert record.min_sup == 2
        assert record.config["closed_only"] is True
        assert record.statistics["closed_cliques"] == 2
        assert sorted(p.key() for p in record.patterns()) == ["abcd:2", "bde:2"]

    def test_custom_config_round_trips(self, paper_db):
        config = MinerConfig(
            closed_only=False, nonclosed_prefix_pruning=False, min_size=2
        )
        record = record_run(paper_db, 2, config)
        rehydrated = record.miner_config()
        assert rehydrated.closed_only is False
        assert rehydrated.min_size == 2

    def test_save_and_open(self, tmp_path, paper_db):
        record = record_run(paper_db, 2)
        path = tmp_path / "run.json"
        save_record(record, path)
        loaded = open_record(path)
        assert loaded == record

    def test_open_rejects_non_records(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"hello": 1}')
        with pytest.raises(FormatError):
            open_record(path)


class TestReplay:
    def test_faithful_replay(self, paper_db):
        record = record_run(paper_db, 2)
        outcome = replay(record, paper_example_database())
        assert outcome.reproduced
        assert outcome.recorded_patterns == outcome.replayed_patterns == 2

    def test_changed_database_detected(self, paper_db):
        record = record_run(paper_db, 2)
        altered = paper_example_database()
        altered[1].remove_vertex(6)  # breaks bde's support
        outcome = replay(record, altered)
        assert not outcome.fingerprint_matches
        assert not outcome.patterns_match
        assert not outcome.reproduced

    def test_cosmetic_change_with_same_patterns(self, paper_db):
        record = record_run(paper_db, 2)
        altered = paper_example_database()
        altered[0].add_vertex(99, "zz")  # isolated vertex, patterns unchanged
        outcome = replay(record, altered)
        assert not outcome.fingerprint_matches
        assert outcome.patterns_match
