"""Tests for constraint-based mining."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CliqueConstraints,
    ConstrainedMiner,
    mine_closed_cliques,
    mine_with_constraints,
    project_database,
)
from repro.exceptions import MiningError
from tests.conftest import make_random_database


class TestConstraintValidation:
    def test_required_must_be_allowed(self):
        with pytest.raises(MiningError):
            CliqueConstraints.of(allowed="ab", required="c")

    def test_required_forbidden_conflict(self):
        with pytest.raises(MiningError):
            CliqueConstraints.of(required="a", forbidden="a")

    def test_size_window_validation(self):
        with pytest.raises(MiningError):
            CliqueConstraints.of(min_size=0)
        with pytest.raises(MiningError):
            CliqueConstraints.of(min_size=3, max_size=2)

    def test_label_admissible(self):
        c = CliqueConstraints.of(allowed="abc", forbidden="c")
        assert c.label_admissible("a")
        assert not c.label_admissible("c")
        assert not c.label_admissible("z")


class TestProjection:
    def test_projection_erases_labels(self, paper_db):
        constraints = CliqueConstraints.of(allowed="bde")
        projected = project_database(paper_db, constraints)
        assert projected.distinct_labels() == {"b", "d", "e"}
        assert len(projected) == len(paper_db)

    def test_projection_preserves_admissible_edges(self, paper_db):
        projected = project_database(paper_db, CliqueConstraints.of(allowed="bde"))
        g1 = projected[0]
        # b (u2) and e (u6) were adjacent in G1 and still are.
        assert g1.has_edge(2, 6)
        assert not g1.has_vertex(1)  # the 'a' vertex is gone


class TestConstrainedMining:
    def test_allowed_labels(self, paper_db):
        result = mine_with_constraints(
            paper_db, 2, CliqueConstraints.of(allowed="bde")
        )
        assert sorted(p.key() for p in result) == ["bde:2"]

    def test_forbidden_labels(self, paper_db):
        result = mine_with_constraints(
            paper_db, 2, CliqueConstraints.of(forbidden="a", min_size=2)
        )
        keys = sorted(p.key() for p in result)
        assert "bde:2" in keys
        assert all("a" not in key.split(":")[0] for key in keys)

    def test_required_labels(self, paper_db):
        result = mine_with_constraints(
            paper_db, 2, CliqueConstraints.of(required="e", min_size=2)
        )
        assert sorted(p.key() for p in result) == ["bde:2"]

    def test_predicate(self, paper_db):
        result = mine_with_constraints(
            paper_db, 2,
            CliqueConstraints.of(predicate=lambda p: p.size % 2 == 0),
        )
        assert all(p.size % 2 == 0 for p in result)
        assert any(p.key() == "abcd:2" for p in result)

    def test_size_window(self, paper_db):
        result = mine_with_constraints(
            paper_db, 2, CliqueConstraints.of(min_size=3, max_size=3)
        )
        assert sorted(p.key() for p in result) == ["bde:2"]

    def test_no_constraints_equals_plain_mining(self, paper_db):
        result = mine_with_constraints(paper_db, 2, CliqueConstraints.of())
        plain = mine_closed_cliques(paper_db, 2)
        assert sorted(p.key() for p in result) == sorted(p.key() for p in plain)

    def test_quasi_task_with_gamma(self, paper_db):
        # Constraints compose with the quasi engine task: gamma passes
        # through, and the constraint bundle's max_size doubles as the
        # quasi search's mandatory size ceiling.
        from repro.core import mine

        constrained = mine_with_constraints(
            paper_db,
            2,
            CliqueConstraints.of(forbidden="a", min_size=2, max_size=4),
            task="quasi",
            gamma=0.75,
        )
        keys = {p.key() for p in constrained}
        assert all("a" not in key.split(":")[0] for key in keys)
        # The relaxed-closure filter re-runs in the projected world;
        # the paper example's b-d-e triangle survives it.
        assert "bde:2" in keys
        # At γ=1.0 constrained quasi collapses to constrained closed-
        # clique mining over the same size window.
        exact_quasi = mine_with_constraints(
            paper_db,
            2,
            CliqueConstraints.of(forbidden="a", min_size=2, max_size=4),
            task="quasi",
            gamma=1.0,
        )
        exact = mine_with_constraints(
            paper_db,
            2,
            CliqueConstraints.of(forbidden="a", min_size=2, max_size=4),
        )
        assert sorted(p.key() for p in exact_quasi) == sorted(
            p.key() for p in exact
        )

    def test_projected_vs_postfilter_semantics(self, paper_db):
        """project=True re-evaluates closedness in the projected world:
        bd:2 is closed among {b, d} labels even though bde:2 absorbs it
        in the full database."""
        constraints = CliqueConstraints.of(allowed="bd")
        projected = mine_with_constraints(paper_db, 2, constraints, project=True)
        filtered = mine_with_constraints(paper_db, 2, constraints, project=False)
        assert "bd:2" in {p.key() for p in projected}
        assert "bd:2" not in {p.key() for p in filtered}

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 50_000))
    def test_projection_equals_postfilter_of_frequent_set(self, seed):
        """Sound pushdown: the projected frequent patterns are exactly
        the full frequent patterns over admissible labels."""
        from repro.core import mine_frequent_cliques
        from repro.core.config import MinerConfig
        from repro.core.miner import ClanMiner

        db = make_random_database(seed)
        constraints = CliqueConstraints.of(allowed="ab")
        projected_db = project_database(db, constraints)
        projected = mine_frequent_cliques(projected_db, 2)
        full = mine_frequent_cliques(db, 2)
        expected = sorted(
            p.key() for p in full if set(p.labels) <= {"a", "b"}
        )
        assert sorted(p.key() for p in projected) == expected

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 50_000))
    def test_every_reported_pattern_satisfies(self, seed):
        db = make_random_database(seed)
        constraints = CliqueConstraints.of(
            forbidden="d", required="a", min_size=2
        )
        for pattern in mine_with_constraints(db, 1, constraints):
            assert constraints.pattern_satisfies(pattern)
