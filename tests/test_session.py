"""The MiningSession control plane and the ``repro.mine`` façade.

The contracts here are the PR's acceptance criteria:

* façade results are identical to each legacy entry point;
* a cancelled/budgeted session's partial result equals a
  ``root_labels``-restricted mine of exactly the completed roots;
* resuming a truncated session's checkpoint yields a union identical
  to an uninterrupted mine;
* serial and parallel sessions produce byte-identical event streams.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MiningRequest, mine
from repro.core import (
    CallbackSink,
    ClanMiner,
    JsonlTraceSink,
    MinerConfig,
    MiningBudget,
    MiningSession,
    RingBufferSink,
    event_from_dict,
    event_to_dict,
    iter_session_events,
    mine_closed_cliques,
    mine_frequent_cliques,
)
from repro.baselines.bruteforce import bruteforce_quasi_cliques
from repro.core.maximal import mine_maximal_cliques
from repro.core.session import (
    PatternEmitted,
    RootFinished,
    SearchFinished,
    SearchStarted,
)
from repro.core.topk import mine_top_k_closed_cliques
from repro.exceptions import FormatError, MiningError, ReproError
from repro.graphdb import paper_example_database, random_database
from repro.io.runlog import open_checkpoint, open_trace, save_checkpoint
from tests.conftest import make_random_database


@pytest.fixture()
def paper_db():
    return paper_example_database()


@pytest.fixture(scope="module")
def dense_db():
    # Large enough for several roots and a few hundred prefixes.
    return random_database(12, 14, 0.45, 6, seed=3)


def keys(result):
    return [p.key() for p in result]


def rq(min_sup=2, **options):
    """A MiningRequest built exactly the way the legacy kwargs path would."""
    return MiningRequest.from_options(min_sup, **options)


# ======================================================================
# The façade vs the legacy entry points
# ======================================================================
class TestFacadeMatchesLegacy:
    def test_closed_default(self, paper_db):
        assert keys(mine(paper_db, 2)) == keys(mine_closed_cliques(paper_db, 2))

    def test_closed_on_seeded_database(self, dense_db):
        assert keys(mine(dense_db, 3)) == keys(mine_closed_cliques(dense_db, 3))

    def test_frequent(self, dense_db):
        assert keys(mine(dense_db, rq(3, task="frequent"))) == keys(
            mine_frequent_cliques(dense_db, 3)
        )

    def test_size_window(self, dense_db):
        assert keys(mine(dense_db, rq(3, min_size=2, max_size=3))) == keys(
            mine_closed_cliques(dense_db, 3, min_size=2, max_size=3)
        )

    def test_maximal(self, dense_db):
        assert keys(mine(dense_db, rq(3, task="maximal"))) == keys(
            mine_maximal_cliques(dense_db, 3)
        )

    def test_topk(self, dense_db):
        assert keys(mine(dense_db, rq(3, task="topk", k=4))) == keys(
            mine_top_k_closed_cliques(dense_db, 3, k=4)
        )

    def test_quasi(self, paper_db):
        assert keys(mine(paper_db, rq(2, task="quasi", gamma=0.8, max_size=5))) == keys(
            bruteforce_quasi_cliques(paper_db, 2, gamma=0.8, min_size=2, max_size=5)
        )

    def test_parallel_pool(self, dense_db):
        assert keys(mine(dense_db, rq(3, processes=2))) == keys(
            mine_closed_cliques(dense_db, 3)
        )

    def test_session_engine_same_result(self, dense_db):
        plain = mine(dense_db, 3)
        via_session = mine(dense_db, 3, sinks=(RingBufferSink(),))
        assert keys(via_session) == keys(plain)
        assert not via_session.truncated

    def test_unknown_task_rejected(self, paper_db):
        with pytest.raises(MiningError, match="unknown task"):
            mine(paper_db, rq(2, task="closedish"))

    def test_topk_requires_k(self, paper_db):
        with pytest.raises(MiningError, match="requires k"):
            mine(paper_db, rq(2, task="topk"))

    def test_quasi_requires_max_size(self, paper_db):
        with pytest.raises(MiningError, match="max_size"):
            mine(paper_db, rq(2, task="quasi"))

    def test_session_options_work_for_engine_tasks(self, paper_db, dense_db):
        # Budgets/pools are engine-wide now: maximal and top-k run
        # through the same session/executor stack as closed.
        relaxed = mine(paper_db, rq(2, task="maximal", deadline=60.0))
        assert keys(relaxed) == keys(mine_maximal_cliques(paper_db, 2))
        pooled = mine(dense_db, rq(3, task="topk", k=4, processes=2))
        assert keys(pooled) == keys(mine_top_k_closed_cliques(dense_db, 3, k=4))

    def test_engine_options_work_for_quasi(self, paper_db):
        # Quasi is a full engine task now: kernels, worker pools, and
        # budgets all apply, and every path agrees with plain serial.
        plain = mine(paper_db, rq(2, task="quasi", gamma=0.8, max_size=4))
        pooled = mine(
            paper_db, rq(2, task="quasi", gamma=0.8, max_size=4, processes=2)
        )
        setk = mine(
            paper_db, rq(2, task="quasi", gamma=0.8, max_size=4, kernel="set")
        )
        budgeted = mine(
            paper_db, rq(2, task="quasi", gamma=0.8, max_size=4, deadline=60.0)
        )
        assert keys(pooled) == keys(plain)
        assert keys(setk) == keys(plain)
        assert keys(budgeted) == keys(plain)
        assert not budgeted.truncated

    def test_quasi_rejects_out_of_range_gamma(self, paper_db):
        with pytest.raises(MiningError, match="gamma"):
            mine(paper_db, rq(2, task="quasi", gamma=0.2, max_size=4))

    def test_maximal_rejects_max_size(self, paper_db):
        with pytest.raises(MiningError, match="look maximal"):
            mine(paper_db, rq(2, task="maximal", max_size=3))

    def test_budget_and_shorthand_mutually_exclusive(self, paper_db):
        with pytest.raises(MiningError, match="not both"):
            mine(paper_db, rq(2, budget=MiningBudget(max_patterns=5), deadline=1.0))

    def test_stream_returns_unstarted_session(self, paper_db):
        session = mine(paper_db, 2, stream=True)
        assert isinstance(session, MiningSession)
        assert keys(session.run()) == keys(mine_closed_cliques(paper_db, 2))


# ======================================================================
# Events: stream shape, round-trips, serial == parallel
# ======================================================================
class TestEventStream:
    def test_stream_shape(self, paper_db):
        events = list(iter_session_events(paper_db, 2))
        assert events[0].kind == "search_started"
        assert events[-1].kind == "search_finished"
        roots = events[0].pending_roots
        assert [e.root for e in events if e.kind == "root_started"] == list(roots)
        assert [e.root for e in events if e.kind == "root_finished"] == list(roots)
        emitted = [e for e in events if e.kind == "pattern_emitted"]
        assert sorted(f"{''.join(e.form)}:{e.support}" for e in emitted) == [
            "abcd:2",
            "bde:2",
        ]
        assert events[-1].patterns == 2
        assert events[-1].truncated is False
        assert events[-1].reason is None

    def test_per_root_statistics_sum_to_total(self, dense_db):
        ring = RingBufferSink(capacity=None)
        result = MiningSession(dense_db, 3, sinks=(ring,)).run()
        per_root = ring.of_kind("root_finished")
        total = sum(e.statistics["prefixes_visited"] for e in per_root)
        assert total == result.statistics.prefixes_visited
        assert sum(e.patterns for e in per_root) == len(result)

    def test_serial_and_parallel_streams_identical(self, dense_db):
        serial, parallel = RingBufferSink(capacity=None), RingBufferSink(capacity=None)
        r1 = MiningSession(dense_db, 3, sinks=(serial,), sample_every=7).run()
        r2 = MiningSession(
            dense_db, 3, sinks=(parallel,), sample_every=7, processes=2
        ).run()
        assert keys(r1) == keys(r2)
        assert list(serial.events) == list(parallel.events)
        assert [event_to_dict(e) for e in serial.events] == [
            event_to_dict(e) for e in parallel.events
        ]

    def test_static_scheduler_stream_identical_to_serial(self, dense_db):
        serial, static = RingBufferSink(capacity=None), RingBufferSink(capacity=None)
        r1 = MiningSession(dense_db, 3, sinks=(serial,), sample_every=7).run()
        r2 = MiningSession(
            dense_db,
            3,
            sinks=(static,),
            sample_every=7,
            processes=2,
            scheduler="static",
        ).run()
        assert keys(r1) == keys(r2)
        assert list(serial.events) == list(static.events)

    def test_forced_split_stream_identical_to_serial(self, dense_db):
        # split_factor=0 makes the executor split every splittable root
        # into its level-2 subtasks — the adversarial schedule for the
        # substream replay that rebuilds the serial sampling.
        serial, split = RingBufferSink(capacity=None), RingBufferSink(capacity=None)
        r1 = MiningSession(dense_db, 3, sinks=(serial,), sample_every=7).run()
        r2 = MiningSession(
            dense_db,
            3,
            sinks=(split,),
            sample_every=7,
            processes=2,
            split_factor=0.0,
        ).run()
        assert keys(r1) == keys(r2)
        assert list(serial.events) == list(split.events)
        assert r1.statistics.snapshot() == r2.statistics.snapshot()

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_stealing_streams_identical_on_random_databases(self, seed):
        db = make_random_database(seed)
        serial, stolen = RingBufferSink(capacity=None), RingBufferSink(capacity=None)
        r1 = MiningSession(db, 2, sinks=(serial,), sample_every=3).run()
        r2 = MiningSession(
            db, 2, sinks=(stolen,), sample_every=3, processes=2, split_factor=0.0
        ).run()
        assert keys(r1) == keys(r2)
        assert list(serial.events) == list(stolen.events)
        assert r1.statistics.snapshot() == r2.statistics.snapshot()

    def test_sampled_prefix_events(self, dense_db):
        ring = RingBufferSink(capacity=None)
        MiningSession(dense_db, 3, sinks=(ring,), sample_every=5).run()
        sampled = ring.of_kind("prefix_visited")
        assert sampled
        assert all(e.ordinal % 5 == 0 for e in sampled)
        assert all(e.depth == len(e.form) for e in sampled)

    def test_event_dict_round_trip(self, dense_db):
        ring = RingBufferSink(capacity=None)
        MiningSession(dense_db, 3, sinks=(ring,), sample_every=9).run()
        for event in ring.events:
            payload = json.loads(json.dumps(event_to_dict(event)))
            assert event_from_dict(payload) == event

    def test_event_from_dict_rejects_garbage(self):
        with pytest.raises(MiningError, match="unknown event"):
            event_from_dict({"event": "nope"})
        with pytest.raises(MiningError, match="missing field"):
            event_from_dict({"event": "root_started", "root": "a"})

    def test_jsonl_trace_round_trip(self, paper_db, tmp_path):
        trace = tmp_path / "trace.jsonl"
        ring = RingBufferSink(capacity=None)
        MiningSession(
            paper_db, 2, sinks=(JsonlTraceSink(trace), ring), sample_every=3
        ).run()
        assert open_trace(trace) == list(ring.events)

    def test_open_trace_reports_bad_line(self, tmp_path):
        trace = tmp_path / "broken.jsonl"
        trace.write_text('{"event": "search_finished"}\n')
        with pytest.raises(FormatError, match="trace"):
            open_trace(trace)

    def test_callback_sink(self, paper_db):
        seen = []
        MiningSession(paper_db, 2, sinks=(CallbackSink(seen.append),)).run()
        assert seen[0].kind == "search_started"
        assert seen[-1].kind == "search_finished"

    def test_ring_buffer_capacity(self, dense_db):
        ring = RingBufferSink(capacity=4)
        MiningSession(dense_db, 3, sinks=(ring,)).run()
        assert len(ring.events) == 4
        assert ring.events[-1].kind == "search_finished"


# ======================================================================
# Budgets, cancellation, and the truncation exactness guarantee
# ======================================================================
class TestBudgets:
    def test_prefix_budget_partial_equals_root_restricted_mine(self, dense_db):
        session = MiningSession(
            dense_db, 3, budget=MiningBudget(max_expanded_prefixes=5)
        )
        partial = session.run()
        assert partial.truncated
        full = ClanMiner(dense_db).mine(3)
        assert len(partial) < len(full)
        reference = ClanMiner(dense_db).mine(3, root_labels=partial.completed_roots)
        assert keys(partial) == keys(reference)

    def test_pattern_budget(self, dense_db):
        session = MiningSession(dense_db, 3, budget=MiningBudget(max_patterns=3))
        partial = session.run()
        assert partial.truncated
        reference = ClanMiner(dense_db).mine(3, root_labels=partial.completed_roots)
        assert keys(partial) == keys(reference)

    def test_deadline_budget(self, dense_db):
        ring = RingBufferSink(capacity=None)
        partial = MiningSession(
            dense_db, 3, budget=MiningBudget(deadline_seconds=1e-9), sinks=(ring,)
        ).run()
        assert partial.truncated
        assert len(partial) == 0
        finished = ring.of_kind("search_finished")[0]
        assert finished.reason == "deadline"

    def test_generous_budget_not_truncated(self, dense_db):
        result = MiningSession(
            dense_db, 3, budget=MiningBudget(max_expanded_prefixes=10**9)
        ).run()
        assert not result.truncated
        assert keys(result) == keys(ClanMiner(dense_db).mine(3))

    def test_cancel_before_run_yields_empty_partial(self, dense_db):
        session = MiningSession(dense_db, 3)
        session.cancel()
        partial = session.run()
        assert partial.truncated
        assert partial.completed_roots == ()
        assert len(partial) == 0

    def test_cancel_mid_run_from_callback(self, dense_db):
        session = MiningSession(dense_db, 3)

        def stop_after_first_root(event):
            if isinstance(event, RootFinished):
                session.cancel()

        session.sinks = (CallbackSink(stop_after_first_root),)
        partial = session.run()
        assert partial.truncated
        assert len(partial.completed_roots) >= 1
        reference = ClanMiner(dense_db).mine(3, root_labels=partial.completed_roots)
        assert keys(partial) == keys(reference)

    def test_parallel_budget_acts_at_root_granularity(self, dense_db):
        partial = MiningSession(
            dense_db, 3, budget=MiningBudget(max_patterns=2), processes=2
        ).run()
        assert partial.truncated
        reference = ClanMiner(dense_db).mine(3, root_labels=partial.completed_roots)
        assert keys(partial) == keys(reference)

    def test_cancel_mid_split_keeps_root_exactness(self, dense_db):
        # Cancelling while the stealing executor has roots split into
        # in-flight subtasks must still truncate at a root boundary:
        # the partial equals a root-restricted mine of exactly the
        # completed roots, never a half-merged split.
        session = MiningSession(dense_db, 3, processes=2, split_factor=0.0)

        def stop_after_first_root(event):
            if isinstance(event, RootFinished):
                session.cancel()

        session.sinks = (CallbackSink(stop_after_first_root),)
        partial = session.run()
        assert partial.truncated
        assert len(partial.completed_roots) >= 1
        reference = ClanMiner(dense_db).mine(3, root_labels=partial.completed_roots)
        assert keys(partial) == keys(reference)

    def test_budget_mid_split_keeps_root_exactness(self, dense_db):
        partial = MiningSession(
            dense_db,
            3,
            budget=MiningBudget(max_expanded_prefixes=5),
            processes=2,
            split_factor=0.0,
        ).run()
        assert partial.truncated
        reference = ClanMiner(dense_db).mine(3, root_labels=partial.completed_roots)
        assert keys(partial) == keys(reference)

    def test_budget_validation(self):
        with pytest.raises(MiningError, match="positive"):
            MiningBudget(max_patterns=0)
        with pytest.raises(MiningError, match="positive"):
            MiningBudget(deadline_seconds=-1.0)
        assert MiningBudget().unbounded

    def test_facade_budget_shorthand(self, dense_db):
        partial = mine(dense_db, rq(3, max_expanded_prefixes=5))
        assert partial.truncated
        reference = mine(dense_db, 3, root_labels=partial.completed_roots)
        assert keys(partial) == keys(reference)

    def test_session_is_single_use(self, paper_db):
        session = MiningSession(paper_db, 2)
        session.run()
        with pytest.raises(MiningError, match="runs once"):
            session.run()


# ======================================================================
# Checkpoint / resume
# ======================================================================
class TestCheckpointResume:
    def test_resume_completes_to_identical_union(self, dense_db):
        truncated = MiningSession(
            dense_db, 3, budget=MiningBudget(max_expanded_prefixes=5)
        )
        partial = truncated.run()
        assert partial.truncated
        checkpoint = truncated.checkpoint()
        resumed = MiningSession(dense_db, 3, resume_from=checkpoint)
        final = resumed.run()
        assert not final.truncated
        assert keys(final) == keys(ClanMiner(dense_db).mine(3))

    def test_resume_skips_completed_roots(self, dense_db):
        truncated = MiningSession(
            dense_db, 3, budget=MiningBudget(max_expanded_prefixes=5)
        )
        truncated.run()
        checkpoint = truncated.checkpoint()
        ring = RingBufferSink(capacity=None)
        MiningSession(dense_db, 3, resume_from=checkpoint, sinks=(ring,)).run()
        started = ring.of_kind("search_started")[0]
        assert set(started.resumed_roots) == set(checkpoint.completed_roots)
        mined_again = {e.root for e in ring.of_kind("root_started")}
        assert mined_again.isdisjoint(checkpoint.completed_roots)

    def test_resume_with_stealing_splits_completes_to_identical_union(
        self, dense_db
    ):
        truncated = MiningSession(
            dense_db,
            3,
            budget=MiningBudget(max_expanded_prefixes=5),
            processes=2,
            split_factor=0.0,
        )
        partial = truncated.run()
        assert partial.truncated
        final = MiningSession(
            dense_db,
            3,
            resume_from=truncated.checkpoint(),
            processes=2,
            split_factor=0.0,
        ).run()
        assert not final.truncated
        assert keys(final) == keys(ClanMiner(dense_db).mine(3))

    def test_serial_checkpoint_resumes_in_parallel(self, dense_db):
        # processes/scheduler are execution-layer knobs, deliberately
        # outside the checkpoint's config fingerprint.
        truncated = MiningSession(
            dense_db, 3, budget=MiningBudget(max_expanded_prefixes=5)
        )
        truncated.run()
        final = MiningSession(
            dense_db, 3, resume_from=truncated.checkpoint(), processes=2
        ).run()
        assert keys(final) == keys(ClanMiner(dense_db).mine(3))

    def test_checkpoint_file_round_trip(self, dense_db, tmp_path):
        session = MiningSession(dense_db, 3, budget=MiningBudget(max_patterns=2))
        session.run()
        path = tmp_path / "ckpt.json"
        save_checkpoint(session.checkpoint(), path)
        loaded = open_checkpoint(path)
        assert loaded == session.checkpoint()
        final = MiningSession(dense_db, 3, resume_from=loaded).run()
        assert keys(final) == keys(ClanMiner(dense_db).mine(3))

    def test_checkpoint_of_complete_run_resumes_to_noop(self, paper_db):
        session = MiningSession(paper_db, 2)
        done = session.run()
        resumed = MiningSession(paper_db, 2, resume_from=session.checkpoint())
        assert keys(resumed.run()) == keys(done)

    def test_resume_rejects_wrong_database(self, dense_db):
        session = MiningSession(dense_db, 3, budget=MiningBudget(max_patterns=2))
        session.run()
        checkpoint = session.checkpoint()
        other = random_database(12, 14, 0.45, 6, seed=4)
        with pytest.raises(MiningError, match="fingerprint"):
            MiningSession(other, 3, resume_from=checkpoint)

    def test_resume_rejects_wrong_support(self, dense_db):
        session = MiningSession(dense_db, 3, budget=MiningBudget(max_patterns=2))
        session.run()
        with pytest.raises(MiningError, match="min_sup"):
            MiningSession(dense_db, 4, resume_from=session.checkpoint())

    def test_resume_rejects_wrong_config(self, dense_db):
        session = MiningSession(dense_db, 3, budget=MiningBudget(max_patterns=2))
        session.run()
        with pytest.raises(MiningError, match="MinerConfig"):
            MiningSession(
                dense_db,
                3,
                config=MinerConfig(min_size=2),
                resume_from=session.checkpoint(),
            )

    def test_resume_rejects_wrong_task(self, dense_db):
        session = MiningSession(dense_db, 3, budget=MiningBudget(max_patterns=2))
        session.run()
        with pytest.raises(MiningError, match="task"):
            MiningSession(
                dense_db, 3, task="frequent", resume_from=session.checkpoint()
            )

    def test_checkpoint_payload_rejects_other_kinds(self, tmp_path):
        path = tmp_path / "not-a-checkpoint.json"
        path.write_text(json.dumps({"kind": "run-record"}))
        with pytest.raises((FormatError, MiningError)):
            open_checkpoint(path)


# ======================================================================
# Session construction guards
# ======================================================================
class TestSessionGuards:
    def test_all_engine_tasks_accepted(self, paper_db):
        session = MiningSession(paper_db, 2, task="maximal")
        assert keys(session.run()) == keys(mine_maximal_cliques(paper_db, 2))
        quasi = MiningSession(
            paper_db,
            2,
            task="quasi",
            gamma=0.8,
            config=MinerConfig(min_size=2, max_size=5),
        )
        assert keys(quasi.run()) == keys(
            mine(paper_db, rq(2, task="quasi", gamma=0.8, max_size=5))
        )

    def test_quasi_session_requires_gamma_and_max_size(self, paper_db):
        with pytest.raises(MiningError, match="requires gamma"):
            MiningSession(
                paper_db, 2, task="quasi", config=MinerConfig(max_size=5)
            )
        with pytest.raises(MiningError, match="max_size"):
            MiningSession(paper_db, 2, task="quasi", gamma=0.8)

    def test_topk_session_requires_k(self, paper_db):
        with pytest.raises(MiningError, match="requires k"):
            MiningSession(paper_db, 2, task="topk")

    def test_config_must_match_task(self, paper_db):
        with pytest.raises(MiningError, match="closed_only"):
            MiningSession(paper_db, 2, task="frequent", config=MinerConfig())

    def test_structural_pruning_required(self, paper_db):
        import dataclasses

        loose = dataclasses.replace(
            MinerConfig(),
            structural_redundancy_pruning=False,
            nonclosed_prefix_pruning=False,
        )
        with pytest.raises(MiningError, match="structural redundancy"):
            MiningSession(paper_db, 2, config=loose)

    def test_unknown_scheduler_rejected(self, paper_db):
        with pytest.raises(MiningError, match="scheduler"):
            MiningSession(paper_db, 2, scheduler="fifo")
        with pytest.raises(MiningError, match="scheduler"):
            mine(paper_db, rq(2, scheduler="fifo"))

    def test_root_labels_incompatible_with_session_options(self, paper_db):
        with pytest.raises(MiningError, match="root_labels"):
            mine(paper_db, rq(2, deadline=5.0), root_labels=("a",))

    def test_truncated_repr_and_fields(self, dense_db):
        partial = MiningSession(
            dense_db, 3, budget=MiningBudget(max_expanded_prefixes=5)
        ).run()
        assert "truncated" in repr(partial)
        assert partial.completed_roots == tuple(sorted(partial.completed_roots))
