"""Unit tests for MinerConfig validation and ablation helpers."""

import pytest

from repro.core import CACHED, RESCAN, MinerConfig
from repro.exceptions import MiningError


class TestValidation:
    def test_defaults_are_paper_defaults(self):
        config = MinerConfig.paper_defaults()
        assert config.closed_only
        assert config.structural_redundancy_pruning
        assert config.low_degree_pruning
        assert config.nonclosed_prefix_pruning
        assert config.embedding_strategy == CACHED

    def test_min_size_must_be_positive(self):
        with pytest.raises(MiningError):
            MinerConfig(min_size=0)

    def test_max_size_must_cover_min_size(self):
        with pytest.raises(MiningError):
            MinerConfig(min_size=3, max_size=2)
        MinerConfig(min_size=3, max_size=3)

    def test_bad_strategy(self):
        with pytest.raises(MiningError):
            MinerConfig(embedding_strategy="telepathy")

    def test_nonclosed_prefix_requires_closed_only(self):
        with pytest.raises(MiningError):
            MinerConfig(closed_only=False)
        MinerConfig(closed_only=False, nonclosed_prefix_pruning=False)

    def test_nonclosed_prefix_requires_redundancy_pruning(self):
        with pytest.raises(MiningError):
            MinerConfig(structural_redundancy_pruning=False)
        MinerConfig(
            structural_redundancy_pruning=False, nonclosed_prefix_pruning=False
        )

    def test_max_embeddings_positive(self):
        with pytest.raises(MiningError):
            MinerConfig(max_embeddings=0)
        MinerConfig(max_embeddings=10)


class TestHelpers:
    def test_all_frequent(self):
        config = MinerConfig.all_frequent()
        assert not config.closed_only
        assert not config.nonclosed_prefix_pruning

    def test_without_each_pruning(self):
        base = MinerConfig()
        assert not base.without("low_degree").low_degree_pruning
        assert not base.without("nonclosed_prefix").nonclosed_prefix_pruning
        relaxed = base.without("structural_redundancy")
        assert not relaxed.structural_redundancy_pruning
        # Dependent pruning is switched off too (Lemma 4.4 soundness).
        assert not relaxed.nonclosed_prefix_pruning

    def test_without_unknown(self):
        with pytest.raises(MiningError):
            MinerConfig().without("magic")

    def test_rescan_strategy_accepted(self):
        assert MinerConfig(embedding_strategy=RESCAN).embedding_strategy == RESCAN
