"""Differential testing of the set, bitset, and slab mining kernels.

The bitset kernel (including its aligned database-global label space,
engaged automatically on unique-label databases) and the numpy slab
kernel (word-sliced uint64 masks, forest-batched extension planning)
must be *byte identical* to the reference set kernel: same
closed-clique sets, same supports and supporting transactions, same
witnesses, and the same search statistics — the kernels are different
representations of one algorithm, not different algorithms.  All must
also agree with the exhaustive brute-force oracle at small scale.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings

from repro.baselines.bruteforce import bruteforce_closed_cliques
from repro.core import BITSET, SET, SLAB, ClanMiner, MinerConfig
from repro.graphdb import Graph, GraphDatabase

from tests.conftest import make_random_database
from tests.strategies import graph_databases

KERNELS = (SET, BITSET, SLAB)
STRATEGIES = ("cached", "rescan")

#: 50 seeded random databases spanning sparse to near-complete graphs,
#: few to many labels (many labels → unique-per-graph labels are more
#: likely, exercising the aligned bitset path).
RANDOM_CASES = [
    (seed, 3 + seed % 3, 6 + seed % 4, 0.3 + 0.06 * (seed % 10), 3 + seed % 5)
    for seed in range(50)
]


def signature(result):
    """Everything observable about a mining result, order-normalised."""
    return sorted(
        (
            pattern.form.labels,
            pattern.support,
            tuple(sorted(pattern.transactions)),
            tuple(sorted(pattern.witnesses.items())),
        )
        for pattern in result
    )


def oracle_signature(result):
    """Brute-force results carry no witnesses — compare the rest."""
    return sorted(
        (pattern.form.labels, pattern.support, tuple(sorted(pattern.transactions)))
        for pattern in result
    )


def mine_all_configs(database, min_sup):
    """Mine under every kernel × strategy combination."""
    outcomes = {}
    for kernel in KERNELS:
        for strategy in STRATEGIES:
            config = MinerConfig(kernel=kernel, embedding_strategy=strategy)
            outcomes[(kernel, strategy)] = ClanMiner(database, config).mine(min_sup)
    return outcomes


def assert_all_identical(database, min_sup):
    outcomes = mine_all_configs(database, min_sup)
    reference_key = (SET, "cached")
    reference = outcomes[reference_key]
    ref_signature = signature(reference)
    ref_stats = str(reference.statistics)
    for key, result in outcomes.items():
        assert signature(result) == ref_signature, (key, database.name)
        assert str(result.statistics) == ref_stats, (key, database.name)
    return reference


def unique_label_database(seed: int, n_graphs: int = 4) -> GraphDatabase:
    """Random database whose transactions carry unique per-vertex labels.

    Every graph samples a subset of a shared ticker-like alphabet, one
    vertex per label — the shape that switches the bitset kernel into
    its aligned database-global label space.
    """
    rng = random.Random(seed)
    alphabet = [f"T{i:02d}" for i in range(12)]
    database = GraphDatabase(name=f"unique-{seed}")
    for gid in range(n_graphs):
        labels = rng.sample(alphabet, k=rng.randint(3, 9))
        graph = Graph(gid)
        for vertex, label in enumerate(labels):
            graph.add_vertex(vertex, label)
        for u in range(len(labels)):
            for v in range(u + 1, len(labels)):
                if rng.random() < 0.55:
                    graph.add_edge(u, v)
        database.add(graph)
    return database


class TestRandomDatabases:
    @pytest.mark.parametrize("seed,n_graphs,n_vertices,p,n_labels", RANDOM_CASES)
    def test_kernels_identical_and_match_oracle(
        self, seed, n_graphs, n_vertices, p, n_labels
    ):
        database = make_random_database(
            seed,
            n_graphs=n_graphs,
            n_vertices=n_vertices,
            edge_probability=p,
            n_labels=n_labels,
        )
        min_sup = 2 if seed % 2 else 1
        reference = assert_all_identical(database, min_sup)
        oracle = bruteforce_closed_cliques(database, min_sup)
        assert oracle_signature(reference) == oracle_signature(oracle), seed


class TestAlignedPath:
    """Unique-label databases run the aligned global-label-space code."""

    @pytest.mark.parametrize("seed", range(12))
    def test_aligned_kernels_identical_and_match_oracle(self, seed):
        database = unique_label_database(seed)
        assert database.aligned_space() is not None
        min_sup = 2 if seed % 2 else 1
        reference = assert_all_identical(database, min_sup)
        oracle = bruteforce_closed_cliques(database, min_sup)
        assert oracle_signature(reference) == oracle_signature(oracle), seed

    def test_duplicate_labels_disable_aligned_space(self):
        database = make_random_database(0, n_labels=2)
        assert database.aligned_space() is None


class TestMultiWordSlab:
    """Databases with more than 64 transactions span several uint64
    words per slab row — the word-axis reductions (popcount sums,
    blocking-tie scans) must agree with the single-word fast path."""

    @pytest.mark.parametrize("seed", (0, 3))
    def test_wide_databases_identical_and_match_oracle(self, seed):
        database = unique_label_database(seed, n_graphs=70)
        assert database.aligned_space() is not None
        space = database.slab_space()
        assert space is not None and space.tx_words > 1
        reference = assert_all_identical(database, 8)
        oracle = bruteforce_closed_cliques(database, 8)
        assert oracle_signature(reference) == oracle_signature(oracle), seed


class TestNonDefaultConfigs:
    """Kernel identity must also hold under ablation configurations."""

    @pytest.mark.parametrize("seed", (1, 7, 13))
    @pytest.mark.parametrize(
        "overrides",
        (
            {"closed_only": False, "nonclosed_prefix_pruning": False},
            {"nonclosed_prefix_pruning": False},
            {"low_degree_pruning": False},
            {"min_size": 2, "max_size": 3},
        ),
        ids=("frequent", "no-nonclosed", "no-core", "size-window"),
    )
    def test_ablation_configs_identical(self, seed, overrides):
        for database in (make_random_database(seed), unique_label_database(seed)):
            results = {}
            for kernel in KERNELS:
                config = MinerConfig(kernel=kernel, **overrides)
                results[kernel] = ClanMiner(database, config).mine(2)
            for kernel in KERNELS[1:]:
                assert signature(results[SET]) == signature(results[kernel]), kernel
                assert str(results[SET].statistics) == str(
                    results[kernel].statistics
                ), kernel


class TestHypothesisDifferential:
    @settings(max_examples=60, deadline=None)
    @given(database=graph_databases(), min_sup=__import__("hypothesis").strategies.integers(1, 3))
    def test_kernels_identical_on_arbitrary_databases(self, database, min_sup):
        assert_all_identical(database, min(min_sup, len(database)))


@pytest.mark.slow
def test_market_sweep_identical():
    """Full fig6a-style sweep: kernel identity on real workload shapes."""
    from repro.stockmarket import stock_market_series

    database = stock_market_series([0.90], scale="small")[0]
    for min_sup in (1.00, 0.95, 0.90, 0.85):
        assert_all_identical(database, min_sup)
