"""Unit tests for the ClanMiner (Algorithm 1) beyond the running example."""

import pytest

from repro.core import CACHED, RESCAN, ClanMiner, MinerConfig, mine_closed_cliques, mine_frequent_cliques
from repro.exceptions import InvalidSupportError, MiningError
from repro.graphdb import Graph, GraphDatabase, labelled_clique_database, paper_example_database


class TestSupportThresholds:
    def test_relative_and_absolute_agree(self, paper_db):
        by_int = mine_closed_cliques(paper_db, 2)
        by_frac = mine_closed_cliques(paper_db, 1.0)
        assert sorted(by_int.keys()) == sorted(by_frac.keys())

    def test_invalid_support_raises(self, paper_db):
        with pytest.raises(InvalidSupportError):
            mine_closed_cliques(paper_db, 0)
        with pytest.raises(InvalidSupportError):
            mine_closed_cliques(paper_db, 3)

    def test_support_one_single_graph(self):
        g = Graph.from_edges({0: "a", 1: "b", 2: "c"}, [(0, 1), (0, 2), (1, 2)])
        result = mine_closed_cliques(GraphDatabase([g]), 1)
        assert [p.key() for p in result] == ["abc:1"]


class TestSizeWindows:
    def test_min_size_filters_output_not_search(self, paper_db):
        result = mine_closed_cliques(paper_db, 2, min_size=4)
        assert [p.key() for p in result] == ["abcd:2"]

    def test_max_size_truncates(self, paper_db):
        result = mine_frequent_cliques(paper_db, 2, max_size=2)
        assert result.max_size() == 2
        assert len(result) == 13  # 5 singles + 8 pairs

    def test_max_size_closure_still_exact(self, paper_db):
        """A size-capped closed run keeps exact closedness semantics:
        bde is the only closed pattern of size <= 3 (everything smaller
        is absorbed by equal-support supercliques)."""
        result = mine_closed_cliques(paper_db, 2, max_size=3)
        assert [p.key() for p in result] == ["bde:2"]


class TestStrategiesAndFlags:
    @pytest.mark.parametrize("strategy", [CACHED, RESCAN])
    def test_strategies_equal_results(self, paper_db, strategy):
        config = MinerConfig(embedding_strategy=strategy)
        result = ClanMiner(paper_db, config).mine(2)
        assert sorted(p.key() for p in result) == ["abcd:2", "bde:2"]

    def test_low_degree_off_same_results(self, paper_db):
        for strategy in (CACHED, RESCAN):
            config = MinerConfig(embedding_strategy=strategy).without("low_degree")
            result = ClanMiner(paper_db, config).mine(2)
            assert sorted(p.key() for p in result) == ["abcd:2", "bde:2"]

    def test_nonclosed_prefix_off_same_results(self, paper_db):
        config = MinerConfig().without("nonclosed_prefix")
        result = ClanMiner(paper_db, config).mine(2)
        assert sorted(p.key() for p in result) == ["abcd:2", "bde:2"]
        assert result.statistics.closure_rejections > 0

    def test_redundancy_off_same_results(self, paper_db):
        config = MinerConfig().without("structural_redundancy")
        result = ClanMiner(paper_db, config).mine(2)
        assert sorted(p.key() for p in result) == ["abcd:2", "bde:2"]


class TestWitnesses:
    def test_witnesses_verify_against_database(self, paper_db):
        result = mine_closed_cliques(paper_db, 2)
        for pattern in result:
            assert set(pattern.witnesses) == set(pattern.transactions)
            pattern.verify(paper_db)

    def test_witness_collection_can_be_disabled(self, paper_db):
        config = MinerConfig(collect_witnesses=False)
        result = ClanMiner(paper_db, config).mine(2)
        assert all(not p.witnesses for p in result)


class TestGuards:
    def test_max_embeddings_aborts(self, paper_db):
        config = MinerConfig(max_embeddings=1)
        with pytest.raises(MiningError):
            ClanMiner(paper_db, config).mine(2)

    def test_extension_support_invariant_holds_on_clique_db(self):
        db = labelled_clique_database(
            [(("a", "b", "c", "d"), 3), (("c", "d", "e"), 2)], n_graphs=3
        )
        result = mine_closed_cliques(db, 2)
        assert sorted(p.key() for p in result) == ["abcd:3", "cde:2"]


class TestDuplicateLabelPatterns:
    def test_multiset_patterns(self):
        """Patterns with repeated labels (the paper's aac example)."""
        g1 = Graph.from_edges({0: "a", 1: "a", 2: "c"}, [(0, 1), (0, 2), (1, 2)])
        g2 = Graph.from_edges({0: "a", 1: "a", 2: "c"}, [(0, 1), (0, 2), (1, 2)])
        result = mine_closed_cliques(GraphDatabase([g1, g2]), 2)
        assert [p.key() for p in result] == ["aac:2"]

    def test_overcounting_does_not_happen(self):
        """Three mutually adjacent 'a's = one aaa pattern, one embedding set."""
        g = Graph.from_edges(
            {0: "a", 1: "a", 2: "a"}, [(0, 1), (0, 2), (1, 2)]
        )
        result = mine_frequent_cliques(GraphDatabase([g]), 1)
        keys = [p.key() for p in result]
        assert keys == ["a:1", "aa:1", "aaa:1"]


class TestStatisticsAndTiming:
    def test_elapsed_recorded(self, paper_db):
        result = mine_closed_cliques(paper_db, 2)
        assert result.elapsed_seconds >= 0.0

    def test_statistics_consistency(self, paper_db):
        result = mine_frequent_cliques(paper_db, 2)
        stats = result.statistics
        assert stats.frequent_cliques == len(result) == 19
        assert stats.max_depth == 4
        assert sum(stats.frequent_by_size.values()) == 19

    def test_empty_result_on_impossible_support(self):
        g1 = Graph.from_edges({0: "a"}, [])
        g2 = Graph.from_edges({0: "b"}, [])
        result = mine_closed_cliques(GraphDatabase([g1, g2]), 2)
        assert len(result) == 0


class TestConfigWindowMerging:
    """Regression: ``mine_closed_cliques(..., config=...)`` used to
    silently ignore ``min_size``/``max_size`` whenever a config was
    passed.  The window now merges into the config, and genuine
    contradictions raise instead of picking a silent winner."""

    def test_window_args_respected_alongside_config(self, paper_db):
        config = MinerConfig(embedding_strategy=RESCAN)
        result = mine_closed_cliques(paper_db, 2, min_size=4, config=config)
        assert [p.key() for p in result] == ["abcd:2"]

    def test_max_size_respected_alongside_config(self, paper_db):
        config = MinerConfig(embedding_strategy=RESCAN)
        result = mine_closed_cliques(paper_db, 2, max_size=3, config=config)
        assert [p.key() for p in result] == ["bde:2"]

    def test_window_in_config_alone_still_works(self, paper_db):
        result = mine_closed_cliques(paper_db, 2, config=MinerConfig(min_size=4))
        assert [p.key() for p in result] == ["abcd:2"]

    def test_agreeing_window_is_fine(self, paper_db):
        config = MinerConfig(min_size=4)
        result = mine_closed_cliques(paper_db, 2, min_size=4, config=config)
        assert [p.key() for p in result] == ["abcd:2"]

    def test_conflicting_min_size_raises(self, paper_db):
        config = MinerConfig(min_size=3)
        with pytest.raises(MiningError, match="conflicting min_size"):
            mine_closed_cliques(paper_db, 2, min_size=4, config=config)

    def test_conflicting_max_size_raises(self, paper_db):
        config = MinerConfig(max_size=2)
        with pytest.raises(MiningError, match="conflicting max_size"):
            mine_closed_cliques(paper_db, 2, max_size=3, config=config)

    def test_frequent_wrapper_merges_too(self, paper_db):
        config = MinerConfig.all_frequent()
        result = mine_frequent_cliques(paper_db, 2, max_size=2, config=config)
        assert result.max_size() == 2
        assert len(result) == 13
