"""Property-based cross-checks of the CLAN miner (hypothesis).

The central guarantees:

* CLAN's closed set equals the brute-force closed set on arbitrary
  databases (soundness + completeness of all prunings together);
* disabling any pruning or switching embedding strategy never changes
  the result set, only the work done;
* the closed set expands exactly to the frequent set (the concision
  argument of Section 1);
* every frequent clique has a closed superclique of equal support.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    bruteforce_closed_cliques,
    bruteforce_frequent_cliques,
    mine_closed_by_postfilter,
    mine_closed_with_duplicates,
)
from repro.core import CACHED, RESCAN, ClanMiner, MinerConfig, mine_closed_cliques, mine_frequent_cliques
from tests.conftest import make_random_database

SEEDS = st.integers(0, 100_000)
SUPPORTS = st.integers(1, 3)


def keys(result):
    return sorted(p.key() for p in result)


@settings(max_examples=40, deadline=None)
@given(seed=SEEDS, min_sup=SUPPORTS)
def test_clan_closed_equals_bruteforce(seed, min_sup):
    db = make_random_database(seed)
    assert keys(mine_closed_cliques(db, min_sup)) == keys(
        bruteforce_closed_cliques(db, min_sup)
    )


@settings(max_examples=40, deadline=None)
@given(seed=SEEDS, min_sup=SUPPORTS)
def test_clan_frequent_equals_bruteforce(seed, min_sup):
    db = make_random_database(seed)
    assert keys(mine_frequent_cliques(db, min_sup)) == keys(
        bruteforce_frequent_cliques(db, min_sup)
    )


@settings(max_examples=20, deadline=None)
@given(seed=SEEDS, min_sup=SUPPORTS)
def test_prunings_do_not_change_results(seed, min_sup):
    db = make_random_database(seed)
    reference = keys(mine_closed_cliques(db, min_sup))
    for pruning in ("structural_redundancy", "low_degree", "nonclosed_prefix"):
        config = MinerConfig().without(pruning)
        assert keys(ClanMiner(db, config).mine(min_sup)) == reference, pruning


@settings(max_examples=20, deadline=None)
@given(seed=SEEDS, min_sup=SUPPORTS)
def test_embedding_strategies_agree(seed, min_sup):
    db = make_random_database(seed)
    cached = ClanMiner(db, MinerConfig(embedding_strategy=CACHED)).mine(min_sup)
    rescan = ClanMiner(db, MinerConfig(embedding_strategy=RESCAN)).mine(min_sup)
    assert keys(cached) == keys(rescan)


@settings(max_examples=20, deadline=None)
@given(seed=SEEDS, min_sup=SUPPORTS)
def test_rescan_without_low_degree_agrees(seed, min_sup):
    db = make_random_database(seed)
    config = MinerConfig(embedding_strategy=RESCAN).without("low_degree")
    assert keys(ClanMiner(db, config).mine(min_sup)) == keys(
        mine_closed_cliques(db, min_sup)
    )


@settings(max_examples=25, deadline=None)
@given(seed=SEEDS, min_sup=SUPPORTS)
def test_closed_expansion_recovers_frequent_set(seed, min_sup):
    db = make_random_database(seed)
    closed = mine_closed_cliques(db, min_sup)
    frequent = mine_frequent_cliques(db, min_sup)
    assert keys(closed.expand_to_frequent()) == keys(frequent)


@settings(max_examples=25, deadline=None)
@given(seed=SEEDS, min_sup=SUPPORTS)
def test_every_frequent_has_closed_superclique_same_support(seed, min_sup):
    db = make_random_database(seed)
    closed = list(mine_closed_cliques(db, min_sup))
    for pattern in mine_frequent_cliques(db, min_sup):
        assert any(
            pattern.form.is_subclique_of(c.form) and c.support == pattern.support
            for c in closed
        ), pattern.key()


@settings(max_examples=25, deadline=None)
@given(seed=SEEDS, min_sup=SUPPORTS)
def test_closed_set_is_antichain_under_equal_support(seed, min_sup):
    """No closed pattern dominates another with equal support."""
    db = make_random_database(seed)
    closed = list(mine_closed_cliques(db, min_sup))
    for a in closed:
        for b in closed:
            assert not a.makes_nonclosed(b), (a.key(), b.key())


@settings(max_examples=15, deadline=None)
@given(seed=SEEDS, min_sup=SUPPORTS)
def test_naive_baselines_agree(seed, min_sup):
    db = make_random_database(seed)
    reference = keys(mine_closed_cliques(db, min_sup))
    assert keys(mine_closed_by_postfilter(db, min_sup)) == reference
    assert keys(mine_closed_with_duplicates(db, min_sup)) == reference


@settings(max_examples=20, deadline=None)
@given(seed=SEEDS, min_sup=SUPPORTS)
def test_witnesses_always_verify(seed, min_sup):
    db = make_random_database(seed)
    for pattern in mine_closed_cliques(db, min_sup):
        pattern.verify(db)


@settings(max_examples=20, deadline=None)
@given(seed=SEEDS)
def test_support_monotone_in_threshold(seed):
    """Raising min_sup can only shrink the frequent set."""
    db = make_random_database(seed)
    previous = None
    for min_sup in (1, 2, 3, 4):
        current = {p.key() for p in mine_frequent_cliques(db, min_sup)}
        if previous is not None:
            assert current <= previous
        previous = current


@settings(max_examples=15, deadline=None)
@given(seed=SEEDS, min_sup=SUPPORTS)
def test_duplicate_label_databases(seed, min_sup):
    """Dense label collisions (2 labels, 9 vertices) stress multisets."""
    db = make_random_database(seed, n_graphs=3, n_vertices=9, n_labels=2,
                              edge_probability=0.6)
    assert keys(mine_closed_cliques(db, min_sup)) == keys(
        bruteforce_closed_cliques(db, min_sup)
    )
