"""End-to-end tests of the mining service control plane.

These run a real :class:`repro.service.MiningService` — its asyncio
loop in a daemon thread, plain ``http.client`` on the other side — and
pin the contracts the service README promises:

* every task's HTTP result is canonically byte-identical to an
  in-process :func:`repro.mine` of the same request;
* the trace endpoint streams the session's events as JSONL;
* cancellation works both queued and mid-run;
* a killed server resumes interrupted jobs from their checkpoints and
  still converges to the same canonical bytes;
* the per-tenant queue is fair (a second tenant's first job is not
  starved by the first tenant's backlog);
* the shared cache warms across tenants.
"""

import http.client
import json
import time

import pytest

from repro import MiningRequest, MiningResultEnvelope, mine
from repro.graphdb import paper_example_database
from repro.graphdb.generators import random_database
from repro.service import DEFAULT_TENANT, FairJobQueue, MiningService

#: A database slow enough (~0.8 s) that we can observe a job *running*
#: — submit more work behind it, cancel it, or kill the server mid-root.
SLOW_DB_ARGS = (44, 28, 0.7, 10)
SLOW_DB_SEED = 7


def slow_database():
    return random_database(*SLOW_DB_ARGS, seed=SLOW_DB_SEED)


def http_json(addr, method, path, body=None, headers=None):
    """One request/response against the service; returns (status, payload)."""
    conn = http.client.HTTPConnection(*addr, timeout=60)
    try:
        conn.request(method, path, body, headers or {})
        response = conn.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        conn.close()


def submit(addr, request, tenant=None):
    headers = {"X-Clan-Tenant": tenant} if tenant else {}
    status, payload = http_json(
        addr, "POST", "/v1/jobs", request.to_json(), headers
    )
    assert status == 202, payload
    return payload["id"]


def wait_result(addr, job_id, timeout=120):
    status, payload = http_json(
        addr, "GET", f"/v1/jobs/{job_id}/result?wait=1&timeout={timeout}"
    )
    assert status == 200, payload
    return payload


def wait_state(addr, job_id, states, timeout=30):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, payload = http_json(addr, "GET", f"/v1/jobs/{job_id}")
        assert status == 200
        if payload["state"] in states:
            return payload
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never reached {states}")


def envelope_of(payload):
    """Rebuild the wire payload (sans the job echo) into an envelope."""
    body = {key: value for key, value in payload.items() if key != "job"}
    return MiningResultEnvelope.from_dict(body)


@pytest.fixture
def service_factory(tmp_path):
    """Start services on distinct state dirs; stop the survivors."""
    started = []

    def factory(database, state=None, **kwargs):
        state_dir = tmp_path / (state or f"state-{len(started)}")
        svc = MiningService(database, state_dir, **kwargs)
        addr = svc.start_in_thread()
        started.append(svc)
        return svc, addr

    yield factory
    for svc in started:
        try:
            svc.stop_in_thread()
        except Exception:
            pass


ALL_TASK_REQUESTS = [
    MiningRequest(min_sup=2),
    MiningRequest(min_sup=2, task="frequent", min_size=2),
    MiningRequest(min_sup=2, task="maximal"),
    MiningRequest(min_sup=2, task="topk", k=3),
    MiningRequest(min_sup=2, task="quasi", gamma=0.8, min_size=2, max_size=4),
]


class TestServiceContract:
    def test_healthz_and_stats(self, service_factory):
        svc, addr = service_factory(paper_example_database())
        status, payload = http_json(addr, "GET", "/v1/healthz")
        assert status == 200 and payload["status"] == "ok"
        status, payload = http_json(addr, "GET", "/v1/stats")
        assert status == 200
        assert payload["max_concurrency"] == 2

    def test_every_task_byte_identical_to_in_process(self, service_factory):
        """The acceptance contract: HTTP result == in-process mine()."""
        database = paper_example_database()
        svc, addr = service_factory(database)
        for request in ALL_TASK_REQUESTS:
            job_id = submit(addr, request)
            served = envelope_of(wait_result(addr, job_id))
            local = MiningResultEnvelope.from_result(
                request, mine(database, request)
            )
            assert served.canonical_json() == local.canonical_json(), request.task

    def test_unknown_job_is_404_and_bad_request_is_400(self, service_factory):
        svc, addr = service_factory(paper_example_database())
        status, _ = http_json(addr, "GET", "/v1/jobs/job-999999")
        assert status == 404
        status, payload = http_json(
            addr, "POST", "/v1/jobs", json.dumps({"kind": "nonsense"})
        )
        assert status == 400
        assert "error" in payload

    def test_trace_streams_session_events_as_jsonl(self, service_factory):
        svc, addr = service_factory(paper_example_database())
        job_id = submit(addr, MiningRequest(min_sup=2))
        wait_result(addr, job_id)
        conn = http.client.HTTPConnection(*addr, timeout=30)
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/trace")
            response = conn.getresponse()
            assert response.status == 200
            events = [json.loads(line) for line in response.read().splitlines()]
        finally:
            conn.close()
        kinds = [event["event"] for event in events]
        assert kinds[0] == "search_started"
        assert kinds[-1] == "search_finished"
        assert "root_finished" in kinds

    def test_events_endpoint_is_sse_framed(self, service_factory):
        svc, addr = service_factory(paper_example_database())
        job_id = submit(addr, MiningRequest(min_sup=2))
        wait_result(addr, job_id)
        conn = http.client.HTTPConnection(*addr, timeout=30)
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/events")
            response = conn.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Type").startswith(
                "text/event-stream"
            )
            body = response.read().decode("utf-8")
        finally:
            conn.close()
        assert body.startswith("data: ")
        assert "event: done" in body

    def test_sweep_fans_out_one_job_per_threshold(self, service_factory):
        database = paper_example_database()
        svc, addr = service_factory(database)
        template = MiningRequest(min_sup=2)
        status, payload = http_json(
            addr,
            "POST",
            "/v1/sweeps",
            json.dumps({"min_sups": [2, 1], "request": template.to_dict()}),
        )
        assert status == 202
        assert len(payload["jobs"]) == 2
        for job, min_sup in zip(payload["jobs"], (2, 1)):
            request = MiningRequest(min_sup=min_sup)
            served = envelope_of(wait_result(addr, job["id"]))
            local = MiningResultEnvelope.from_result(
                request, mine(database, request)
            )
            assert served.canonical_json() == local.canonical_json()


class TestCancellation:
    def test_cancel_running_job(self, service_factory):
        svc, addr = service_factory(slow_database())
        job_id = submit(addr, MiningRequest(min_sup=2))
        wait_state(addr, job_id, {"running"})
        status, _ = http_json(addr, "POST", f"/v1/jobs/{job_id}/cancel")
        assert status == 202
        payload = wait_state(addr, job_id, {"cancelled"})
        assert payload["state"] == "cancelled"
        # Cancellation keeps the partial output: the result is served,
        # marked truncated, with the completed roots recorded.
        status, payload = http_json(addr, "GET", f"/v1/jobs/{job_id}/result")
        assert status == 200
        assert payload["result"]["truncated"] is True

    def test_cancel_queued_job_never_runs(self, service_factory):
        svc, addr = service_factory(slow_database(), max_concurrency=1)
        blocker = submit(addr, MiningRequest(min_sup=2))
        wait_state(addr, blocker, {"running"})
        queued = submit(addr, MiningRequest(min_sup=2, task="maximal"))
        status, _ = http_json(addr, "POST", f"/v1/jobs/{queued}/cancel")
        assert status == 202
        payload = wait_state(addr, queued, {"cancelled"})
        assert payload["state"] == "cancelled"
        wait_result(addr, blocker)
        assert queued not in svc.execution_order

    def test_cancel_finished_job_conflicts(self, service_factory):
        svc, addr = service_factory(paper_example_database())
        job_id = submit(addr, MiningRequest(min_sup=2))
        wait_result(addr, job_id)
        status, _ = http_json(addr, "POST", f"/v1/jobs/{job_id}/cancel")
        assert status == 409


class TestKillAndResume:
    def test_killed_server_resumes_from_checkpoint(self, service_factory):
        """Crash drill: kill mid-job, restart on the same state dir.

        The interrupted job must come back queued, resume from its
        checkpoint rather than restarting, and produce the same
        canonical bytes an uninterrupted in-process run produces.
        """
        database = slow_database()
        request = MiningRequest(min_sup=2)
        svc1, addr = service_factory(database, state="shared")
        job_id = submit(addr, request)

        # Stream the live trace until two roots completed, then pull
        # the plug while the mining thread is mid-search.
        conn = http.client.HTTPConnection(*addr, timeout=60)
        roots_done = 0
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/trace")
            response = conn.getresponse()
            while roots_done < 2:
                line = response.fp.readline()
                assert line, "trace ended before two roots finished"
                if json.loads(line)["event"] == "root_finished":
                    roots_done += 1
        finally:
            conn.close()
        svc1.kill_in_thread()

        state_dir = svc1.state_dir
        record = json.loads((state_dir / "jobs" / f"{job_id}.json").read_text())
        assert record["state"] == "running"  # crash: no graceful demotion
        assert (state_dir / "checkpoints" / f"{job_id}.json").exists()
        assert not (state_dir / "results" / f"{job_id}.json").exists()

        svc2, addr2 = service_factory(database, state="shared")
        served = envelope_of(wait_result(addr2, job_id))
        local = MiningResultEnvelope.from_result(request, mine(database, request))
        assert served.canonical_json() == local.canonical_json()
        # The resumed run really did reuse the checkpoint: its own
        # statistics cover fewer roots than the cold run expanded.
        resumed = served.result.statistics.snapshot()["prefixes_visited"]
        cold = local.result.statistics.snapshot()["prefixes_visited"]
        assert resumed < cold


class TestFairness:
    def test_round_robin_queue_interleaves_tenants(self):
        queue = FairJobQueue()
        queue.push("alice", "a1")
        queue.push("alice", "a2")
        queue.push("alice", "a3")
        queue.push("bob", "b1")
        queue.push("bob", "b2")
        order = [queue.pop_next()[1] for _ in range(len(queue))]
        assert order == ["a1", "b1", "a2", "b2", "a3"]

    def test_second_tenant_not_starved(self, service_factory):
        """bob's first job runs before alice's backlog drains."""
        svc, addr = service_factory(slow_database(), max_concurrency=1)
        blocker = submit(addr, MiningRequest(min_sup=2), tenant="alice")
        wait_state(addr, blocker, {"running"})
        a1 = submit(addr, MiningRequest(min_sup=2, task="maximal"), tenant="alice")
        a2 = submit(addr, MiningRequest(min_sup=2, task="topk", k=2), tenant="alice")
        b1 = submit(addr, MiningRequest(min_sup=2, task="maximal"), tenant="bob")
        for job_id in (blocker, a1, a2, b1):
            wait_result(addr, job_id)
        order = svc.execution_order
        assert order[0] == blocker
        assert order.index(b1) < order.index(a2)

    def test_tenant_accounting_in_stats(self, service_factory):
        svc, addr = service_factory(paper_example_database())
        submit(addr, MiningRequest(min_sup=2), tenant="alice")
        b = submit(addr, MiningRequest(min_sup=2), tenant="bob")
        wait_result(addr, b)
        status, payload = http_json(addr, "GET", "/v1/stats")
        assert status == 200
        assert {"alice", "bob"} <= set(payload["tenants"])
        assert payload["tenants"]["bob"]["submitted"] == 1
        status, payload = http_json(addr, "GET", "/v1/jobs?tenant=bob")
        assert status == 200
        assert all(job["tenant"] == "bob" for job in payload["jobs"])


class TestSharedCache:
    def test_second_tenant_served_from_cache(self, service_factory):
        """One cache across tenants: bob's identical request is warm."""
        database = paper_example_database()
        svc, addr = service_factory(database)
        request = MiningRequest(min_sup=2)
        cold = submit(addr, request, tenant="alice")
        cold_payload = wait_result(addr, cold)
        assert cold_payload["search"]["cache"]["roots_from_cache"] == 0

        warm = submit(addr, request, tenant="bob")
        warm_payload = wait_result(addr, warm)
        assert warm_payload["search"]["cache"]["roots_from_cache"] > 0
        assert envelope_of(warm_payload).canonical_json() == envelope_of(
            cold_payload
        ).canonical_json()

    def test_cache_persists_across_restart(self, service_factory):
        database = paper_example_database()
        request = MiningRequest(min_sup=2)
        svc1, addr1 = service_factory(database, state="shared")
        wait_result(addr1, submit(addr1, request))
        svc1.stop_in_thread()

        svc2, addr2 = service_factory(database, state="shared")
        payload = wait_result(addr2, submit(addr2, request))
        assert payload["search"]["cache"]["roots_from_cache"] > 0

    def test_use_cache_false_forces_cold_mine(self, service_factory):
        database = paper_example_database()
        svc, addr = service_factory(database)
        wait_result(addr, submit(addr, MiningRequest(min_sup=2)))
        payload = wait_result(
            addr, submit(addr, MiningRequest(min_sup=2, use_cache=False))
        )
        assert payload["search"]["cache"]["roots_from_cache"] == 0


class TestRecovery:
    def test_finished_jobs_survive_restart(self, service_factory):
        database = paper_example_database()
        request = MiningRequest(min_sup=2)
        svc1, addr1 = service_factory(database, state="shared")
        job_id = submit(addr1, request)
        wait_result(addr1, job_id)
        svc1.stop_in_thread()

        svc2, addr2 = service_factory(database, state="shared")
        status, payload = http_json(addr2, "GET", f"/v1/jobs/{job_id}")
        assert status == 200 and payload["state"] == "done"
        served = envelope_of(wait_result(addr2, job_id))
        local = MiningResultEnvelope.from_result(request, mine(database, request))
        assert served.canonical_json() == local.canonical_json()
