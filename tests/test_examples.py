"""Smoke tests: every shipped example must run end to end."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys, argv=()):
    script = EXAMPLES_DIR / name
    assert script.exists(), script
    old_argv = sys.argv
    sys.argv = [str(script), *argv]
    try:
        runpy.run_path(str(script), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "abcd:2" in out
    assert "critical path to bde:2" in out


def test_quasicliques(capsys):
    out = run_example("quasicliques.py", capsys)
    assert "gamma=0.75" in out
    assert "pqrst:3" in out


def test_stock_market_analysis(capsys):
    out = run_example("stock_market_analysis.py", capsys, argv=["tiny"])
    assert "maximum frequent closed clique" in out
    assert "DMF" in out


@pytest.mark.slow
def test_chemical_fragments(capsys):
    out = run_example("chemical_fragments.py", capsys)
    assert "CLAN @10%" in out
    assert "cyclopropane" in out


def test_topk_and_constraints(capsys):
    out = run_example("topk_and_constraints.py", capsys)
    assert "top-3" in out


def test_protein_motifs(capsys):
    out = run_example("protein_motifs.py", capsys)
    assert "CCHH:24" in out
    assert "exact recall: 1.00" in out


def test_telecom_communities(capsys):
    out = run_example("telecom_communities.py", capsys)
    assert "matches a planted community: True" in out


def test_search_statistics(capsys):
    out = run_example("search_statistics.py", capsys)
    assert "prefixes visited: 15" in out
    assert "where the time went:" in out


def test_file_workflow(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    out = run_example("file_workflow.py", capsys)
    assert "round trip OK" in out
