"""Tests for incremental mining on transaction append."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import IncrementalMiner, MinerConfig, mine_closed_cliques
from repro.exceptions import MiningError
from repro.graphdb import Graph, paper_example_database, paper_graph_g1, paper_graph_g2
from tests.conftest import make_random_database


class TestBasics:
    def test_matches_batch_on_paper_example(self):
        miner = IncrementalMiner(min_sup=2)
        miner.add_transaction(paper_graph_g1())
        miner.add_transaction(paper_graph_g2())
        incremental = miner.result()
        batch = mine_closed_cliques(paper_example_database(), 2)
        assert sorted(p.key() for p in incremental) == sorted(
            p.key() for p in batch
        )

    def test_result_before_threshold_reached(self):
        miner = IncrementalMiner(min_sup=2)
        miner.add_transaction(paper_graph_g1())
        # Single transaction: nothing reaches support 2 yet... except
        # patterns with two embeddings?  Support counts transactions,
        # so everything is below threshold.
        assert len(miner.result()) == 0

    def test_relative_support_rejected(self):
        with pytest.raises(MiningError):
            IncrementalMiner(min_sup=0.85)  # type: ignore[arg-type]
        with pytest.raises(MiningError):
            IncrementalMiner(min_sup=0)

    def test_requires_redundancy_pruning(self):
        config = MinerConfig(
            closed_only=False,
            structural_redundancy_pruning=False,
            nonclosed_prefix_pruning=False,
        )
        with pytest.raises(MiningError):
            IncrementalMiner(min_sup=1, config=config)

    def test_constructor_seeds_from_database(self, paper_db):
        miner = IncrementalMiner(paper_db, min_sup=2)
        assert len(miner) == 2
        assert sorted(p.key() for p in miner.result()) == ["abcd:2", "bde:2"]

    def test_input_graphs_are_copied(self, paper_db):
        miner = IncrementalMiner(min_sup=1)
        g = paper_graph_g1()
        miner.add_transaction(g)
        g.remove_vertex(1)
        assert miner.database[0].has_vertex(1)


class TestReuse:
    def test_disjoint_transaction_skips_old_roots(self):
        miner = IncrementalMiner(min_sup=1)
        miner.add_transaction(paper_graph_g1())  # labels a..e
        remined_before = miner.roots_remined
        zz = Graph.from_edges({0: "x", 1: "y"}, [(0, 1)])
        stale = miner.add_transaction(zz)
        assert stale == {"x", "y"}
        assert miner.roots_remined == remined_before + 2

    def test_overlapping_transaction_remines_only_its_labels(self):
        miner = IncrementalMiner(min_sup=1)
        miner.add_transaction(paper_graph_g1())
        partial = Graph.from_edges({0: "a", 1: "b"}, [(0, 1)])
        stale = miner.add_transaction(partial)
        assert stale == {"a", "b"}

    def test_label_crossing_threshold_gets_mined(self):
        miner = IncrementalMiner(min_sup=2)
        miner.add_transaction(Graph.from_edges({0: "q"}, []))
        assert len(miner.result()) == 0
        miner.add_transaction(Graph.from_edges({0: "q"}, []))
        assert [p.key() for p in miner.result()] == ["q:2"]


class TestRootsReused:
    """Regression tests for the ``roots_reused`` counter.

    The counter means: frequent roots whose cached subtree survived an
    append un-remined.  The old implementation double-counted roots
    that were both frequent before the append and touched by it.
    """

    def test_disjoint_append_reuses_every_prior_root(self):
        miner = IncrementalMiner(min_sup=1)
        miner.add_transaction(paper_graph_g1())  # labels a..e, all stale
        assert miner.roots_reused == 0
        zz = Graph.from_edges({0: "x", 1: "y"}, [(0, 1)])
        miner.add_transaction(zz)
        # a..e untouched and still frequent: exactly 5 reused.
        assert miner.roots_reused == 5

    def test_overlapping_append_reuses_only_untouched_roots(self):
        miner = IncrementalMiner(min_sup=1)
        miner.add_transaction(paper_graph_g1())  # a..e
        partial = Graph.from_edges({0: "a", 1: "b"}, [(0, 1)])
        miner.add_transaction(partial)
        # a and b were remined; c, d, e were reused.
        assert miner.roots_remined == 5 + 2
        assert miner.roots_reused == 3

    def test_counter_accumulates_across_appends(self):
        miner = IncrementalMiner(min_sup=1)
        miner.add_transaction(paper_graph_g1())  # a..e
        miner.add_transaction(Graph.from_edges({0: "x"}, []))  # reuse 5
        miner.add_transaction(Graph.from_edges({0: "y"}, []))  # reuse 6
        assert miner.roots_reused == 5 + 6

    def test_not_yet_frequent_roots_are_not_reused(self):
        miner = IncrementalMiner(min_sup=2)
        miner.add_transaction(paper_graph_g1())
        miner.add_transaction(Graph.from_edges({0: "x"}, []))
        # Nothing reaches support 2 except nothing: 'x' is stale (and
        # infrequent), a..e are untouched but also below threshold.
        assert miner.roots_reused == 0

    def test_reported_alongside_cache_counters(self):
        from repro.core import MiningCache

        cache = MiningCache()
        miner = IncrementalMiner(min_sup=1, cache=cache)
        miner.add_transaction(paper_graph_g1())
        miner.add_transaction(Graph.from_edges({0: "x", 1: "y"}, [(0, 1)]))
        assert miner.roots_reused == 5
        assert cache.stores >= miner.roots_remined
        # The reused subtrees really are served from the shared cache.
        assert len(miner.result()) > 0
        assert miner.roots_remined == 5 + 2  # result() re-mined nothing


class TestAgainstBatch:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 50_000), min_sup=st.integers(1, 3))
    def test_every_prefix_of_a_stream_matches_batch(self, seed, min_sup):
        stream = make_random_database(seed, n_graphs=5)
        miner = IncrementalMiner(min_sup=min_sup)
        for count, graph in enumerate(stream, start=1):
            miner.add_transaction(graph)
            incremental = sorted(p.key() for p in miner.result())
            if count < min_sup:
                # The batch miner rejects min_sup > |D|; nothing can be
                # frequent yet either way.
                assert incremental == []
                continue
            batch = sorted(
                p.key()
                for p in mine_closed_cliques(stream.subset(range(count)), min_sup)
            )
            assert incremental == batch, count

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 50_000))
    def test_witnesses_stay_valid(self, seed):
        stream = make_random_database(seed, n_graphs=4)
        miner = IncrementalMiner(min_sup=2)
        for graph in stream:
            miner.add_transaction(graph)
        for pattern in miner.result():
            pattern.verify(miner.database)
