"""Cross-task parity: every engine task, every execution path.

The engine refactor's contract is that ``maximal``, ``topk``, and
``quasi`` are ordinary engine tasks — the same
kernel/executor/session/cache stack that serves ``closed`` serves
them, and every path composes the same per-root subtrees, so the
outputs are *byte-identical* across:

* the serial engine (``repro.mine``, ``processes=1``),
* the work-stealing process pool (``processes>1, scheduler=stealing``),
* the static pool (``scheduler=static``),
* a warm :class:`MiningCache` (exact-replay tier),
* a :class:`MiningSession` (event-streaming control plane),

and equal (order-normalised) to the exhaustive brute-force oracle.
Extends the differential machinery of ``test_kernel_differential.py``
from kernels to tasks.
"""

from __future__ import annotations

import pytest

from repro.baselines.bruteforce import (
    bruteforce_closed_cliques,
    bruteforce_quasi_cliques,
)
from repro.core import (
    MinerConfig,
    MiningBudget,
    MiningCache,
    MiningSession,
    RingBufferSink,
    mine,
)
from repro.core.api import MiningRequest
from repro.core.engine import finalize_patterns
from repro.core.maximal import maximal_subset
from repro.exceptions import MiningError

from tests.conftest import make_random_database


def rq(min_sup, **options):
    """The request the legacy kwargs path would have built."""
    return MiningRequest.from_options(min_sup, **options)

#: Seeded databases spanning sparse to dense, few to many labels.
CASES = [
    (seed, 3 + seed % 3, 6 + seed % 4, 0.35 + 0.08 * (seed % 6), 3 + seed % 4)
    for seed in range(8)
]

TASKS = (
    ("maximal", {}),
    ("topk", {"k": 4}),
    ("quasi", {"gamma": 0.8, "max_size": 4}),
)


def session_options(task, extra):
    """Translate ``repro.mine`` extras into MiningSession keywords.

    The façade folds ``max_size`` into the config itself (and maps the
    default ``min_size=1`` to 2 for quasi); sessions take the config
    directly.
    """
    if task != "quasi":
        return dict(extra)
    return {
        "gamma": extra["gamma"],
        "config": MinerConfig(min_size=2, max_size=extra["max_size"]),
    }


def full_signature(result):
    """Everything observable, *in result order* (order is part of the
    byte-identity contract)."""
    return [
        (
            pattern.form.labels,
            pattern.support,
            tuple(sorted(pattern.transactions)),
            tuple(sorted(pattern.witnesses.items())),
        )
        for pattern in result
    ]


def comparable_snapshot(result):
    """The snapshot minus launcher-level accounting.

    Two counters are charged by the *launcher*, not the subtrees: the
    lazy label-support scan (``database_scans``; pre-paid by
    ``prepare()`` on pooled/session/cached paths) and infrequent ROOT
    labels (``infrequent_extensions``; root-restricted mines never see
    them).  Both quirks predate the engine refactor and affect every
    task equally — everything counted inside the mined subtrees must
    be byte-equal across paths.
    """
    snapshot = dict(result.statistics.snapshot())
    snapshot.pop("database_scans")
    snapshot.pop("infrequent_extensions")
    return snapshot


def oracle_signature(result):
    """Brute-force patterns carry no witnesses — compare the rest,
    order-normalised."""
    return sorted(
        (pattern.form.labels, pattern.support, tuple(sorted(pattern.transactions)))
        for pattern in result
    )


def database_for(case):
    seed, n_graphs, n_vertices, p, n_labels = case
    return make_random_database(
        seed,
        n_graphs=n_graphs,
        n_vertices=n_vertices,
        edge_probability=p,
        n_labels=n_labels,
    )


class TestPathParity:
    """Serial == stealing pool == static pool == warm cache == session."""

    @pytest.mark.parametrize("case", CASES)
    @pytest.mark.parametrize("task,extra", TASKS, ids=("maximal", "topk", "quasi"))
    def test_all_paths_byte_identical(self, case, task, extra):
        database = database_for(case)
        min_sup = 2 if case[0] % 2 else 1

        serial = mine(database, rq(min_sup, task=task, **extra))
        reference = full_signature(serial)
        ref_snapshot = comparable_snapshot(serial)

        stealing = mine(
            database,
            rq(min_sup, task=task, processes=2, scheduler="stealing", **extra),
        )
        assert full_signature(stealing) == reference
        assert comparable_snapshot(stealing) == ref_snapshot

        static = mine(
            database,
            rq(min_sup, task=task, processes=2, scheduler="static", **extra),
        )
        assert full_signature(static) == reference
        assert comparable_snapshot(static) == ref_snapshot

        cache = MiningCache()
        cold = mine(database, rq(min_sup, task=task, **extra), cache=cache)
        warm = mine(database, rq(min_sup, task=task, **extra), cache=cache)
        assert full_signature(cold) == reference
        assert full_signature(warm) == reference
        assert comparable_snapshot(warm) == ref_snapshot
        assert warm.statistics.roots_from_cache > 0

        ring = RingBufferSink(capacity=None)
        session = MiningSession(
            database, min_sup, task=task, sinks=(ring,), **session_options(task, extra)
        )
        via_session = session.run()
        assert full_signature(via_session) == reference
        assert comparable_snapshot(via_session) == ref_snapshot
        kinds = [event.kind for event in ring.events]
        assert kinds[0] == "search_started" and kinds[-1] == "search_finished"


class TestOracle:
    """Engine outputs equal exhaustive enumeration at small scale."""

    @pytest.mark.parametrize("case", CASES)
    def test_maximal_equals_bruteforce(self, case):
        database = database_for(case)
        min_sup = 2 if case[0] % 2 else 1
        mined = mine(database, rq(min_sup, task="maximal"))
        oracle = maximal_subset(bruteforce_closed_cliques(database, min_sup))
        assert oracle_signature(mined) == oracle_signature(oracle), case

    @pytest.mark.parametrize("case", CASES)
    @pytest.mark.parametrize("k", (1, 4))
    def test_topk_equals_bruteforce(self, case, k):
        database = database_for(case)
        min_sup = 2 if case[0] % 2 else 1
        mined = mine(database, rq(min_sup, task="topk", k=k))
        closed = list(bruteforce_closed_cliques(database, min_sup))
        oracle = finalize_patterns("topk", closed, k)
        assert [
            (p.form.labels, p.support) for p in mined
        ] == [(p.form.labels, p.support) for p in oracle], case

    @pytest.mark.parametrize("case", CASES)
    def test_quasi_equals_bruteforce(self, case):
        # Witnesses included: both sides define the witness as the
        # lexicographically smallest qualifying vertex set per
        # transaction, so the oracle pins them exactly.
        database = database_for(case)
        min_sup = 2 if case[0] % 2 else 1
        mined = mine(database, rq(min_sup, task="quasi", gamma=0.8, max_size=4))
        oracle = bruteforce_quasi_cliques(
            database, min_sup, gamma=0.8, min_size=2, max_size=4
        )
        assert sorted(full_signature(mined)) == sorted(full_signature(oracle)), case


class TestSnapshotSchemaTaskIndependent:
    """Satellite: every task fills the same deterministic snapshot.

    The 13-key schema is frozen — heartbeats, traces, checkpoints, and
    the cache all serialise it — and maximal/top-k runs must populate
    the very same fields as closed/frequent (no task-shaped gaps).
    """

    FROZEN_KEYS = frozenset(
        {
            "prefixes_visited",
            "frequent_cliques",
            "closed_cliques",
            "nonclosed_prefix_prunes",
            "closure_rejections",
            "infrequent_extensions",
            "redundancy_skips",
            "duplicates_collapsed",
            "embeddings_created",
            "peak_embeddings",
            "database_scans",
            "max_depth",
            "frequent_by_size",
        }
    )

    def test_snapshot_keys_identical_across_tasks(self):
        database = database_for(CASES[1])
        snapshots = {
            "closed": mine(database, 2).statistics.snapshot(),
            "frequent": mine(database, rq(2, task="frequent")).statistics.snapshot(),
            "maximal": mine(database, rq(2, task="maximal")).statistics.snapshot(),
            "topk": mine(database, rq(2, task="topk", k=3)).statistics.snapshot(),
            "quasi": mine(
                database, rq(2, task="quasi", gamma=0.8, max_size=4)
            ).statistics.snapshot(),
        }
        for task, snapshot in snapshots.items():
            assert set(snapshot) == self.FROZEN_KEYS, task

    def test_all_tasks_fill_search_counters(self):
        # The old standalone maximal/top-k miners left per-prefix
        # counters (infrequent extensions, redundancy skips) at zero;
        # through the shared engine they count the same events the
        # closed task does.
        database = database_for(CASES[0])
        for task, extra in TASKS:
            snapshot = mine(database, rq(1, task=task, **extra)).statistics.snapshot()
            assert snapshot["prefixes_visited"] > 0, task
            assert snapshot["frequent_cliques"] > 0, task
            assert snapshot["max_depth"] > 0, task
            assert snapshot["embeddings_created"] > 0, task


class TestQuasiCheckpointResume:
    """Mid-run checkpoints work for quasi like any engine task.

    The session truncates on a prefix budget, checkpoints (recording
    ``gamma`` the way top-k records ``k``), and a fresh session resumes
    the incomplete roots to the byte-identical full result.
    """

    GAMMA = 0.8
    CONFIG = MinerConfig(min_size=2, max_size=4)

    def truncated_session(self, database, min_sup):
        session = MiningSession(
            database,
            min_sup,
            task="quasi",
            gamma=self.GAMMA,
            config=self.CONFIG,
            budget=MiningBudget(max_expanded_prefixes=20),
        )
        partial = session.run()
        assert partial.truncated, "budget did not bite mid-run"
        return session

    def test_mid_run_resume_completes_to_identical_result(self):
        database = database_for(CASES[2])
        full = mine(database, rq(1, task="quasi", gamma=self.GAMMA, max_size=4))
        session = self.truncated_session(database, 1)
        checkpoint = session.checkpoint()
        assert checkpoint.task == "quasi"
        assert checkpoint.gamma == self.GAMMA
        assert checkpoint.completed_roots  # genuinely mid-run, not empty
        final = MiningSession(
            database,
            1,
            task="quasi",
            gamma=self.GAMMA,
            config=self.CONFIG,
            resume_from=checkpoint,
        ).run()
        assert not final.truncated
        assert full_signature(final) == full_signature(full)

    def test_resume_rejects_mismatched_gamma(self):
        database = database_for(CASES[2])
        checkpoint = self.truncated_session(database, 1).checkpoint()
        with pytest.raises(MiningError, match="gamma"):
            MiningSession(
                database,
                1,
                task="quasi",
                gamma=0.6,
                config=self.CONFIG,
                resume_from=checkpoint,
            )
