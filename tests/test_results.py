"""Unit tests for repro.core.results."""

import pytest

from repro.core import CanonicalForm, MiningResult, make_pattern, mine_frequent_cliques
from repro.core.results import _sub_multisets
from repro.exceptions import PatternError


def sample_result() -> MiningResult:
    return MiningResult(
        [
            make_pattern("abcd", 2),
            make_pattern("bde", 2),
            make_pattern("x", 5),
        ],
        min_sup=2,
        closed_only=True,
    )


class TestCollection:
    def test_len_iter_contains(self):
        result = sample_result()
        assert len(result) == 3
        assert CanonicalForm.from_labels("bde") in result
        assert CanonicalForm.from_labels("zz") not in result

    def test_duplicate_rejected(self):
        result = sample_result()
        with pytest.raises(PatternError):
            result.add(make_pattern("abcd", 2))

    def test_get(self):
        result = sample_result()
        assert result.get(CanonicalForm.from_labels("x")).support == 5
        assert result.get(CanonicalForm.from_labels("zz")) is None

    def test_keys_in_insertion_order(self):
        assert sample_result().keys() == ["abcd:2", "bde:2", "x:5"]

    def test_sorted_by_form(self):
        forms = [str(p.form) for p in sample_result().sorted_by_form()]
        assert forms == ["abcd", "bde", "x"]


class TestQueries:
    def test_of_size_and_at_least(self):
        result = sample_result()
        assert [p.key() for p in result.of_size(3)] == ["bde:2"]
        assert len(result.at_least_size(3)) == 2

    def test_size_histogram_sorted(self):
        assert sample_result().size_histogram() == {1: 1, 3: 1, 4: 1}

    def test_max_and_maximum_patterns(self):
        result = sample_result()
        assert result.max_size() == 4
        assert [p.key() for p in result.maximum_patterns()] == ["abcd:2"]
        assert MiningResult().max_size() == 0
        assert MiningResult().maximum_patterns() == []

    def test_supersets_of(self):
        result = sample_result()
        found = [p.key() for p in result.supersets_of(CanonicalForm.from_labels("bd"))]
        assert found == ["abcd:2", "bde:2"]


class TestDerivations:
    def test_sub_multisets_enumerates_once(self):
        subs = list(_sub_multisets(("a", "a", "b")))
        assert sorted(subs) == [
            ("a",), ("a", "a"), ("a", "a", "b"), ("a", "b"), ("b",)
        ]

    def test_expand_takes_max_support(self):
        closed = MiningResult(
            [make_pattern("ab", 2), make_pattern("abc", 2), make_pattern("ad", 4)],
            min_sup=2,
            closed_only=True,
        )
        expanded = closed.expand_to_frequent()
        assert expanded.get(CanonicalForm.from_labels("a")).support == 4
        assert expanded.get(CanonicalForm.from_labels("b")).support == 2

    def test_closed_subset(self, paper_db):
        frequent = mine_frequent_cliques(paper_db, 2)
        closed = frequent.closed_subset()
        assert sorted(closed.keys()) == ["abcd:2", "bde:2"]

    def test_expand_then_close_is_identity(self, paper_db):
        from repro.core import mine_closed_cliques

        closed = mine_closed_cliques(paper_db, 2)
        roundtrip = closed.expand_to_frequent().closed_subset()
        assert sorted(roundtrip.keys()) == sorted(closed.keys())


class TestReporting:
    def test_report_mentions_counts(self):
        text = sample_result().report(min_size=3)
        assert "3 frequent closed cliques" in text
        assert "abcd:2" in text
        assert "x:5" not in text

    def test_report_limit(self):
        text = sample_result().report(limit=1)
        assert text.count("\n") == 1

    def test_repr(self):
        assert "closed" in repr(sample_result())
