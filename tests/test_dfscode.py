"""Unit tests for minimum DFS codes (the gSpan canonical form)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import DFSCode, edge_order_key, is_minimal_code, minimum_dfs_code
from repro.exceptions import PatternError
from repro.graphdb import Graph
from repro.graphdb.generators import default_label_alphabet, random_transaction


def connected_random_graph(seed: int, n: int = 7) -> Graph:
    rng = random.Random(seed)
    labels = default_label_alphabet(3)
    g = Graph()
    for v in range(n):
        g.add_vertex(v, rng.choice(labels))
        if v:
            g.add_edge(v, rng.randrange(v))
    for _ in range(n):
        u, v = rng.sample(range(n), 2)
        if not g.has_edge(u, v):
            g.add_edge(u, v)
    return g


class TestEdgeOrder:
    def test_forward_ordered_by_target_then_reverse_source(self):
        e1 = (0, 1, "a", "b")
        e2 = (1, 2, "b", "c")
        e3 = (0, 2, "a", "c")
        assert edge_order_key(e1) < edge_order_key(e2)
        # Deeper source wins for equal targets (i1 > i2 => e1 < e2).
        assert edge_order_key(e2) < edge_order_key(e3)

    def test_backward_before_forward_from_same_vertex(self):
        backward = (2, 0, "c", "a")
        forward = (2, 3, "c", "d")
        assert edge_order_key(backward) < edge_order_key(forward)

    def test_forward_before_deeper_backward(self):
        forward = (0, 1, "a", "b")
        backward = (2, 0, "c", "a")
        assert edge_order_key(forward) < edge_order_key(backward)

    def test_label_tiebreak(self):
        assert edge_order_key((0, 1, "a", "b")) < edge_order_key((0, 1, "a", "c"))


class TestDFSCodeStructure:
    def test_vertex_count_and_rightmost(self):
        code = DFSCode([(0, 1, "a", "b"), (1, 2, "b", "c")])
        assert code.vertex_count() == 3
        assert code.rightmost_vertex() == 2
        assert code.rightmost_path() == [0, 1, 2]

    def test_rightmost_path_after_backtrack(self):
        code = DFSCode([
            (0, 1, "a", "b"),
            (1, 2, "b", "c"),
            (0, 3, "a", "d"),
        ])
        assert code.rightmost_path() == [0, 3]

    def test_to_graph_round_trip(self):
        code = DFSCode([(0, 1, "a", "b"), (1, 2, "b", "a"), (2, 0, "a", "a")])
        graph = code.to_graph()
        assert graph.vertex_count == 3
        assert graph.edge_count == 3
        assert code.is_clique_code()

    def test_empty_code(self):
        code = DFSCode()
        assert code.vertex_count() == 0
        with pytest.raises(PatternError):
            code.rightmost_vertex()


class TestMinimumCode:
    def test_triangle_min_code(self, triangle_graph):
        code = minimum_dfs_code(triangle_graph)
        assert code.edges == ((0, 1, "a", "b"), (1, 2, "b", "c"), (2, 0, "c", "a"))

    def test_invariant_under_vertex_renaming(self):
        g1 = Graph.from_edges({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2)])
        g2 = Graph.from_edges({5: "c", 7: "b", 9: "a"}, [(5, 7), (7, 9)])
        assert minimum_dfs_code(g1) == minimum_dfs_code(g2)

    def test_distinguishes_path_from_star(self):
        path = Graph.from_edges({0: "a", 1: "a", 2: "a", 3: "a"},
                                [(0, 1), (1, 2), (2, 3)])
        star = Graph.from_edges({0: "a", 1: "a", 2: "a", 3: "a"},
                                [(0, 1), (0, 2), (0, 3)])
        assert minimum_dfs_code(path) != minimum_dfs_code(star)

    def test_disconnected_rejected(self):
        g = Graph.from_edges({0: "a", 1: "b", 2: "c"}, [(0, 1)])
        with pytest.raises(PatternError):
            minimum_dfs_code(g)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_isomorphism_invariance_random(self, seed):
        g = connected_random_graph(seed)
        order = sorted(g.vertices())
        rng = random.Random(seed + 1)
        shuffled = list(order)
        rng.shuffle(shuffled)
        mapping = dict(zip(order, shuffled))
        h = Graph()
        for v in order:
            h.add_vertex(mapping[v], g.label(v))
        for u, v in g.edges():
            h.add_edge(mapping[u], mapping[v])
        assert minimum_dfs_code(g) == minimum_dfs_code(h)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_minimum_code_is_minimal(self, seed):
        g = connected_random_graph(seed)
        assert is_minimal_code(minimum_dfs_code(g))


class TestIsMinimal:
    def test_single_edge_always_minimal(self):
        assert is_minimal_code(DFSCode([(0, 1, "a", "b")]))

    def test_non_minimal_detected(self):
        # Path a-b-c started from the wrong end (c first) is not minimal.
        bad = DFSCode([(0, 1, "c", "b"), (1, 2, "b", "a")])
        assert not is_minimal_code(bad)

    def test_minimal_path_code(self):
        good = DFSCode([(0, 1, "a", "b"), (1, 2, "b", "c")])
        assert is_minimal_code(good)
