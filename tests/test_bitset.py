"""Property tests for the bitset kernel's mask primitives.

Every mask-valued primitive must agree exactly with its set-valued
counterpart: neighbour masks with :meth:`Graph.neighbors`, popcount
and bit iteration with set cardinality and membership, core-pruning
masks with the set-based survivor sets, and the aligned database-wide
label space with the per-graph local bit spaces it is derived from.
"""

from __future__ import annotations

from bisect import bisect_left

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.closure import (
    fully_connected_old_labels,
    fully_connected_old_labels_aligned,
    fully_connected_old_labels_mask,
)
from repro.graphdb import Graph, GraphDatabase
from repro.graphdb.bitset import (
    build_label_space,
    iter_bits,
    lowest_bit,
    mask_from_bits,
    popcount,
)

from tests.conftest import make_random_database
from tests.strategies import graph_databases, labeled_graphs
from tests.test_kernel_differential import unique_label_database

bitsets = st.integers(min_value=0, max_value=(1 << 80) - 1)


class TestPrimitives:
    @given(mask=bitsets)
    def test_popcount_matches_bit_iteration(self, mask):
        bits = list(iter_bits(mask))
        assert popcount(mask) == len(bits)
        assert bits == sorted(set(bits))

    @given(bits=st.sets(st.integers(0, 80)))
    def test_mask_roundtrip(self, bits):
        mask = mask_from_bits(bits)
        assert set(iter_bits(mask)) == bits
        assert popcount(mask) == len(bits)
        for position in range(82):
            assert bool(mask & (1 << position)) == (position in bits)

    @given(mask=bitsets.filter(bool))
    def test_lowest_bit(self, mask):
        assert lowest_bit(mask) == min(iter_bits(mask))


class TestGraphMasks:
    @settings(deadline=None)
    @given(graph=labeled_graphs())
    def test_neighbor_mask_roundtrips_neighbors(self, graph):
        for vertex in graph.vertices():
            decoded = set(graph.vertices_from_mask(graph.neighbor_mask(vertex)))
            assert decoded == graph.neighbors(vertex)

    @settings(deadline=None)
    @given(graph=labeled_graphs())
    def test_label_masks_partition_vertices(self, graph):
        index = graph.bit_index()
        for label, mask in index.label_masks.items():
            assert set(index.vertices_of(mask)) == graph.vertices_with_label(label)
        assert sum(index.label_masks.values()) == index.all_mask

    @settings(deadline=None)
    @given(graph=labeled_graphs())
    def test_mask_below_is_prefix_union(self, graph):
        index = graph.bit_index()
        for probe in sorted(set(index.labels_by_bit)) + ["~beyond", ""]:
            expected = {
                v for v in graph.vertices() if graph.label(v) < probe
            }
            assert set(index.vertices_of(index.mask_below(probe))) == expected

    def test_mask_invalidation_on_mutation(self):
        graph = Graph()
        graph.add_vertex(0, "a")
        graph.add_vertex(1, "b")
        graph.add_edge(0, 1)
        assert graph.vertices_from_mask(graph.neighbor_mask(0)) == [1]
        graph.add_vertex(2, "c")
        graph.add_edge(0, 2)
        assert graph.vertices_from_mask(graph.neighbor_mask(0)) == [1, 2]
        graph.remove_vertex(1)
        assert graph.vertices_from_mask(graph.neighbor_mask(0)) == [2]


class TestCoreMasks:
    @pytest.mark.parametrize("seed", range(8))
    def test_usable_mask_matches_usable_set(self, seed):
        database = make_random_database(seed)
        for graph in database:
            index = graph.core_index()
            for size in range(1, index.max_clique_upper_bound() + 2):
                survivors = index.usable_at(size)
                assert set(graph.vertices_from_mask(index.usable_mask_at(size))) == set(
                    survivors
                )

    def test_core_index_cached_and_invalidated(self):
        graph = Graph()
        for vertex, label in enumerate("abc"):
            graph.add_vertex(vertex, label)
        graph.add_edge(0, 1)
        first = graph.core_index()
        assert graph.core_index() is first
        graph.add_edge(1, 2)
        second = graph.core_index()
        assert second is not first
        assert second.max_core == 1


class TestAlignedSpace:
    @pytest.mark.parametrize("seed", range(6))
    def test_views_agree_with_local_indices(self, seed):
        database = unique_label_database(seed)
        space = database.aligned_space()
        assert space is not None
        assert list(space.labels) == sorted(space.labels)
        for tid, graph in enumerate(database):
            view = space.views[tid]
            for vertex in graph.vertices():
                decoded = set(view.vertices_of(view.neighbor_masks[vertex]))
                assert decoded == graph.neighbors(vertex)
            assert set(view.vertices_of(view.present_mask)) == set(graph.vertices())
            # Bit ↔ label bijection: each vertex sits at its label's rank.
            for vertex in graph.vertices():
                assert view.bit_of_vertex[vertex] == space.bit_of[graph.label(vertex)]

    @pytest.mark.parametrize("seed", range(6))
    def test_mask_below_is_contiguous_rank_mask(self, seed):
        space = unique_label_database(seed).aligned_space()
        for probe in list(space.labels) + ["", "~beyond"]:
            rank = bisect_left(space.labels, probe)
            assert space.mask_below(probe) == (1 << rank) - 1

    @pytest.mark.parametrize("seed", range(6))
    def test_usable_mask_at_matches_core_index(self, seed):
        database = unique_label_database(seed)
        space = database.aligned_space()
        for tid, graph in enumerate(database):
            view = space.views[tid]
            core = graph.core_index()
            for size in range(1, core.max_clique_upper_bound() + 2):
                decoded = set(view.vertices_of(view.usable_mask_at(core, size)))
                expected = (
                    set(graph.vertices()) if size <= 1 else set(core.usable_at(size))
                )
                assert decoded == expected

    def test_space_rebuilt_after_mutation(self):
        database = unique_label_database(3)
        first = database.aligned_space()
        assert database.aligned_space() is first  # cached while fresh
        graph = database[0]
        new_vertex = max(graph.vertices()) + 1
        graph.add_vertex(new_vertex, "ZZZ")
        second = database.aligned_space()
        assert second is not first
        assert "ZZZ" in second.bit_of

    def test_duplicate_label_anywhere_disables_space(self):
        database = unique_label_database(4)
        graph = database[0]
        vertex = max(graph.vertices()) + 1
        existing_label = next(iter(graph.labels().values()))
        graph.add_vertex(vertex, existing_label)
        assert build_label_space(list(database)) is None
        assert database.aligned_space() is None

    @settings(deadline=None)
    @given(database=graph_databases())
    def test_build_label_space_iff_unique_labels(self, database):
        unique = all(g.bit_index().unique_labels for g in database) and len(database)
        space = build_label_space(list(database))
        assert (space is not None) == bool(unique)


class TestClosureVariantsAgree:
    """The three Lemma 4.4 per-embedding scans are interchangeable."""

    @pytest.mark.parametrize("seed", range(6))
    def test_local_mask_variant_matches_set_variant(self, seed):
        database = make_random_database(seed)
        for graph in database:
            adjacency = graph.adjacency_map()
            label_of = graph.label_map()
            candidates = {v for v in graph.vertices() if v % 2 == 0}
            for probe in sorted(graph.distinct_labels()) + ["~beyond"]:
                expected = fully_connected_old_labels(
                    candidates, adjacency, label_of, probe
                )
                mask = graph.mask_of(candidates)
                assert (
                    fully_connected_old_labels_mask(mask, graph, probe) == expected
                )

    @pytest.mark.parametrize("seed", range(6))
    def test_aligned_variant_matches_set_variant(self, seed):
        database = unique_label_database(seed)
        space = database.aligned_space()
        for tid, graph in enumerate(database):
            view = space.views[tid]
            adjacency = graph.adjacency_map()
            label_of = graph.label_map()
            candidates = {v for v in graph.vertices() if v % 2 == 0}
            mask = 0
            for vertex in candidates:
                mask |= 1 << view.bit_of_vertex[vertex]
            for probe in list(space.labels) + ["~beyond"]:
                expected = fully_connected_old_labels(
                    candidates, adjacency, label_of, probe
                )
                result = fully_connected_old_labels_aligned(mask, view, space, probe)
                decoded = {space.labels[i] for i in iter_bits(result)}
                assert decoded == expected


class TestSlabPrimitives:
    """The uint64 slab primitives must agree with the int-mask ones.

    The slab kernel is a re-encoding of the bitset kernel's masks into
    little-endian uint64 word arrays; these properties pin the encoding
    (round-trips), the counts (vectorised popcount vs ``int.bit_count``
    on both the ``numpy.bitwise_count`` and byte-LUT paths), and the
    bit iteration order.
    """

    @given(mask=bitsets, extra_words=st.integers(0, 2))
    def test_words_round_trip(self, mask, extra_words):
        from repro.graphdb import slab

        n_words = max(1, -(-mask.bit_length() // 64)) + extra_words
        words = slab.words_from_int(mask, n_words)
        assert words.shape == (n_words,)
        assert slab.int_from_words(words) == mask

    @given(masks=st.lists(bitsets, min_size=1, max_size=8))
    def test_popcount_rows_matches_bit_count(self, masks):
        import numpy as np

        from repro.graphdb import slab

        n_words = max(1, max(-(-m.bit_length() // 64) for m in masks))
        rows = np.stack([slab.words_from_int(m, n_words) for m in masks])
        expected = [m.bit_count() for m in masks]
        assert slab.popcount_rows(rows).tolist() == expected
        # Both popcount implementations must agree: the numpy >= 2.0
        # bitwise_count fast path and the byte-LUT fallback.
        per_word_fast = slab.popcount_words(rows)
        saved = slab._HAS_BITWISE_COUNT
        try:
            slab._HAS_BITWISE_COUNT = False
            per_word_lut = slab.popcount_words(rows)
        finally:
            slab._HAS_BITWISE_COUNT = saved
        assert per_word_fast.tolist() == per_word_lut.tolist()

    @given(mask=bitsets)
    def test_iter_word_bits_matches_iter_bits(self, mask):
        from repro.graphdb import slab

        n_words = max(1, -(-mask.bit_length() // 64))
        words = slab.words_from_int(mask, n_words)
        assert list(slab.iter_word_bits(words)) == list(iter_bits(mask))
