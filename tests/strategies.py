"""Shared hypothesis strategies for graph databases.

Unlike the seed-based ``make_random_database`` helper, these strategies
let hypothesis shrink counter-examples structurally: fewer graphs,
fewer vertices, fewer edges, simpler labels.
"""

from __future__ import annotations

from typing import List, Tuple

from hypothesis import strategies as st

from repro.graphdb import Graph, GraphDatabase

#: Labels include multi-char and unicode to exercise string ordering.
label_st = st.sampled_from(["a", "b", "c", "aa", "Z", "µ", "C1"])


@st.composite
def labeled_graphs(draw, max_vertices: int = 7) -> Graph:
    """One labeled undirected simple graph with ids 0..n-1."""
    n = draw(st.integers(0, max_vertices))
    graph = Graph()
    for vertex in range(n):
        graph.add_vertex(vertex, draw(label_st))
    if n >= 2:
        possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
        chosen = draw(
            st.lists(st.sampled_from(possible), unique=True, max_size=len(possible))
        )
        for u, v in chosen:
            graph.add_edge(u, v)
    return graph


@st.composite
def graph_databases(
    draw, min_graphs: int = 1, max_graphs: int = 4, max_vertices: int = 7
) -> GraphDatabase:
    """A database of 1..max_graphs arbitrary labeled graphs."""
    count = draw(st.integers(min_graphs, max_graphs))
    database = GraphDatabase(name="hypothesis")
    for _ in range(count):
        database.add(draw(labeled_graphs(max_vertices=max_vertices)))
    return database
