"""Tests for database transformations."""

import pytest

from repro.core import mine_closed_cliques
from repro.exceptions import DatabaseError
from repro.graphdb import (
    GraphDatabase,
    add_edge_noise,
    drop_labels,
    filter_transactions,
    label_projection_map,
    merge_databases,
    paper_example_database,
    relabel_database,
    restrict_labels,
)


class TestMerge:
    def test_merge_concatenates(self, paper_db):
        merged = merge_databases([paper_db, paper_db])
        assert len(merged) == 4
        assert merged[2].labels() == paper_db[0].labels()

    def test_merge_doubles_supports(self, paper_db):
        merged = merge_databases([paper_db, paper_db])
        result = mine_closed_cliques(merged, 4)
        assert sorted(p.key() for p in result) == ["abcd:4", "bde:4"]

    def test_merge_copies(self, paper_db):
        merged = merge_databases([paper_db])
        merged[0].remove_vertex(1)
        assert paper_db[0].has_vertex(1)


class TestRelabel:
    def test_identity_mapping(self, paper_db):
        same = relabel_database(paper_db, {})
        assert same.distinct_labels() == paper_db.distinct_labels()

    def test_rename(self, paper_db):
        renamed = relabel_database(paper_db, {"a": "alpha"})
        assert "alpha" in renamed.distinct_labels()
        assert "a" not in renamed.distinct_labels()

    def test_merging_labels_coarsens_patterns(self, paper_db):
        # Map d -> b: the abcd clique becomes abbc.
        coarse = relabel_database(paper_db, {"d": "b"})
        result = mine_closed_cliques(coarse, 2)
        keys = {p.key() for p in result}
        assert "abbc:2" in keys

    def test_strict_requires_total_mapping(self, paper_db):
        with pytest.raises(DatabaseError):
            relabel_database(paper_db, {"a": "x"}, strict=True)
        total = label_projection_map(paper_db, {"a": "x"})
        relabel_database(paper_db, total, strict=True)


class TestLabelRestriction:
    def test_restrict_keeps_only_whitelist(self, paper_db):
        small = restrict_labels(paper_db, ["b", "d", "e"])
        assert small.distinct_labels() == {"b", "d", "e"}
        result = mine_closed_cliques(small, 2)
        assert "bde:2" in {p.key() for p in result}

    def test_drop_labels_complement(self, paper_db):
        dropped = drop_labels(paper_db, ["a", "c"])
        assert dropped.distinct_labels() == {"b", "d", "e"}

    def test_restriction_preserves_transaction_count(self, paper_db):
        small = restrict_labels(paper_db, ["zz"])
        assert len(small) == 2
        assert all(g.vertex_count == 0 for g in small)


class TestFilterTransactions:
    def test_predicate_filtering(self, paper_db):
        only_big = filter_transactions(paper_db, lambda g: g.edge_count > 10)
        assert len(only_big) == 1

    def test_empty_result_allowed(self, paper_db):
        none = filter_transactions(paper_db, lambda g: False)
        assert len(none) == 0


class TestEdgeNoise:
    def test_zero_noise_is_identity(self, paper_db):
        same = add_edge_noise(paper_db, 0.0, 0.0, seed=1)
        for original, copy in zip(paper_db, same):
            assert original == copy

    def test_full_removal(self, paper_db):
        empty = add_edge_noise(paper_db, remove_probability=1.0, seed=1)
        assert empty.total_edges() == 0

    def test_full_addition(self, paper_db):
        complete = add_edge_noise(paper_db, add_probability=1.0, seed=1)
        for graph in complete:
            n = graph.vertex_count
            assert graph.edge_count == n * (n - 1) // 2

    def test_determinism(self, paper_db):
        a = add_edge_noise(paper_db, 0.3, 0.3, seed=9)
        b = add_edge_noise(paper_db, 0.3, 0.3, seed=9)
        for g1, g2 in zip(a, b):
            assert g1 == g2

    def test_invalid_probability(self, paper_db):
        with pytest.raises(DatabaseError):
            add_edge_noise(paper_db, add_probability=1.5)

    def test_noise_degrades_recovery(self):
        """Robustness loop: with enough removal noise the planted
        pattern stops being exactly recoverable."""
        from repro.analysis import evaluate_recovery
        from repro.graphdb import labelled_clique_database

        db = labelled_clique_database([(tuple("PQRSTU"), 4)], n_graphs=4)
        clean = evaluate_recovery(
            mine_closed_cliques(db, 4), [(tuple("PQRSTU"), 4)]
        )
        assert clean.exact_recall == 1.0
        noisy_db = add_edge_noise(db, remove_probability=0.5, seed=3)
        noisy = evaluate_recovery(
            mine_closed_cliques(noisy_db, 4), [(tuple("PQRSTU"), 4)]
        )
        assert noisy.mean_coverage < 1.0
