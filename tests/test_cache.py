"""Tests for the cross-run mining cache (repro.core.cache).

The load-bearing claims, in order:

* **Threshold independence** (Lemma 4.3): mining at support ``s`` and
  filtering to ``support >= t`` equals mining at ``t``, for every
  ``t >= s``, for the closed and the all-frequent task — property
  tested against fresh mines and the brute-force oracle.  This is the
  exactness argument of the sweep tier.
* **Cached mining is invisible**: cold-through-cache, warm, and
  persisted-reload runs return pattern sets and deterministic
  statistics snapshots byte-identical to the uncached serial miner,
  and warm sessions replay event streams byte-identical to cold ones —
  serially and through the work-stealing executor (including forced
  root splits).
* **Invalidation is sound**: database changes miss via the
  fingerprint, appends migrate exactly the untouched roots
  (``rekey_database``), threshold changes invalidate nothing.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import bruteforce_closed_cliques, bruteforce_frequent_cliques
from repro.core.api import MiningRequest
from repro.core import (
    CachedRoot,
    ClanMiner,
    MinerConfig,
    MinerStatistics,
    MiningCache,
    MiningExecutor,
    MiningSession,
    RingBufferSink,
    mine,
    mine_closed_cliques,
    mine_frequent_cliques,
    mine_with_cache,
    sweep,
)
from repro.exceptions import FormatError, MiningError, PatternError
from repro.graphdb.generators import random_database
from repro.io.runlog import (
    database_fingerprint,
    load_or_create_cache,
    open_cache,
    save_cache,
)
from tests.conftest import make_random_database


def rq(min_sup, **options):
    """The request the legacy kwargs path would have built."""
    return MiningRequest.from_options(min_sup, **options)

SEEDS = st.integers(0, 100_000)

#: Shared across the equivalence tests; dense enough that roots split.
dense_db = random_database(12, 14, 0.45, 6, seed=3)


def keys(result):
    return [p.key() for p in result]


def fp(db):
    return database_fingerprint(db)


# ----------------------------------------------------------------------
# Satellite: the MinerConfig digest the cache keys on
# ----------------------------------------------------------------------
class TestConfigDigest:
    def test_equal_configs_share_a_digest(self):
        assert MinerConfig().digest() == MinerConfig.paper_defaults().digest()

    def test_every_field_feeds_the_digest(self):
        base = MinerConfig()
        variants = [
            MinerConfig.all_frequent(),
            MinerConfig().without("low_degree"),
            MinerConfig(min_size=2),
            MinerConfig(max_size=4),
            MinerConfig().with_kernel("set"),
            MinerConfig(embedding_strategy="rescan"),
            MinerConfig(collect_witnesses=False),
            MinerConfig(max_embeddings=100),
        ]
        digests = [base.digest()] + [v.digest() for v in variants]
        assert len(set(digests)) == len(digests)

    def test_digest_survives_serialisation(self):
        config = MinerConfig(min_size=2, kernel="set")
        assert MinerConfig.from_dict(config.to_dict()).digest() == config.digest()


# ----------------------------------------------------------------------
# Threshold independence (the sweep tier's exactness; satellite 3)
# ----------------------------------------------------------------------
class TestThresholdIndependence:
    @settings(max_examples=40, deadline=None)
    @given(seed=SEEDS, low=st.integers(1, 3), delta=st.integers(0, 2))
    def test_closed_filter_equals_remine(self, seed, low, delta):
        db = make_random_database(seed)
        high = min(low + delta, len(db))
        filtered = mine_closed_cliques(db, low).filter_support(high)
        assert keys(filtered) == keys(mine_closed_cliques(db, high))
        assert sorted(keys(filtered)) == sorted(
            keys(bruteforce_closed_cliques(db, high))
        )

    @settings(max_examples=40, deadline=None)
    @given(seed=SEEDS, low=st.integers(1, 3), delta=st.integers(0, 2))
    def test_frequent_filter_equals_remine(self, seed, low, delta):
        db = make_random_database(seed)
        high = min(low + delta, len(db))
        filtered = mine_frequent_cliques(db, low).filter_support(high)
        assert keys(filtered) == keys(mine_frequent_cliques(db, high))
        assert sorted(keys(filtered)) == sorted(
            keys(bruteforce_frequent_cliques(db, high))
        )

    def test_filtering_below_the_mined_threshold_is_rejected(self):
        result = mine_closed_cliques(dense_db, 3)
        with pytest.raises(PatternError):
            result.filter_support(2)

    def test_filter_preserves_witnesses_and_order(self):
        full = mine_closed_cliques(dense_db, 2)
        filtered = full.filter_support(3)
        for pattern in filtered:
            assert full.get(pattern.form) is pattern  # shared, not copied


# ----------------------------------------------------------------------
# MiningCache mechanics
# ----------------------------------------------------------------------
def _entry(root="a", abs_sup=2, patterns=(), statistics=None, **kw):
    return CachedRoot(
        root=root, abs_sup=abs_sup, patterns=tuple(patterns), statistics=statistics, **kw
    )


class TestMiningCache:
    def test_exact_hit_and_miss(self):
        cache = MiningCache()
        cache.store("fp", "cfg", _entry())
        assert cache.lookup("fp", "cfg", 2, "a") is not None
        assert cache.lookup("fp", "cfg", 2, "b") is None
        assert cache.lookup("other", "cfg", 2, "a") is None
        assert cache.lookup("fp", "other", 2, "a") is None
        assert (cache.hits, cache.misses) == (1, 3)

    def test_need_statistics_excludes_patterns_only_entries(self):
        cache = MiningCache()
        cache.store("fp", "cfg", _entry(statistics=None))
        assert cache.lookup("fp", "cfg", 2, "a", need_statistics=True) is None
        assert cache.lookup("fp", "cfg", 2, "a", need_statistics=False) is not None

    def test_need_events_requires_matching_sample_every(self):
        cache = MiningCache()
        cache.store(
            "fp", "cfg", _entry(statistics={}, events=(), events_sample_every=3)
        )
        assert (
            cache.lookup("fp", "cfg", 2, "a", need_events=True, sample_every=3)
            is not None
        )
        assert (
            cache.lookup("fp", "cfg", 2, "a", need_events=True, sample_every=1) is None
        )

    def test_sweep_tier_filters_the_closest_lower_threshold(self):
        db = dense_db
        part = ClanMiner(db).prepare().mine(1, root_labels=("a",))
        cache = MiningCache()
        cache.store(
            fp(db), "cfg", _entry(abs_sup=1, patterns=tuple(part), statistics={})
        )
        derived = cache.lookup(fp(db), "cfg", 3, "a")
        assert derived is not None
        assert derived.derived_from == 1
        assert derived.statistics is None
        expected = [p for p in part if p.support >= 3]
        assert list(derived.patterns) == expected
        # The derivation is memoized as an entry of its own.
        assert cache.sweep_hits == 1
        again = cache.lookup(fp(db), "cfg", 3, "a")
        assert again is not None and cache.sweep_hits == 1

    def test_sweep_tier_never_uses_higher_thresholds(self):
        cache = MiningCache()
        cache.store("fp", "cfg", _entry(abs_sup=3))
        assert cache.lookup("fp", "cfg", 2, "a") is None

    def test_peek_does_not_touch_counters(self):
        cache = MiningCache()
        cache.store("fp", "cfg", _entry())
        cache.lookup("fp", "cfg", 2, "a", record=False)
        cache.lookup("fp", "cfg", 2, "b", record=False)
        assert (cache.hits, cache.misses) == (0, 0)

    def test_invalidate_roots_and_database(self):
        cache = MiningCache()
        for root in "ab":
            cache.store("fp1", "cfg", _entry(root=root))
            cache.store("fp2", "cfg", _entry(root=root))
        assert cache.invalidate_roots("fp1", ["a"]) == 1
        assert cache.lookup("fp1", "cfg", 2, "a", record=False) is None
        assert cache.lookup("fp1", "cfg", 2, "b", record=False) is not None
        assert cache.invalidate_database("fp2") == 2
        assert len(cache) == 1

    def test_rekey_database_moves_and_drops(self):
        cache = MiningCache()
        for root in "abc":
            cache.store("old", "cfg", _entry(root=root))
        cache.store("old", "cfg", _entry(root="a", abs_sup=5))
        moved, dropped = cache.rekey_database("old", "new", drop_roots=["a"])
        assert (moved, dropped) == (2, 2)  # 'a' dropped at both thresholds
        assert cache.lookup("new", "cfg", 2, "b", record=False) is not None
        assert cache.lookup("new", "cfg", 2, "a", record=False) is None
        assert cache.lookup("old", "cfg", 2, "b", record=False) is None

    def test_roots_cached_lists_exact_entries_in_order(self):
        cache = MiningCache()
        for root in "cab":
            cache.store("fp", "cfg", _entry(root=root))
        cache.store("fp", "cfg", _entry(root="z", abs_sup=9))
        assert cache.roots_cached("fp", "cfg", 2) == ("a", "b", "c")

    def test_clear_and_hit_rate(self):
        cache = MiningCache()
        assert cache.hit_rate == 0.0
        cache.store("fp", "cfg", _entry())
        cache.lookup("fp", "cfg", 2, "a")
        cache.lookup("fp", "cfg", 2, "b")
        assert cache.hit_rate == 0.5
        cache.clear()
        assert len(cache) == 0
        assert cache.lookup("fp", "cfg", 2, "a") is None


class TestPersistence:
    def test_round_trip_preserves_entries_exactly(self, tmp_path):
        cache = MiningCache()
        mine_with_cache(dense_db, 2, cache=cache)
        # Add an events-bearing entry via a cached session too.
        ring = RingBufferSink(capacity=None)
        MiningSession(dense_db, 3, sinks=(ring,), sample_every=2, cache=cache).run()
        target = save_cache(cache, tmp_path / "cache.json")
        reloaded = open_cache(target)
        assert reloaded.to_dict() == cache.to_dict()

    def test_directory_paths_use_the_well_known_filename(self, tmp_path):
        cache = MiningCache()
        mine_with_cache(dense_db, 3, cache=cache)
        target = save_cache(cache, tmp_path)
        assert target.name == "clan-cache.json"
        assert len(open_cache(tmp_path)) == len(cache)

    def test_load_or_create(self, tmp_path):
        fresh = load_or_create_cache(tmp_path)
        assert len(fresh) == 0
        mine_with_cache(dense_db, 3, cache=fresh)
        save_cache(fresh, tmp_path)
        assert len(load_or_create_cache(tmp_path)) == len(fresh)

    def test_garbage_raises_format_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(FormatError):
            open_cache(bad)


# ----------------------------------------------------------------------
# mine_with_cache: invisible caching
# ----------------------------------------------------------------------
class TestMineWithCache:
    def test_cold_equals_uncached_serial(self):
        cache = MiningCache()
        cold = mine_with_cache(dense_db, 2, cache=cache)
        base = ClanMiner(dense_db).mine(2)
        assert keys(cold) == keys(base)
        assert cold.statistics.snapshot() == base.statistics.snapshot()
        assert cold.statistics.roots_from_cache == 0

    def test_warm_replays_statistics_exactly(self):
        cache = MiningCache()
        mine_with_cache(dense_db, 2, cache=cache)
        warm = mine_with_cache(dense_db, 2, cache=cache)
        base = ClanMiner(dense_db).mine(2)
        assert keys(warm) == keys(base)
        assert warm.statistics.snapshot() == base.statistics.snapshot()
        assert warm.statistics.roots_from_cache == len(
            dense_db.frequent_labels(2)
        )
        assert warm.statistics.cache_misses == 0

    def test_partial_overlap_remines_only_missing_roots(self):
        cache = MiningCache()
        mine_with_cache(dense_db, 2, cache=cache)
        digest = MinerConfig().digest()
        dropped = cache.invalidate_roots(fp(dense_db), ["a", "b"])
        assert dropped >= 2
        result = mine_with_cache(dense_db, 2, cache=cache)
        assert keys(result) == keys(ClanMiner(dense_db).mine(2))
        assert result.statistics.cache_misses == 2
        # The re-mined roots are stored back.
        assert set(cache.roots_cached(fp(dense_db), digest, 2)) >= {"a", "b"}

    def test_sweep_tier_answers_higher_thresholds(self):
        cache = MiningCache()
        mine_with_cache(dense_db, 2, cache=cache)
        higher = mine_with_cache(dense_db, 4, cache=cache)
        assert keys(higher) == keys(ClanMiner(dense_db).mine(4))
        assert higher.statistics.cache_misses == 0
        assert cache.sweep_hits > 0

    def test_parallel_cold_and_warm_match_serial(self):
        base = ClanMiner(dense_db).mine(2)
        cache = MiningCache()
        cold = mine_with_cache(dense_db, 2, cache=cache, processes=2)
        warm = mine_with_cache(dense_db, 2, cache=cache, processes=2)
        serial_warm = mine_with_cache(dense_db, 2, cache=cache)
        for result in (cold, warm, serial_warm):
            assert keys(result) == keys(base)
            assert result.statistics.snapshot() == base.statistics.snapshot()
        assert warm.statistics.roots_from_cache == len(dense_db.frequent_labels(2))
        assert warm.statistics.cache_misses == 0
        assert serial_warm.statistics.cache_misses == 0

    def test_different_config_is_a_clean_miss(self):
        cache = MiningCache()
        mine_with_cache(dense_db, 2, cache=cache)
        other = mine_with_cache(
            dense_db, 2, cache=cache, config=MinerConfig(kernel="set")
        )
        assert other.statistics.roots_from_cache == 0
        assert keys(other) == keys(ClanMiner(dense_db).mine(2))

    def test_database_change_is_a_clean_miss(self):
        cache = MiningCache()
        mine_with_cache(dense_db, 2, cache=cache)
        other_db = random_database(12, 14, 0.45, 6, seed=4)
        result = mine_with_cache(other_db, 2, cache=cache)
        assert result.statistics.roots_from_cache == 0
        assert keys(result) == keys(ClanMiner(other_db).mine(2))

    def test_requires_structural_redundancy_pruning(self):
        config = MinerConfig().without("structural_redundancy")
        with pytest.raises(MiningError):
            mine_with_cache(dense_db, 2, cache=MiningCache(), config=config)

    def test_scheduler_requires_processes(self):
        with pytest.raises(MiningError):
            mine_with_cache(dense_db, 2, cache=MiningCache(), scheduler="stealing")


# ----------------------------------------------------------------------
# sweep(): the multi-threshold entry point
# ----------------------------------------------------------------------
class TestSweep:
    def test_every_threshold_matches_a_fresh_mine(self):
        results = sweep(dense_db, [4, 2, 3])
        for support, result in results.items():
            assert keys(result) == keys(ClanMiner(dense_db).mine(support)), support
        assert list(results) == [4, 2, 3]  # input order preserved

    def test_only_the_lowest_threshold_mines(self):
        cache = MiningCache()
        results = sweep(dense_db, [4, 2, 3], cache=cache)
        n_roots = len(dense_db.frequent_labels(2))
        # The lowest threshold IS the warming mine; the rest derive.
        assert results[2].statistics.cache_misses == n_roots
        assert results[4].statistics.cache_misses == 0
        assert results[3].statistics.cache_misses == 0
        assert cache.misses == n_roots  # one cold pass, ever

    def test_fractional_specs_resolve_like_mine(self):
        results = sweep(dense_db, ["75%", 1.0])
        assert keys(results["75%"]) == keys(mine_closed_cliques(dense_db, "75%"))
        assert keys(results[1.0]) == keys(mine_closed_cliques(dense_db, 1.0))

    def test_frequent_task(self):
        results = sweep(dense_db, [3, 2], task="frequent")
        for support, result in results.items():
            assert keys(result) == keys(mine_frequent_cliques(dense_db, support))

    def test_bad_inputs(self):
        with pytest.raises(MiningError):
            sweep(dense_db, [])
        with pytest.raises(MiningError):
            sweep(dense_db, [2, 2])
        with pytest.raises(MiningError):
            sweep(dense_db, [2], task="maximal")

    @settings(max_examples=15, deadline=None)
    @given(seed=SEEDS)
    def test_sweep_equals_fresh_mines_on_random_databases(self, seed):
        db = make_random_database(seed)
        supports = list(range(1, len(db) + 1))
        results = sweep(db, supports)
        for support in supports:
            assert keys(results[support]) == keys(mine_closed_cliques(db, support))


# ----------------------------------------------------------------------
# Sessions and the executor: byte-identity through the cache
# ----------------------------------------------------------------------
def _run_session(cache, **kw):
    ring = RingBufferSink(capacity=None)
    session = MiningSession(dense_db, 2, sinks=(ring,), sample_every=3, cache=cache, **kw)
    result = session.run()
    return result, list(ring.events)


class TestSessionCache:
    def test_serial_cold_warm_streams_are_byte_identical(self):
        cache = MiningCache()
        r0, e0 = _run_session(None)
        r1, e1 = _run_session(cache)
        r2, e2 = _run_session(cache)
        assert e0 == e1 == e2
        assert keys(r0) == keys(r1) == keys(r2)
        assert (
            r0.statistics.snapshot()
            == r1.statistics.snapshot()
            == r2.statistics.snapshot()
        )
        assert r2.statistics.roots_from_cache == len(r2.completed_roots or ())

    def test_parallel_warm_stream_matches_serial_cold(self):
        cache = MiningCache()
        _, e0 = _run_session(None)
        _run_session(cache)  # warm serially
        r, e = _run_session(cache, processes=2, scheduler="stealing")
        assert e == e0
        assert r.statistics.roots_from_cache == len(r.completed_roots or ())

    def test_parallel_cold_then_warm_with_forced_splits(self):
        _, e0 = _run_session(None)
        cache = MiningCache()
        r1, e1 = _run_session(
            cache, processes=2, scheduler="stealing", split_factor=0.0
        )
        r2, e2 = _run_session(
            cache, processes=2, scheduler="stealing", split_factor=0.0
        )
        assert e1 == e0 and e2 == e0
        assert r2.statistics.roots_from_cache == len(r2.completed_roots or ())

    def test_persisted_reload_stream_is_byte_identical(self, tmp_path):
        cache = MiningCache()
        _, e0 = _run_session(None)
        _run_session(cache)
        save_cache(cache, tmp_path)
        reloaded = open_cache(tmp_path)
        r, e = _run_session(reloaded)
        assert e == e0
        assert r.statistics.roots_from_cache == len(r.completed_roots or ())

    def test_mismatched_sample_every_remines(self):
        cache = MiningCache()
        _run_session(cache)  # recorded at sample_every=3
        ring = RingBufferSink(capacity=None)
        session = MiningSession(
            dense_db, 2, sinks=(ring,), sample_every=1, cache=cache
        )
        result = session.run()
        assert result.statistics.roots_from_cache == 0
        # And the re-mine upgraded the entries to sample_every=1.
        ring2 = RingBufferSink(capacity=None)
        session2 = MiningSession(
            dense_db, 2, sinks=(ring2,), sample_every=1, cache=cache
        )
        session2.run()
        assert list(ring2.events) == list(ring.events)
        assert session2.result.statistics.roots_from_cache > 0


class TestExecutorCache:
    def test_mine_cold_and_warm_match_serial(self):
        base = ClanMiner(dense_db).mine(2)
        cache = MiningCache()
        with MiningExecutor(dense_db, processes=2, cache=cache) as executor:
            cold = executor.mine(2)
            warm = executor.mine(2)
        for result in (cold, warm):
            assert keys(result) == keys(base)
            assert result.statistics.snapshot() == base.statistics.snapshot()
        assert cold.statistics.roots_from_cache == 0
        assert warm.statistics.roots_from_cache == len(
            dense_db.frequent_labels(2)
        )
        assert executor.last_report.roots_from_cache == warm.statistics.roots_from_cache

    def test_iter_roots_skips_cached_roots_entirely(self):
        cache = MiningCache()
        roots = tuple(dense_db.frequent_labels(2))
        with MiningExecutor(dense_db, processes=2, cache=cache) as executor:
            list(executor.iter_roots(2, roots))
            assert executor.last_report.tasks >= len(roots)
            list(executor.iter_roots(2, roots))
            # Warm run: no tasks were submitted to the pool at all.
            assert executor.last_report.tasks == 0
            assert executor.last_report.roots_from_cache == len(roots)


# ----------------------------------------------------------------------
# repro.mine integration
# ----------------------------------------------------------------------
class TestMineFacade:
    def test_cache_keyword_round_trips(self):
        cache = MiningCache()
        cold = mine(dense_db, 2, cache=cache)
        warm = mine(dense_db, 2, cache=cache)
        base = mine(dense_db, 2)
        assert keys(cold) == keys(base) == keys(warm)
        assert warm.statistics.roots_from_cache > 0

    def test_cache_with_parallel_and_session_paths(self):
        cache = MiningCache()
        parallel = mine(dense_db, rq(2, processes=2), cache=cache)
        ring = RingBufferSink(capacity=None)
        session = mine(dense_db, 2, cache=cache, sinks=(ring,))
        assert keys(parallel) == keys(session)

    def test_cache_serves_maximal_topk_and_quasi(self):
        # Exact-replay reuse is task-generic across every engine task.
        for task, extra in (
            ("maximal", {}),
            ("topk", {"k": 3}),
            ("quasi", {"gamma": 0.8, "max_size": 4}),
        ):
            cache = MiningCache()
            cold = mine(dense_db, rq(2, task=task, **extra), cache=cache)
            warm = mine(dense_db, rq(2, task=task, **extra), cache=cache)
            base = mine(dense_db, rq(2, task=task, **extra))
            assert keys(cold) == keys(warm) == keys(base)
            assert warm.statistics.roots_from_cache > 0

    def test_cache_keys_are_task_scoped(self):
        # One cache serving several tasks never cross-contaminates.
        cache = MiningCache()
        closed = mine(dense_db, 2, cache=cache)
        maximal = mine(dense_db, rq(2, task="maximal"), cache=cache)
        topk = mine(dense_db, rq(2, task="topk", k=3), cache=cache)
        assert keys(closed) == keys(mine(dense_db, 2))
        assert keys(maximal) == keys(mine(dense_db, rq(2, task="maximal")))
        assert keys(topk) == keys(mine(dense_db, rq(2, task="topk", k=3)))
        # Different k = different key space.
        topk1 = mine(dense_db, rq(2, task="topk", k=1), cache=cache)
        assert keys(topk1) == keys(mine(dense_db, rq(2, task="topk", k=1)))

    def test_cache_keys_are_gamma_scoped(self):
        # Two densities share a cache without cross-contaminating: the
        # engine digest folds gamma in, like k for top-k.
        cache = MiningCache()
        loose = mine(dense_db, rq(2, task="quasi", gamma=0.6, max_size=4), cache=cache)
        tight = mine(dense_db, rq(2, task="quasi", gamma=1.0, max_size=4), cache=cache)
        assert keys(loose) == keys(
            mine(dense_db, rq(2, task="quasi", gamma=0.6, max_size=4))
        )
        assert keys(tight) == keys(
            mine(dense_db, rq(2, task="quasi", gamma=1.0, max_size=4))
        )

    def test_sweep_tier_never_serves_maximal_or_topk(self):
        # Warm the cache at a LOWER threshold; a closed run at the
        # higher threshold may sweep-derive, maximal/topk must not.
        cache = MiningCache()
        mine(dense_db, rq(2, task="maximal"), cache=cache)
        before = cache.sweep_hits
        again = mine(dense_db, rq(3, task="maximal"), cache=cache)
        assert cache.sweep_hits == before  # mined fresh, not filtered
        assert keys(again) == keys(mine(dense_db, rq(3, task="maximal")))
        cache2 = MiningCache()
        mine(dense_db, rq(2, task="topk", k=3), cache=cache2)
        mine(dense_db, rq(3, task="topk", k=3), cache=cache2)
        assert cache2.sweep_hits == 0
        cache3 = MiningCache()
        mine(dense_db, rq(2, task="quasi", gamma=0.8, max_size=4), cache=cache3)
        mine(dense_db, rq(3, task="quasi", gamma=0.8, max_size=4), cache=cache3)
        assert cache3.sweep_hits == 0

    def test_cache_rejected_with_root_labels(self):
        with pytest.raises(MiningError):
            mine(dense_db, 2, cache=MiningCache(), root_labels=("a",))


# ----------------------------------------------------------------------
# Statistics plumbing
# ----------------------------------------------------------------------
class TestStatisticsPlumbing:
    def test_cache_counters_stay_out_of_snapshots(self):
        stats = MinerStatistics(roots_from_cache=5, cache_hits=5, cache_misses=2)
        snapshot = stats.snapshot()
        assert "roots_from_cache" not in snapshot
        assert "cache_hits" not in snapshot
        assert "cache_misses" not in snapshot
        assert "roots_from_cache" not in repr(stats)

    def test_merge_sums_cache_counters(self):
        a = MinerStatistics(roots_from_cache=1, cache_hits=2, cache_misses=3)
        b = MinerStatistics(roots_from_cache=4, cache_hits=5, cache_misses=6)
        a.merge(b)
        assert (a.roots_from_cache, a.cache_hits, a.cache_misses) == (5, 7, 9)

    def test_from_snapshot_round_trips_deterministic_counters(self):
        stats = ClanMiner(dense_db).mine(2).statistics
        rebuilt = MinerStatistics.from_snapshot(stats.snapshot())
        assert rebuilt.snapshot() == stats.snapshot()
        assert rebuilt.cpu_seconds == 0.0


# ----------------------------------------------------------------------
# CLI: clan sweep / clan mine --cache
# ----------------------------------------------------------------------
class TestCli:
    @pytest.fixture()
    def db_file(self, tmp_path, paper_db):
        from repro.io import gspan_format

        path = tmp_path / "db.tve"
        gspan_format.save_database(paper_db, path)
        return str(path)

    def test_sweep_command(self, db_file, tmp_path, capsys):
        from repro.cli import main

        cache_dir = str(tmp_path / "cache")
        assert main(["sweep", db_file, "--min-sups", "2,1", "--cache", cache_dir]) == 0
        first = capsys.readouterr().out
        assert "min_sup" in first and "patterns" in first
        assert (tmp_path / "cache" / "clan-cache.json").exists()
        # Second run warms from disk: zero misses reported.
        assert main(["sweep", db_file, "--min-sups", "2,1", "--cache", cache_dir]) == 0
        err = capsys.readouterr().err
        assert "0 misses" in err

    def test_sweep_output_dir(self, db_file, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "patterns"
        assert main(
            ["sweep", db_file, "--min-sups", "2", "--output-dir", str(out)]
        ) == 0
        capsys.readouterr()
        assert (out / "patterns-2.json").exists()

    def test_mine_cache_flag(self, db_file, tmp_path, capsys):
        from repro.cli import main

        cache_dir = str(tmp_path / "cache")
        assert main(["mine", db_file, "--min-sup", "2", "--cache", cache_dir]) == 0
        cold = capsys.readouterr()
        assert main(["mine", db_file, "--min-sup", "2", "--cache", cache_dir]) == 0
        warm = capsys.readouterr()
        assert cold.out == warm.out
        assert "0 misses" in warm.err

    def test_mine_cache_with_maximal(self, db_file, tmp_path, capsys):
        from repro.cli import main

        cache_dir = str(tmp_path / "cache")
        args = ["mine", db_file, "--maximal", "--cache", cache_dir]
        assert main(args) == 0
        cold = capsys.readouterr()
        assert main(args) == 0
        warm = capsys.readouterr()
        assert cold.out == warm.out
        assert "0 misses" in warm.err
