"""End-to-end tests of the command-line interface."""

import pytest

from repro.cli import _parse_min_sup, build_parser, main
from repro.graphdb import paper_example_database
from repro.io import gspan_format


@pytest.fixture
def example_file(tmp_path):
    path = tmp_path / "example.tve"
    gspan_format.save_database(paper_example_database(), path)
    return str(path)


class TestParsing:
    def test_parse_min_sup_variants(self):
        assert _parse_min_sup("2") == 2
        assert isinstance(_parse_min_sup("2"), int)
        assert _parse_min_sup("0.85") == pytest.approx(0.85)
        assert _parse_min_sup("85%") == pytest.approx(0.85)
        assert _parse_min_sup("100%") == pytest.approx(1.0)

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMine:
    def test_mine_prints_closed_patterns(self, example_file, capsys):
        assert main(["mine", example_file, "--min-sup", "2"]) == 0
        out = capsys.readouterr().out
        assert "abcd:2" in out
        assert "bde:2" in out

    def test_mine_all_frequent(self, example_file, capsys):
        assert main(["mine", example_file, "--min-sup", "2", "--all-frequent"]) == 0
        out = capsys.readouterr().out
        assert out.count(":2") == 19

    def test_mine_percentage_support(self, example_file, capsys):
        assert main(["mine", example_file, "--min-sup", "100%"]) == 0
        assert "abcd:2" in capsys.readouterr().out

    def test_mine_min_size(self, example_file, capsys):
        assert main(["mine", example_file, "--min-sup", "2", "--min-size", "4"]) == 0
        out = capsys.readouterr().out
        assert "abcd:2" in out
        assert "bde:2" not in out

    def test_mine_to_output_file(self, example_file, tmp_path, capsys):
        out_file = tmp_path / "patterns.txt"
        assert main([
            "mine", example_file, "--min-sup", "2", "--output", str(out_file)
        ]) == 0
        assert out_file.read_text().splitlines() == ["abcd:2", "bde:2"]

    def test_mine_stats_flag(self, example_file, capsys):
        assert main(["mine", example_file, "--min-sup", "2", "--stats"]) == 0
        err = capsys.readouterr().err
        assert "prefixes=" in err

    def test_invalid_support_is_reported(self, example_file, capsys):
        # Mining-configuration errors (MiningError) exit 3; plain usage
        # errors exit 2 (see the exit-code table in repro.cli).
        assert main(["mine", example_file, "--min-sup", "99"]) == 3
        assert "error:" in capsys.readouterr().err


class TestStatsAndLattice:
    def test_stats_table(self, example_file, capsys):
        assert main(["stats", example_file]) == 0
        out = capsys.readouterr().out
        assert "Avg. # vertices" in out

    def test_stats_extended(self, example_file, capsys):
        assert main(["stats", example_file, "--extended"]) == 0
        assert "Max degree" in capsys.readouterr().out

    def test_lattice_render(self, example_file, capsys):
        assert main(["lattice", example_file, "--min-sup", "2"]) == 0
        out = capsys.readouterr().out
        assert "[abcd:2]" in out

    def test_lattice_dot(self, example_file, capsys):
        assert main(["lattice", example_file, "--min-sup", "2", "--dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph")


class TestGenerate:
    def test_generate_example_round_trip(self, tmp_path, capsys):
        out = tmp_path / "example.tve"
        assert main(["generate", "example", str(out)]) == 0
        db = gspan_format.open_database(out)
        assert len(db) == 2

    def test_generate_chem(self, tmp_path, capsys):
        out = tmp_path / "chem.tve"
        assert main(["generate", "chem", str(out), "--compounds", "15"]) == 0
        db = gspan_format.open_database(out)
        assert len(db) == 15

    def test_generate_stock_tiny(self, tmp_path, capsys):
        out = tmp_path / "stock.json"
        assert main([
            "generate", "stock", str(out), "--scale", "tiny",
            "--theta", "0.93", "--format", "json",
        ]) == 0
        from repro.io import json_format

        db = json_format.open_database(out)
        assert len(db) == 11


class TestExperiments:
    def test_experiments_lists_all_artifacts(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for item in ("Table 1", "Figure 5", "Figure 6(a)", "Figure 6(b)",
                     "Figure 7(a)", "Figure 7(b)"):
            assert item in out
