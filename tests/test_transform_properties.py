"""Property tests: how transforms interact with mining semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import mine_closed_cliques, mine_frequent_cliques
from repro.graphdb import merge_databases, relabel_database, restrict_labels
from tests.conftest import make_random_database

SEEDS = st.integers(0, 50_000)


@settings(max_examples=20, deadline=None)
@given(seed=SEEDS, min_sup=st.integers(1, 3))
def test_self_merge_doubles_supports(seed, min_sup):
    """D ⊎ D doubles every support and nothing else changes."""
    db = make_random_database(seed)
    doubled = merge_databases([db, db])
    base = {p.form: p.support for p in mine_frequent_cliques(db, min_sup)}
    merged = {
        p.form: p.support for p in mine_frequent_cliques(doubled, 2 * min_sup)
    }
    assert merged == {form: 2 * sup for form, sup in base.items()}


@settings(max_examples=20, deadline=None)
@given(seed=SEEDS)
def test_injective_relabel_renames_patterns(seed):
    """An injective label mapping renames patterns one-to-one."""
    db = make_random_database(seed)
    mapping = {"a": "w", "b": "x", "c": "y", "d": "z"}
    renamed = relabel_database(db, mapping)
    base = sorted(
        (tuple(mapping[l] for l in p.labels), p.support)
        for p in mine_closed_cliques(db, 2)
    )
    # Re-sort each renamed multiset: the mapping here is monotone
    # (a<b<c<d -> w<x<y<z) so sorted order is preserved anyway.
    found = sorted(
        (p.labels, p.support) for p in mine_closed_cliques(renamed, 2)
    )
    assert found == base


@settings(max_examples=20, deadline=None)
@given(seed=SEEDS)
def test_non_monotone_relabel_keeps_pattern_count(seed):
    """Renaming that reverses the alphabet permutes canonical forms but
    preserves the number of closed patterns and their supports."""
    db = make_random_database(seed)
    mapping = {"a": "z", "b": "y", "c": "x", "d": "w"}
    renamed = relabel_database(db, mapping)
    base = sorted(p.support for p in mine_closed_cliques(db, 2))
    found = sorted(p.support for p in mine_closed_cliques(renamed, 2))
    assert found == base


@settings(max_examples=20, deadline=None)
@given(seed=SEEDS, min_sup=st.integers(1, 3))
def test_restriction_equals_label_filter_on_frequent_set(seed, min_sup):
    """Mining a label-restricted database = filtering the frequent set."""
    db = make_random_database(seed)
    keep = {"a", "c"}
    restricted = mine_frequent_cliques(restrict_labels(db, keep), min_sup)
    filtered = sorted(
        p.key()
        for p in mine_frequent_cliques(db, min_sup)
        if set(p.labels) <= keep
    )
    assert sorted(p.key() for p in restricted) == filtered


@settings(max_examples=15, deadline=None)
@given(seed=SEEDS)
def test_merging_distinct_databases_unions_patterns(seed):
    """At min_sup=1, patterns of D1 ⊎ D2 are the union of each side's."""
    db1 = make_random_database(seed)
    db2 = make_random_database(seed + 1)
    merged = merge_databases([db1, db2])
    union = {str(p.form) for p in mine_frequent_cliques(db1, 1)} | {
        str(p.form) for p in mine_frequent_cliques(db2, 1)
    }
    found = {str(p.form) for p in mine_frequent_cliques(merged, 1)}
    assert found == union


@pytest.mark.parametrize("kernel", ("set", "bitset"))
@pytest.mark.parametrize("seed,permutation_seed,min_sup", [
    (0, 1, 1), (7, 42, 2), (13, 99, 2), (21, 5, 3), (34, 17, 1), (48, 3, 2),
])
def test_mining_invariant_under_vertex_permutation(
    kernel, seed, permutation_seed, min_sup
):
    """Vertex-id permutation must not change any mining observable.

    The regression probe for state keyed by vertex id — above all the
    bitset kernel's vertex → bit mapping, which must be stable under
    relabeling (bit order follows sorted vertex ids, so a permutation
    reorders bits but never changes label masks or adjacency masks).
    """
    from repro.core import ClanMiner, MinerConfig
    from repro.graphdb import permute_vertex_ids
    from tests.test_kernel_differential import unique_label_database

    config = MinerConfig(kernel=kernel)
    for db in (make_random_database(seed), unique_label_database(seed % 100)):
        permuted = permute_vertex_ids(db, seed=permutation_seed)
        base = ClanMiner(db, config).mine(min_sup)
        moved = ClanMiner(permuted, config).mine(min_sup)
        assert sorted(
            (p.form.labels, p.support, tuple(sorted(p.transactions))) for p in base
        ) == sorted(
            (p.form.labels, p.support, tuple(sorted(p.transactions))) for p in moved
        )
        assert str(base.statistics) == str(moved.statistics)
