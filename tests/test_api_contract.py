"""Contract tests for the typed MiningRequest / MiningResult API.

The request is the wire format: ``from_json(to_json(r)) == r`` for
every valid request, the legacy keyword spelling of :func:`repro.mine`
is a deprecated veneer over :meth:`MiningRequest.from_options`, and the
result envelope's canonical bytes are run-independent.  The CI
``service-contract`` job runs this file (with ``tests/test_service.py``)
under ``-W error::DeprecationWarning``.
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    MinerConfig,
    MiningBudget,
    MiningRequest,
    MiningResultEnvelope,
    mine,
)
from repro.exceptions import MiningError
from repro.graphdb import paper_example_database

#: One representative request per task, plus option-heavy variants —
#: every field that travels over the wire appears in at least one.
REQUEST_CASES = [
    MiningRequest(min_sup=2),
    MiningRequest(min_sup="85%", task="frequent", min_size=2, max_size=4),
    MiningRequest(min_sup=0.7, task="maximal"),
    MiningRequest(min_sup=2, task="topk", k=5),
    MiningRequest(min_sup=2, task="quasi", gamma=0.75, min_size=2, max_size=5),
    MiningRequest(min_sup=2, config=MinerConfig(min_size=2, max_size=4)),
    MiningRequest(min_sup=2, kernel="bitset", collect_witnesses=False),
    MiningRequest(min_sup=2, processes=3, scheduler="static"),
    MiningRequest(
        min_sup=2,
        budget=MiningBudget(deadline_seconds=5.0, max_patterns=100),
        sample_every=10,
        use_cache=False,
    ),
]


class TestRequestRoundTrip:
    @pytest.mark.parametrize(
        "request_", REQUEST_CASES, ids=lambda r: f"{r.task}-{r.min_sup}"
    )
    def test_json_round_trip_is_identity(self, request_):
        assert MiningRequest.from_json(request_.to_json()) == request_

    @pytest.mark.parametrize(
        "request_", REQUEST_CASES, ids=lambda r: f"{r.task}-{r.min_sup}"
    )
    def test_digest_is_stable(self, request_):
        round_tripped = MiningRequest.from_json(request_.to_json())
        assert round_tripped.digest() == request_.digest()

    @settings(max_examples=50, deadline=None)
    @given(
        min_sup=st.one_of(st.integers(1, 10), st.floats(0.1, 1.0)),
        task=st.sampled_from(["closed", "frequent", "maximal", "topk", "quasi"]),
        min_size=st.integers(1, 4),
        max_size=st.one_of(st.none(), st.integers(4, 8)),
        k=st.integers(1, 10),
        gamma=st.floats(0.5, 1.0),
        processes=st.integers(1, 4),
        use_cache=st.booleans(),
    )
    def test_round_trip_property(
        self, min_sup, task, min_size, max_size, k, gamma, processes, use_cache
    ):
        if task == "maximal":
            max_size = None  # a capped search misreports maximality
        elif task == "quasi" and max_size is None:
            max_size = 6  # quasi requires a finite ceiling
        request = MiningRequest(
            min_sup=min_sup,
            task=task,
            min_size=min_size,
            max_size=max_size,
            k=k if task == "topk" else None,
            gamma=round(gamma, 3) if task == "quasi" else None,
            processes=processes,
            use_cache=use_cache,
        )
        assert MiningRequest.from_json(request.to_json()) == request

    def test_from_dict_rejects_wrong_kind(self):
        with pytest.raises(MiningError, match="mining-request"):
            MiningRequest.from_dict({"kind": "something-else", "version": 1})

    def test_from_dict_rejects_future_version(self):
        payload = MiningRequest(min_sup=2).to_dict()
        payload["version"] = 999
        with pytest.raises(MiningError, match="version"):
            MiningRequest.from_dict(payload)

    def test_from_dict_rejects_unknown_keys(self):
        payload = MiningRequest(min_sup=2).to_dict()
        payload["min_supp"] = 3  # typo: must not be silently dropped
        with pytest.raises(MiningError, match="min_supp"):
            MiningRequest.from_dict(payload)

    def test_invalid_requests_fail_at_construction(self):
        with pytest.raises(MiningError, match="task"):
            MiningRequest(min_sup=2, task="closedish")
        with pytest.raises(MiningError, match="k"):
            MiningRequest(min_sup=2, task="topk")
        with pytest.raises(MiningError, match="gamma"):
            MiningRequest(min_sup=2, task="quasi", max_size=4)
        with pytest.raises(MiningError, match="max_size"):
            MiningRequest(min_sup=2, task="quasi", gamma=0.8)


class TestLegacyBuilder:
    def test_kwargs_spelling_warns(self, paper_db):
        with pytest.warns(DeprecationWarning, match="MiningRequest"):
            legacy = mine(paper_db, 2, min_size=2)
        modern = mine(paper_db, MiningRequest.from_options(2, min_size=2))
        assert sorted(p.key() for p in legacy) == sorted(p.key() for p in modern)

    def test_request_spelling_is_warning_free(self, paper_db, recwarn):
        mine(paper_db, MiningRequest(min_sup=2))
        assert not [
            w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
        ]

    def test_from_options_fills_legacy_quasi_defaults(self):
        request = MiningRequest.from_options(2, task="quasi", max_size=4)
        assert request.gamma == 0.8
        assert request.min_size == 2

    def test_from_options_builds_budget_from_shorthands(self):
        request = MiningRequest.from_options(
            2, deadline=5.0, max_patterns=10
        )
        assert request.budget == MiningBudget(
            deadline_seconds=5.0, max_patterns=10
        )

    def test_from_options_rejects_budget_and_shorthand(self):
        with pytest.raises(MiningError):
            MiningRequest.from_options(
                2, budget=MiningBudget(max_patterns=5), deadline=1.0
            )


class TestEnvelopeContract:
    def test_canonical_bytes_are_run_independent(self, paper_db):
        request = MiningRequest(min_sup=2)
        first = MiningResultEnvelope.from_result(request, mine(paper_db, request))
        second = MiningResultEnvelope.from_result(request, mine(paper_db, request))
        assert first.canonical_json() == second.canonical_json()

    def test_complete_runs_normalise_completed_roots(self, paper_db):
        request = MiningRequest(min_sup=2)
        envelope = MiningResultEnvelope.from_result(
            request, mine(paper_db, request)
        )
        assert envelope.canonical_dict()["result"]["completed_roots"] == []
        assert envelope.status == "complete"

    def test_envelope_round_trip_preserves_canonical_bytes(self, paper_db):
        request = MiningRequest(min_sup=2)
        envelope = MiningResultEnvelope.from_result(
            request, mine(paper_db, request)
        )
        reloaded = MiningResultEnvelope.from_json(envelope.to_json())
        assert reloaded.canonical_json() == envelope.canonical_json()
        assert reloaded.result.statistics.snapshot() == (
            envelope.result.statistics.snapshot()
        )

    def test_truncated_run_records_completed_roots(self, paper_db):
        request = MiningRequest(
            min_sup=2, budget=MiningBudget(max_expanded_prefixes=3)
        )
        envelope = MiningResultEnvelope.from_result(
            request, mine(paper_db, request)
        )
        assert envelope.result.truncated
        assert envelope.status == "truncated"
        core = envelope.canonical_dict()["result"]
        assert core["truncated"] is True

    def test_from_dict_rejects_wrong_kind(self):
        with pytest.raises(MiningError, match="mining-result-envelope"):
            MiningResultEnvelope.from_dict({"kind": "nope", "version": 1})

    def test_from_dict_rejects_future_version(self, paper_db):
        request = MiningRequest(min_sup=2)
        payload = MiningResultEnvelope.from_result(
            request, mine(paper_db, request)
        ).to_dict()
        payload["version"] = 999
        with pytest.raises(MiningError, match="version"):
            MiningResultEnvelope.from_dict(payload)

    def test_request_echoed_verbatim(self, paper_db):
        request = MiningRequest(min_sup=2, task="topk", k=2)
        envelope = MiningResultEnvelope.from_result(
            request, mine(paper_db, request)
        )
        reloaded = MiningResultEnvelope.from_json(envelope.to_json())
        assert reloaded.request == request


class TestRequestSemantics:
    def test_replace_builds_sweep_variants(self, paper_db):
        """dataclasses.replace is the sanctioned sweep spelling."""
        template = MiningRequest(min_sup=2)
        lowered = dataclasses.replace(template, min_sup=1)
        assert lowered.min_sup == 1
        assert len(mine(paper_db, lowered)) >= len(mine(paper_db, template))

    def test_unbounded_budget_normalises_to_none(self):
        assert MiningRequest(min_sup=2, budget=MiningBudget()).budget is None

    def test_wire_format_is_sorted_compact_json(self):
        text = MiningRequest(min_sup=2).to_json()
        payload = json.loads(text)
        assert text == json.dumps(payload, sort_keys=True, separators=(",", ":"))
