"""Tests for the extended CLI commands (topk/quasi/validate/convert/diff)."""

import pytest

from repro.cli import main
from repro.graphdb import Graph, GraphDatabase, paper_example_database
from repro.io import gspan_format, json_format


@pytest.fixture
def example_file(tmp_path):
    path = tmp_path / "example.tve"
    gspan_format.save_database(paper_example_database(), path)
    return str(path)


class TestMineModes:
    def test_maximal_mode(self, example_file, capsys):
        assert main(["mine", example_file, "--min-sup", "2", "--maximal"]) == 0
        captured = capsys.readouterr()
        assert "abcd:2" in captured.out
        assert "maximal cliques" in captured.err

    def test_maximal_and_all_frequent_conflict(self, example_file):
        with pytest.raises(SystemExit):
            main(["mine", example_file, "--maximal", "--all-frequent"])

    def test_parallel_processes(self, example_file, capsys):
        assert main(["mine", example_file, "--min-sup", "2", "--processes", "2"]) == 0
        assert "abcd:2" in capsys.readouterr().out


class TestMineConstraints:
    def test_require_label(self, example_file, capsys):
        assert main(["mine", example_file, "--min-sup", "2", "--require", "e"]) == 0
        out = capsys.readouterr().out
        assert "bde:2" in out
        assert "abcd:2" not in out

    def test_allow_labels(self, example_file, capsys):
        assert main([
            "mine", example_file, "--min-sup", "2", "--allow", "b,d,e",
        ]) == 0
        assert "bde:2" in capsys.readouterr().out

    def test_forbid_labels(self, example_file, capsys):
        assert main([
            "mine", example_file, "--min-sup", "2", "--forbid", "e",
        ]) == 0
        out = capsys.readouterr().out
        assert "abcd:2" in out
        assert "bde" not in out

    def test_constraints_reject_maximal_mode(self, example_file, capsys):
        assert main([
            "mine", example_file, "--min-sup", "2", "--maximal", "--require", "e",
        ]) == 2
        assert "error:" in capsys.readouterr().err

    def test_empty_label_list_rejected(self, example_file, capsys):
        assert main(["mine", example_file, "--require", ", ,"]) == 2


class TestTopK:
    def test_topk_orders_by_size(self, example_file, capsys):
        assert main(["topk", example_file, "--min-sup", "2", "-k", "1"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert out == ["abcd:2"]

    def test_topk_k_exceeds(self, example_file, capsys):
        assert main(["topk", example_file, "--min-sup", "2", "-k", "99"]) == 0
        assert len(capsys.readouterr().out.strip().splitlines()) == 2


class TestQuasi:
    def test_gamma_one_equals_exact(self, example_file, capsys):
        assert main([
            "quasi", example_file, "--min-sup", "2", "--gamma", "1.0",
            "--min-size", "3", "--max-size", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "abcd:2" in out
        assert "bde:2" in out

    def test_invalid_gamma_reports_error(self, example_file, capsys):
        # gamma out of range is a mining-configuration error: exit 3.
        assert main([
            "quasi", example_file, "--min-sup", "2", "--gamma", "0.2",
        ]) == 3
        assert "error:" in capsys.readouterr().err


class TestValidate:
    def test_valid_database(self, example_file, capsys):
        assert main(["validate", example_file]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_warnings_still_pass(self, tmp_path, capsys):
        db = GraphDatabase([Graph.from_edges({0: "a", 1: "b"}, [])])
        path = tmp_path / "warn.tve"
        gspan_format.save_database(db, path)
        assert main(["validate", str(path)]) == 0
        assert "warning" in capsys.readouterr().out


class TestConvert:
    def test_tve_to_json_and_back(self, example_file, tmp_path, capsys):
        json_path = tmp_path / "db.json"
        assert main([
            "convert", example_file, str(json_path), "--from", "tve", "--to", "json",
        ]) == 0
        db = json_format.open_database(json_path)
        assert len(db) == 2

        back = tmp_path / "back.tve"
        assert main([
            "convert", str(json_path), str(back), "--from", "json", "--to", "tve",
        ]) == 0
        again = gspan_format.open_database(back)
        assert again[0].labels() == paper_example_database()[0].labels()

    def test_to_matrix(self, example_file, tmp_path, capsys):
        out = tmp_path / "db.matrix"
        assert main([
            "convert", example_file, str(out), "--from", "tve", "--to", "matrix",
        ]) == 0
        assert out.read_text().strip()


class TestDiff:
    def make_results(self, tmp_path, left_lines, right_lines):
        left = tmp_path / "left.txt"
        right = tmp_path / "right.txt"
        left.write_text("\n".join(left_lines) + "\n")
        right.write_text("\n".join(right_lines) + "\n")
        return str(left), str(right)

    def test_identical_results_exit_zero(self, tmp_path, capsys):
        left, right = self.make_results(tmp_path, ["abcd:2", "bde:2"], ["bde:2", "abcd:2"])
        assert main(["diff", left, right]) == 0
        assert "identical" in capsys.readouterr().out

    def test_differences_exit_one(self, tmp_path, capsys):
        left, right = self.make_results(tmp_path, ["abcd:2"], ["abcd:3", "x:1"])
        assert main(["diff", left, right]) == 1
        out = capsys.readouterr().out
        assert "abcd: 2 -> 3" in out
        assert "+ x:1" in out
