"""Tests for the ASCII chart renderers."""

import pytest

from repro.bench import Series, horizontal_bars, multi_series_chart, series_chart


class TestHorizontalBars:
    def test_longest_bar_for_max(self):
        chart = horizontal_bars(["a", "b"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_alignment(self):
        chart = horizontal_bars(["short", "a-much-longer-label"], [1, 1])
        lines = chart.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_values_shown_with_unit(self):
        chart = horizontal_bars(["x"], [0.123], unit="s")
        assert "0.123s" in chart

    def test_log_scale_compresses(self):
        linear = horizontal_bars(["a", "b"], [1.0, 1000.0], width=30)
        logd = horizontal_bars(["a", "b"], [1.0, 1000.0], width=30, log_scale=True)
        small_linear = linear.splitlines()[0].count("#")
        small_log = logd.splitlines()[0].count("#")
        assert small_log > small_linear

    def test_zero_values_allowed(self):
        chart = horizontal_bars(["a", "b"], [0.0, 1.0])
        assert chart.splitlines()[0].count("#") == 0

    def test_empty(self):
        assert horizontal_bars([], []) == "(no data)"

    def test_validation(self):
        with pytest.raises(ValueError):
            horizontal_bars(["a"], [1, 2])
        with pytest.raises(ValueError):
            horizontal_bars(["a"], [-1])


class TestSeriesChart:
    def test_header_and_rows(self):
        series = Series("runtime", "sup", "seconds", [("100%", 0.1), ("85%", 0.4)])
        chart = series_chart(series)
        assert chart.startswith("# runtime")
        assert "100%" in chart and "85%" in chart


class TestMultiSeries:
    def test_blocks_per_x(self):
        chart = multi_series_chart(
            ["100%", "85%"], ["A", "B"], [[0.1, 0.2], [0.3, 0.4]]
        )
        assert chart.count(":\n") == 2
        assert "A" in chart and "B" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            multi_series_chart(["x"], ["A", "B"], [[1.0]])
