"""Differential tests for the gSpan-style complete subgraph miner.

Ground truth comes from an independent brute force: enumerate all
connected edge subsets of every transaction, canonicalise each with
``minimum_dfs_code`` (itself tested separately), and count supports.
"""

import random
from itertools import combinations
from typing import Dict, FrozenSet, Set, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import GSpanMiner, minimum_dfs_code, mine_frequent_subgraphs
from repro.exceptions import MiningError
from repro.graphdb import Graph, GraphDatabase, paper_example_database
from repro.graphdb.generators import default_label_alphabet, random_transaction


def brute_frequent_subgraphs(database: GraphDatabase, abs_sup: int, max_edges: int):
    """Reference: connected edge subsets, canonicalised by min DFS code."""
    supports: Dict[object, Set[int]] = {}
    for tid, graph in enumerate(database):
        edges = list(graph.edges())
        seen_codes = set()
        for size in range(1, max_edges + 1):
            for subset in combinations(edges, size):
                vertices = {u for e in subset for u in e}
                sub = Graph()
                for v in vertices:
                    sub.add_vertex(v, graph.label(v))
                for u, v in subset:
                    sub.add_edge(u, v)
                if len(sub.connected_components()) != 1:
                    continue
                code = minimum_dfs_code(sub)
                seen_codes.add(code)
        for code in seen_codes:
            supports.setdefault(code, set()).add(tid)
    return {
        code: len(tids) for code, tids in supports.items() if len(tids) >= abs_sup
    }


def tiny_database(seed: int, n_graphs: int = 3, n_vertices: int = 5) -> GraphDatabase:
    rng = random.Random(seed)
    labels = default_label_alphabet(2)
    db = GraphDatabase()
    for gid in range(n_graphs):
        db.add(random_transaction(rng, n_vertices, 0.5, labels, gid))
    return db


class TestAgainstBruteForce:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), abs_sup=st.integers(1, 3))
    def test_codes_and_supports_match(self, seed, abs_sup):
        db = tiny_database(seed)
        max_edges = 4
        expected = brute_frequent_subgraphs(db, abs_sup, max_edges)
        result = GSpanMiner(db, max_edges=max_edges).mine(abs_sup)
        found = {
            p.code: p.support for p in result.patterns if p.edge_count <= max_edges
        }
        assert found == expected

    def test_paper_example_edge_patterns(self, paper_db):
        """Single-edge patterns at sup=2 = frequent adjacent label pairs."""
        result = GSpanMiner(paper_db, max_edges=1).mine(2)
        pairs = {tuple(sorted((e[2], e[3])) ) for p in result.patterns for e in [p.code.edges[0]]}
        assert pairs == {
            ("a", "b"), ("a", "c"), ("a", "d"), ("b", "c"),
            ("b", "d"), ("b", "e"), ("c", "d"), ("d", "e"),
        }


class TestIndependentVerification:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_supports_verified_by_vf2(self, seed):
        """Every reported support re-counted by the VF2 matcher."""
        from repro.graphdb import is_subgraph_isomorphic

        db = tiny_database(seed)
        result = GSpanMiner(db, max_edges=3).mine(1)
        for pattern in result.patterns:
            pattern_graph = pattern.code.to_graph()
            recount = sum(
                1 for graph in db if is_subgraph_isomorphic(pattern_graph, graph)
            )
            assert recount == pattern.support, pattern.key()


class TestResultStructure:
    def test_single_vertices_reported(self, paper_db):
        result = mine_frequent_subgraphs(paper_db, 2, max_edges=1)
        assert sorted(s.label for s in result.single_vertices) == list("abcde")
        assert all(s.support == 2 for s in result.single_vertices)

    def test_no_duplicate_codes(self, paper_db):
        result = mine_frequent_subgraphs(paper_db, 2, max_edges=3)
        codes = [p.code for p in result.patterns]
        assert len(codes) == len(set(codes))

    def test_clique_patterns_match_clan(self, paper_db):
        from repro.core import mine_frequent_cliques

        result = mine_frequent_subgraphs(paper_db, 2)
        gspan_cliques = sorted(
            (p.label_multiset(), p.support) for p in result.clique_patterns()
        )
        clan = mine_frequent_cliques(paper_db, 2)
        clan_cliques = sorted(
            (p.labels, p.support) for p in clan if p.size >= 2
        )
        assert gspan_cliques == clan_cliques

    def test_by_size_histogram(self, paper_db):
        result = mine_frequent_subgraphs(paper_db, 2, max_edges=2)
        histogram = result.by_size()
        assert histogram[1] == 5
        assert histogram[2] == 8

    def test_counters_populated(self, paper_db):
        result = mine_frequent_subgraphs(paper_db, 2, max_edges=3)
        assert result.nodes_visited == len(result.patterns)
        assert result.elapsed_seconds >= 0.0


class TestBudgets:
    def test_max_nodes_budget_raises(self, paper_db):
        with pytest.raises(MiningError):
            GSpanMiner(paper_db, max_nodes=3).mine(2)

    def test_max_edges_truncates(self, paper_db):
        result = mine_frequent_subgraphs(paper_db, 2, max_edges=2)
        assert all(p.edge_count <= 2 for p in result.patterns)
