"""End-to-end user journeys across subsystems."""

import pytest

from repro.cli import main
from repro.io import gspan_format


class TestGenerateTransformMineRecordReplay:
    def test_full_journey(self, tmp_path):
        """generate → restrict → mine → record → replay, all green."""
        from repro.analysis import evaluate_recovery
        from repro.core import CliqueConstraints, mine_with_constraints
        from repro.graphdb import database_with_planted_cliques, restrict_labels
        from repro.io.runlog import open_record, record_run, replay, save_record

        synthetic = database_with_planted_cliques(
            n_graphs=5,
            n_vertices=10,
            edge_probability=0.2,
            n_labels=3,
            planted_specs=[
                (("P", "Q", "R", "S"), (0, 1, 2, 3)),
                (("X", "Y", "Z"), (1, 2, 3, 4)),
            ],
            seed=42,
        )
        db = synthetic.database

        # Constraint mining finds the motif containing P.
        result = mine_with_constraints(
            db, 4, CliqueConstraints.of(required=["P"], min_size=4)
        )
        assert any(p.labels == ("P", "Q", "R", "S") for p in result)

        # Ground truth scoring sees both planted cliques.
        full = record_run(db, 4)
        report = evaluate_recovery(
            full.patterns(),
            [(spec.canonical_labels, spec.support) for spec in synthetic.planted],
        )
        assert report.exact_recall == 1.0

        # Record → file → replay reproduces.
        path = tmp_path / "run.json"
        save_record(full, path)
        outcome = replay(open_record(path), db)
        assert outcome.reproduced

        # Restricting to the planted labels keeps the motifs minable.
        small = restrict_labels(db, ["P", "Q", "R", "S"])
        from repro.core import mine_closed_cliques

        again = mine_closed_cliques(small, 4)
        assert any(p.labels == ("P", "Q", "R", "S") for p in again)

    def test_market_returns_variant_pipeline(self):
        """prices → log-return correlations → graphs → CLAN, end to end."""
        from repro.core import mine_closed_cliques
        from repro.graphdb import GraphDatabase
        from repro.stockmarket import (
            FIGURE5_TICKERS,
            StockMarketSimulator,
            market_config,
            market_graph_from_correlations,
            returns_correlation_matrix,
        )

        simulator = StockMarketSimulator(market_config("tiny"))
        database = GraphDatabase(name="returns-based")
        for panel in simulator.simulate_all():
            corr = returns_correlation_matrix(panel.prices)
            database.add(
                market_graph_from_correlations(panel.tickers, corr, 0.85)
            )
        result = mine_closed_cliques(database, 1.0, min_size=3)
        top = result.maximum_patterns()
        assert top
        # The fund group dominates under either correlation definition.
        assert len(set(top[0].labels) & set(FIGURE5_TICKERS)) >= 8

    def test_protein_quasi_extension(self):
        """Quasi-clique mining finds near-motifs the exact miner misses."""
        from repro.bio import FamilyConfig, MotifSpec, protein_family
        from repro.core import mine, mine_closed_cliques
        from repro.core.api import MiningRequest

        config = FamilyConfig(
            n_proteins=8,
            motifs=(MotifSpec(("C", "C", "H", "H"), 1.0),),
            seed=5,
        )
        family = protein_family(config)
        # Remove one motif edge per protein: CCHH becomes a near-clique.
        for graph in family:
            c_and_h = sorted(
                v for v in graph.vertices() if graph.label(v) in ("C", "H")
            )
            for u in c_and_h:
                for v in c_and_h:
                    if u < v and graph.has_edge(u, v) and graph.label(u) == "C" \
                            and graph.label(v) == "C":
                        graph._adjacency[u].discard(v)
                        graph._adjacency[v].discard(u)
                        graph._edge_count -= 1
                        break
                else:
                    continue
                break
        exact = mine_closed_cliques(family, 1.0, min_size=4)
        assert all(p.labels != ("C", "C", "H", "H") for p in exact)
        quasi = mine(
            family,
            MiningRequest.from_options(
                1.0, task="quasi", gamma=0.6, min_size=4, max_size=4
            ),
        )
        assert any(p.labels == ("C", "C", "H", "H") for p in quasi)


class TestCliRecordReplay:
    def test_cli_round_trip(self, tmp_path, capsys):
        from repro.graphdb import paper_example_database

        db_path = tmp_path / "d.tve"
        gspan_format.save_database(paper_example_database(), db_path)
        rec_path = tmp_path / "run.json"

        assert main(["record", str(db_path), str(rec_path), "--min-sup", "2"]) == 0
        assert "recorded 2 patterns" in capsys.readouterr().out

        assert main(["replay", str(rec_path), str(db_path)]) == 0
        assert "reproduced" in capsys.readouterr().out

    def test_cli_replay_detects_change(self, tmp_path, capsys):
        from repro.graphdb import paper_example_database

        db_path = tmp_path / "d.tve"
        db = paper_example_database()
        gspan_format.save_database(db, db_path)
        rec_path = tmp_path / "run.json"
        assert main(["record", str(db_path), str(rec_path), "--min-sup", "2"]) == 0
        capsys.readouterr()

        db[1].remove_vertex(6)
        gspan_format.save_database(db, db_path)
        assert main(["replay", str(rec_path), str(db_path)]) == 1
        assert "NOT reproduced" in capsys.readouterr().out
