"""Consistency tests across the baseline miners."""

import pytest

from repro.baselines import (
    bruteforce_closed_cliques,
    bruteforce_frequent_cliques,
    cliques_from_subgraphs,
    enumeration_orders,
    mine_closed_by_postfilter,
    mine_closed_cliques_via_subgraphs,
    mine_closed_with_duplicates,
    mine_frequent_subgraphs,
    pattern_supports,
)
from repro.core import mine_closed_cliques, mine_frequent_cliques
from repro.exceptions import MiningError
from tests.conftest import make_random_database


class TestBruteForce:
    def test_pattern_supports_on_paper_example(self, paper_db):
        supports = pattern_supports(paper_db)
        assert supports[("a", "b", "c", "d")] == {0, 1}
        assert supports[("b", "d", "e")] == {0, 1}
        # The bdd triangle exists nowhere (u3-u5 and v3-v5 not adjacent).
        assert ("b", "d", "d") not in supports

    def test_bruteforce_frequent_count(self, paper_db):
        assert len(bruteforce_frequent_cliques(paper_db, 2)) == 19

    def test_bruteforce_closed(self, paper_db):
        result = bruteforce_closed_cliques(paper_db, 2)
        assert sorted(p.key() for p in result) == ["abcd:2", "bde:2"]

    def test_size_window_applied_after_closure(self, paper_db):
        result = bruteforce_closed_cliques(paper_db, 2, min_size=3, max_size=3)
        # abc is non-closed even though abcd is outside the window.
        assert [p.key() for p in result] == ["bde:2"]


class TestSubgraphPipeline:
    def test_pipeline_matches_clan_on_paper_example(self, paper_db):
        via = mine_closed_cliques_via_subgraphs(paper_db, 2)
        clan = mine_closed_cliques(paper_db, 2)
        assert sorted(p.key() for p in via) == sorted(p.key() for p in clan)

    def test_pipeline_matches_clan_on_random_db(self):
        db = make_random_database(99, n_graphs=3, n_vertices=6, edge_probability=0.4)
        via = mine_closed_cliques_via_subgraphs(db, 2)
        clan = mine_closed_cliques(db, 2)
        assert sorted(p.key() for p in via) == sorted(p.key() for p in clan)

    def test_budget_exhaustion_raises(self, paper_db):
        with pytest.raises(MiningError):
            mine_closed_cliques_via_subgraphs(paper_db, 2, max_nodes=2)

    def test_cliques_from_subgraphs_frequent_set(self, paper_db):
        gspan = mine_frequent_subgraphs(paper_db, 2)
        extracted = cliques_from_subgraphs(gspan, 2)
        clan = mine_frequent_cliques(paper_db, 2)
        assert sorted(p.key() for p in extracted) == sorted(p.key() for p in clan)


class TestNaiveMiners:
    def test_postfilter_matches_clan(self, paper_db):
        result = mine_closed_by_postfilter(paper_db, 2)
        assert sorted(p.key() for p in result) == ["abcd:2", "bde:2"]
        assert result.closed_only

    def test_duplicates_counted(self, paper_db):
        result = mine_closed_with_duplicates(paper_db, 2)
        assert result.statistics.duplicates_collapsed > 0

    def test_enumeration_order_is_sorted_dfs(self, paper_db):
        keys = enumeration_orders(paper_db, 2)
        forms = [k.rsplit(":", 1)[0] for k in keys]
        # DFS preorder: every prefix precedes its extensions.
        for i, form in enumerate(forms):
            for longer in forms[i + 1 :]:
                if longer.startswith(form):
                    break
            assert forms.index(form) == i
