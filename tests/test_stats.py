"""Tests for database characteristics reporting (Table 1 machinery)."""

import pytest

from repro.graphdb import (
    characteristics_table,
    database_characteristics,
    paper_example_database,
)


class TestCharacteristics:
    def test_paper_example_values(self, paper_db):
        ch = database_characteristics(paper_db)
        assert ch.n_graphs == 2
        assert ch.avg_vertices == pytest.approx(6.0)
        assert ch.avg_edges == pytest.approx(10.5)
        assert ch.distinct_labels == 5
        assert ch.max_vertices == 6
        assert ch.max_edges == 11
        assert ch.max_degree == 5
        assert ch.max_clique_upper_bound == 4

    def test_name_override(self, paper_db):
        assert database_characteristics(paper_db, name="D").name == "D"
        assert database_characteristics(paper_db).name == "paper-example"

    def test_as_table1_row(self, paper_db):
        row = database_characteristics(paper_db).as_table1_row()
        assert row == ("paper-example", 2, 6, 10)  # 10.5 rounds to even

    def test_avg_degree(self, paper_db):
        ch = database_characteristics(paper_db)
        assert ch.avg_degree == pytest.approx(2 * 21 / 12)


class TestTableRendering:
    def test_basic_table_columns(self, paper_db):
        text = characteristics_table([database_characteristics(paper_db)])
        header = text.splitlines()[0]
        assert "Database" in header
        assert "Avg. # edges" in header
        assert "Max degree" not in header

    def test_extended_table_columns(self, paper_db):
        text = characteristics_table(
            [database_characteristics(paper_db)], extended=True
        )
        assert "Max degree" in text.splitlines()[0]

    def test_empty_table(self):
        text = characteristics_table([])
        assert "Database" in text
