"""Tests for the benchmark harness and the experiment registry."""

import os
from pathlib import Path

import pytest

from repro.bench import (
    EXPERIMENTS,
    EXPERIMENTS_BY_KEY,
    Series,
    bench_scale,
    format_series_table,
    format_table,
    registry_report,
    runtime_sweep,
    sweep,
    timed,
    timed_or_budget,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestTiming:
    def test_timed_returns_value(self):
        run = timed("x", lambda: 42)
        assert run.value == 42
        assert run.completed
        assert run.seconds >= 0.0
        assert run.cell().endswith("s")

    def test_timed_or_budget_catches(self):
        def boom():
            raise RuntimeError("too big")

        run = timed_or_budget("x", boom, note="did not complete")
        assert not run.completed
        assert "did not complete" in run.cell()
        assert "RuntimeError" in run.note


class TestSeries:
    def test_sweep_collects_points(self):
        series = sweep("s", "x", "y", [1, 2, 3], lambda x: x * x)
        assert series.xs() == [1, 2, 3]
        assert series.ys() == [1, 4, 9]

    def test_runtime_sweep_measures(self):
        series = runtime_sweep("s", "n", [10, 20], lambda n: sum(range(n)))
        assert all(y >= 0.0 for y in series.ys())

    def test_render(self):
        series = Series("s", "x", "y", [(1, 2.0), (10, 3.5)])
        text = series.render()
        assert text.startswith("# s: x -> y")
        assert "3.5000" in text


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "2.500" in text

    def test_format_table_title(self):
        assert format_table(["a"], [[1]], title="T").startswith("== T ==")

    def test_series_table_validation(self):
        with pytest.raises(ValueError):
            format_series_table("x", ["s1"], [1, 2], [[1]])
        with pytest.raises(ValueError):
            format_series_table("x", ["s1", "s2"], [1], [[1]])

    def test_series_table_layout(self):
        text = format_series_table("sup", ["A", "B"], [1, 2], [[0.1, 0.2], [0.3, 0.4]])
        assert "sup" in text.splitlines()[0]
        assert "0.400" in text


class TestScale:
    def test_default_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale() == "small"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "tiny")
        assert bench_scale() == "tiny"

    def test_invalid_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "cosmic")
        with pytest.raises(ValueError):
            bench_scale()


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        items = {e.paper_item for e in EXPERIMENTS}
        for required in ("Table 1", "Figure 5", "Figure 6(a)", "Figure 6(b)",
                         "Figure 7(a)", "Figure 7(b)"):
            assert required in items

    def test_benchmark_files_exist(self):
        for experiment in EXPERIMENTS:
            assert (REPO_ROOT / experiment.benchmark).exists(), experiment.benchmark

    def test_modules_importable(self):
        import importlib

        for experiment in EXPERIMENTS:
            for module in experiment.modules:
                importlib.import_module(module)

    def test_design_md_mentions_every_experiment(self):
        design = (REPO_ROOT / "DESIGN.md").read_text()
        for experiment in EXPERIMENTS:
            assert experiment.paper_item.split(" (ours)")[-1].strip("() ") or True
        for required in ("Table 1", "Figure 5", "Figure 6(a)", "Figure 6(b)",
                         "Figure 7(a)", "Figure 7(b)"):
            assert required in design

    def test_report_mentions_benchmarks(self):
        text = registry_report()
        assert "pytest benchmarks/test_fig5_max_clique.py" in text
        assert EXPERIMENTS_BY_KEY["table1"].key == "table1"
