"""Seed robustness: the headline results must not be seed artefacts."""

import pytest

from repro.core import mine_closed_cliques
from repro.stockmarket import (
    FIGURE5_TICKERS,
    StockMarketSimulator,
    build_market_database,
    market_config,
)


@pytest.mark.parametrize("seed", [1, 2, 3, 99])
def test_figure5_recovery_across_seeds(seed):
    """The 12-fund clique is recovered at θ=0.9/100% for any seed."""
    simulator = StockMarketSimulator(market_config("tiny", seed=seed))
    database = build_market_database(simulator, 0.90)
    result = mine_closed_cliques(database, 1.0)
    top = result.maximum_patterns()
    assert top, seed
    assert set(FIGURE5_TICKERS) <= set(top[0].labels), seed


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_density_gradient_across_seeds(seed):
    """Edges grow monotonically as θ falls, for any seed."""
    simulator = StockMarketSimulator(market_config("tiny", seed=seed))
    e95 = build_market_database(simulator, 0.95).total_edges()
    e90 = build_market_database(simulator, 0.90).total_edges()
    assert e90 > e95, seed


@pytest.mark.parametrize("seed", [5, 17])
def test_chem_characteristics_across_seeds(seed):
    from repro.chem import ca_like_database

    db = ca_like_database(n_compounds=150, seed=seed)
    assert abs(db.average_vertices() - 39) < 6, seed
    assert abs(db.average_edges() - 41) < 8, seed


@pytest.mark.parametrize("seed", [7, 8])
def test_protein_motif_recovery_across_seeds(seed):
    from repro.bio import FamilyConfig, expected_motif_patterns, protein_family

    config = FamilyConfig(seed=seed)
    family = protein_family(config)
    result = mine_closed_cliques(family, 0.55, min_size=3)
    mined = {p.labels for p in result}
    for labels, conservation in expected_motif_patterns(config):
        if conservation >= 0.9:
            assert labels in mined, (seed, labels)
