"""Round-trip and error tests for all I/O formats."""

import pytest

from repro.core import mine_closed_cliques, mine_frequent_cliques
from repro.exceptions import FormatError
from repro.graphdb import GraphDatabase, paper_example_database, random_database
from repro.io import gspan_format, json_format, matrix_format, patterns


def assert_databases_equal(a: GraphDatabase, b: GraphDatabase) -> None:
    assert len(a) == len(b)
    for ga, gb in zip(a, b):
        assert ga.labels() == gb.labels()
        assert sorted(ga.edges()) == sorted(gb.edges())


class TestGspanFormat:
    def test_round_trip_paper_example(self, paper_db):
        text = gspan_format.dumps_database(paper_db)
        again = gspan_format.loads_database(text)
        assert_databases_equal(paper_db, again)

    def test_round_trip_random(self):
        db = random_database(4, 9, 0.4, 3, seed=2)
        again = gspan_format.loads_database(gspan_format.dumps_database(db))
        assert_databases_equal(db, again)

    def test_file_round_trip(self, tmp_path, paper_db):
        path = tmp_path / "db.tve"
        gspan_format.save_database(paper_db, path)
        assert_databases_equal(paper_db, gspan_format.open_database(path))

    def test_comments_and_blank_lines_ignored(self):
        text = "# header\n\nt # 0\nv 0 a\nv 1 b\ne 0 1\n"
        db = gspan_format.loads_database(text)
        assert len(db) == 1
        assert db[0].edge_count == 1

    def test_edge_labels_ignored(self):
        text = "t # 0\nv 0 a\nv 1 b\ne 0 1 bond\n"
        db = gspan_format.loads_database(text)
        assert db[0].has_edge(0, 1)

    def test_mined_results_survive_round_trip(self, paper_db):
        again = gspan_format.loads_database(gspan_format.dumps_database(paper_db))
        assert sorted(p.key() for p in mine_closed_cliques(again, 2)) == [
            "abcd:2", "bde:2"
        ]

    @pytest.mark.parametrize(
        "bad",
        [
            "v 0 a\n",                # vertex before t
            "t # 0\ne 0 1\n",         # edge before vertices
            "t # 0\nv x a\n",         # non-integer id
            "t # 0\nv 0\n",           # missing label
            "t # 0\nv 0 a\ne 0\n",    # missing endpoint
            "t # 0\nv 0 a\ne 0 z\n",  # non-integer endpoint
            "q nonsense\n",           # unknown record
        ],
    )
    def test_malformed_inputs_raise_with_line_numbers(self, bad):
        with pytest.raises(FormatError):
            gspan_format.loads_database(bad)


class TestMatrixFormat:
    def test_round_trip(self, paper_db):
        text = matrix_format.dumps_database(paper_db)
        again = matrix_format.loads_database(text)
        assert len(again) == 2
        # Vertex ids are re-based but patterns are identical.
        assert sorted(p.key() for p in mine_closed_cliques(again, 2)) == [
            "abcd:2", "bde:2"
        ]

    def test_file_round_trip(self, tmp_path, paper_db):
        path = tmp_path / "db.matrix"
        matrix_format.save_database(paper_db, path)
        again = matrix_format.open_database(path)
        assert len(again) == 2

    def test_non_square_rejected(self):
        with pytest.raises(FormatError):
            matrix_format.loads_database("a 1\n1 b 0\n")

    def test_bad_bit_rejected(self):
        with pytest.raises(FormatError):
            matrix_format.loads_database("a 2\n2 b\n")

    def test_numeric_label_rejected(self):
        with pytest.raises(FormatError):
            matrix_format.loads_database("1 0\n0 b\n")

    def test_asymmetry_rejected(self):
        with pytest.raises(FormatError):
            matrix_format.loads_database("a 1\n0 b\n")


class TestJsonFormat:
    def test_database_round_trip(self, tmp_path, paper_db):
        path = tmp_path / "db.json"
        json_format.save_database(paper_db, path)
        assert_databases_equal(paper_db, json_format.open_database(path))

    def test_result_round_trip(self, tmp_path, paper_db):
        result = mine_closed_cliques(paper_db, 2)
        path = tmp_path / "result.json"
        json_format.save_result(result, path)
        again = json_format.open_result(path)
        assert sorted(p.key() for p in again) == sorted(p.key() for p in result)
        for pattern in again:
            pattern.verify(paper_db)

    def test_wrong_kind_rejected(self):
        with pytest.raises(FormatError):
            json_format.database_from_dict({"kind": "zebra"})
        with pytest.raises(FormatError):
            json_format.result_from_dict({"kind": "zebra"})


class TestPatternListings:
    def test_round_trip_single_char_labels(self, paper_db):
        result = mine_frequent_cliques(paper_db, 2)
        text = patterns.dumps_result(result)
        again = patterns.loads_result(text, closed_only=False)
        assert sorted(p.key() for p in again) == sorted(p.key() for p in result)

    def test_round_trip_ticker_labels(self):
        from repro.core import make_pattern, MiningResult

        result = MiningResult([make_pattern(["DMF", "NUV", "XAA"], 11)])
        text = patterns.dumps_result(result)
        assert text.strip() == "DMF.NUV.XAA:11"
        again = patterns.loads_result(text)
        assert again.keys() == ["DMF.NUV.XAA:11"]

    def test_file_round_trip(self, tmp_path, paper_db):
        result = mine_closed_cliques(paper_db, 2)
        path = tmp_path / "patterns.txt"
        patterns.save_result(result, path)
        again = patterns.open_result(path)
        assert again.keys() == ["abcd:2", "bde:2"]

    def test_comments_skipped(self):
        result = patterns.loads_result("# note\nab:3\n")
        assert result.keys() == ["ab:3"]

    @pytest.mark.parametrize("bad", ["ab", "ab:x", ":3", "a..b:2"])
    def test_malformed_lines_raise(self, bad):
        with pytest.raises(FormatError):
            patterns.loads_result(bad + "\n")
