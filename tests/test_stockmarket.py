"""Tests for the stock-market substrate (Section 5.1 pipeline)."""

import numpy as np
import pytest

from repro.exceptions import DataGenerationError
from repro.stockmarket import (
    FIGURE5_TICKERS,
    GroupSpec,
    MarketConfig,
    StockMarketSimulator,
    correlation_matrix,
    generate_tickers,
    market_config,
    market_graph_from_correlations,
    market_graph_from_prices,
    pair_correlation,
    stock_market_database,
    stock_market_series,
    universe_with_figure5,
)
from repro.stockmarket.pricegen import default_group_structure


class TestTickers:
    def test_figure5_tickers(self):
        assert len(FIGURE5_TICKERS) == 12
        assert "NUV" in FIGURE5_TICKERS

    def test_generate_avoids_reserved(self):
        tickers = generate_tickers(2000)
        assert len(tickers) == 2000
        assert len(set(tickers)) == 2000
        assert not set(tickers) & set(FIGURE5_TICKERS)

    def test_universe_sorted_and_contains_figure5(self):
        universe = universe_with_figure5(100)
        assert len(universe) == 100
        assert universe == sorted(universe)
        assert set(FIGURE5_TICKERS) <= set(universe)

    def test_universe_too_small(self):
        with pytest.raises(DataGenerationError):
            universe_with_figure5(5)

    def test_negative_count(self):
        with pytest.raises(DataGenerationError):
            generate_tickers(-1)


class TestEquation1:
    def test_pair_correlation_matches_numpy(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=100).cumsum() + 50
        b = 0.5 * a + rng.normal(size=100).cumsum()
        ours = pair_correlation(a, b)
        numpy_corr = np.corrcoef(a, b)[0, 1]
        assert ours == pytest.approx(numpy_corr, abs=1e-10)

    def test_perfect_correlation(self):
        a = np.linspace(1, 10, 50)
        assert pair_correlation(a, 3 * a + 2) == pytest.approx(1.0)
        assert pair_correlation(a, -a) == pytest.approx(-1.0)

    def test_constant_series_rejected(self):
        with pytest.raises(DataGenerationError):
            pair_correlation([1.0] * 10, list(range(10)))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DataGenerationError):
            pair_correlation([1, 2, 3], [1, 2])

    def test_matrix_matches_pairwise(self):
        rng = np.random.default_rng(1)
        panel = rng.normal(size=(60, 5)).cumsum(axis=0) + 100
        matrix = correlation_matrix(panel)
        for i in range(5):
            for j in range(5):
                expected = pair_correlation(panel[:, i], panel[:, j])
                assert matrix[i, j] == pytest.approx(expected, abs=1e-10)

    def test_matrix_diagonal_and_symmetry(self):
        rng = np.random.default_rng(2)
        panel = rng.normal(size=(40, 6))
        matrix = correlation_matrix(panel)
        assert np.allclose(np.diag(matrix), 1.0)
        assert np.allclose(matrix, matrix.T)

    def test_degenerate_column_zeroed(self):
        panel = np.column_stack([np.ones(30), np.arange(30.0)])
        matrix = correlation_matrix(panel)
        assert matrix[0, 1] == 0.0
        assert matrix[0, 0] == 1.0

    def test_bad_shapes(self):
        with pytest.raises(DataGenerationError):
            correlation_matrix(np.ones(10))
        with pytest.raises(DataGenerationError):
            correlation_matrix(np.ones((1, 3)))


class TestSimulator:
    def test_deterministic(self):
        cfg = market_config("tiny")
        p1 = StockMarketSimulator(cfg).simulate_period(0)
        p2 = StockMarketSimulator(cfg).simulate_period(0)
        assert p1.tickers == p2.tickers
        assert np.array_equal(p1.prices, p2.prices)

    def test_periods_differ(self):
        sim = StockMarketSimulator(market_config("tiny"))
        p0, p1 = sim.simulate_period(0), sim.simulate_period(1)
        assert not np.array_equal(p0.prices[:, :10], p1.prices[:, :10])

    def test_prices_positive(self):
        panel = StockMarketSimulator(market_config("tiny")).simulate_period(0)
        assert np.all(panel.prices > 0)

    def test_universe_shrinks_but_groups_survive(self):
        sim = StockMarketSimulator(market_config("tiny"))
        panels = sim.simulate_all()
        counts = [len(p.tickers) for p in panels]
        assert counts[0] >= counts[-1]
        for panel in panels:
            assert set(FIGURE5_TICKERS) <= set(panel.tickers)

    def test_figure5_group_stays_above_090(self):
        sim = StockMarketSimulator(market_config("small"))
        index12 = None
        for panel in sim.simulate_all():
            idx = {t: i for i, t in enumerate(panel.tickers)}
            cols = [idx[t] for t in FIGURE5_TICKERS]
            corr = correlation_matrix(panel.prices[:, cols])
            off = corr[~np.eye(12, dtype=bool)]
            assert off.min() > 0.90

    def test_invalid_period(self):
        sim = StockMarketSimulator(market_config("tiny"))
        with pytest.raises(DataGenerationError):
            sim.simulate_period(99)

    def test_group_spec_validation(self):
        with pytest.raises(DataGenerationError):
            GroupSpec(tickers=("A", "B"), noise_scales=(0.1,))
        with pytest.raises(DataGenerationError):
            GroupSpec(tickers=("A", "A"), noise_scales=(0.1, 0.1))
        with pytest.raises(DataGenerationError):
            GroupSpec(tickers=("A",), noise_scales=(0.0,))

    def test_duplicate_group_membership_rejected(self):
        cfg = market_config("tiny")
        cfg = MarketConfig(
            n_stocks=cfg.n_stocks,
            days_per_period=cfg.days_per_period,
            n_sectors=cfg.n_sectors,
            groups=[
                GroupSpec.uniform(["DMF", "IQM"], 0.1),
                GroupSpec.uniform(["DMF", "NUV"], 0.1),
            ],
        )
        with pytest.raises(DataGenerationError):
            StockMarketSimulator(cfg)

    def test_unknown_group_ticker_rejected(self):
        cfg = MarketConfig(groups=[GroupSpec.uniform(["@@@"], 0.1)])
        with pytest.raises(DataGenerationError):
            StockMarketSimulator(cfg)

    def test_default_group_layout_uses_universe(self):
        rng = np.random.default_rng(0)
        universe = universe_with_figure5(200)
        groups = default_group_structure(universe, 11, rng)
        members = [t for g in groups for t in g.tickers]
        assert len(members) == len(set(members))
        assert set(members) <= set(universe)


class TestMarketGraphs:
    def test_threshold_validation(self):
        with pytest.raises(DataGenerationError):
            market_graph_from_correlations(["A"], np.eye(1), 1.5)

    def test_shape_validation(self):
        with pytest.raises(DataGenerationError):
            market_graph_from_correlations(["A", "B"], np.eye(3), 0.9)

    def test_isolated_vertices_dropped_by_default(self):
        corr = np.array([[1.0, 0.95, 0.0], [0.95, 1.0, 0.0], [0.0, 0.0, 1.0]])
        g = market_graph_from_correlations(["A", "B", "C"], corr, 0.9)
        assert g.vertex_count == 2
        kept = market_graph_from_correlations(["A", "B", "C"], corr, 0.9,
                                              keep_isolated=True)
        assert kept.vertex_count == 3

    def test_edges_follow_threshold_strictly(self):
        corr = np.array([[1.0, 0.90], [0.90, 1.0]])
        g = market_graph_from_correlations(["A", "B"], corr, 0.90)
        assert g.vertex_count == 0  # 0.90 is not > 0.90

    def test_graph_from_prices_labels_are_tickers(self):
        sim = StockMarketSimulator(market_config("tiny"))
        panel = sim.simulate_period(0)
        graph = market_graph_from_prices(panel, 0.9)
        for v in graph.vertices():
            assert graph.label(v) in panel.tickers

    def test_density_increases_as_theta_falls(self):
        dbs = stock_market_series((0.95, 0.90), scale="tiny")
        assert dbs[1].total_edges() > dbs[0].total_edges()

    def test_series_cache_returns_same_object(self):
        a = stock_market_database(0.95, scale="tiny")
        b = stock_market_database(0.95, scale="tiny")
        assert a is b

    def test_unknown_scale(self):
        with pytest.raises(DataGenerationError):
            market_config("galactic")


class TestEndToEnd:
    def test_figure5_recovered_at_tiny_scale(self):
        from repro.core import mine_closed_cliques
        from repro.stockmarket import maximum_group

        db = stock_market_database(0.90, scale="tiny")
        result = mine_closed_cliques(db, 1.0)
        top = maximum_group(result, n_periods=len(db))
        assert top is not None
        assert set(FIGURE5_TICKERS) <= set(top.tickers)
