"""Tests for the log-returns correlation variant."""

import numpy as np
import pytest

from repro.exceptions import DataGenerationError
from repro.stockmarket import (
    StockMarketSimulator,
    correlation_matrix,
    log_returns,
    market_config,
    market_graph_from_correlations,
    returns_correlation_matrix,
)


class TestLogReturns:
    def test_shape_and_values(self):
        prices = np.array([[100.0, 50.0], [110.0, 55.0], [121.0, 55.0]])
        returns = log_returns(prices)
        assert returns.shape == (2, 2)
        assert returns[0, 0] == pytest.approx(np.log(1.1))
        assert returns[1, 1] == pytest.approx(0.0)

    def test_requires_positive_prices(self):
        with pytest.raises(DataGenerationError):
            log_returns(np.array([[1.0, -1.0], [2.0, 1.0]]))

    def test_requires_two_days(self):
        with pytest.raises(DataGenerationError):
            log_returns(np.array([[1.0, 2.0]]))


class TestReturnsCorrelation:
    def test_perfectly_coupled_series(self):
        rng = np.random.default_rng(0)
        base = np.exp(0.01 * rng.normal(size=200).cumsum())
        panel = np.column_stack([100 * base, 55 * base])
        corr = returns_correlation_matrix(panel)
        assert corr[0, 1] == pytest.approx(1.0)

    def test_independent_series_decorrelate(self):
        rng = np.random.default_rng(1)
        a = np.exp(0.01 * rng.normal(size=2000).cumsum())
        b = np.exp(0.01 * rng.normal(size=2000).cumsum())
        corr = returns_correlation_matrix(np.column_stack([a, b]))
        # Return correlations of independent walks concentrate near 0 —
        # unlike price-level correlations, which can be spuriously large.
        assert abs(corr[0, 1]) < 0.1

    def test_sparser_graphs_than_price_levels(self):
        """Same θ, fewer edges on returns — the methodological contrast."""
        sim = StockMarketSimulator(market_config("tiny"))
        panel = sim.simulate_period(0)
        by_price = market_graph_from_correlations(
            panel.tickers, correlation_matrix(panel.prices), 0.80
        )
        by_returns = market_graph_from_correlations(
            panel.tickers, returns_correlation_matrix(panel.prices), 0.80
        )
        assert by_returns.edge_count <= by_price.edge_count

    def test_fund_group_survives_either_way(self):
        from repro.stockmarket import FIGURE5_TICKERS

        sim = StockMarketSimulator(market_config("tiny"))
        panel = sim.simulate_period(0)
        index = {t: i for i, t in enumerate(panel.tickers)}
        cols = [index[t] for t in FIGURE5_TICKERS]
        corr = returns_correlation_matrix(panel.prices[:, cols])
        off = corr[~np.eye(12, dtype=bool)]
        assert off.min() > 0.85
