"""Tests for maximal frequent clique mining."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    maximal_subset,
    mine_closed_cliques,
    mine_frequent_cliques,
    mine_maximal_cliques,
)
from repro.graphdb import labelled_clique_database
from tests.conftest import make_random_database


def bruteforce_maximal(db, min_sup):
    frequent = list(mine_frequent_cliques(db, min_sup))
    return sorted(
        p.key()
        for p in frequent
        if not any(p.form.is_proper_subclique_of(q.form) for q in frequent)
    )


class TestPaperExample:
    def test_maximal_set(self, paper_db):
        result = mine_maximal_cliques(paper_db, 2)
        assert sorted(p.key() for p in result) == ["abcd:2", "bde:2"]

    def test_bcd_is_not_maximal_due_to_old_label(self, paper_db):
        """bcd extends by the *old* label a; a prefix-only check would
        wrongly call it maximal."""
        result = mine_maximal_cliques(paper_db, 2)
        assert "bcd" not in {str(p.form) for p in result}

    def test_min_size_filter(self, paper_db):
        result = mine_maximal_cliques(paper_db, 2, min_size=4)
        assert [p.key() for p in result] == ["abcd:2"]


class TestStructuredDatabases:
    def test_nested_cliques_report_only_outermost(self):
        db = labelled_clique_database(
            [(("a", "b", "c", "d"), 3), (("a", "b", "c"), 1)], n_graphs=4
        )
        # abc has support 4 (inside abcd + standalone) but abcd is
        # frequent at 3, so at min_sup=3 only abcd is maximal.
        result = mine_maximal_cliques(db, 3)
        assert sorted(p.key() for p in result) == ["abcd:3"]

    def test_support_drop_exposes_submaximal(self):
        db = labelled_clique_database(
            [(("a", "b", "c", "d"), 2), (("a", "b", "c"), 4)], n_graphs=4
        )
        # At min_sup=3 abcd (support 2) is infrequent; abc, standalone
        # in all four transactions, becomes the maximal pattern.
        result = mine_maximal_cliques(db, 3)
        assert sorted(p.key() for p in result) == ["abc:4"]


class TestAgainstReference:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 50_000), min_sup=st.integers(1, 3))
    def test_matches_bruteforce(self, seed, min_sup):
        db = make_random_database(seed)
        result = mine_maximal_cliques(db, min_sup)
        assert sorted(p.key() for p in result) == bruteforce_maximal(db, min_sup)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 50_000), min_sup=st.integers(1, 3))
    def test_maximal_subset_of_closed(self, seed, min_sup):
        db = make_random_database(seed)
        maximal = {p.key() for p in mine_maximal_cliques(db, min_sup)}
        closed = {p.key() for p in mine_closed_cliques(db, min_sup)}
        assert maximal <= closed

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 50_000), min_sup=st.integers(1, 3))
    def test_every_frequent_below_some_maximal(self, seed, min_sup):
        db = make_random_database(seed)
        maximal = list(mine_maximal_cliques(db, min_sup))
        for pattern in mine_frequent_cliques(db, min_sup):
            assert any(pattern.form.is_subclique_of(m.form) for m in maximal)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 50_000), min_sup=st.integers(1, 3))
    def test_maximal_subset_helper_agrees(self, seed, min_sup):
        db = make_random_database(seed)
        direct = {p.key() for p in mine_maximal_cliques(db, min_sup)}
        from_closed = {
            p.key() for p in maximal_subset(mine_closed_cliques(db, min_sup))
        }
        from_frequent = {
            p.key() for p in maximal_subset(mine_frequent_cliques(db, min_sup))
        }
        assert direct == from_closed == from_frequent

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 50_000))
    def test_witnesses_verify(self, seed):
        db = make_random_database(seed)
        for pattern in mine_maximal_cliques(db, 2):
            pattern.verify(db)
