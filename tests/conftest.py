"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.graphdb import Graph, GraphDatabase, paper_example_database
from repro.graphdb.generators import default_label_alphabet, random_transaction


@pytest.fixture
def paper_db() -> GraphDatabase:
    """The running-example database D of Figure 1."""
    return paper_example_database()


@pytest.fixture
def triangle_graph() -> Graph:
    """A labeled triangle a-b-c."""
    return Graph.from_edges({0: "a", 1: "b", 2: "c"}, [(0, 1), (0, 2), (1, 2)])


@pytest.fixture
def path_graph() -> Graph:
    """A labeled path a-b-c-d (no triangles)."""
    return Graph.from_edges(
        {0: "a", 1: "b", 2: "c", 3: "d"}, [(0, 1), (1, 2), (2, 3)]
    )


@pytest.fixture
def k4_graph() -> Graph:
    """A complete graph on labels a, b, c, d."""
    labels = {i: l for i, l in enumerate("abcd")}
    edges = [(i, j) for i in range(4) for j in range(i + 1, 4)]
    return Graph.from_edges(labels, edges)


def make_random_database(
    seed: int,
    n_graphs: int = 4,
    n_vertices: int = 8,
    edge_probability: float = 0.5,
    n_labels: int = 4,
) -> GraphDatabase:
    """Small random database helper used by property tests."""
    rng = random.Random(seed)
    labels = default_label_alphabet(n_labels)
    database = GraphDatabase(name=f"random-{seed}")
    for gid in range(n_graphs):
        database.add(random_transaction(rng, n_vertices, edge_probability, labels, gid))
    return database
