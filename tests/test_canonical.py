"""Unit + property tests for the clique canonical form (paper §4.1)."""

from itertools import permutations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CanonicalForm,
    canonical_label_sequence,
    is_canonical_sequence,
    is_submultiset,
)
from repro.exceptions import PatternError

labels_st = st.lists(st.sampled_from("abcde"), min_size=0, max_size=8)
nonempty_labels_st = st.lists(st.sampled_from("abcde"), min_size=1, max_size=8)


class TestConstruction:
    def test_from_labels_sorts(self):
        assert CanonicalForm.from_labels("cab").labels == ("a", "b", "c")

    def test_duplicates_kept(self):
        """The paper: aac is the form of two a-vertices and one c-vertex."""
        assert str(CanonicalForm.from_labels(["a", "c", "a"])) == "aac"

    def test_rejects_unsorted_direct_construction(self):
        with pytest.raises(PatternError):
            CanonicalForm(("b", "a"))

    def test_empty_form(self):
        assert CanonicalForm.empty().size == 0

    @given(labels=labels_st)
    def test_permutation_invariance(self, labels):
        """Definition 4.1: all orderings of the label bag share one form."""
        base = CanonicalForm.from_labels(labels)
        for perm in list(permutations(labels))[:24]:
            assert CanonicalForm.from_labels(perm) == base

    @given(labels=labels_st)
    def test_form_is_minimum_string(self, labels):
        """The canonical form is the lexicographic minimum clique string."""
        if not labels:
            return
        form = CanonicalForm.from_labels(labels).labels
        assert form == min(set(permutations(labels)))


class TestStructure:
    def test_last_label(self):
        assert CanonicalForm.from_labels("abc").last_label == "c"
        with pytest.raises(PatternError):
            CanonicalForm.empty().last_label

    def test_extend_appends(self):
        assert str(CanonicalForm.from_labels("ab").extend("b")) == "abb"

    def test_extend_rejects_smaller_label(self):
        """Structural redundancy pruning: growth labels are >= the last."""
        with pytest.raises(PatternError):
            CanonicalForm.from_labels("bc").extend("a")

    def test_direct_prefix(self):
        assert str(CanonicalForm.from_labels("abc").direct_prefix()) == "ab"
        with pytest.raises(PatternError):
            CanonicalForm.empty().direct_prefix()

    def test_prefixes(self):
        forms = [str(f) for f in CanonicalForm.from_labels("abc").prefixes()]
        assert forms == ["a", "ab"]

    @given(labels=nonempty_labels_st)
    def test_lemma_4_2_prefix_closure(self, labels):
        """Every prefix of a canonical form is itself canonical."""
        form = CanonicalForm.from_labels(labels)
        for prefix in form.prefixes():
            assert is_canonical_sequence(prefix.labels)
            assert CanonicalForm.from_labels(prefix.labels) == prefix

    def test_label_counts(self):
        assert CanonicalForm.from_labels("aabc").label_counts() == {
            "a": 2, "b": 1, "c": 1
        }


class TestLemma41SubcliqueTest:
    def test_basic_submultiset(self):
        assert is_submultiset(("a", "c"), ("a", "b", "c"))
        assert not is_submultiset(("a", "a"), ("a", "b"))
        assert is_submultiset((), ("a",))
        assert not is_submultiset(("b",), ("a",))

    def test_is_subclique_of(self):
        ab = CanonicalForm.from_labels("ab")
        abc = CanonicalForm.from_labels("abc")
        assert ab.is_subclique_of(abc)
        assert ab.is_subclique_of(ab)
        assert not ab.is_proper_subclique_of(ab)
        assert ab.is_proper_subclique_of(abc)
        assert abc.is_superclique_of(ab)

    @given(smaller=labels_st, larger=labels_st)
    def test_matches_multiset_semantics(self, smaller, larger):
        """Lemma 4.1: subsequence of sorted strings == sub-multiset."""
        a = tuple(sorted(smaller))
        b = tuple(sorted(larger))
        expected = all(smaller.count(x) <= larger.count(x) for x in set(smaller))
        assert is_submultiset(a, b) == expected

    @given(labels=nonempty_labels_st, extra=st.sampled_from("abcde"))
    def test_extension_is_superclique(self, labels, extra):
        form = CanonicalForm.from_labels(labels)
        bigger = CanonicalForm.from_labels(list(labels) + [extra])
        assert form.is_proper_subclique_of(bigger)


class TestDirectSubcliques:
    def test_all_one_vertex_deletions(self):
        subs = {str(f) for f in CanonicalForm.from_labels("abcd").direct_subcliques()}
        assert subs == {"abc", "abd", "acd", "bcd"}

    def test_duplicate_labels_collapse(self):
        subs = [str(f) for f in CanonicalForm.from_labels("aab").direct_subcliques()]
        assert sorted(subs) == ["aa", "ab"]

    def test_missing_labels(self):
        ab = CanonicalForm.from_labels("ab")
        abcd = CanonicalForm.from_labels("abcd")
        assert ab.missing_labels(abcd) == ("c", "d")
        with pytest.raises(PatternError):
            abcd.missing_labels(ab)

    def test_missing_labels_with_multiplicity(self):
        aa = CanonicalForm.from_labels("aa")
        aaab = CanonicalForm.from_labels("aaab")
        assert aa.missing_labels(aaab) == ("a", "b")


class TestOrderingAndRendering:
    def test_total_order_matches_paper(self):
        """§4.1 global order on strings (positional, then length)."""
        assert CanonicalForm.from_labels("ab") < CanonicalForm.from_labels("ac")
        assert CanonicalForm.from_labels("a") < CanonicalForm.from_labels("ab")
        assert CanonicalForm.from_labels("b") > CanonicalForm.from_labels("abc")

    def test_hash_equals_by_value(self):
        assert hash(CanonicalForm.from_labels("ab")) == hash(CanonicalForm.from_labels("ba"))

    def test_str_compact_for_single_chars(self):
        assert str(CanonicalForm.from_labels("dcba")) == "abcd"

    def test_str_dotted_for_tickers(self):
        form = CanonicalForm.from_labels(["NUV", "DMF"])
        assert str(form) == "DMF.NUV"

    def test_iteration_and_len(self):
        form = CanonicalForm.from_labels("abc")
        assert list(form) == ["a", "b", "c"]
        assert len(form) == 3

    def test_canonical_label_sequence(self):
        assert canonical_label_sequence("cba") == ("a", "b", "c")
