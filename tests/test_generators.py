"""Unit tests for repro.graphdb.generators."""

import random

import pytest

from repro.core import mine_closed_cliques
from repro.exceptions import DataGenerationError
from repro.graphdb import (
    database_with_planted_cliques,
    default_label_alphabet,
    labelled_clique_database,
    overlapping_cliques_graph,
    plant_clique,
    random_database,
    random_transaction,
)


class TestLabelAlphabet:
    def test_single_letters_first(self):
        assert default_label_alphabet(3) == ["a", "b", "c"]

    def test_extends_past_26(self):
        labels = default_label_alphabet(28)
        assert labels[25] == "z"
        assert labels[26] == "aa"
        assert labels[27] == "ab"

    def test_sorted_and_distinct(self):
        labels = default_label_alphabet(60)
        assert len(set(labels)) == 60

    def test_invalid_size(self):
        with pytest.raises(DataGenerationError):
            default_label_alphabet(0)


class TestRandomTransaction:
    def test_zero_probability_gives_no_edges(self):
        g = random_transaction(random.Random(0), 10, 0.0, ["a"])
        assert g.edge_count == 0

    def test_full_probability_gives_complete_graph(self):
        g = random_transaction(random.Random(0), 6, 1.0, ["a", "b"])
        assert g.edge_count == 15

    def test_deterministic_under_seed(self):
        g1 = random_transaction(random.Random(9), 8, 0.5, ["a", "b"])
        g2 = random_transaction(random.Random(9), 8, 0.5, ["a", "b"])
        assert g1 == g2

    def test_invalid_parameters(self):
        rng = random.Random(0)
        with pytest.raises(DataGenerationError):
            random_transaction(rng, -1, 0.5, ["a"])
        with pytest.raises(DataGenerationError):
            random_transaction(rng, 3, 1.5, ["a"])
        with pytest.raises(DataGenerationError):
            random_transaction(rng, 3, 0.5, [])

    def test_random_database_shape(self):
        db = random_database(5, 7, 0.3, 3, seed=1)
        assert len(db) == 5
        assert all(g.vertex_count == 7 for g in db)


class TestPlanting:
    def test_plant_clique_adds_fully_connected_vertices(self):
        g = random_transaction(random.Random(2), 6, 0.2, ["a"])
        planted = plant_clique(g, ["X", "Y", "Z"], random.Random(2))
        assert g.is_clique(planted)
        assert g.label_multiset(planted) == ("X", "Y", "Z")

    def test_planted_cliques_are_mined(self):
        synthetic = database_with_planted_cliques(
            n_graphs=4,
            n_vertices=8,
            edge_probability=0.15,
            n_labels=3,
            planted_specs=[(("P", "Q", "R"), (0, 1, 2))],
            seed=3,
        )
        result = mine_closed_cliques(synthetic.database, min_sup=3)
        keys = {p.key() for p in result}
        assert "PQR:3" in keys
        assert synthetic.planted[0].support == 3
        assert synthetic.planted[0].canonical_labels == ("P", "Q", "R")

    def test_planted_transaction_out_of_range(self):
        with pytest.raises(DataGenerationError):
            database_with_planted_cliques(
                2, 5, 0.2, 2, [(("X", "Y"), (0, 5))], seed=0
            )


class TestOverlappingCliques:
    def test_chain_of_two_triangles(self):
        g = overlapping_cliques_graph([3, 3], overlap=1)
        assert g.vertex_count == 5
        assert g.is_clique([0, 1, 2])
        assert g.is_clique([2, 3, 4])
        assert not g.has_edge(0, 3)

    def test_zero_overlap_disjoint(self):
        g = overlapping_cliques_graph([3, 4], overlap=0)
        assert g.vertex_count == 7

    def test_overlap_must_be_smaller_than_groups(self):
        with pytest.raises(DataGenerationError):
            overlapping_cliques_graph([3, 3], overlap=3)

    def test_explicit_labels_validated(self):
        with pytest.raises(DataGenerationError):
            overlapping_cliques_graph([3, 3], overlap=1, labels=["a", "b"])


class TestLabelledCliqueDatabase:
    def test_supports_match_specs(self):
        db = labelled_clique_database(
            [(("a", "b", "c"), 3), (("d", "e"), 2)], n_graphs=4
        )
        result = mine_closed_cliques(db, min_sup=2)
        keys = {p.key() for p in result}
        assert "abc:3" in keys
        assert "de:2" in keys

    def test_invalid_support(self):
        with pytest.raises(DataGenerationError):
            labelled_clique_database([(("a",), 5)], n_graphs=2)
