"""Tests for the profiling helper."""

import pytest

from repro.bench.profiling import profiled
from repro.core import mine_closed_cliques
from repro.graphdb import paper_example_database


class TestProfiled:
    def test_returns_value(self):
        report = profiled(lambda: 2 + 2)
        assert report.value == 4
        assert report.total_seconds >= 0.0

    def test_mining_hotspots_point_at_library_code(self):
        db = paper_example_database()
        report = profiled(lambda: mine_closed_cliques(db, 2))
        assert sorted(p.key() for p in report.value) == ["abcd:2", "bde:2"]
        assert report.hotspots
        assert all(spot.function.startswith("repro/") for spot in report.hotspots)
        names = " ".join(spot.function for spot in report.hotspots)
        assert "miner" in names or "embeddings" in names

    def test_render_limit(self):
        db = paper_example_database()
        report = profiled(lambda: mine_closed_cliques(db, 2))
        text = report.render(limit=3)
        assert text.count("\n") <= 3
        assert "total:" in text

    def test_exceptions_propagate(self):
        with pytest.raises(RuntimeError):
            profiled(lambda: (_ for _ in ()).throw(RuntimeError("boom")))
