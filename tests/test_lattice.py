"""Unit tests for the Figure 4 lattice structure."""

import pytest

from repro.core import CanonicalForm, CliqueLattice, make_pattern, mine_closed_cliques, mine_frequent_cliques
from repro.exceptions import PatternError


@pytest.fixture
def paper_lattice(paper_db):
    return CliqueLattice.from_result(mine_frequent_cliques(paper_db, 2))


class TestConstruction:
    def test_from_closed_result_expands_first(self, paper_db):
        lattice = CliqueLattice.from_result(mine_closed_cliques(paper_db, 2))
        assert len(lattice) == 19

    def test_duplicate_patterns_rejected(self):
        with pytest.raises(PatternError):
            CliqueLattice([make_pattern("a", 1), make_pattern("a", 1)])

    def test_contains_and_pattern(self, paper_lattice):
        form = CanonicalForm.from_labels("bde")
        assert form in paper_lattice
        assert paper_lattice.pattern(form).support == 2
        with pytest.raises(PatternError):
            paper_lattice.pattern(CanonicalForm.from_labels("zz"))


class TestStructure:
    def test_levels(self, paper_lattice):
        levels = paper_lattice.levels()
        assert {k: len(v) for k, v in levels.items()} == {1: 5, 2: 8, 3: 5, 4: 1}

    def test_up_and_down_edges_are_inverses(self, paper_lattice):
        for level in paper_lattice.levels().values():
            for pattern in level:
                for sub in paper_lattice.direct_subcliques(pattern.form):
                    assert pattern.form in paper_lattice.direct_supercliques(sub)

    def test_edge_count_matches_figure4(self, paper_lattice):
        valid, redundant = paper_lattice.edge_count()
        # 14 nodes above level 1, each grown from exactly one prefix.
        assert valid == 14
        assert redundant == 21

    def test_closed_marking(self, paper_lattice):
        assert paper_lattice.is_closed(CanonicalForm.from_labels("abcd"))
        assert not paper_lattice.is_closed(CanonicalForm.from_labels("abc"))


class TestCriticalPath:
    def test_path_is_prefix_chain(self, paper_lattice):
        path = paper_lattice.critical_path(CanonicalForm.from_labels("abcd"))
        assert [str(f) for f in path] == ["a", "ab", "abc", "abcd"]

    def test_missing_target(self, paper_lattice):
        with pytest.raises(PatternError):
            paper_lattice.critical_path(CanonicalForm.from_labels("zzz"))

    def test_missing_prefix_detected(self):
        lattice = CliqueLattice([make_pattern("ab", 2)])  # 'a' absent
        with pytest.raises(PatternError):
            lattice.critical_path(CanonicalForm.from_labels("ab"))


class TestRendering:
    def test_render_marks_closed_with_brackets(self, paper_lattice):
        text = paper_lattice.render()
        assert "[abcd:2]" in text
        assert "(abc:2)" in text
        assert text.splitlines()[0].startswith("level 1:")

    def test_dot_output_well_formed(self, paper_lattice):
        dot = paper_lattice.to_dot()
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert '"abc:2" -> "abcd:2" [style=solid];' in dot
        assert '"bcd:2" -> "abcd:2" [style=dashed];' in dot
