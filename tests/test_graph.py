"""Unit tests for repro.graphdb.graph."""

import pytest

from repro.exceptions import (
    DuplicateVertexError,
    GraphError,
    SelfLoopError,
    VertexNotFoundError,
)
from repro.graphdb import Graph


class TestConstruction:
    def test_empty_graph(self):
        g = Graph()
        assert g.vertex_count == 0
        assert g.edge_count == 0
        assert list(g.vertices()) == []
        assert list(g.edges()) == []

    def test_add_vertex_and_label(self):
        g = Graph()
        g.add_vertex(3, "x")
        assert g.has_vertex(3)
        assert g.label(3) == "x"
        assert g.vertex_count == 1

    def test_duplicate_vertex_rejected(self):
        g = Graph()
        g.add_vertex(0, "a")
        with pytest.raises(DuplicateVertexError):
            g.add_vertex(0, "b")

    def test_add_edge_both_directions(self):
        g = Graph.from_edges({0: "a", 1: "b"}, [(0, 1)])
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert g.edge_count == 1

    def test_add_edge_idempotent(self):
        g = Graph.from_edges({0: "a", 1: "b"}, [(0, 1), (0, 1), (1, 0)])
        assert g.edge_count == 1

    def test_self_loop_rejected(self):
        g = Graph()
        g.add_vertex(0, "a")
        with pytest.raises(SelfLoopError):
            g.add_edge(0, 0)

    def test_edge_to_missing_vertex_rejected(self):
        g = Graph()
        g.add_vertex(0, "a")
        with pytest.raises(VertexNotFoundError):
            g.add_edge(0, 1)
        with pytest.raises(VertexNotFoundError):
            g.add_edge(2, 0)

    def test_from_edges(self, triangle_graph):
        assert triangle_graph.vertex_count == 3
        assert triangle_graph.edge_count == 3

    def test_noncontiguous_vertex_ids(self):
        g = Graph.from_edges({10: "a", 99: "b"}, [(10, 99)])
        assert g.has_edge(10, 99)
        assert sorted(g.vertices()) == [10, 99]


class TestRemoval:
    def test_remove_vertex_drops_edges(self, triangle_graph):
        triangle_graph.remove_vertex(0)
        assert triangle_graph.vertex_count == 2
        assert triangle_graph.edge_count == 1
        assert not triangle_graph.has_vertex(0)

    def test_remove_missing_vertex(self):
        with pytest.raises(VertexNotFoundError):
            Graph().remove_vertex(0)

    def test_remove_clears_label_index(self):
        g = Graph.from_edges({0: "a", 1: "a"}, [(0, 1)])
        g.remove_vertex(0)
        assert g.vertices_with_label("a") == frozenset({1})
        g.remove_vertex(1)
        assert g.vertices_with_label("a") == frozenset()
        assert "a" not in g.distinct_labels()


class TestQueries:
    def test_neighbors_and_degree(self, triangle_graph):
        assert triangle_graph.neighbors(0) == {1, 2}
        assert triangle_graph.degree(0) == 2

    def test_neighbors_missing_vertex(self):
        with pytest.raises(VertexNotFoundError):
            Graph().neighbors(0)

    def test_label_missing_vertex(self):
        with pytest.raises(VertexNotFoundError):
            Graph().label(0)

    def test_vertices_with_label(self):
        g = Graph.from_edges({0: "a", 1: "a", 2: "b"}, [])
        assert g.vertices_with_label("a") == frozenset({0, 1})
        assert g.vertices_with_label("zzz") == frozenset()

    def test_distinct_labels(self, triangle_graph):
        assert triangle_graph.distinct_labels() == {"a", "b", "c"}

    def test_max_degree(self, path_graph):
        assert path_graph.max_degree() == 2
        assert Graph().max_degree() == 0

    def test_density(self, triangle_graph, path_graph):
        assert triangle_graph.density() == pytest.approx(1.0)
        assert path_graph.density() == pytest.approx(0.5)
        assert Graph().density() == 0.0

    def test_is_clique(self, k4_graph, path_graph):
        assert k4_graph.is_clique([0, 1, 2, 3])
        assert k4_graph.is_clique([0, 2])
        assert k4_graph.is_clique([1])
        assert k4_graph.is_clique([])
        assert not path_graph.is_clique([0, 1, 2])

    def test_is_clique_unknown_vertex(self, k4_graph):
        with pytest.raises(VertexNotFoundError):
            k4_graph.is_clique([0, 99])

    def test_label_multiset_sorted(self):
        g = Graph.from_edges({0: "z", 1: "a", 2: "m"}, [])
        assert g.label_multiset([0, 1, 2]) == ("a", "m", "z")

    def test_common_neighbors(self, k4_graph):
        assert k4_graph.common_neighbors([0, 1]) == {2, 3}
        assert k4_graph.common_neighbors([0, 1, 2]) == {3}

    def test_common_neighbors_empty_input(self, k4_graph):
        with pytest.raises(GraphError):
            k4_graph.common_neighbors([])

    def test_common_neighbors_excludes_members(self, triangle_graph):
        assert 1 not in triangle_graph.common_neighbors([0, 1])

    def test_connected_components(self):
        g = Graph.from_edges({0: "a", 1: "b", 2: "c", 3: "d"}, [(0, 1), (2, 3)])
        components = sorted(g.connected_components(), key=min)
        assert components == [{0, 1}, {2, 3}]

    def test_contains_len_iter(self, triangle_graph):
        assert 0 in triangle_graph
        assert 9 not in triangle_graph
        assert len(triangle_graph) == 3
        assert sorted(triangle_graph) == [0, 1, 2]


class TestDerivedGraphs:
    def test_copy_is_independent(self, triangle_graph):
        clone = triangle_graph.copy()
        clone.remove_vertex(0)
        assert triangle_graph.vertex_count == 3
        assert clone.vertex_count == 2

    def test_copy_equality(self, triangle_graph):
        assert triangle_graph.copy() == triangle_graph

    def test_relabeled_shifts_ids(self, triangle_graph):
        shifted = triangle_graph.relabeled(10)
        assert sorted(shifted.vertices()) == [10, 11, 12]
        assert shifted.has_edge(10, 11)
        assert shifted.label(10) == triangle_graph.label(0)

    def test_induced_subgraph(self, k4_graph):
        sub = k4_graph.induced_subgraph([0, 1, 2])
        assert sub.vertex_count == 3
        assert sub.edge_count == 3
        assert sub.is_clique([0, 1, 2])

    def test_induced_subgraph_keeps_ids(self, k4_graph):
        sub = k4_graph.induced_subgraph([1, 3])
        assert sorted(sub.vertices()) == [1, 3]
        assert sub.has_edge(1, 3)

    def test_equality_structural(self):
        a = Graph.from_edges({0: "a", 1: "b"}, [(0, 1)])
        b = Graph.from_edges({0: "a", 1: "b"}, [(0, 1)])
        c = Graph.from_edges({0: "a", 1: "b"}, [])
        assert a == b
        assert a != c

    def test_graphs_unhashable(self, triangle_graph):
        with pytest.raises(TypeError):
            hash(triangle_graph)

    def test_repr_mentions_counts(self, triangle_graph):
        assert "|V|=3" in repr(triangle_graph)
        assert "|E|=3" in repr(triangle_graph)
