"""Tests for parallel mining over DFS roots."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ClanMiner,
    MinerConfig,
    MinerStatistics,
    mine_closed_cliques,
    mine_closed_cliques_parallel,
    partition_roots,
)
from repro.exceptions import MiningError
from tests.conftest import make_random_database


class TestRootPartitioning:
    def test_round_robin(self):
        chunks = partition_roots(list("abcdef"), 2)
        assert chunks == [("a", "c", "e"), ("b", "d", "f")]

    def test_more_chunks_than_labels(self):
        chunks = partition_roots(["a", "b"], 5)
        assert chunks == [("a",), ("b",)]

    def test_empty_labels(self):
        assert partition_roots([], 3) == []

    def test_invalid_chunks(self):
        with pytest.raises(MiningError):
            partition_roots(["a"], 0)


class TestRootRestrictedMining:
    def test_single_root_subtree(self, paper_db):
        result = ClanMiner(paper_db).mine(2, root_labels=("b",))
        assert sorted(p.key() for p in result) == ["bde:2"]

    def test_union_over_roots_is_complete(self, paper_db):
        serial = mine_closed_cliques(paper_db, 2)
        pieces = []
        for label in "abcde":
            pieces.extend(ClanMiner(paper_db).mine(2, root_labels=(label,)))
        assert sorted(p.key() for p in pieces) == sorted(p.key() for p in serial)

    def test_roots_require_redundancy_pruning(self, paper_db):
        config = MinerConfig(
            closed_only=False,
            structural_redundancy_pruning=False,
            nonclosed_prefix_pruning=False,
        )
        with pytest.raises(MiningError):
            ClanMiner(paper_db, config).mine(2, root_labels=("a",))


class TestParallelMining:
    def test_processes_one_bypasses_pool(self, paper_db):
        result = mine_closed_cliques_parallel(paper_db, 2, processes=1)
        assert sorted(p.key() for p in result) == ["abcd:2", "bde:2"]

    def test_two_processes_match_serial(self, paper_db):
        result = mine_closed_cliques_parallel(paper_db, 2, processes=2)
        assert sorted(p.key() for p in result) == ["abcd:2", "bde:2"]

    def test_result_order_is_canonical(self, paper_db):
        result = mine_closed_cliques_parallel(paper_db, 2, processes=2)
        forms = [p.form.labels for p in result]
        assert forms == sorted(forms)

    def test_statistics_are_merged(self, paper_db):
        parallel = mine_closed_cliques_parallel(paper_db, 2, processes=2)
        serial = mine_closed_cliques(paper_db, 2)
        # Per-subtree work is identical; only the level-1 scan repeats.
        assert parallel.statistics.closed_cliques == serial.statistics.closed_cliques
        assert parallel.statistics.nonclosed_prefix_prunes == (
            serial.statistics.nonclosed_prefix_prunes
        )
        assert parallel.statistics.max_depth == serial.statistics.max_depth

    def test_requires_redundancy_pruning(self, paper_db):
        config = MinerConfig(
            closed_only=False,
            structural_redundancy_pruning=False,
            nonclosed_prefix_pruning=False,
        )
        with pytest.raises(MiningError):
            mine_closed_cliques_parallel(paper_db, 2, processes=2, config=config)

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_matches_serial_on_random_databases(self, seed):
        db = make_random_database(seed)
        parallel = mine_closed_cliques_parallel(db, 2, processes=2)
        serial = mine_closed_cliques(db, 2)
        assert sorted(p.key() for p in parallel) == sorted(p.key() for p in serial)

    def test_witnesses_preserved(self, paper_db):
        for pattern in mine_closed_cliques_parallel(paper_db, 2, processes=2):
            pattern.verify(paper_db)

    @pytest.mark.parametrize("scheduler", ["static", "stealing"])
    def test_schedulers_match_serial(self, paper_db, scheduler):
        result = mine_closed_cliques_parallel(
            paper_db, 2, processes=2, scheduler=scheduler
        )
        serial = mine_closed_cliques(paper_db, 2)
        assert sorted(p.key() for p in result) == sorted(p.key() for p in serial)
        assert result.statistics.snapshot() == serial.statistics.snapshot()

    def test_unknown_scheduler_rejected(self, paper_db):
        with pytest.raises(MiningError, match="scheduler"):
            mine_closed_cliques_parallel(paper_db, 2, processes=2, scheduler="fifo")


class TestStatisticsMerge:
    """Regression tests for the merged-statistics contract.

    Historically the pool summed per-chunk ``database_scans`` (counting
    the label-support scan once per worker) and stamped a sum of
    per-chunk elapsed times over the wall clock; merged results now
    report wall-clock ``elapsed_seconds``, summed worker time in
    ``statistics.cpu_seconds``, and serial-equal ``database_scans``.
    """

    def test_database_scans_equal_serial(self, paper_db):
        parallel = mine_closed_cliques_parallel(paper_db, 2, processes=2)
        serial = mine_closed_cliques(paper_db, 2)
        assert parallel.statistics.database_scans == serial.statistics.database_scans

    def test_elapsed_is_wall_clock_and_cpu_is_summed(self, paper_db):
        parallel = mine_closed_cliques_parallel(paper_db, 2, processes=2)
        assert parallel.elapsed_seconds > 0.0
        assert parallel.statistics.cpu_seconds > 0.0

    def test_serial_mine_records_cpu_seconds(self, paper_db):
        serial = mine_closed_cliques(paper_db, 2)
        assert serial.statistics.cpu_seconds > 0.0

    def test_merge_sums_cpu_seconds(self):
        left, right = MinerStatistics(), MinerStatistics()
        left.cpu_seconds, right.cpu_seconds = 1.5, 2.5
        left.merge(right)
        assert left.cpu_seconds == pytest.approx(4.0)

    def test_cpu_seconds_stays_out_of_deterministic_views(self):
        stats = MinerStatistics()
        stats.cpu_seconds = 1.23
        assert "cpu_seconds" not in stats.snapshot()
        assert "cpu_seconds" not in repr(stats)
