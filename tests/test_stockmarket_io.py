"""Tests for CSV price-panel I/O."""

import numpy as np
import pytest

from repro.exceptions import FormatError
from repro.stockmarket import (
    StockMarketSimulator,
    load_panels_csv,
    load_period_csv,
    market_config,
    save_panels_csv,
    save_period_csv,
)
from repro.stockmarket.pricegen import PeriodPrices


def small_panel(period=0):
    prices = np.array([[1.0, 2.0], [1.1, 2.2], [1.2, 2.1]])
    return PeriodPrices(period=period, tickers=("AAA", "BBB"), prices=prices)


class TestRoundTrip:
    def test_single_period(self, tmp_path):
        path = tmp_path / "p0.csv"
        save_period_csv(small_panel(), path)
        again = load_period_csv(path, period=0)
        assert again.tickers == ("AAA", "BBB")
        assert np.allclose(again.prices, small_panel().prices)

    def test_custom_dates(self, tmp_path):
        path = tmp_path / "p0.csv"
        save_period_csv(small_panel(), path, dates=["d1", "d2", "d3"])
        text = path.read_text()
        assert text.splitlines()[1].startswith("d1,")

    def test_date_count_mismatch(self, tmp_path):
        with pytest.raises(FormatError):
            save_period_csv(small_panel(), tmp_path / "x.csv", dates=["only-one"])

    def test_multi_period_directory(self, tmp_path):
        sim = StockMarketSimulator(market_config("tiny"))
        panels = [sim.simulate_period(p) for p in range(3)]
        paths = save_panels_csv(panels, tmp_path / "panels")
        assert len(paths) == 3
        again = load_panels_csv(paths)
        for original, loaded in zip(panels, again):
            assert loaded.tickers == original.tickers
            assert np.allclose(loaded.prices, original.prices, atol=1e-5)

    def test_pipeline_from_csv(self, tmp_path):
        """Real-data path: CSV -> panels -> market graphs -> CLAN."""
        from repro.core import mine_closed_cliques
        from repro.graphdb import GraphDatabase
        from repro.stockmarket import market_graph_from_prices

        sim = StockMarketSimulator(market_config("tiny"))
        paths = save_panels_csv(sim.simulate_all(), tmp_path / "panels")
        panels = load_panels_csv(paths)
        db = GraphDatabase(
            [market_graph_from_prices(p, 0.9) for p in panels], name="csv"
        )
        result = mine_closed_cliques(db, 1.0)
        assert result.max_size() >= 3


class TestErrors:
    def write(self, tmp_path, text):
        path = tmp_path / "bad.csv"
        path.write_text(text)
        return path

    def test_empty_file(self, tmp_path):
        with pytest.raises(FormatError):
            load_period_csv(self.write(tmp_path, ""))

    def test_bad_header(self, tmp_path):
        with pytest.raises(FormatError):
            load_period_csv(self.write(tmp_path, "AAA,BBB\n1,2\n2,3\n"))

    def test_duplicate_ticker(self, tmp_path):
        with pytest.raises(FormatError):
            load_period_csv(self.write(tmp_path, "date,A,A\nd,1,2\nd,2,3\n"))

    def test_empty_ticker(self, tmp_path):
        with pytest.raises(FormatError):
            load_period_csv(self.write(tmp_path, "date,A,\nd,1,2\nd,2,3\n"))

    def test_ragged_row(self, tmp_path):
        with pytest.raises(FormatError):
            load_period_csv(self.write(tmp_path, "date,A,B\nd,1\nd,2,3\n"))

    def test_non_numeric_price(self, tmp_path):
        with pytest.raises(FormatError):
            load_period_csv(self.write(tmp_path, "date,A,B\nd,1,x\nd,2,3\n"))

    def test_too_few_days(self, tmp_path):
        with pytest.raises(FormatError):
            load_period_csv(self.write(tmp_path, "date,A,B\nd,1,2\n"))

    def test_blank_lines_skipped(self, tmp_path):
        panel = load_period_csv(
            self.write(tmp_path, "date,A,B\nd,1,2\n\nd,2,3\n")
        )
        assert panel.prices.shape == (2, 2)
