"""Tests for the breadth-first (Apriori/FSG-style) clique miner."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    AprioriCliqueMiner,
    mine_closed_cliques_bfs,
    mine_frequent_cliques_bfs,
)
from repro.core import mine_closed_cliques, mine_frequent_cliques
from repro.graphdb import PAPER_FREQUENT_CLIQUES
from tests.conftest import make_random_database


class TestPaperExample:
    def test_closed_set_matches(self, paper_db):
        result = mine_closed_cliques_bfs(paper_db, 2)
        assert sorted(p.key() for p in result) == ["abcd:2", "bde:2"]

    def test_frequent_set_matches(self, paper_db):
        result = mine_frequent_cliques_bfs(paper_db, 2)
        assert sorted(str(p.form) for p in result) == sorted(PAPER_FREQUENT_CLIQUES)

    def test_supports_and_witnesses(self, paper_db):
        for pattern in mine_closed_cliques_bfs(paper_db, 2):
            assert pattern.support == 2
            pattern.verify(paper_db)

    def test_statistics_track_levels(self, paper_db):
        result = mine_frequent_cliques_bfs(paper_db, 2)
        assert result.statistics.max_depth == 4
        assert result.statistics.frequent_cliques == 19


class TestAgainstClan:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 50_000), min_sup=st.integers(1, 3))
    def test_bfs_equals_dfs_closed(self, seed, min_sup):
        db = make_random_database(seed)
        bfs = mine_closed_cliques_bfs(db, min_sup)
        dfs = mine_closed_cliques(db, min_sup)
        assert sorted(p.key() for p in bfs) == sorted(p.key() for p in dfs)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 50_000), min_sup=st.integers(1, 3))
    def test_bfs_equals_dfs_frequent(self, seed, min_sup):
        db = make_random_database(seed)
        bfs = mine_frequent_cliques_bfs(db, min_sup)
        dfs = mine_frequent_cliques(db, min_sup)
        assert sorted(p.key() for p in bfs) == sorted(p.key() for p in dfs)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 50_000))
    def test_duplicate_label_multisets(self, seed):
        db = make_random_database(seed, n_labels=2, edge_probability=0.6)
        bfs = mine_closed_cliques_bfs(db, 2)
        dfs = mine_closed_cliques(db, 2)
        assert sorted(p.key() for p in bfs) == sorted(p.key() for p in dfs)


class TestAprioriMechanics:
    def test_join_requires_shared_prefix(self, paper_db):
        """bcd exists; its generating join is bc ⋈ bd (prefix 'b')."""
        miner = AprioriCliqueMiner(paper_db)
        result = miner.mine(2, closed_only=False)
        forms = {p.labels for p in result}
        assert ("b", "c", "d") in forms

    def test_subclique_pruning_is_safe(self, paper_db):
        """All 19 frequent cliques survive the Apriori candidate prune."""
        result = mine_frequent_cliques_bfs(paper_db, 2)
        assert len(result) == 19
