"""Tests for DOT export of graphs and clique embeddings."""

import pytest

from repro.graphdb import clique_embedding_dot, graph_to_dot, paper_graph_g1


class TestGraphToDot:
    def test_structure(self, triangle_graph):
        dot = graph_to_dot(triangle_graph, name="tri")
        assert dot.startswith('graph "tri" {')
        assert dot.rstrip().endswith("}")
        assert dot.count(" -- ") == 3

    def test_labels_shown(self, triangle_graph):
        dot = graph_to_dot(triangle_graph)
        assert 'label="a"' in dot
        assert 'label="b"' in dot

    def test_ids_optional(self, triangle_graph):
        dot = graph_to_dot(triangle_graph, show_ids=True)
        assert 'label="a#0"' in dot

    def test_highlight_fills_group(self, triangle_graph):
        dot = graph_to_dot(triangle_graph, highlights=[{0, 1}])
        assert dot.count("style=filled") == 2
        assert "fillcolor=lightblue" in dot

    def test_multiple_groups_get_distinct_colors(self, triangle_graph):
        dot = graph_to_dot(triangle_graph, highlights=[{0}, {1}])
        assert "lightblue" in dot
        assert "palegreen" in dot

    def test_intra_group_edges_bold(self, triangle_graph):
        dot = graph_to_dot(triangle_graph, highlights=[{0, 1}])
        assert "0 -- 1 [penwidth=2];" in dot
        assert "0 -- 2;" in dot

    def test_quoting(self):
        from repro.graphdb import Graph

        g = Graph()
        g.add_vertex(0, 'we"ird')
        dot = graph_to_dot(g)
        assert '\\"' in dot


class TestCliqueEmbeddingDot:
    def test_context_limits_vertices(self):
        g1 = paper_graph_g1()
        dot = clique_embedding_dot(g1, [2, 3, 6], context_hops=0)
        # Only the embedding itself.
        assert dot.count("style=filled") == 3
        assert " -- " in dot

    def test_one_hop_context_includes_neighbours(self):
        g1 = paper_graph_g1()
        zero = clique_embedding_dot(g1, [2, 3, 6], context_hops=0)
        one = clique_embedding_dot(g1, [2, 3, 6], context_hops=1)
        assert len(one) > len(zero)
        # Neighbours are drawn but not filled.
        assert one.count("style=filled") == 3
