"""Tests for occurrence counting (the §4.3 occurrence discussion)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CanonicalForm,
    embeddings_in_graph,
    iter_embeddings,
    mine_frequent_cliques,
    occurrence_counts,
    occurrence_report,
    total_occurrences,
    transaction_support,
)
from repro.graphdb import GraphDatabase, paper_example_database
from tests.conftest import make_random_database


class TestPaperFacts:
    def test_bd_has_four_occurrences(self, paper_db):
        """§4.3: 'bd:2 ... has totally four occurrences'."""
        form = CanonicalForm.from_labels("bd")
        assert total_occurrences(paper_db, form) == 4
        assert occurrence_counts(paper_db, form) == {0: 2, 1: 2}

    def test_abcd_embedding_counts(self, paper_db):
        """Figure 3: two embeddings in G1, one in G2."""
        form = CanonicalForm.from_labels("abcd")
        assert occurrence_counts(paper_db, form) == {0: 2, 1: 1}

    def test_every_bd_occurrence_inside_an_abd_occurrence(self, paper_db):
        """The occurrence-match situation that §4.3 argues about."""
        bd = {
            (tid, frozenset(v))
            for tid, v in iter_embeddings(paper_db, CanonicalForm.from_labels("bd"))
        }
        abd = {
            (tid, frozenset(v))
            for tid, v in iter_embeddings(paper_db, CanonicalForm.from_labels("abd"))
        }
        for tid, vertices in bd:
            assert any(t == tid and vertices <= bigger for t, bigger in abd)


class TestCounting:
    def test_transaction_support_matches_miner(self, paper_db):
        for pattern in mine_frequent_cliques(paper_db, 2):
            assert transaction_support(paper_db, pattern.form) == pattern.support

    def test_missing_pattern_counts_zero(self, paper_db):
        form = CanonicalForm.from_labels("zzz")
        assert total_occurrences(paper_db, form) == 0
        assert occurrence_counts(paper_db, form) == {}

    def test_embeddings_in_graph(self, paper_db):
        embeddings = embeddings_in_graph(paper_db[0], CanonicalForm.from_labels("bd"))
        assert sorted(embeddings) == [(2, 3), (2, 5)]

    def test_embeddings_are_valid_cliques(self, paper_db):
        form = CanonicalForm.from_labels("abc")
        for tid, vertices in iter_embeddings(paper_db, form):
            graph = paper_db[tid]
            assert graph.is_clique(vertices)
            assert graph.label_multiset(vertices) == form.labels

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 50_000))
    def test_each_vertex_set_once(self, seed):
        db = make_random_database(seed, n_graphs=2)
        for pattern in mine_frequent_cliques(db, 1):
            seen = list(iter_embeddings(db, pattern.form))
            assert len(seen) == len(set(seen))

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 50_000))
    def test_counts_match_bruteforce(self, seed):
        from itertools import combinations

        db = make_random_database(seed, n_graphs=2, n_vertices=7)
        for pattern in mine_frequent_cliques(db, 1):
            form = pattern.form
            expected = 0
            for graph in db:
                for subset in combinations(sorted(graph.vertices()), form.size):
                    if graph.is_clique(subset) and graph.label_multiset(subset) == form.labels:
                        expected += 1
            assert total_occurrences(db, form) == expected, form


class TestReport:
    def test_report_layout(self, paper_db):
        forms = [CanonicalForm.from_labels(x) for x in ("bd", "abd", "abcd")]
        text = occurrence_report(paper_db, forms)
        lines = text.splitlines()
        assert "support" in lines[0] and "occurrences" in lines[0]
        assert any("bd" in line and "4" in line for line in lines[1:])
