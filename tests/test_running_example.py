"""Integration tests pinning the paper's running example (Figures 1–4).

Every fact the paper states about D = {G1, G2} is asserted here; this
file is the reproduction's primary correctness anchor.
"""

import pytest

from repro.baselines import enumeration_orders
from repro.core import (
    CanonicalForm,
    ClanMiner,
    CliqueLattice,
    EmbeddingStore,
    MinerConfig,
    mine_closed_cliques,
    mine_frequent_cliques,
)
from repro.graphdb import (
    PAPER_CLOSED_CLIQUES,
    PAPER_ENUMERATION_ORDER,
    PAPER_FREQUENT_CLIQUES,
    PseudoDatabase,
    paper_example_database,
    paper_graph_g1,
    paper_graph_g2,
)


class TestFigure1Structure:
    """Structural facts the paper states about G1 and G2."""

    def test_labels(self):
        for graph in (paper_graph_g1(), paper_graph_g2()):
            assert sorted(graph.labels().values()) == ["a", "b", "c", "d", "d", "e"]

    def test_g1_u4_neighbourhood(self):
        """§4.3: u4 (label c) has exactly the neighbours u1, u2, u3, u5."""
        g1 = paper_graph_g1()
        assert g1.label(4) == "c"
        assert g1.neighbors(4) == {1, 2, 3, 5}
        # and u1 (label a) connects to all other neighbours of u4.
        assert g1.label(1) == "a"
        assert {2, 3, 5} <= g1.neighbors(1)

    def test_g2_v4_neighbourhood(self):
        """§4.3: v4 (label c) has exactly the neighbours v1, v2, v5."""
        g2 = paper_graph_g2()
        assert g2.label(4) == "c"
        assert g2.neighbors(4) == {1, 2, 5}
        assert g2.label(1) == "a"
        assert {2, 5} <= g2.neighbors(1)

    def test_g2_v6_degree_cascade(self):
        """§4.2: v6 has degree 2; removing it drops v3 to degree 2."""
        g2 = paper_graph_g2()
        assert g2.degree(6) == 2
        g2.remove_vertex(6)
        assert g2.degree(3) == 2

    def test_abcd_embeddings(self):
        """Figure 3: two embeddings in G1, one in G2."""
        db = paper_example_database()
        pseudo = PseudoDatabase(db)
        store = EmbeddingStore.for_label(db, pseudo, "a")
        for label in ("b", "c", "d"):
            store = store.extend(label, None if label == "b" else label)
        # Re-derive carefully: grow a -> ab -> abc -> abcd.
        store = EmbeddingStore.for_label(db, pseudo, "a")
        last = "a"
        for label in ("b", "c", "d"):
            store = store.extend(label, last)
            last = label
        counts = {tid: len(records) for tid, records in store.by_transaction.items()}
        assert counts == {0: 2, 1: 1}

    def test_bd_has_four_occurrences(self):
        """§4.3: bd:2 has exactly four occurrences in D."""
        db = paper_example_database()
        store = EmbeddingStore.for_label(db, PseudoDatabase(db), "b").extend("d", "b")
        assert store.embedding_count == 4


class TestExample21:
    """Example 2.1: the complete frequent and closed sets."""

    def test_nineteen_frequent_cliques(self, paper_db):
        result = mine_frequent_cliques(paper_db, 2)
        assert len(result) == 19
        assert tuple(str(p.form) for p in result) == PAPER_FREQUENT_CLIQUES
        assert all(p.support == 2 for p in result)

    def test_two_closed_cliques(self, paper_db):
        result = mine_closed_cliques(paper_db, 2)
        assert tuple(sorted(str(p.form) for p in result)) == PAPER_CLOSED_CLIQUES
        assert all(p.support == 2 for p in result)

    def test_closed_set_expands_to_frequent_set(self, paper_db):
        closed = mine_closed_cliques(paper_db, 2)
        frequent = mine_frequent_cliques(paper_db, 2)
        assert sorted(closed.expand_to_frequent().keys()) == sorted(frequent.keys())

    def test_min_sup_one_unions_both_graphs(self, paper_db):
        result = mine_frequent_cliques(paper_db, 1)
        # Extra support-1 patterns exist (e.g. the bdd triangle in G2
        # does not; but abd in G2 via v1 v2 v3 is the same pattern).
        assert len(result) >= 19


class TestSection42Enumeration:
    def test_dfs_enumeration_order(self, paper_db):
        keys = enumeration_orders(paper_db, 2)
        assert keys == [f"{form}:2" for form in PAPER_ENUMERATION_ORDER]

    def test_duplicate_generation_without_redundancy_pruning(self, paper_db):
        """§4.2: without the pruning, cliques are generated repeatedly."""
        config = MinerConfig(
            closed_only=False,
            structural_redundancy_pruning=False,
            nonclosed_prefix_pruning=False,
        )
        result = ClanMiner(paper_db, config).mine(2)
        assert sorted(p.key() for p in result) == sorted(
            f"{form}:2" for form in PAPER_FREQUENT_CLIQUES
        )
        assert result.statistics.duplicates_collapsed > 0

    def test_duplicates_do_not_inflate_node_counts(self, paper_db):
        """A collapsed duplicate is rejected before it is counted.

        The duplicate-form check runs ahead of the per-node bookkeeping,
        so with redundancy pruning off every *counted* prefix is a
        distinct frequent clique: the visited-node total, the frequent
        total, and the per-size histogram must all agree, and
        ``duplicates_collapsed`` carries the rework separately.
        """
        config = MinerConfig(
            closed_only=False,
            structural_redundancy_pruning=False,
            nonclosed_prefix_pruning=False,
        )
        stats = ClanMiner(paper_db, config).mine(2).statistics
        assert stats.duplicates_collapsed > 0
        assert stats.prefixes_visited == stats.frequent_cliques
        assert sum(stats.frequent_by_size.values()) == stats.frequent_cliques
        # The deduplicated tree is exactly the tree redundancy pruning
        # would have enumerated directly.
        pruned = ClanMiner(
            paper_db,
            MinerConfig(closed_only=False, nonclosed_prefix_pruning=False),
        ).mine(2).statistics
        assert stats.prefixes_visited == pruned.prefixes_visited
        assert stats.frequent_by_size == pruned.frequent_by_size


class TestSection43Pruning:
    def test_prefix_c_pruned_by_label_a(self, paper_db):
        """§4.3 example: a is a non-closed extension label w.r.t. c:2."""
        store = EmbeddingStore.for_label(paper_db, PseudoDatabase(paper_db), "c")
        assert store.nonclosed_extension_label("c") == "a"

    def test_prefix_e_pruned_by_b_and_d(self, paper_db):
        """§4.3 example: both b and d prune prefix e:2 (min is returned)."""
        store = EmbeddingStore.for_label(paper_db, PseudoDatabase(paper_db), "e")
        assert store.nonclosed_extension_label("e") == "b"

    def test_prefix_b_not_pruned(self, paper_db):
        """§4.3: pruning b:2 would lose the closed clique bde:2."""
        store = EmbeddingStore.for_label(paper_db, PseudoDatabase(paper_db), "b")
        assert store.nonclosed_extension_label("b") is None

    def test_prefix_bd_not_pruned(self, paper_db):
        """§4.3: bd:2 is occurrence-matched by abd:2 yet must survive."""
        store = EmbeddingStore.for_label(paper_db, PseudoDatabase(paper_db), "b")
        store = store.extend("d", "b")
        assert store.nonclosed_extension_label("d") is None

    def test_pruning_statistics(self, paper_db):
        result = mine_closed_cliques(paper_db, 2)
        stats = result.statistics
        assert stats.nonclosed_prefix_prunes > 0
        assert stats.closed_cliques == 2
        # Pruning never costs completeness.
        assert {str(p.form) for p in result} == set(PAPER_CLOSED_CLIQUES)


class TestFigure4Lattice:
    def test_node_and_closed_sets(self, paper_db):
        lattice = CliqueLattice.from_result(mine_frequent_cliques(paper_db, 2))
        assert len(lattice) == 19
        closed = [str(f) for f in lattice.closed_forms()]
        assert closed == ["abcd", "bde"]

    def test_abcd_has_four_direct_subcliques(self, paper_db):
        lattice = CliqueLattice.from_result(mine_frequent_cliques(paper_db, 2))
        abcd = CanonicalForm.from_labels("abcd")
        subs = {str(f) for f in lattice.direct_subcliques(abcd)}
        assert subs == {"abc", "abd", "acd", "bcd"}

    def test_critical_path_to_bde(self, paper_db):
        """Figure 4's dark path: ∅ -> b -> bd -> bde."""
        lattice = CliqueLattice.from_result(mine_frequent_cliques(paper_db, 2))
        path = lattice.critical_path(CanonicalForm.from_labels("bde"))
        assert [str(f) for f in path] == ["b", "bd", "bde"]

    def test_solid_edge_only_from_direct_prefix(self, paper_db):
        lattice = CliqueLattice.from_result(mine_frequent_cliques(paper_db, 2))
        abc = CanonicalForm.from_labels("abc")
        abcd = CanonicalForm.from_labels("abcd")
        bcd = CanonicalForm.from_labels("bcd")
        assert lattice.valid_extension_edge(abc, abcd)
        assert not lattice.valid_extension_edge(bcd, abcd)
