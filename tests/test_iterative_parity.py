"""Differential tests for the iterative, lazily-materialising core.

The engine's hot loop (:meth:`repro.core.engine.MiningEngine._search`)
is an explicit-stack DFS that carries prefixes as bare label tuples and
only materialises :class:`CanonicalForm` / :class:`CliquePattern` /
witness maps at emission time, with statistics accumulated in plain
locals and hook dispatch hoisted out of the loop.  None of that may be
observable: this file keeps a straightforward *recursive, eagerly
materialising* reference miner in the test and checks the engine
against it — patterns, witnesses, transactions, and the full frozen
statistics snapshot — across all three kernels, plus the legs the
reference cannot express (hook dispatch modes, checkpoint/resume
mid-root).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BITSET,
    SET,
    SLAB,
    ClanMiner,
    MinerConfig,
    MiningBudget,
    MiningSession,
    mine,
)
from repro.core.canonical import CanonicalForm
from repro.core.embeddings import EmbeddingStore
from repro.core.engine import engine_for_task
from repro.core.pattern import CliquePattern
from repro.core.results import MiningResult
from repro.core.session import SearchHooks
from repro.core.statistics import MinerStatistics
from repro.graphdb.core_index import PseudoDatabase

from tests.conftest import make_random_database
from tests.strategies import graph_databases

KERNELS = (SET, BITSET, SLAB)

#: Seeded databases spanning sparse to dense, few to many labels.
CASES = [
    (seed, 3 + seed % 3, 6 + seed % 4, 0.35 + 0.08 * (seed % 6), 3 + seed % 4)
    for seed in range(6)
]


def database_for(case):
    seed, n_graphs, n_vertices, p, n_labels = case
    return make_random_database(
        seed,
        n_graphs=n_graphs,
        n_vertices=n_vertices,
        edge_probability=p,
        n_labels=n_labels,
    )


def signature(result):
    """Everything observable about a result, order-normalised."""
    return sorted(
        (
            pattern.form.labels,
            pattern.support,
            tuple(sorted(pattern.transactions)),
            tuple(sorted(pattern.witnesses.items())),
        )
        for pattern in result
    )


# ----------------------------------------------------------------------
# The reference: recursive DFS, everything materialised eagerly.
# ----------------------------------------------------------------------
def reference_mine(database, min_sup, config, task="closed"):
    """Recursive Algorithm 1 with eager materialisation.

    The pre-iterative engine in miniature: a
    :class:`CanonicalForm` exists at every node, patterns are built
    through the same emission rules the strategies encode, and the
    statistics object is updated through its per-event recorders at
    each step instead of a boundary flush.  Supports the three
    stateless tasks (closed / frequent / maximal); byte-equality
    against the engine pins the iterative loop's laziness as pure
    mechanism.
    """
    abs_sup = database.absolute_support(min_sup)
    stats = MinerStatistics()
    result = MiningResult(
        min_sup=abs_sup, closed_only=config.closed_only, statistics=stats
    )
    pseudo = PseudoDatabase(database) if config.low_degree_pruning else None
    label_supports = database.label_supports()
    stats.database_scans += 1
    seen = set()
    redundancy = config.structural_redundancy_pruning

    def emit(form, store):
        size = len(form.labels)
        if size < config.min_size:
            return
        if config.max_size is not None and size > config.max_size:
            return
        pattern = CliquePattern(
            form=form,
            support=store.support,
            transactions=store.transactions(),
            witnesses=store.witnesses() if config.collect_witnesses else {},
        )
        result.add(pattern)
        if config.closed_only:
            stats.closed_cliques += 1

    def recurse(form, store):
        labels = form.labels
        if not redundancy:
            if labels in seen:
                stats.duplicates_collapsed += 1
                return
            seen.add(labels)
        stats.record_node(len(labels), store.embedding_count)
        stats.record_frequent(len(labels))
        frequent_extensions, n_infrequent, blocked = store.extension_plan(abs_sup)
        stats.database_scans += 1
        if (
            config.nonclosed_prefix_pruning
            and store.nonclosed_extension_label(labels[-1]) is not None
        ):
            stats.nonclosed_prefix_prunes += 1
            return
        if task == "closed":
            if not blocked:
                emit(form, store)
            else:
                stats.closure_rejections += 1
        elif task == "frequent":
            emit(form, store)
        elif task == "maximal":
            if not frequent_extensions:
                emit(form, store)
            else:
                stats.closure_rejections += 1
        if config.max_size is not None and len(labels) >= config.max_size:
            return
        stats.infrequent_extensions += n_infrequent
        for label, ext_support in frequent_extensions:
            if redundancy:
                if label < labels[-1]:
                    stats.redundancy_skips += 1
                    continue
                child_store = store.extend(label, labels[-1])
                child_form = CanonicalForm(labels + (label,))
            else:
                child_store = store.extend_unordered(label)
                child_form = CanonicalForm(tuple(sorted(labels + (label,))))
            assert child_store.support == ext_support
            recurse(child_form, child_store)

    for label in sorted(label_supports):
        if label_supports[label] < abs_sup:
            stats.infrequent_extensions += 1
            continue
        store = EmbeddingStore.for_label(
            database,
            pseudo,
            label,
            config.embedding_strategy,
            config.kernel,
        )
        recurse(CanonicalForm((label,)), store)
    return result


def config_for(task, kernel, **overrides):
    if task == "frequent":
        return MinerConfig.all_frequent(kernel=kernel, **overrides)
    return MinerConfig(kernel=kernel, **overrides)


class TestRecursiveReference:
    """Iterative engine == recursive eager reference, bit for bit."""

    @pytest.mark.parametrize("case", CASES)
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("task", ("closed", "frequent", "maximal"))
    def test_patterns_and_snapshot_match(self, case, kernel, task):
        database = database_for(case)
        min_sup = 2 if case[0] % 2 else 1
        config = config_for(task, kernel)
        # No prepare(): the lazy label-support scan must be charged on
        # both sides (the reference counts its own scan up front).
        mined = engine_for_task(database, config, task).mine(min_sup)
        reference = reference_mine(database, min_sup, config, task)
        assert signature(mined) == signature(reference), (case, kernel, task)
        assert (
            mined.statistics.snapshot() == reference.statistics.snapshot()
        ), (case, kernel, task)

    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize(
        "overrides",
        (
            {"nonclosed_prefix_pruning": False},
            {"structural_redundancy_pruning": False, "nonclosed_prefix_pruning": False},
            {"collect_witnesses": False},
            {"min_size": 2, "max_size": 3},
            {"low_degree_pruning": False},
        ),
        ids=("no-lemma44", "no-redundancy", "no-witnesses", "size-window", "no-lowdeg"),
    )
    def test_ablation_configs_match(self, kernel, overrides):
        # The lazy loop has branch-heavy ablation paths (the seen-forms
        # dedup, the size window, witness skipping); each must shadow
        # the reference exactly.
        database = database_for(CASES[2])
        config = config_for("closed", kernel, **overrides)
        mined = ClanMiner(database, config).mine(1)
        reference = reference_mine(database, 1, config, "closed")
        assert signature(mined) == signature(reference), (kernel, overrides)
        assert mined.statistics.snapshot() == reference.statistics.snapshot()


class TestHypothesisReference:
    """Property: the parity holds on arbitrary shrinkable databases."""

    @settings(max_examples=30, deadline=None)
    @given(database=graph_databases(), min_sup=st.integers(1, 3))
    def test_closed_parity_on_arbitrary_databases(self, database, min_sup):
        min_sup = min(min_sup, len(database))
        for kernel in KERNELS:
            config = config_for("closed", kernel)
            mined = ClanMiner(database, config).mine(min_sup)
            reference = reference_mine(database, min_sup, config, "closed")
            assert signature(mined) == signature(reference), kernel
            assert mined.statistics.snapshot() == reference.statistics.snapshot()


class TestHookDispatchParity:
    """Passive, armed, and absent hooks see one identical search.

    The loop skips ``enter_prefix`` entirely when hooks cannot abort or
    sample, settling the prefix counters from its local node count; an
    armed hook walks the per-node path.  Both modes must agree with
    each other, with the no-hooks run, and with the statistics object.
    """

    TASKS = (
        ("closed", {}),
        ("frequent", {}),
        ("maximal", {}),
        ("topk", {"k": 3}),
        ("quasi", {"gamma": 0.8}),
    )

    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("task,extra", TASKS, ids=[t for t, _ in TASKS])
    def test_hook_modes_identical(self, kernel, task, extra):
        database = database_for(CASES[1])
        if task == "quasi":
            config = MinerConfig(kernel=kernel, min_size=2, max_size=4)
        else:
            config = config_for(task, kernel)

        def run(hooks):
            engine = engine_for_task(
                database, config, task, extra.get("k"), extra.get("gamma")
            ).prepare()
            return engine.mine(2, hooks=hooks), hooks

        bare, _ = run(None)
        passive_result, passive = run(SearchHooks())
        # A huge sampling interval arms the per-node path without ever
        # actually emitting a sample event.
        armed_result, armed = run(SearchHooks(sample_every=10**9))

        reference = signature(bare)
        snapshot = bare.statistics.snapshot()
        for label, result in (("passive", passive_result), ("armed", armed_result)):
            assert signature(result) == reference, (kernel, task, label)
            assert result.statistics.snapshot() == snapshot, (kernel, task, label)
        visited = snapshot["prefixes_visited"]
        assert passive.total_prefixes == visited
        assert armed.total_prefixes == visited
        assert passive.total_patterns == armed.total_patterns


class TestCheckpointResumeMidRoot:
    """A budget abort mid-root resumes to the byte-identical result.

    The abort unwinds the iterative loop through its ``finally`` flush,
    so the checkpoint's statistics stay exact, and the resumed session
    re-mines the interrupted root through the same lazy loop.
    """

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_closed_resume_completes_identically(self, kernel):
        database = database_for(CASES[3])
        config = MinerConfig(kernel=kernel)
        full = ClanMiner(database, config).mine(1)

        session = MiningSession(
            database,
            1,
            config=config,
            budget=MiningBudget(max_expanded_prefixes=10),
        )
        partial = session.run()
        assert partial.truncated, "budget did not bite mid-run"
        checkpoint = session.checkpoint()
        assert checkpoint.completed_roots  # genuinely mid-run

        final = MiningSession(
            database, 1, config=config, resume_from=checkpoint
        ).run()
        assert not final.truncated
        assert signature(final) == signature(full), kernel
        assert [p.form.labels for p in final] == [p.form.labels for p in full]
