"""Tests for the pluggable storage seam (repro.graphdb.storage/schema).

Covers the GraphSource contract for both backends, the SQLite store's
round-trip fidelity, fingerprint portability across backends, the
no-copy subset/replicate contract, and the streaming readers' parity
with the eager parsers.
"""

import io
import pickle

import pytest

from repro.chem import ca_like_database
from repro.exceptions import DatabaseError
from repro.graphdb import (
    Graph,
    GraphDatabase,
    InMemoryGraphSource,
    SqliteGraphSource,
    create_store,
    fingerprint_digests,
    import_graphs,
    open_source,
    paper_example_database,
    random_database,
    transaction_digest,
)
from repro.graphdb.schema import decode_graph, encode_graph
from repro.io import gspan_format, json_format
from repro.io.runlog import database_fingerprint


def tricky_db() -> GraphDatabase:
    """Labels chosen to break any positional text encoding."""
    g1 = Graph.from_edges({0: "a;b", 1: "x=y", 2: "µ"}, [(0, 1), (1, 2)])
    g2 = Graph.from_edges({3: "t#0", 7: 'q"r'}, [(3, 7)])
    g3 = Graph()
    g3.add_vertex(0, "lonely")
    return GraphDatabase([g1, g2, g3], name="tricky")


class TestSchema:
    def test_encode_decode_round_trip(self):
        for tid, graph in enumerate(tricky_db()):
            again = decode_graph(encode_graph(graph), tid)
            assert again == graph
            assert again.graph_id == tid

    def test_digest_is_structural(self):
        db = tricky_db()
        assert transaction_digest(db[0]) != transaction_digest(db[1])
        copy = decode_graph(encode_graph(db[0]), 99)
        assert transaction_digest(copy) == transaction_digest(db[0])

    def test_fingerprint_folds_digests_in_order(self):
        db = tricky_db()
        digests = [transaction_digest(g) for g in db]
        assert fingerprint_digests(digests) != fingerprint_digests(digests[::-1])


class TestSqliteSource:
    @pytest.fixture()
    def store(self, tmp_path):
        db = random_database(25, 8, 0.4, 3, seed=9)
        path = tmp_path / "db.sqlite"
        import_graphs(path, iter(db), name="rand25", commit_every=7)
        return db, open_source(path)

    def test_round_trip_get_and_iter(self, store):
        db, source = store
        assert len(source) == len(db)
        assert source.name == "rand25"
        for tid in (0, 13, 24):
            assert source.get(tid) == db[tid]
            assert source.get(tid).graph_id == tid
        assert list(source) == list(db)
        assert list(source.iter_range(5, 9)) == [db[t] for t in range(5, 9)]

    def test_out_of_range(self, store):
        _, source = store
        with pytest.raises(DatabaseError):
            source.get(len(source))

    def test_label_supports_without_decoding(self, store):
        db, source = store
        assert source.label_supports() == db.label_supports()

    def test_digests_from_stored_column(self, store):
        db, source = store
        assert list(source.transaction_digests()) == [
            transaction_digest(g) for g in db
        ]

    def test_tricky_labels_round_trip(self, tmp_path):
        db = tricky_db()
        path = tmp_path / "tricky.sqlite"
        import_graphs(path, iter(db), name="tricky")
        source = open_source(path)
        assert list(source) == list(db)

    def test_append_updates_supports_and_len(self, tmp_path):
        path = tmp_path / "grow.sqlite"
        source = create_store(path, name="grow")
        g = Graph.from_edges({0: "a", 1: "b"}, [(0, 1)])
        assert source.append(g) == 0
        assert source.append(g.copy(1)) == 1
        assert len(source) == 2
        assert source.label_supports() == {"a": 2, "b": 2}
        assert source.get(1) == g

    def test_open_source_rejects_non_store(self, tmp_path):
        path = tmp_path / "not-a-store.sqlite"
        path.write_text("this is not sqlite")
        with pytest.raises(DatabaseError):
            open_source(path)

    def test_import_into_populated_store_rejected(self, tmp_path):
        db = paper_example_database()
        path = tmp_path / "dup.sqlite"
        import_graphs(path, iter(db))
        with pytest.raises(DatabaseError):
            import_graphs(path, iter(db))

    def test_pickle_round_trip(self, store):
        db, source = store
        clone = pickle.loads(pickle.dumps(source))
        assert len(clone) == len(db)
        assert clone.get(3) == db[3]

    def test_no_aligned_or_slab_space(self, store):
        # Aligning an out-of-core store would materialise it.
        _, source = store
        assert source.aligned_space() is None
        assert source.slab_space() is None


class TestFingerprintPortability:
    def test_backends_share_fingerprints(self, tmp_path):
        db = random_database(12, 7, 0.5, 3, seed=4)
        path = tmp_path / "db.sqlite"
        import_graphs(path, iter(db), name=db.name)
        sqlite_db = GraphDatabase(source=open_source(path))
        assert database_fingerprint(sqlite_db) == database_fingerprint(db)

    def test_shards_reassemble_the_fingerprint(self):
        db = random_database(10, 6, 0.5, 3, seed=8)
        digests = []
        for lo in range(0, 10, 3):
            shard = db.subset(range(lo, min(lo + 3, 10)))
            digests.extend(shard.transaction_digests())
        assert fingerprint_digests(digests) == database_fingerprint(db)

    def test_fingerprint_detects_structural_change(self):
        db = random_database(5, 6, 0.5, 3, seed=2)
        before = database_fingerprint(db)
        db[2].add_vertex(999, "new")
        assert database_fingerprint(db) != before


class TestSharingContract:
    def test_subset_of_large_database_copies_nothing(self):
        graph = Graph.from_edges({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2), (0, 2)])
        db = GraphDatabase(name="big")
        for _ in range(10_000):
            db.add(graph.copy())
        picked = list(range(0, 10_000, 7))
        sub = db.subset(picked)
        assert len(sub) == len(picked)
        for local, tid in enumerate(picked):
            assert sub[local] is db[tid]

    def test_replicate_shares_and_scales(self):
        db = paper_example_database()
        big = db.replicate(16)
        assert len(big) == 16 * len(db)
        assert all(big[i] is db[i % len(db)] for i in range(len(big)))


class TestStreamingReaders:
    def test_gspan_parity_fig6a(self, tmp_path):
        db = paper_example_database()
        path = tmp_path / "fig6a.tve"
        gspan_format.save_database(db, path)
        eager = gspan_format.open_database(path)
        streamed = list(gspan_format.iter_database_file(path))
        assert streamed == list(eager)

    def test_gspan_parity_chem(self, tmp_path):
        db = ca_like_database(n_compounds=12, seed=5)
        path = tmp_path / "chem.tve"
        gspan_format.save_database(db, path)
        eager = gspan_format.open_database(path)
        streamed = list(gspan_format.iter_database_file(path))
        assert streamed == list(eager)

    def test_gspan_streaming_errors_carry_line_numbers(self):
        from repro.exceptions import FormatError

        with pytest.raises(FormatError):
            list(gspan_format.iter_database(io.StringIO("v 0 a\n")))

    def test_json_parity_fig6a(self, tmp_path):
        db = paper_example_database()
        path = tmp_path / "fig6a.json"
        json_format.save_database(db, path)
        eager = json_format.open_database(path)
        streamed = list(json_format.iter_database_file(path))
        assert streamed == list(eager)

    def test_json_parity_chem(self, tmp_path):
        db = ca_like_database(n_compounds=12, seed=5)
        path = tmp_path / "chem.json"
        json_format.save_database(db, path)
        eager = json_format.open_database(path)
        streamed = list(json_format.iter_database_file(path))
        assert streamed == list(eager)

    def test_import_composes_with_streaming_reader(self, tmp_path):
        db = ca_like_database(n_compounds=10, seed=7)
        tve = tmp_path / "chem.tve"
        gspan_format.save_database(db, tve)
        store = tmp_path / "chem.sqlite"
        import_graphs(store, gspan_format.iter_database_file(tve), name="chem")
        sqlite_db = GraphDatabase(source=open_source(store))
        assert list(sqlite_db) == list(db)
        assert database_fingerprint(sqlite_db) == database_fingerprint(db)


class TestInMemorySource:
    def test_default_source_is_in_memory(self):
        db = GraphDatabase()
        assert isinstance(db.source, InMemoryGraphSource)

    def test_iter_range_and_contract_checks(self):
        db = paper_example_database()
        source = db.source
        assert list(source.iter_range(0, len(db))) == list(db)
        with pytest.raises(DatabaseError):
            source.get(len(db))

    def test_sqlite_database_view(self, tmp_path):
        db = paper_example_database()
        path = tmp_path / "paper.sqlite"
        import_graphs(path, iter(db), name="paper")
        view = GraphDatabase(source=open_source(path))
        assert isinstance(view.source, SqliteGraphSource)
        assert view.label_supports() == db.label_supports()
        assert view.total_vertices() == db.total_vertices()
