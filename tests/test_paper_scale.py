"""Paper-scale smoke tests (marked slow; excluded from quick runs).

Run with:  pytest tests/test_paper_scale.py -m slow --no-header
"""

import numpy as np
import pytest

from repro.stockmarket import (
    FIGURE5_TICKERS,
    StockMarketSimulator,
    correlation_matrix,
    market_graph_from_correlations,
    paper_scale_config,
)

pytestmark = pytest.mark.slow


@pytest.mark.slow
def test_paper_scale_period_magnitudes():
    """One full-size period: ~6000 stocks x 500 days, graph at θ=0.9.

    Checks the magnitudes the paper's Table 1 reports are reachable by
    the simulator (vertex counts in the thousands, edge counts far
    beyond the chemical database's, Figure 5 group intact).
    """
    config = paper_scale_config()
    simulator = StockMarketSimulator(config)
    panel = simulator.simulate_period(0)
    assert panel.prices.shape == (500, len(panel.tickers))
    assert len(panel.tickers) > 5500

    correlations = correlation_matrix(panel.prices)
    graph = market_graph_from_correlations(panel.tickers, correlations, 0.90)
    # Large and dense relative to the chemical data.
    assert graph.vertex_count > 1000
    assert graph.edge_count > 10 * graph.vertex_count // 2

    # The planted fund group is pairwise above threshold.
    index = {t: i for i, t in enumerate(panel.tickers)}
    cols = [index[t] for t in FIGURE5_TICKERS]
    block = correlations[np.ix_(cols, cols)]
    off_diagonal = block[~np.eye(12, dtype=bool)]
    assert off_diagonal.min() > 0.90


@pytest.mark.slow
def test_paper_scale_full_mining_run():
    """The headline end-to-end run at the published problem size.

    Builds the full stock-market-0.90 database (11 periods, ~6000
    stocks, 500 days each) and mines it at 100% support.  Recorded
    reference outcome (see EXPERIMENTS.md): ~5000 avg vertices,
    ~160k avg edges, ~380 closed cliques of size >= 3, maximum clique =
    the 12 Figure 5 fund tickers, in well under a minute of mining.
    """
    from repro.core import mine_closed_cliques
    from repro.stockmarket import build_market_database

    simulator = StockMarketSimulator(paper_scale_config())
    database = build_market_database(simulator, 0.90)
    assert len(database) == 11
    assert database.average_vertices() > 3000
    assert database.average_edges() > 50_000

    result = mine_closed_cliques(database, 1.0)
    assert result.max_size() == 12
    top = result.maximum_patterns()
    assert len(top) == 1
    assert set(top[0].labels) == set(FIGURE5_TICKERS)
    # The paper reports 327 size->=3 closed cliques; same magnitude here.
    assert 150 <= len(result.at_least_size(3)) <= 800
