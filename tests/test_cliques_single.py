"""Unit + property tests for single-graph clique routines."""

import random
from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphdb import (
    Graph,
    all_cliques,
    clique_number,
    count_cliques_by_size,
    degeneracy_ordering,
    maximal_cliques,
    maximum_clique,
)
from repro.graphdb.generators import default_label_alphabet, random_transaction


def brute_maximal_cliques(graph: Graph):
    """Reference maximal-clique enumeration by subset checking."""
    vertices = sorted(graph.vertices())
    cliques = set()
    for size in range(1, len(vertices) + 1):
        for subset in combinations(vertices, size):
            if graph.is_clique(subset):
                cliques.add(frozenset(subset))
    maximal = set()
    for c in cliques:
        if not any(c < other for other in cliques):
            maximal.add(c)
    return maximal


def random_graph(seed: int, n: int = 9, p: float = 0.5) -> Graph:
    rng = random.Random(seed)
    return random_transaction(rng, n, p, default_label_alphabet(3))


class TestDegeneracyOrdering:
    def test_covers_all_vertices(self, k4_graph):
        assert sorted(degeneracy_ordering(k4_graph)) == sorted(k4_graph.vertices())

    def test_empty_graph(self):
        assert degeneracy_ordering(Graph()) == []


class TestMaximalCliques:
    def test_triangle(self, triangle_graph):
        assert set(maximal_cliques(triangle_graph)) == {frozenset({0, 1, 2})}

    def test_path_maximal_cliques_are_edges(self, path_graph):
        assert set(maximal_cliques(path_graph)) == {
            frozenset({0, 1}), frozenset({1, 2}), frozenset({2, 3})
        }

    def test_min_size_filter(self, path_graph):
        assert list(maximal_cliques(path_graph, min_size=3)) == []

    def test_isolated_vertex_is_maximal(self):
        g = Graph.from_edges({0: "a", 1: "b", 2: "c"}, [(0, 1)])
        assert frozenset({2}) in set(maximal_cliques(g))

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_matches_bruteforce(self, seed):
        g = random_graph(seed)
        assert set(maximal_cliques(g)) == brute_maximal_cliques(g)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_no_duplicates(self, seed):
        g = random_graph(seed)
        found = list(maximal_cliques(g))
        assert len(found) == len(set(found))


class TestAllCliques:
    def test_counts_on_k4(self, k4_graph):
        assert count_cliques_by_size(k4_graph) == {1: 4, 2: 6, 3: 4, 4: 1}

    def test_max_size_cap(self, k4_graph):
        assert count_cliques_by_size(k4_graph, max_size=2) == {1: 4, 2: 6}

    def test_min_size(self, k4_graph):
        assert all(len(c) >= 3 for c in all_cliques(k4_graph, min_size=3))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_every_clique_once(self, seed):
        g = random_graph(seed, n=8)
        found = list(all_cliques(g))
        assert len(found) == len(set(found))
        expected = {
            frozenset(sub)
            for size in range(1, 9)
            for sub in combinations(sorted(g.vertices()), size)
            if g.is_clique(sub)
        }
        assert set(found) == expected


class TestMaximumClique:
    def test_empty(self):
        assert maximum_clique(Graph()) == frozenset()

    def test_k4(self, k4_graph):
        assert maximum_clique(k4_graph) == frozenset({0, 1, 2, 3})
        assert clique_number(k4_graph) == 4

    def test_path(self, path_graph):
        assert clique_number(path_graph) == 2

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_matches_bruteforce_size(self, seed):
        g = random_graph(seed)
        expected = max((len(c) for c in brute_maximal_cliques(g)), default=0)
        found = maximum_clique(g)
        assert len(found) == expected
        if found:
            assert g.is_clique(found)
