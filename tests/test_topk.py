"""Tests for top-k closed clique mining."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import mine_closed_cliques, mine_top_k_closed_cliques
from repro.graphdb import labelled_clique_database
from tests.conftest import make_random_database


def reference_top_k(db, min_sup, k, min_size=1):
    """Ground truth: mine everything, keep the k largest.

    Ties at equal size break by the reversed-label tuple, descending —
    the documented deterministic order of the top-k heap.
    """
    everything = mine_closed_cliques(db, min_sup, min_size=min_size)
    ordered = sorted(
        (p for p in everything if p.size >= min_size),
        key=lambda p: (p.size, tuple(reversed(p.labels))),
        reverse=True,
    )
    return ordered[:k]


class TestBasics:
    def test_top_one_is_maximum(self, paper_db):
        result = mine_top_k_closed_cliques(paper_db, 2, k=1)
        assert [p.key() for p in result] == ["abcd:2"]

    def test_top_two_covers_all_closed(self, paper_db):
        result = mine_top_k_closed_cliques(paper_db, 2, k=2)
        assert [p.key() for p in result] == ["abcd:2", "bde:2"]

    def test_k_larger_than_result_set(self, paper_db):
        result = mine_top_k_closed_cliques(paper_db, 2, k=50)
        assert len(result) == 2

    def test_largest_first_ordering(self):
        db = labelled_clique_database(
            [(("a", "b", "c", "d", "e"), 2), (("p", "q", "r"), 2), (("x", "y"), 2)],
            n_graphs=2,
        )
        result = mine_top_k_closed_cliques(db, 2, k=3)
        assert [p.size for p in result] == [5, 3, 2]

    def test_min_size_floor(self):
        db = labelled_clique_database(
            [(("a", "b", "c"), 2), (("x", "y"), 2)], n_graphs=2
        )
        result = mine_top_k_closed_cliques(db, 2, k=5, min_size=3)
        assert [p.key() for p in result] == ["abc:2"]

    def test_witnesses_verify(self, paper_db):
        for pattern in mine_top_k_closed_cliques(paper_db, 2, k=2):
            pattern.verify(paper_db)

    def test_bound_prunes_subtrees(self):
        """With k=1 and one dominant clique, the bound must cut work
        relative to exhaustive closed mining."""
        db = labelled_clique_database(
            [(("a", "b", "c", "d", "e", "f"), 2)]
            + [((chr(ord("g") + i), chr(ord("g") + i + 1)), 2) for i in range(0, 12, 2)],
            n_graphs=2,
        )
        full = mine_closed_cliques(db, 2)
        topk = mine_top_k_closed_cliques(db, 2, k=1)
        assert topk.statistics.prefixes_visited <= full.statistics.prefixes_visited
        assert [p.size for p in topk] == [6]


class TestAgainstReference:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 50_000), k=st.integers(1, 6), min_sup=st.integers(1, 3))
    def test_matches_truncated_full_mining(self, seed, k, min_sup):
        db = make_random_database(seed)
        expected = [(p.size, p.labels) for p in reference_top_k(db, min_sup, k)]
        found = [
            (p.size, p.labels) for p in mine_top_k_closed_cliques(db, min_sup, k)
        ]
        assert found == expected

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 50_000))
    def test_min_size_consistency(self, seed):
        db = make_random_database(seed)
        expected = [
            (p.size, p.labels) for p in reference_top_k(db, 2, 4, min_size=2)
        ]
        found = [
            (p.size, p.labels)
            for p in mine_top_k_closed_cliques(db, 2, k=4, min_size=2)
        ]
        assert found == expected
