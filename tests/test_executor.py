"""The work-stealing executor: tasks, cost estimates, splitting, pools.

The load-bearing contract is byte-identity: for every scheduler, any
split decisions, and any worker interleaving, the merged result must
equal the serial :class:`ClanMiner`'s — patterns, order, and the
deterministic statistics counters.  Everything else here (cost
estimates, reports, the persistent pool) is scheduling policy, which
may only change wall-clock.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ClanMiner, MinerConfig, MiningResult, mine_closed_cliques
from repro.core.executor import (
    DEFAULT_SPLIT_FACTOR,
    STATIC,
    STEALING,
    ExecutorReport,
    MiningExecutor,
    MiningTask,
    _replay_substreams,
    estimate_root_costs,
)
from repro.core.session import PatternEmitted, PrefixVisited
from repro.exceptions import MiningError
from tests.conftest import make_random_database


def keys(result):
    return [p.key() for p in result]


# ======================================================================
# Cost estimation
# ======================================================================
class TestCostEstimates:
    def test_every_root_gets_a_positive_cost(self, paper_db):
        costs = estimate_root_costs(paper_db, ("a", "b", "c", "d", "e"))
        assert set(costs) == {"a", "b", "c", "d", "e"}
        assert all(cost > 0 for cost in costs.values())

    def test_low_alphabet_hub_root_dominates(self, paper_db):
        # Root 'a' sees every other label as a forward extension, root
        # 'e' sees only itself; redundancy pruning makes 'a' heavier.
        costs = estimate_root_costs(paper_db, ("a", "e"))
        assert costs["a"] > costs["e"]

    def test_only_requested_roots_are_estimated(self, paper_db):
        costs = estimate_root_costs(paper_db, ("b",))
        assert set(costs) == {"b"}


# ======================================================================
# Tasks and reports
# ======================================================================
class TestMiningTask:
    def test_whole_single_root_is_splittable(self):
        assert MiningTask(roots=("a",)).splittable

    def test_split_task_is_not_splittable(self):
        assert not MiningTask(roots=("a",), first_extensions=("b",)).splittable

    def test_static_chunk_is_not_splittable(self):
        assert not MiningTask(roots=("a", "c")).splittable


class TestExecutorReport:
    def test_straggler_ratio_balanced(self):
        report = ExecutorReport(scheduler=STEALING, processes=2)
        report.record(101, 1.0)
        report.record(102, 1.0)
        assert report.tasks == 2
        assert report.cpu_seconds == pytest.approx(2.0)
        assert report.max_straggler_ratio == pytest.approx(1.0)

    def test_straggler_ratio_one_worker_does_everything(self):
        report = ExecutorReport(scheduler=STATIC, processes=4)
        report.record(101, 8.0)
        assert report.max_straggler_ratio == pytest.approx(4.0)

    def test_empty_report_defaults_to_balanced(self):
        assert ExecutorReport(scheduler=STEALING, processes=2).max_straggler_ratio == 1.0


# ======================================================================
# The split plan (ClanMiner.root_extension_plan) and its exactness
# ======================================================================
class TestRootExtensionPlan:
    def test_plan_lists_forward_frequent_extensions(self, paper_db):
        plan = ClanMiner(paper_db).root_extension_plan(2, "a")
        assert [label for label, _sup in plan] == ["b", "c", "d"]
        assert all(sup >= 2 for _label, sup in plan)

    def test_infrequent_root_has_empty_plan(self, paper_db):
        assert ClanMiner(paper_db).root_extension_plan(2, "z") == []

    def test_max_size_one_has_empty_plan(self, paper_db):
        miner = ClanMiner(paper_db, MinerConfig(max_size=1))
        assert miner.root_extension_plan(2, "a") == []

    def test_plan_requires_structural_pruning(self, paper_db):
        config = MinerConfig(
            closed_only=False,
            structural_redundancy_pruning=False,
            nonclosed_prefix_pruning=False,
        )
        with pytest.raises(MiningError, match="structural"):
            ClanMiner(paper_db, config).root_extension_plan(2, "a")

    def test_plan_does_not_touch_statistics(self, paper_db):
        # Planning prepares the miner (uncounted label-support scan,
        # like any prepare() call) but must not perturb the counters of
        # a subsequent mine relative to any other prepared miner.
        miner = ClanMiner(paper_db)
        miner.root_extension_plan(2, "a")
        result = miner.mine(2)
        reference = ClanMiner(paper_db).prepare().mine(2)
        assert keys(result) == keys(reference)
        assert result.statistics.snapshot() == reference.statistics.snapshot()

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_split_union_equals_whole_root(self, seed):
        # The exactness argument behind cost-guided splitting: mining a
        # root's level-2 subtrees independently (root-level work on the
        # first task only) reproduces the whole-root subtree exactly —
        # patterns and deterministic counters.
        db = make_random_database(seed)
        miner = ClanMiner(db).prepare()
        for root in db.frequent_labels(2):
            whole = miner.mine(2, root_labels=(root,))
            plan = miner.root_extension_plan(2, root)
            if len(plan) < 2:
                continue
            merged = MiningResult(min_sup=2, closed_only=True)
            collected = []
            for index, (label, _sup) in enumerate(plan):
                part = miner.mine(
                    2,
                    root_labels=(root,),
                    first_extensions=(label,),
                    include_root=index == 0,
                )
                merged.statistics.merge(part.statistics)
                collected.extend(part)
            for pattern in sorted(collected, key=lambda p: p.form.labels):
                merged.add(pattern)
            assert keys(merged) == keys(whole)
            assert merged.statistics.snapshot() == whole.statistics.snapshot()


# ======================================================================
# The executor itself
# ======================================================================
class TestMiningExecutor:
    def test_stealing_matches_serial(self, paper_db):
        serial = mine_closed_cliques(paper_db, 2)
        with MiningExecutor(paper_db, processes=2) as executor:
            result = executor.mine(2)
        assert keys(result) == keys(serial)
        assert result.statistics.snapshot() == serial.statistics.snapshot()

    def test_static_matches_serial(self, paper_db):
        serial = mine_closed_cliques(paper_db, 2)
        with MiningExecutor(paper_db, processes=2, scheduler=STATIC) as executor:
            result = executor.mine(2)
        assert keys(result) == keys(serial)
        assert result.statistics.snapshot() == serial.statistics.snapshot()

    def test_forced_splits_match_serial(self, paper_db):
        # split_factor=0 splits every splittable root — the adversarial
        # schedule for the merge/replay logic.
        serial = mine_closed_cliques(paper_db, 2)
        with MiningExecutor(paper_db, processes=2, split_factor=0.0) as executor:
            result = executor.mine(2)
            report = executor.last_report
        assert keys(result) == keys(serial)
        assert result.statistics.snapshot() == serial.statistics.snapshot()
        assert report.splits >= 1
        assert report.tasks > report.roots

    def test_database_scans_match_serial(self, paper_db):
        # Satellite regression: the warmed workers never rescan label
        # supports, and the parent's root scan counts once.
        serial = mine_closed_cliques(paper_db, 2)
        with MiningExecutor(paper_db, processes=2, split_factor=0.0) as executor:
            result = executor.mine(2)
        assert result.statistics.database_scans == serial.statistics.database_scans

    def test_persistent_pool_across_mine_calls(self, paper_db):
        with MiningExecutor(paper_db, processes=2) as executor:
            first = executor.mine(2)
            pool = executor._pool
            second = executor.mine(1)
            assert executor._pool is pool  # no respawn between calls
        assert keys(first) == keys(mine_closed_cliques(paper_db, 2))
        assert keys(second) == keys(mine_closed_cliques(paper_db, 1))

    def test_report_shape(self, paper_db):
        with MiningExecutor(paper_db, processes=2) as executor:
            executor.mine(2)
            report = executor.last_report
        assert report.scheduler == STEALING
        assert report.processes == 2
        assert report.roots == 5
        assert report.tasks >= report.roots
        assert report.cpu_seconds > 0.0
        assert report.elapsed_seconds > 0.0
        assert report.max_straggler_ratio >= 1.0
        assert sum(report.worker_busy_seconds.values()) == pytest.approx(
            report.cpu_seconds
        )

    def test_wall_clock_and_cpu_seconds(self, paper_db):
        # Satellite regression for the statistics merge: elapsed is the
        # parent's wall-clock, cpu_seconds sums worker time — neither is
        # a sum of per-root elapsed stamped over the other.
        with MiningExecutor(paper_db, processes=2) as executor:
            result = executor.mine(2)
        assert result.elapsed_seconds > 0.0
        assert result.statistics.cpu_seconds > 0.0
        assert "cpu_seconds" not in result.statistics.snapshot()

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_matches_serial_on_random_databases(self, seed):
        db = make_random_database(seed)
        serial = mine_closed_cliques(db, 2)
        with MiningExecutor(db, processes=2, split_factor=0.0) as executor:
            result = executor.mine(2)
        assert keys(result) == keys(serial)
        assert result.statistics.snapshot() == serial.statistics.snapshot()

    def test_unknown_scheduler_rejected(self, paper_db):
        with pytest.raises(MiningError, match="scheduler"):
            MiningExecutor(paper_db, scheduler="fifo")

    def test_invalid_processes_rejected(self, paper_db):
        with pytest.raises(MiningError, match="processes"):
            MiningExecutor(paper_db, processes=0)

    def test_negative_split_factor_rejected(self, paper_db):
        with pytest.raises(MiningError, match="split_factor"):
            MiningExecutor(paper_db, split_factor=-0.5)

    def test_requires_structural_pruning(self, paper_db):
        config = MinerConfig(
            closed_only=False,
            structural_redundancy_pruning=False,
            nonclosed_prefix_pruning=False,
        )
        with pytest.raises(MiningError, match="structural"):
            MiningExecutor(paper_db, config)

    def test_closed_executor_rejects_reuse(self, paper_db):
        executor = MiningExecutor(paper_db, processes=1)
        executor.close()
        with pytest.raises(MiningError, match="closed"):
            executor.mine(2)
        executor.close()  # idempotent

    def test_default_split_factor_is_fair_share(self):
        assert DEFAULT_SPLIT_FACTOR == 1.0


# ======================================================================
# Substream replay (event sampling re-derivation)
# ======================================================================
class TestReplaySubstreams:
    @staticmethod
    def prefix(ordinal):
        return PrefixVisited(form=("a",), support=2, depth=1, ordinal=ordinal)

    def test_renumbers_and_resamples_across_substreams(self):
        # Two split substreams recorded at sample_every=1 with per-task
        # ordinals; replay at sample_every=2 keeps every 2nd prefix of
        # the concatenation with root-wide ordinals, as serial would.
        first = [self.prefix(1), self.prefix(2), self.prefix(3)]
        second = [self.prefix(1), self.prefix(2)]
        replayed = _replay_substreams([first, second], sample_every=2)
        assert [e.ordinal for e in replayed] == [2, 4]

    def test_non_prefix_events_pass_through(self):
        emitted = PatternEmitted(form=("a", "b"), support=2, size=2)
        replayed = _replay_substreams([[self.prefix(1), emitted]], sample_every=1)
        assert replayed == (self.prefix(1), emitted)

    def test_sampling_disabled_drops_prefix_events(self):
        replayed = _replay_substreams([[self.prefix(1), self.prefix(2)]], 0)
        assert replayed == ()
