"""Failure-injection tests: the library must fail loudly and precisely."""

import pytest

from repro.cli import main
from repro.core import (
    CanonicalForm,
    ClanMiner,
    EmbeddingStore,
    MinerConfig,
    MiningResult,
    make_pattern,
)
from repro.exceptions import (
    DatabaseError,
    InvalidSupportError,
    MiningError,
    PatternError,
    ReproError,
)
from repro.graphdb import Graph, GraphDatabase, PseudoDatabase, paper_example_database


class TestExceptionHierarchy:
    def test_everything_derives_from_repro_error(self):
        for exc_type in (DatabaseError, InvalidSupportError, MiningError, PatternError):
            assert issubclass(exc_type, ReproError)

    def test_invalid_support_carries_value(self):
        db = paper_example_database()
        with pytest.raises(InvalidSupportError) as excinfo:
            db.absolute_support(0)
        assert excinfo.value.value == 0


class TestMinerGuards:
    def test_max_embeddings_names_the_prefix(self, paper_db):
        config = MinerConfig(max_embeddings=1)
        with pytest.raises(MiningError) as excinfo:
            ClanMiner(paper_db, config).mine(2)
        assert "max_embeddings" in str(excinfo.value)

    def test_mining_empty_database_fails_cleanly(self):
        with pytest.raises(DatabaseError):
            ClanMiner(GraphDatabase()).mine(1)

    def test_extension_invariant_violation_detected(self, paper_db, monkeypatch):
        """If the extension scan and materialisation ever disagree, the
        miner must crash rather than report wrong supports."""
        original = EmbeddingStore.extend

        def corrupted(self, label, last_label, reuse=None):
            store = original(self, label, last_label, reuse)
            if store.by_transaction:
                # Drop one transaction's embeddings: support shrinks.
                tid = next(iter(store.by_transaction))
                del store.by_transaction[tid]
            return store

        monkeypatch.setattr(EmbeddingStore, "extend", corrupted)
        with pytest.raises(MiningError) as excinfo:
            ClanMiner(paper_db).mine(2)
        assert "predicted support" in str(excinfo.value)


class TestResultGuards:
    def test_duplicate_form_rejected(self):
        result = MiningResult([make_pattern("ab", 2)])
        with pytest.raises(PatternError):
            result.add(make_pattern("ab", 3))

    def test_expand_on_size_filtered_lattice_detected(self, paper_db):
        """critical_path on a non-prefix-closed lattice names the gap."""
        from repro.core import CliqueLattice

        lattice = CliqueLattice([make_pattern("abc", 2)])
        with pytest.raises(PatternError) as excinfo:
            lattice.critical_path(CanonicalForm.from_labels("abc"))
        assert "prefix-closed" in str(excinfo.value)


class TestCliErrorPaths:
    def test_missing_input_file(self, capsys):
        assert main(["mine", "/nonexistent/nowhere.tve"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_malformed_database_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.tve"
        bad.write_text("v 0 a\n")  # vertex before any transaction
        assert main(["mine", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "line 1" in err

    def test_unwritable_output(self, tmp_path, capsys):
        from repro.io import gspan_format

        db_file = tmp_path / "ok.tve"
        gspan_format.save_database(paper_example_database(), db_file)
        assert main([
            "mine", str(db_file), "--min-sup", "2",
            "--output", "/nonexistent-dir/x.txt",
        ]) == 2

    def test_convert_bad_source_format_content(self, tmp_path, capsys):
        bad = tmp_path / "notmatrix.matrix"
        bad.write_text("a b c\n")
        assert main(["convert", str(bad), str(tmp_path / "o.json"),
                     "--from", "matrix", "--to", "json"]) == 2

    def test_diff_with_missing_file(self, capsys):
        assert main(["diff", "/no/left.txt", "/no/right.txt"]) == 2


class TestCorruptedGraphsSurfaceEarly:
    def test_verify_catches_tampered_witness(self, paper_db):
        from repro.core import mine_closed_cliques

        result = mine_closed_cliques(paper_db, 2)
        pattern = next(iter(result))
        tampered = make_pattern(
            pattern.labels,
            pattern.support,
            pattern.transactions,
            witnesses={pattern.transactions[0]: (1, 2, 3, 6)},  # not a clique
        )
        with pytest.raises(PatternError):
            tampered.verify(paper_db)

    def test_validation_catches_adjacency_corruption_before_mining(self):
        from repro.graphdb import validate_database

        g = Graph.from_edges({0: "a", 1: "b"}, [(0, 1)])
        g._adjacency[1].discard(0)  # break symmetry behind the API's back
        report = validate_database(GraphDatabase([g]))
        assert not report.ok
