"""Unit tests for repro.core.pattern."""

import pytest

from repro.core import CanonicalForm, CliquePattern, make_pattern
from repro.exceptions import PatternError
from repro.graphdb import paper_example_database


class TestConstruction:
    def test_make_pattern_sorts(self):
        pattern = make_pattern("cab", support=2, transactions=[1, 0])
        assert pattern.labels == ("a", "b", "c")
        assert pattern.transactions == (0, 1)
        assert pattern.size == 3

    def test_key_format(self):
        assert make_pattern("abcd", 2).key() == "abcd:2"

    def test_negative_support_rejected(self):
        with pytest.raises(PatternError):
            make_pattern("a", -1)

    def test_transaction_count_must_match_support(self):
        with pytest.raises(PatternError):
            CliquePattern(CanonicalForm.from_labels("a"), support=2, transactions=(0,))

    def test_relative_support(self):
        assert make_pattern("a", 2).relative_support(4) == pytest.approx(0.5)
        with pytest.raises(PatternError):
            make_pattern("a", 2).relative_support(0)


class TestRelationships:
    def test_is_subpattern_of(self):
        assert make_pattern("ab", 2).is_subpattern_of(make_pattern("abc", 2))
        assert not make_pattern("ad", 2).is_subpattern_of(make_pattern("abc", 2))

    def test_makes_nonclosed_requires_equal_support_and_proper_superset(self):
        small = make_pattern("ab", 2)
        assert small.makes_nonclosed(make_pattern("abc", 2))
        assert not small.makes_nonclosed(make_pattern("abc", 1))
        assert not small.makes_nonclosed(make_pattern("ab", 2))
        assert not small.makes_nonclosed(make_pattern("cd", 2))


class TestVerification:
    def test_valid_witnesses_pass(self):
        db = paper_example_database()
        pattern = make_pattern(
            "abcd", 2, transactions=[0, 1],
            witnesses={0: (1, 2, 3, 4), 1: (1, 2, 4, 5)},
        )
        pattern.verify(db)

    def test_wrong_labels_fail(self):
        db = paper_example_database()
        pattern = make_pattern(
            "abce", 2, transactions=[0, 1], witnesses={0: (1, 2, 3, 4)}
        )
        with pytest.raises(PatternError):
            pattern.verify(db)

    def test_non_clique_witness_fails(self):
        db = paper_example_database()
        # u3 (d) and u5 (d) are not adjacent in G1.
        pattern = make_pattern("add", 1, transactions=[0], witnesses={0: (1, 3, 5)})
        with pytest.raises(PatternError):
            pattern.verify(db)

    def test_wrong_size_witness_fails(self):
        db = paper_example_database()
        pattern = make_pattern("ab", 1, transactions=[0], witnesses={0: (1,)})
        with pytest.raises(PatternError):
            pattern.verify(db)

    def test_repeated_vertex_fails(self):
        db = paper_example_database()
        pattern = make_pattern("aa", 1, transactions=[0], witnesses={0: (1, 1)})
        with pytest.raises(PatternError):
            pattern.verify(db)

    def test_missing_witness_is_skipped(self):
        db = paper_example_database()
        make_pattern("ab", 2, transactions=[0, 1]).verify(db)
