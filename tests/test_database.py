"""Unit tests for repro.graphdb.database."""

import pytest

from repro.exceptions import DatabaseError, InvalidSupportError
from repro.graphdb import Graph, GraphDatabase


def two_graph_db() -> GraphDatabase:
    g1 = Graph.from_edges({0: "a", 1: "b"}, [(0, 1)])
    g2 = Graph.from_edges({0: "a", 1: "c", 2: "c"}, [(0, 1)])
    return GraphDatabase([g1, g2], name="two")


class TestContainer:
    def test_len_and_iteration(self):
        db = two_graph_db()
        assert len(db) == 2
        assert [g.vertex_count for g in db] == [2, 3]

    def test_indexing(self):
        db = two_graph_db()
        assert db[0].label(0) == "a"
        with pytest.raises(DatabaseError):
            db[5]

    def test_add_assigns_transaction_ids(self):
        db = GraphDatabase()
        tid0 = db.add(Graph())
        tid1 = db.add(Graph())
        assert (tid0, tid1) == (0, 1)
        assert db[1].graph_id == 1

    def test_add_keeps_existing_graph_id(self):
        db = GraphDatabase()
        db.add(Graph(graph_id=42))
        assert db[0].graph_id == 42

    def test_repr(self):
        assert "|D|=2" in repr(two_graph_db())


class TestSupportArithmetic:
    def test_absolute_int_passthrough(self):
        assert two_graph_db().absolute_support(2) == 2

    def test_absolute_int_out_of_range(self):
        db = two_graph_db()
        with pytest.raises(InvalidSupportError):
            db.absolute_support(0)
        with pytest.raises(InvalidSupportError):
            db.absolute_support(3)

    def test_relative_rounds_up(self):
        db = GraphDatabase([Graph() for _ in range(11)])
        assert db.absolute_support(0.85) == 10
        assert db.absolute_support(1.0) == 11
        assert db.absolute_support(0.05) == 1

    def test_relative_out_of_range(self):
        db = two_graph_db()
        with pytest.raises(InvalidSupportError):
            db.absolute_support(0.0)
        with pytest.raises(InvalidSupportError):
            db.absolute_support(1.5)

    def test_bool_rejected(self):
        with pytest.raises(InvalidSupportError):
            two_graph_db().absolute_support(True)

    def test_support_strings_parse_like_the_cli(self):
        db = GraphDatabase([Graph() for _ in range(11)])
        assert db.absolute_support("85%") == 10
        assert db.absolute_support("0.85") == 10
        assert db.absolute_support("2") == 2

    def test_non_numeric_rejected(self):
        with pytest.raises(InvalidSupportError):
            two_graph_db().absolute_support("dense")
        with pytest.raises(InvalidSupportError):
            two_graph_db().absolute_support(None)

    def test_ambiguous_float_count_rejected(self):
        # 2.0 could mean "count 2" or a (bad) fraction; neither is allowed.
        with pytest.raises(InvalidSupportError):
            two_graph_db().absolute_support(2.0)

    def test_empty_database_has_no_threshold(self):
        with pytest.raises(DatabaseError):
            GraphDatabase().absolute_support(1)


class TestLabelSupports:
    def test_label_supports_counts_transactions_once(self):
        # 'c' appears twice in G2 but counts a single transaction.
        assert two_graph_db().label_supports() == {"a": 2, "b": 1, "c": 1}

    def test_frequent_labels_sorted(self):
        assert two_graph_db().frequent_labels(1) == ["a", "b", "c"]
        assert two_graph_db().frequent_labels(2) == ["a"]

    def test_distinct_labels_union(self):
        assert two_graph_db().distinct_labels() == {"a", "b", "c"}


class TestAggregates:
    def test_totals_and_averages(self):
        db = two_graph_db()
        assert db.total_vertices() == 5
        assert db.total_edges() == 2
        assert db.average_vertices() == pytest.approx(2.5)
        assert db.average_edges() == pytest.approx(1.0)

    def test_maxima(self):
        db = two_graph_db()
        assert db.max_vertices() == 3
        assert db.max_edges() == 1
        assert db.max_degree() == 1

    def test_empty_database_aggregates(self):
        db = GraphDatabase()
        assert db.average_vertices() == 0.0
        assert db.average_edges() == 0.0
        assert db.max_vertices() == 0
        assert db.max_degree() == 0


class TestDerivedDatabases:
    def test_replicate_multiplies_transactions(self):
        db = two_graph_db()
        big = db.replicate(3)
        assert len(big) == 6
        assert big.average_vertices() == db.average_vertices()

    def test_replicate_shares_immutable_graphs(self):
        # Transactions are immutable once added, so replication shares
        # the Graph objects instead of deep-copying them.
        db = two_graph_db()
        big = db.replicate(2)
        assert big[0] is db[0]
        assert big[2] is db[0]
        assert big[3] is db[1]

    def test_replicate_preserves_relative_support(self):
        db = two_graph_db()
        big = db.replicate(4)
        assert big.label_supports()["b"] == 4
        assert big.absolute_support(0.5) == 4

    def test_replicate_invalid_factor(self):
        with pytest.raises(DatabaseError):
            two_graph_db().replicate(0)

    def test_subset_picks_and_shares(self):
        db = two_graph_db()
        sub = db.subset([1])
        assert len(sub) == 1
        assert sub[0].vertex_count == 3
        assert sub[0] is db[1]
