"""Tests for the closed quasi-clique extension (paper §6 future work)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    is_quasi_clique,
    mine_closed_cliques,
    mine_closed_quasi_cliques,
    quasi_cliques_in_graph,
    required_degree,
)
from repro.exceptions import MiningError
from repro.graphdb import Graph, GraphDatabase
from tests.conftest import make_random_database


def k5_minus_edge() -> Graph:
    labels = {i: l for i, l in enumerate("pqrst")}
    edges = [(i, j) for i in range(5) for j in range(i + 1, 5) if (i, j) != (3, 4)]
    return Graph.from_edges(labels, edges)


class TestDefinitions:
    def test_required_degree(self):
        assert required_degree(1.0, 4) == 3
        assert required_degree(0.5, 5) == 2
        assert required_degree(0.6, 6) == 3
        assert required_degree(0.9, 1) == 0

    def test_clique_is_quasi_clique_at_any_gamma(self, k4_graph):
        assert is_quasi_clique(k4_graph, frozenset(k4_graph.vertices()), 1.0)
        assert is_quasi_clique(k4_graph, frozenset(k4_graph.vertices()), 0.5)

    def test_k5_minus_edge(self):
        g = k5_minus_edge()
        everyone = frozenset(g.vertices())
        assert not is_quasi_clique(g, everyone, 1.0)
        assert is_quasi_clique(g, everyone, 0.75)


class TestEnumeration:
    def test_gamma_one_equals_cliques(self, k4_graph):
        from repro.graphdb import all_cliques

        quasi = set(quasi_cliques_in_graph(k4_graph, 1.0, 1, 4))
        exact = set(all_cliques(k4_graph, min_size=1, max_size=4))
        assert quasi == exact

    def test_each_set_once(self):
        g = k5_minus_edge()
        found = list(quasi_cliques_in_graph(g, 0.75, 2, 5))
        assert len(found) == len(set(found))

    def test_k5_minus_edge_found_at_075(self):
        g = k5_minus_edge()
        found = set(quasi_cliques_in_graph(g, 0.75, 5, 5))
        assert frozenset(g.vertices()) in found

    def test_not_found_at_gamma_one(self):
        g = k5_minus_edge()
        assert set(quasi_cliques_in_graph(g, 1.0, 5, 5)) == set()

    def test_invalid_gamma(self, k4_graph):
        with pytest.raises(MiningError):
            list(quasi_cliques_in_graph(k4_graph, 0.3, 1, 3))
        with pytest.raises(MiningError):
            list(quasi_cliques_in_graph(k4_graph, 1.2, 1, 3))

    def test_invalid_window(self, k4_graph):
        with pytest.raises(MiningError):
            list(quasi_cliques_in_graph(k4_graph, 0.9, 3, 2))

    def test_disconnected_prefix_reachable(self):
        """Ascending-id prefixes may be disconnected; sets must still appear.

        Quasi-clique {1,2,3,4} where 1-2 is the missing edge: the prefix
        {1, 2} has no edge, yet the full set must be enumerated.
        """
        g = Graph.from_edges(
            {1: "a", 2: "b", 3: "c", 4: "d"},
            [(1, 3), (1, 4), (2, 3), (2, 4), (3, 4)],
        )
        found = set(quasi_cliques_in_graph(g, 0.6, 4, 4))
        assert frozenset({1, 2, 3, 4}) in found

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_gamma_one_matches_cliques_on_random_graphs(self, seed):
        db = make_random_database(seed, n_graphs=1, n_vertices=8)
        g = db[0]
        from repro.graphdb import all_cliques

        quasi = set(quasi_cliques_in_graph(g, 1.0, 1, 8))
        exact = set(all_cliques(g, min_size=1, max_size=8))
        assert quasi == exact

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), gamma=st.sampled_from([0.5, 0.6, 0.75, 0.9]))
    def test_soundness_every_result_is_quasi_clique(self, seed, gamma):
        db = make_random_database(seed, n_graphs=1, n_vertices=8)
        g = db[0]
        for vertex_set in quasi_cliques_in_graph(g, gamma, 2, 5):
            assert is_quasi_clique(g, vertex_set, gamma)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000), gamma=st.sampled_from([0.5, 0.75]))
    def test_completeness_against_bruteforce(self, seed, gamma):
        from itertools import combinations

        db = make_random_database(seed, n_graphs=1, n_vertices=7)
        g = db[0]
        expected = {
            frozenset(sub)
            for size in (2, 3, 4)
            for sub in combinations(sorted(g.vertices()), size)
            if is_quasi_clique(g, frozenset(sub), gamma)
        }
        found = set(quasi_cliques_in_graph(g, gamma, 2, 4))
        assert found == expected


class TestMining:
    def test_gamma_one_matches_clan(self, paper_db):
        quasi = mine_closed_quasi_cliques(paper_db, 2, gamma=1.0, min_size=1, max_size=4)
        exact = mine_closed_cliques(paper_db, 2)
        assert sorted(p.key() for p in quasi) == sorted(p.key() for p in exact)

    def test_near_clique_pattern_mined(self):
        db = GraphDatabase([k5_minus_edge(), k5_minus_edge()])
        result = mine_closed_quasi_cliques(db, 2, gamma=0.75, min_size=5, max_size=5)
        assert [p.key() for p in result] == ["pqrst:2"]

    def test_closed_only_flag(self):
        db = GraphDatabase([k5_minus_edge(), k5_minus_edge()])
        every = mine_closed_quasi_cliques(
            db, 2, gamma=0.75, min_size=2, max_size=5, closed_only=False
        )
        closed = mine_closed_quasi_cliques(
            db, 2, gamma=0.75, min_size=2, max_size=5, closed_only=True
        )
        assert len(closed) < len(every)
        assert {p.key() for p in closed} <= {p.key() for p in every}

    def test_witnesses_are_quasi_cliques(self, paper_db):
        result = mine_closed_quasi_cliques(paper_db, 2, gamma=0.75, min_size=3, max_size=4)
        for pattern in result:
            for tid, witness in pattern.witnesses.items():
                assert is_quasi_clique(paper_db[tid], frozenset(witness), 0.75)
