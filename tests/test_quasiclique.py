"""Tests for the closed quasi-clique extension (paper §6 future work)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.bruteforce import bruteforce_quasi_cliques
from repro.core import (
    MinerConfig,
    QuasiTaskStrategy,
    is_quasi_clique,
    mine,
    mine_closed_cliques,
    mine_closed_quasi_cliques,
    quasi_cliques_in_graph,
    required_degree,
)
from repro.core.api import MiningRequest
from repro.core.engine import MiningEngine
from repro.exceptions import MiningError
from repro.graphdb import Graph, GraphDatabase
from tests.conftest import make_random_database


def signature(result):
    return sorted(
        (
            pattern.form.labels,
            pattern.support,
            tuple(sorted(pattern.transactions)),
            tuple(sorted(pattern.witnesses.items())),
        )
        for pattern in result
    )


def rq(min_sup, **options):
    """A MiningRequest built exactly the way the legacy kwargs path would."""
    return MiningRequest.from_options(min_sup, **options)


def k5_minus_edge() -> Graph:
    labels = {i: l for i, l in enumerate("pqrst")}
    edges = [(i, j) for i in range(5) for j in range(i + 1, 5) if (i, j) != (3, 4)]
    return Graph.from_edges(labels, edges)


class TestDefinitions:
    def test_required_degree(self):
        assert required_degree(1.0, 4) == 3
        assert required_degree(0.5, 5) == 2
        assert required_degree(0.6, 6) == 3
        assert required_degree(0.9, 1) == 0

    def test_clique_is_quasi_clique_at_any_gamma(self, k4_graph):
        assert is_quasi_clique(k4_graph, frozenset(k4_graph.vertices()), 1.0)
        assert is_quasi_clique(k4_graph, frozenset(k4_graph.vertices()), 0.5)

    def test_k5_minus_edge(self):
        g = k5_minus_edge()
        everyone = frozenset(g.vertices())
        assert not is_quasi_clique(g, everyone, 1.0)
        assert is_quasi_clique(g, everyone, 0.75)


class TestEnumeration:
    def test_gamma_one_equals_cliques(self, k4_graph):
        from repro.graphdb import all_cliques

        quasi = set(quasi_cliques_in_graph(k4_graph, 1.0, 1, 4))
        exact = set(all_cliques(k4_graph, min_size=1, max_size=4))
        assert quasi == exact

    def test_each_set_once(self):
        g = k5_minus_edge()
        found = list(quasi_cliques_in_graph(g, 0.75, 2, 5))
        assert len(found) == len(set(found))

    def test_k5_minus_edge_found_at_075(self):
        g = k5_minus_edge()
        found = set(quasi_cliques_in_graph(g, 0.75, 5, 5))
        assert frozenset(g.vertices()) in found

    def test_not_found_at_gamma_one(self):
        g = k5_minus_edge()
        assert set(quasi_cliques_in_graph(g, 1.0, 5, 5)) == set()

    def test_invalid_gamma(self, k4_graph):
        with pytest.raises(MiningError):
            list(quasi_cliques_in_graph(k4_graph, 0.3, 1, 3))
        with pytest.raises(MiningError):
            list(quasi_cliques_in_graph(k4_graph, 1.2, 1, 3))

    def test_invalid_window(self, k4_graph):
        with pytest.raises(MiningError):
            list(quasi_cliques_in_graph(k4_graph, 0.9, 3, 2))

    def test_disconnected_prefix_reachable(self):
        """Ascending-id prefixes may be disconnected; sets must still appear.

        Quasi-clique {1,2,3,4} where 1-2 is the missing edge: the prefix
        {1, 2} has no edge, yet the full set must be enumerated.
        """
        g = Graph.from_edges(
            {1: "a", 2: "b", 3: "c", 4: "d"},
            [(1, 3), (1, 4), (2, 3), (2, 4), (3, 4)],
        )
        found = set(quasi_cliques_in_graph(g, 0.6, 4, 4))
        assert frozenset({1, 2, 3, 4}) in found

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_gamma_one_matches_cliques_on_random_graphs(self, seed):
        db = make_random_database(seed, n_graphs=1, n_vertices=8)
        g = db[0]
        from repro.graphdb import all_cliques

        quasi = set(quasi_cliques_in_graph(g, 1.0, 1, 8))
        exact = set(all_cliques(g, min_size=1, max_size=8))
        assert quasi == exact

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), gamma=st.sampled_from([0.5, 0.6, 0.75, 0.9]))
    def test_soundness_every_result_is_quasi_clique(self, seed, gamma):
        db = make_random_database(seed, n_graphs=1, n_vertices=8)
        g = db[0]
        for vertex_set in quasi_cliques_in_graph(g, gamma, 2, 5):
            assert is_quasi_clique(g, vertex_set, gamma)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000), gamma=st.sampled_from([0.5, 0.75]))
    def test_completeness_against_bruteforce(self, seed, gamma):
        from itertools import combinations

        db = make_random_database(seed, n_graphs=1, n_vertices=7)
        g = db[0]
        expected = {
            frozenset(sub)
            for size in (2, 3, 4)
            for sub in combinations(sorted(g.vertices()), size)
            if is_quasi_clique(g, frozenset(sub), gamma)
        }
        found = set(quasi_cliques_in_graph(g, gamma, 2, 4))
        assert found == expected


class TestMining:
    def test_gamma_one_matches_clan(self, paper_db):
        quasi = mine(
            paper_db,
            rq(2, task="quasi", gamma=1.0, config=MinerConfig(min_size=1, max_size=4)),
        )
        exact = mine_closed_cliques(paper_db, 2, config=MinerConfig(max_size=4))
        assert sorted(p.key() for p in quasi) == sorted(p.key() for p in exact)

    def test_near_clique_pattern_mined(self):
        db = GraphDatabase([k5_minus_edge(), k5_minus_edge()])
        result = mine(db, rq(2, task="quasi", gamma=0.75, min_size=5, max_size=5))
        assert [p.key() for p in result] == ["pqrst:2"]

    def test_closed_only_flag(self):
        db = GraphDatabase([k5_minus_edge(), k5_minus_edge()])
        config = MinerConfig.all_frequent(min_size=2, max_size=5)
        every = MiningEngine(
            db, config, strategy=QuasiTaskStrategy(0.75, closed=False)
        ).mine(2)
        closed = mine(db, rq(2, task="quasi", gamma=0.75, min_size=2, max_size=5))
        assert len(closed) < len(every)
        assert {p.key() for p in closed} <= {p.key() for p in every}

    def test_witnesses_are_quasi_cliques(self, paper_db):
        result = mine(
            paper_db, rq(2, task="quasi", gamma=0.75, min_size=3, max_size=4)
        )
        for pattern in result:
            for tid, witness in pattern.witnesses.items():
                assert is_quasi_clique(paper_db[tid], frozenset(witness), 0.75)

    def test_removed_shim_raises_with_migration_hint(self, paper_db):
        # Graduated per the deprecation policy in CONTRIBUTING.md: the
        # function stays importable but now fails loudly with the recipe.
        with pytest.raises(MiningError, match="task='quasi'"):
            mine_closed_quasi_cliques(
                paper_db, 2, gamma=0.75, min_size=2, max_size=4
            )


class TestEngineStrategyProperties:
    """Hypothesis properties of the QuasiTaskStrategy bounds.

    The engine port replaces per-prefix closure reasoning with two
    quasi-specific cuts — the feasibility recursion and the c-closure
    subtree bound — so their soundness is exactly what the strategy's
    correctness rests on.
    """

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        gamma=st.sampled_from([0.5, 0.6, 0.75, 0.8, 0.9, 1.0]),
        min_sup=st.integers(1, 2),
    )
    def test_cc_prune_bound_never_cuts_a_result_subtree(
        self, seed, gamma, min_sup
    ):
        """Pruning is invisible in the output: a run with the c-closure
        cut enabled equals a run with all subtree pruning disabled, and
        both equal the exhaustive oracle — so no cut subtree contained
        an oracle-confirmed pattern."""
        db = make_random_database(seed, n_graphs=3, n_vertices=7)
        pruned = mine(db, rq(min_sup, task="quasi", gamma=gamma, max_size=4))
        unpruned = mine(
            db,
            rq(
                min_sup,
                task="quasi",
                gamma=gamma,
                config=MinerConfig(
                    min_size=2, max_size=4, nonclosed_prefix_pruning=False
                ),
            ),
        )
        assert signature(pruned) == signature(unpruned)
        oracle = bruteforce_quasi_cliques(
            db, min_sup, gamma=gamma, min_size=2, max_size=4
        )
        assert signature(pruned) == signature(oracle)

    def test_cc_prune_bound_fires(self):
        """The soundness property is not vacuous: on a seed where the
        bound provably cuts subtrees, the output still matches the
        unpruned run (regression pin for the probe that found it)."""
        db = make_random_database(0, n_graphs=3, n_vertices=7)
        pruned = mine(db, rq(2, task="quasi", gamma=0.6, max_size=4))
        assert pruned.statistics.snapshot()["nonclosed_prefix_prunes"] > 0
        unpruned = mine(
            db,
            rq(
                2,
                task="quasi",
                gamma=0.6,
                config=MinerConfig(
                    min_size=2, max_size=4, nonclosed_prefix_pruning=False
                ),
            ),
        )
        assert signature(pruned) == signature(unpruned)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        gammas=st.tuples(
            st.sampled_from([0.5, 0.6, 0.75, 0.8, 0.9, 1.0]),
            st.sampled_from([0.5, 0.6, 0.75, 0.8, 0.9, 1.0]),
        ),
    )
    def test_visit_check_is_density_monotone(self, seed, gammas):
        """Loosening γ only adds: every pattern the strategy's visit
        check emits at the tighter density is emitted at the looser one
        too, with support at least as large.  (Tested on the frequent
        variant — the closed filter deliberately drops dominated
        patterns, which would mask the monotonicity.)"""
        lo, hi = min(gammas), max(gammas)
        db = make_random_database(seed, n_graphs=3, n_vertices=7)
        config = MinerConfig.all_frequent(min_size=2, max_size=4)
        at_hi = MiningEngine(
            db, config, strategy=QuasiTaskStrategy(hi, closed=False)
        ).mine(1)
        at_lo = MiningEngine(
            db, config, strategy=QuasiTaskStrategy(lo, closed=False)
        ).mine(1)
        support_at_lo = {p.form.labels: p.support for p in at_lo}
        for pattern in at_hi:
            assert pattern.form.labels in support_at_lo, pattern
            assert support_at_lo[pattern.form.labels] >= pattern.support, pattern
