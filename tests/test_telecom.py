"""Tests for the call-graph substrate."""

import pytest

from repro.core import mine, mine_closed_cliques
from repro.core.api import MiningRequest
from repro.exceptions import DataGenerationError
from repro.telecom import (
    CallGraphConfig,
    CommunitySpec,
    call_graph_database,
    expected_communities,
    subscriber_label,
)


def rq(min_sup, **options):
    """The request the legacy kwargs path would have built."""
    return MiningRequest.from_options(min_sup, **options)



class TestSpecs:
    def test_community_validation(self):
        with pytest.raises(DataGenerationError):
            CommunitySpec(size=2)
        with pytest.raises(DataGenerationError):
            CommunitySpec(size=4, density=0.0)
        with pytest.raises(DataGenerationError):
            CommunitySpec(size=4, activity=1.5)

    def test_config_validation(self):
        with pytest.raises(DataGenerationError):
            CallGraphConfig(n_subscribers=5)
        with pytest.raises(DataGenerationError):
            CallGraphConfig(
                n_subscribers=10,
                communities=(CommunitySpec(size=6), CommunitySpec(size=6)),
            )

    def test_subscriber_labels_sort_numerically(self):
        labels = [subscriber_label(i) for i in (0, 5, 50, 500)]
        assert labels == sorted(labels)


class TestGeneration:
    def test_deterministic(self):
        a = call_graph_database()
        b = call_graph_database()
        for g1, g2 in zip(a, b):
            assert g1 == g2

    def test_one_graph_per_day(self):
        cfg = CallGraphConfig(n_days=7)
        assert len(call_graph_database(cfg)) == 7

    def test_all_subscribers_present_every_day(self):
        db = call_graph_database()
        for graph in db:
            assert graph.vertex_count == 60

    def test_full_density_community_is_daily_clique(self):
        db = call_graph_database()
        labels, spec = expected_communities()[2]
        assert spec.density == 1.0
        for graph in db:
            vertices = [
                v for v in graph.vertices() if graph.label(v) in set(labels)
            ]
            assert graph.is_clique(vertices)


class TestMiningStory:
    def test_exact_mining_finds_only_full_density_community(self):
        db = call_graph_database()
        result = mine_closed_cliques(db, 0.7, min_size=4)
        found = {p.labels for p in result}
        full = {l for l, s in expected_communities() if s.density == 1.0}
        partial = {l for l, s in expected_communities() if s.density < 1.0}
        assert found & full == full
        assert not (found & partial)

    def test_quasi_mining_recovers_partial_communities(self):
        db = call_graph_database()
        result = mine(
            db, rq(0.7, task="quasi", gamma=0.6, min_size=4, max_size=6)
        )
        found = {p.labels for p in result}
        labels, spec = expected_communities()[0]  # 6-member, density 0.85
        assert labels in found

    def test_low_activity_community_needs_lower_support(self):
        db = call_graph_database()
        labels, spec = expected_communities()[3]  # active 60% of days
        assert spec.activity < 1.0
        high = mine(db, rq(0.8, task="quasi", gamma=0.6, min_size=5, max_size=5))
        low = mine(db, rq(0.4, task="quasi", gamma=0.6, min_size=5, max_size=5))
        assert labels not in {p.labels for p in high}
        assert labels in {p.labels for p in low}
