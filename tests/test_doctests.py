"""Run the docstring examples of the modules that carry them."""

import doctest

import pytest

import repro.core.canonical
import repro.core.miner
import repro.graphdb.database
import repro.graphdb.graph

MODULES = [
    repro.core.canonical,
    repro.core.miner,
    repro.graphdb.database,
    repro.graphdb.graph,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    failures, attempted = doctest.testmod(module)[0], doctest.testmod(module)[1]
    assert attempted > 0, f"{module.__name__} lost its doctest examples"
    assert failures == 0
