"""The README's code snippets and claims, executed verbatim.

If the README drifts from the library, this file fails.
"""

from pathlib import Path

import pytest

README = (Path(__file__).resolve().parent.parent / "README.md").read_text()


class TestQuickstartSnippets:
    def test_running_example_snippet(self):
        from repro import mine_closed_cliques, paper_example_database

        database = paper_example_database()
        result = mine_closed_cliques(database, min_sup=2)
        assert [p.key() for p in result] == ["abcd:2", "bde:2"]

    def test_own_data_snippet(self):
        from repro import Graph, GraphDatabase, mine_closed_cliques

        g = Graph()
        g.add_vertex(0, "a")
        g.add_vertex(1, "b")
        g.add_vertex(2, "c")
        g.add_edge(0, 1)
        g.add_edge(0, 2)
        g.add_edge(1, 2)
        db = GraphDatabase([g, g.copy()])
        result = mine_closed_cliques(db, min_sup=1.0)
        assert [p.key() for p in result] == ["abc:2"]

    def test_stock_market_snippet(self):
        from repro import mine_closed_cliques
        from repro.stockmarket import maximum_group, stock_market_database

        db = stock_market_database(theta=0.90)
        result = mine_closed_cliques(db, min_sup=1.0)
        top = maximum_group(result, n_periods=len(db))
        described = top.describe()
        for ticker in ("DMF", "IQM", "XAA"):
            assert ticker in described
        assert "12 stocks" in described
        assert "100%" in described


class TestReadmeReferences:
    def test_referenced_files_exist(self):
        root = Path(__file__).resolve().parent.parent
        for name in ("DESIGN.md", "EXPERIMENTS.md", "docs/ALGORITHM.md"):
            assert name in README
            assert (root / name).exists(), name

    def test_cli_commands_mentioned_exist(self):
        from repro.cli import build_parser

        parser = build_parser()
        sub = next(
            a for a in parser._actions if a.__class__.__name__ == "_SubParsersAction"
        )
        available = set(sub.choices)
        for command in ("mine", "topk", "quasi", "lattice", "stats", "validate",
                        "convert", "diff", "record", "replay", "generate",
                        "experiments"):
            assert f"clan {command}" in README, command
            assert command in available, command

    def test_install_commands_present(self):
        assert "pip install -e ." in README
        assert "python setup.py develop" in README
