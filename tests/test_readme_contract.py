"""The README's code snippets and claims, executed verbatim.

If the README drifts from the library, this file fails.
"""

from pathlib import Path

import pytest

README = (Path(__file__).resolve().parent.parent / "README.md").read_text()


class TestQuickstartSnippets:
    def test_running_example_snippet(self):
        from repro import mine, paper_example_database

        database = paper_example_database()
        result = mine(database, min_sup=2)
        assert [p.key() for p in result] == ["abcd:2", "bde:2"]

    def test_facade_matches_legacy_wrappers(self):
        """The README's claim: the per-task functions remain supported
        and agree with the façade, byte for byte."""
        from repro import MiningRequest, mine
        from repro import mine_closed_cliques, mine_frequent_cliques
        from repro import paper_example_database

        database = paper_example_database()
        assert [p.key() for p in mine(database, 2)] == [
            p.key() for p in mine_closed_cliques(database, 2)
        ]
        assert [p.key() for p in mine(database, MiningRequest(min_sup=2, task="frequent"))] == [
            p.key() for p in mine_frequent_cliques(database, 2)
        ]
        assert [p.key() for p in mine(database, "100%")] == [
            p.key() for p in mine(database, 2)
        ]

    def test_own_data_snippet(self):
        from repro import Graph, GraphDatabase, mine_closed_cliques

        g = Graph()
        g.add_vertex(0, "a")
        g.add_vertex(1, "b")
        g.add_vertex(2, "c")
        g.add_edge(0, 1)
        g.add_edge(0, 2)
        g.add_edge(1, 2)
        db = GraphDatabase([g, g.copy()])
        result = mine_closed_cliques(db, min_sup=1.0)
        assert [p.key() for p in result] == ["abc:2"]

    def test_long_running_mines_snippet(self):
        from repro import MiningBudget, MiningRequest, mine, paper_example_database

        database = paper_example_database()
        request = MiningRequest(
            min_sup=2, budget=MiningBudget(max_expanded_prefixes=3)
        )
        partial = mine(database, request)
        if partial.truncated:
            finished = mine(
                database, min_sup=2, root_labels=partial.completed_roots
            )
            assert [p.key() for p in partial] == [p.key() for p in finished]
        # The README also promises the truncation actually triggers on
        # this example (3 prefixes cannot cover all five roots).
        assert partial.truncated

    def test_long_running_cli_flags_exist(self):
        """Every session flag the README shows is a real mine option."""
        from repro.cli import build_parser

        parser = build_parser()
        sub = next(
            a for a in parser._actions if a.__class__.__name__ == "_SubParsersAction"
        )
        mine_options = {
            option
            for action in sub.choices["mine"]._actions
            for option in action.option_strings
        }
        for flag in ("--progress", "--deadline", "--max-patterns",
                     "--trace", "--checkpoint", "--resume"):
            assert flag in mine_options, flag
        for flag in ("--progress", "--deadline", "--trace",
                     "--checkpoint", "--resume"):
            assert flag in README, flag

    def test_scaling_out_snippet(self):
        from repro import MiningExecutor, MiningRequest, mine, paper_example_database

        database = paper_example_database()
        stealing = mine(database, MiningRequest(min_sup=2, processes=2))
        static = mine(
            database, MiningRequest(min_sup=2, processes=2, scheduler="static")
        )
        assert [p.key() for p in stealing] == [p.key() for p in static]
        with MiningExecutor(database, processes=2) as executor:
            sizes = {min_sup: len(executor.mine(min_sup)) for min_sup in (2, 1)}
            report = executor.last_report
        assert sizes[2] == 2
        assert sizes[1] >= sizes[2]
        assert report.tasks >= report.roots

    def test_scaling_out_cli_flags_exist(self):
        from repro.cli import build_parser

        parser = build_parser()
        sub = next(
            a for a in parser._actions if a.__class__.__name__ == "_SubParsersAction"
        )
        mine_options = {
            option
            for action in sub.choices["mine"]._actions
            for option in action.option_strings
        }
        for flag in ("--processes", "--scheduler"):
            assert flag in mine_options, flag
            assert flag in README, flag

    def test_out_of_core_snippet(self, tmp_path):
        from repro import GraphDatabase, MiningRequest, mine, mine_sharded
        from repro.graphdb import import_graphs, open_source, paper_example_database

        database = paper_example_database()
        store = tmp_path / "big.sqlite"
        import_graphs(store, iter(database), name="big").close()
        view = GraphDatabase(source=open_source(store))
        result = mine_sharded(view, MiningRequest(min_sup=2), shard_size=1024)
        assert [p.key() for p in result] == [
            p.key() for p in mine(database, min_sup=2)
        ]

    def test_out_of_core_cli_flags_exist(self):
        from repro.cli import build_parser

        parser = build_parser()
        sub = next(
            a for a in parser._actions if a.__class__.__name__ == "_SubParsersAction"
        )
        assert "import" in sub.choices
        assert "clan import" in README
        mine_options = {
            option
            for action in sub.choices["mine"]._actions
            for option in action.option_strings
        }
        for flag in ("--db", "--shards", "--shard-size"):
            assert flag in mine_options, flag
            assert flag in README, flag

    def test_serve_snippet_wire_format_is_valid(self):
        """The curl body in 'Mining as a service' is a valid request."""
        import re

        from repro import MiningRequest

        match = re.search(r"-d '(\{.*?\})'", README, re.S)
        assert match, "README curl example with a request body not found"
        request = MiningRequest.from_json(match.group(1))
        assert request == MiningRequest(min_sup=2)

    def test_stock_market_snippet(self):
        from repro import mine_closed_cliques
        from repro.stockmarket import maximum_group, stock_market_database

        db = stock_market_database(theta=0.90)
        result = mine_closed_cliques(db, min_sup=1.0)
        top = maximum_group(result, n_periods=len(db))
        described = top.describe()
        for ticker in ("DMF", "IQM", "XAA"):
            assert ticker in described
        assert "12 stocks" in described
        assert "100%" in described


class TestReadmeReferences:
    def test_referenced_files_exist(self):
        root = Path(__file__).resolve().parent.parent
        for name in ("DESIGN.md", "EXPERIMENTS.md", "docs/ALGORITHM.md"):
            assert name in README
            assert (root / name).exists(), name

    def test_cli_commands_mentioned_exist(self):
        from repro.cli import build_parser

        parser = build_parser()
        sub = next(
            a for a in parser._actions if a.__class__.__name__ == "_SubParsersAction"
        )
        available = set(sub.choices)
        for command in ("mine", "sweep", "topk", "quasi", "serve", "submit",
                        "watch-job", "lattice", "stats",
                        "validate", "convert", "diff", "record", "replay",
                        "generate", "experiments"):
            assert f"clan {command}" in README, command
            assert command in available, command

    def test_install_commands_present(self):
        assert "pip install -e ." in README
        assert "python setup.py develop" in README
