"""Tests for the analysis package (diffs, ground-truth recovery)."""

import pytest

from repro.analysis import (
    diff_results,
    evaluate_recovery,
    label_frequency,
    support_histogram,
)
from repro.core import MiningResult, make_pattern, mine_closed_cliques


def result_of(*specs):
    return MiningResult([make_pattern(labels, sup) for labels, sup in specs])


class TestDiff:
    def test_identical(self):
        a = result_of(("abc", 2), ("de", 3))
        b = result_of(("de", 3), ("abc", 2))
        diff = diff_results(a, b)
        assert diff.identical
        assert diff.jaccard() == 1.0
        assert "identical" in diff.render()

    def test_asymmetric_membership(self):
        a = result_of(("abc", 2), ("x", 1))
        b = result_of(("abc", 2), ("y", 1))
        diff = diff_results(a, b)
        assert diff.only_left == ("x:1",)
        assert diff.only_right == ("y:1",)
        assert diff.common == 1
        assert diff.jaccard() == pytest.approx(1 / 3)

    def test_support_change(self):
        diff = diff_results(result_of(("ab", 2)), result_of(("ab", 3)))
        assert diff.support_changed == (("ab", 2, 3),)
        assert not diff.identical

    def test_empty_results(self):
        diff = diff_results(MiningResult(), MiningResult())
        assert diff.identical
        assert diff.jaccard() == 1.0

    def test_render_limits(self):
        a = result_of(*[(chr(ord("a") + i), 1) for i in range(30)])
        text = diff_results(a, MiningResult()).render(limit=5)
        assert text.count("- ") == 5


class TestHistograms:
    def test_support_histogram(self):
        r = result_of(("a", 2), ("b", 2), ("c", 5))
        assert support_histogram(r) == {2: 2, 5: 1}

    def test_label_frequency_orders_by_count(self):
        r = result_of(("ab", 2), ("ac", 2), ("bd", 1))
        freq = label_frequency(r)
        assert list(freq)[0] == "a"
        assert freq == {"a": 2, "b": 2, "c": 1, "d": 1}


class TestRecovery:
    def test_exact_recovery(self, paper_db):
        result = mine_closed_cliques(paper_db, 2)
        report = evaluate_recovery(
            result, [("abcd", 2), ("bde", 2)], min_size=3
        )
        assert report.exact_recall == 1.0
        assert report.mean_coverage == 1.0
        assert report.unmatched_patterns == ()
        assert all(o.support_matches for o in report.outcomes)

    def test_partial_recovery(self, paper_db):
        result = mine_closed_cliques(paper_db, 2)
        report = evaluate_recovery(result, [("abcde", None)], min_size=3)
        outcome = report.outcomes[0]
        assert not outcome.exact
        assert outcome.coverage == pytest.approx(4 / 5)
        assert outcome.best_subpattern == "abcd:2"

    def test_missing_structure(self, paper_db):
        result = mine_closed_cliques(paper_db, 2)
        report = evaluate_recovery(result, [("xyz", 2)], min_size=3)
        outcome = report.outcomes[0]
        assert outcome.coverage == 0.0
        assert outcome.best_subpattern is None
        # abcd and bde match no planted structure here.
        assert len(report.unmatched_patterns) == 2

    def test_support_mismatch_detected(self, paper_db):
        result = mine_closed_cliques(paper_db, 2)
        report = evaluate_recovery(result, [("abcd", 99)])
        assert report.outcomes[0].exact
        assert not report.outcomes[0].support_matches

    def test_render_mentions_status(self, paper_db):
        result = mine_closed_cliques(paper_db, 2)
        text = evaluate_recovery(result, [("abcd", 2), ("xyz", 1)]).render()
        assert "EXACT" in text
        assert "partial" in text

    def test_empty_planted_list(self):
        report = evaluate_recovery(MiningResult(), [])
        assert report.exact_recall == 1.0
        assert report.mean_coverage == 1.0
