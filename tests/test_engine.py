"""Tests for the task-parameterised enumeration engine itself.

Coverage of the strategy registry, task-scoped cache digests, the
removed ``repro.core.parallel`` import path, and the precise error
texts the façade promises — the cross-path output guarantees live in
``test_task_parity.py``.
"""

from __future__ import annotations

import pytest

from repro.core import ClanMiner, MinerConfig, MiningEngine, mine
from repro.core.api import MiningRequest
from repro.core.engine import (
    ENGINE_TASKS,
    engine_digest,
    engine_for_task,
    finalize_patterns,
    make_strategy,
)
from repro.exceptions import MiningError
from tests.conftest import make_random_database


class TestStrategyRegistry:
    def test_engine_tasks_enumeration(self):
        assert ENGINE_TASKS == ("closed", "frequent", "maximal", "topk", "quasi")

    @pytest.mark.parametrize("task", ENGINE_TASKS)
    def test_make_strategy_round_trips_task_name(self, task):
        strategy = make_strategy(
            task,
            k=3 if task == "topk" else None,
            gamma=0.8 if task == "quasi" else None,
        )
        assert strategy.task == task

    def test_unknown_task_rejected(self):
        with pytest.raises(MiningError, match="unknown engine task"):
            make_strategy("pseudo")

    def test_topk_requires_positive_k(self):
        with pytest.raises(MiningError):
            make_strategy("topk", k=None)
        with pytest.raises(MiningError):
            make_strategy("topk", k=0)

    def test_quasi_requires_gamma_in_range(self):
        with pytest.raises(MiningError, match="requires gamma"):
            make_strategy("quasi")
        with pytest.raises(MiningError, match="gamma must be"):
            make_strategy("quasi", gamma=0.3)

    def test_sweep_support_is_task_scoped(self):
        assert make_strategy("closed").supports_sweep
        assert make_strategy("frequent").supports_sweep
        assert not make_strategy("maximal").supports_sweep
        assert not make_strategy("topk", k=2).supports_sweep
        assert not make_strategy("quasi", gamma=0.8).supports_sweep

    def test_clan_miner_is_the_closed_engine(self):
        database = make_random_database(1)
        miner = ClanMiner(database)
        assert isinstance(miner, MiningEngine)
        assert miner.task == "closed"
        assert ClanMiner(database, MinerConfig.all_frequent()).task == "frequent"


class TestEngineDigest:
    def test_closed_and_frequent_digests_stay_bare(self):
        # Persisted caches and the incremental miner key on the bare
        # MinerConfig digest; the engine must not invalidate them.
        config = MinerConfig()
        assert engine_digest("closed", config, None) == config.digest()
        frequent = MinerConfig.all_frequent()
        assert engine_digest("frequent", frequent, None) == frequent.digest()

    def test_specialised_tasks_get_prefixed_digests(self):
        config = MinerConfig()
        digests = {
            engine_digest("closed", config, None),
            engine_digest("maximal", config, None),
            engine_digest("topk", config, 3),
            engine_digest("topk", config, 5),
            engine_digest("quasi", config, None, 0.6),
            engine_digest("quasi", config, None, 0.8),
        }
        assert len(digests) == 6  # no collisions across tasks, k, or gamma


class TestFinalizePatterns:
    def test_non_topk_is_canonical_order(self):
        database = make_random_database(2)
        patterns = list(mine(database, 2))
        shuffled = list(reversed(patterns))
        assert finalize_patterns("closed", shuffled, None) == patterns

    def test_topk_selects_global_best(self):
        database = make_random_database(2)
        everything = list(mine(database, 2))
        top = finalize_patterns("topk", everything, 2)
        assert len(top) == 2
        assert top == list(
            mine(database, MiningRequest(min_sup=2, task="topk", k=2))
        )


class TestEngineForTask:
    @pytest.mark.parametrize("task", ENGINE_TASKS)
    def test_prepare_and_mine(self, task):
        database = make_random_database(3)
        k = 2 if task == "topk" else None
        gamma = 0.8 if task == "quasi" else None
        config = MinerConfig(min_size=2, max_size=4) if task == "quasi" else None
        engine = engine_for_task(database, config, task, k, gamma).prepare()
        result = engine.mine(2)
        assert result.closed_only == (task != "frequent")

    def test_topk_engine_is_not_root_splittable(self):
        # The branch-and-bound threshold is root-wide state; handing a
        # level-2 subtree to another worker would lose it.
        database = make_random_database(3)
        engine = engine_for_task(database, None, "topk", 2).prepare()
        roots = database.frequent_labels(2)
        assert engine.root_extension_plan(2, roots[0]) == []

    def test_maximal_engine_exposes_split_plan(self):
        database = make_random_database(3)
        engine = engine_for_task(database, None, "maximal", None).prepare()
        roots = database.frequent_labels(1)
        assert engine.root_extension_plan(1, roots[0])


class TestParallelShimRemoved:
    def test_module_is_gone(self):
        # Stage three of the deprecation policy (CONTRIBUTING.md): the
        # ``repro.core.parallel`` shim warned, then raised with a
        # migration hint, and is now deleted outright.
        with pytest.raises(ModuleNotFoundError):
            import repro.core.parallel  # noqa: F401

    def test_entry_points_live_in_executor(self):
        from repro.core.executor import (  # noqa: F401
            mine_closed_cliques_parallel,
            partition_roots,
        )
