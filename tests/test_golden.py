"""Golden regression tests.

Fixed-seed workloads with their full expected pattern listings pinned in
the test file.  Any behavioural drift in the miner, the generators, or
the canonical form shows up here as an exact diff.
"""

import pytest

from repro.core import mine_closed_cliques, mine_frequent_cliques
from repro.graphdb import random_database
from repro.io import patterns


GOLDEN_CLOSED_SEED7 = """\
aacd:2
ab:4
abc:3
abcd:2
abd:3
acc:2
acd:4
bc:4
bcd:3
cc:3
ccd:2
"""

GOLDEN_FREQUENT_SEED11_SUP3 = """\
a:3
ab:3
b:4
bb:3
bbd:3
bd:3
d:3
"""


def db7():
    return random_database(4, 9, 0.55, 4, seed=7, name="golden-7")


def db11():
    return random_database(4, 8, 0.5, 4, seed=11, name="golden-11")


class TestGoldenListings:
    def test_closed_seed7(self):
        result = mine_closed_cliques(db7(), 2)
        assert patterns.dumps_result(result) == GOLDEN_CLOSED_SEED7

    def test_frequent_seed11(self):
        result = mine_frequent_cliques(db11(), 3)
        assert patterns.dumps_result(result) == GOLDEN_FREQUENT_SEED11_SUP3

    def test_golden_sets_are_cross_consistent(self):
        """The pinned closed set must expand/contract consistently."""
        closed = mine_closed_cliques(db7(), 2)
        frequent = mine_frequent_cliques(db7(), 2)
        assert sorted(closed.expand_to_frequent().keys()) == sorted(frequent.keys())
        assert sorted(frequent.closed_subset().keys()) == sorted(closed.keys())

    def test_all_miners_agree_on_golden_workload(self):
        from repro.baselines import (
            bruteforce_closed_cliques,
            mine_closed_cliques_bfs,
            mine_closed_by_postfilter,
        )

        db = db7()
        expected = GOLDEN_CLOSED_SEED7
        for miner in (bruteforce_closed_cliques, mine_closed_cliques_bfs,
                      mine_closed_by_postfilter):
            assert patterns.dumps_result(miner(db, 2)) == expected, miner.__name__


class TestGeneratorStability:
    """The generators' exact output is part of the reproducibility
    contract (benchmarks quote numbers from them)."""

    def test_random_database_fingerprint(self):
        db = db7()
        fingerprint = (
            db.total_vertices(),
            db.total_edges(),
            sorted(db.label_supports().items()),
        )
        assert fingerprint == (
            36, 82, [("a", 4), ("b", 4), ("c", 4), ("d", 4)]
        )

    def test_chem_fingerprint(self):
        from repro.chem import ca_like_database

        db = ca_like_database(n_compounds=25, seed=11)
        assert (db.total_vertices(), db.total_edges()) == (960, 997)

    def test_market_fingerprint(self):
        from repro.stockmarket import stock_market_database

        db = stock_market_database(0.93, scale="tiny")
        assert len(db) == 11
        assert (db[0].vertex_count, db[0].edge_count) == (115, 337)

    def test_protein_fingerprint(self):
        from repro.bio import protein_family

        db = protein_family()
        assert (db.total_vertices(), db.total_edges()) == (2171, 6337)

    def test_telecom_fingerprint(self):
        from repro.telecom import call_graph_database

        db = call_graph_database()
        assert (db.total_vertices(), db.total_edges()) == (600, 976)
