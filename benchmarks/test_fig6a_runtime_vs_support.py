"""Figure 6(a) — CLAN runtime vs minimum support on six market databases.

The paper varies the relative support threshold from 100% down to 85%
on stock-market-0.90 .. -0.95 and reports runtime curves: runtime grows
as support falls, and denser databases (lower θ) cost more throughout.
ADI-Mine has no curve here — it "could not complete after running for
several days" on every one of these databases even at 100% support
(reproduced in the Figure 7(a) benchmark's budget mechanism).
"""

import time

from repro.core import mine_closed_cliques
from repro.bench import format_series_table, multi_series_chart
from repro.stockmarket import PAPER_THETAS

from conftest import write_report

SUPPORTS = (1.00, 0.95, 0.90, 0.85)


def run_sweep(market_databases):
    columns = []
    for theta in PAPER_THETAS:
        db = market_databases[theta]
        column = []
        for min_sup in SUPPORTS:
            started = time.perf_counter()
            mine_closed_cliques(db, min_sup)
            column.append(time.perf_counter() - started)
        columns.append(column)
    return columns


def test_fig6a_runtime_vs_support(benchmark, market_databases):
    # The benchmarked cell: the heaviest point of the sweep (θ=0.90 @85%).
    benchmark.pedantic(
        lambda: mine_closed_cliques(market_databases[0.90], 0.85),
        rounds=1, iterations=1,
    )
    columns = run_sweep(market_databases)
    xs = [f"{int(s * 100)}%" for s in SUPPORTS]
    table = format_series_table(
        "min_sup",
        [f"SM-{theta:.2f} (s)" for theta in PAPER_THETAS],
        xs,
        columns,
        title="Figure 6(a): CLAN runtime vs support (seconds)",
    )
    chart = multi_series_chart(
        xs, [f"SM-{theta:.2f}" for theta in PAPER_THETAS], columns, log_scale=False
    )
    write_report("fig6a", table + "\n\n" + chart)

    for theta, column in zip(PAPER_THETAS, columns):
        # Shape 1: within each database, lowering the support threshold
        # never makes mining dramatically cheaper; the 85% run costs at
        # least as much as the 100% run (up to timer noise).
        assert column[-1] >= 0.5 * column[0], theta
    # Shape 2: at the lowest support the densest database (θ=0.90)
    # costs more than the sparsest (θ=0.95), as in the paper's curves.
    last_row = [column[-1] for column in columns]
    assert last_row[0] > last_row[-1]
