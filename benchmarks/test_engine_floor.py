"""The shared engine's per-node floor on the Figure 6(a) workload.

The iterative search loop (:meth:`repro.core.engine.MiningEngine._search`)
is the cost every task pays per DFS node before any task-specific work:
frame management, the extension scan, pruning, statistics, and — only
at emission — pattern/witness materialisation.  This benchmark breaks
that floor down by toggling each layer off:

* ``default``       — the full closed mine: enumeration + pattern and
  witness materialisation + statistics;
* ``no witnesses``  — ``collect_witnesses=False``: emission still
  builds forms/transactions but skips the per-transaction witness maps;
* ``no emission``   — ``min_size`` above every clique: the pure
  enumeration floor, nothing materialised (lazy prefixes never become
  patterns);
* ``hooks passive`` — a dormant :class:`SearchHooks` attached (the
  budget-less session path: counters settled at subtree boundaries);
* ``hooks armed``   — a live ring sink, every pattern/prune delivered.

Differences between adjacent rungs give the per-node overhead of each
layer.  The headline number is enumerated nodes per second; the record
lands in ``BENCH_floor.json`` at the repo root, and the CI smoke job
gates on the nodes/sec bar at small scale.
"""

import json
import time
from pathlib import Path

from repro.bench import format_table, hardware_context
from repro.core import ClanMiner, MinerConfig, RingBufferSink, SLAB
from repro.core.session import SearchHooks
from repro.stockmarket import PAPER_THETAS

from conftest import write_report

REPO_ROOT = Path(__file__).resolve().parent.parent
SUPPORTS = (1.00, 0.95, 0.90, 0.85)
ROUNDS = 5  # best-of, to shed scheduler noise

#: Conservative CI bar (nodes/second, default mode, small scale) —
#: roughly a third of what a developer laptop sustains, so it only
#: trips on genuine per-node regressions, not on slow runners.
MIN_NODES_PER_SECOND = 8_000


def sweep(market_databases, config, hooks_factory=None):
    """One fig6a sweep; returns (seconds, total DFS nodes, result keys)."""
    keys = []
    nodes = 0
    started = time.perf_counter()
    for theta in PAPER_THETAS:
        miner = ClanMiner(market_databases[theta], config)
        for min_sup in SUPPORTS:
            hooks = hooks_factory() if hooks_factory is not None else None
            result = miner.mine(min_sup, hooks=hooks)
            nodes += result.statistics.prefixes_visited
            keys.append(sorted(p.key() for p in result))
    return time.perf_counter() - started, nodes, keys


def best_of(market_databases, config, hooks_factory=None):
    best_seconds, nodes, keys = sweep(market_databases, config, hooks_factory)
    for _ in range(ROUNDS - 1):
        seconds, _, _ = sweep(market_databases, config, hooks_factory)
        best_seconds = min(best_seconds, seconds)
    return best_seconds, nodes, keys


def per_node_us(seconds, nodes):
    return seconds / nodes * 1e6 if nodes else 0.0


def test_engine_floor(benchmark, market_databases, scale):
    benchmark.pedantic(
        lambda: sweep(market_databases, MinerConfig()), rounds=1, iterations=1
    )

    default_s, nodes, default_keys = best_of(market_databases, MinerConfig())
    no_wit_s, _, no_wit_keys = best_of(
        market_databases, MinerConfig(collect_witnesses=False)
    )
    # min_size above any clique: nothing is ever emitted, so the run is
    # the bare enumeration floor (node counts are unchanged — emission
    # is downstream of counting).
    no_emit_s, no_emit_nodes, no_emit_keys = best_of(
        market_databases, MinerConfig(min_size=99)
    )
    passive_s, _, passive_keys = best_of(
        market_databases, MinerConfig(), SearchHooks
    )
    armed_s, _, armed_keys = best_of(
        market_databases,
        MinerConfig(),
        lambda: SearchHooks(sinks=(RingBufferSink(capacity=None),)),
    )
    slab_s, _, slab_keys = best_of(market_databases, MinerConfig(kernel=SLAB))

    # The toggles must not change what is enumerated or found.
    assert no_emit_nodes == nodes
    assert all(not keys for keys in no_emit_keys)
    assert no_wit_keys == default_keys
    assert passive_keys == default_keys
    assert armed_keys == default_keys
    assert slab_keys == default_keys

    nodes_per_second = nodes / default_s
    enumeration_us = per_node_us(no_emit_s, nodes)
    emission_us = per_node_us(no_wit_s - no_emit_s, nodes)
    witnesses_us = per_node_us(default_s - no_wit_s, nodes)
    statistics_hooks_us = per_node_us(passive_s - default_s, nodes)
    armed_us = per_node_us(armed_s - default_s, nodes)

    table = format_table(
        ["layer", "seconds", "per node"],
        [
            ["enumeration floor", f"{no_emit_s:.3f}", f"{enumeration_us:.2f} µs"],
            ["+ pattern emission", f"{no_wit_s:.3f}", f"{emission_us:+.2f} µs"],
            ["+ witness maps", f"{default_s:.3f}", f"{witnesses_us:+.2f} µs"],
            ["+ passive hooks", f"{passive_s:.3f}", f"{statistics_hooks_us:+.2f} µs"],
            ["+ armed ring sink", f"{armed_s:.3f}", f"{armed_us:+.2f} µs"],
            ["default, slab kernel", f"{slab_s:.3f}", "-"],
        ],
        title=(
            f"Engine floor: {nodes} nodes, {nodes_per_second:,.0f} nodes/s "
            f"default, best of {ROUNDS} (scale={scale})"
        ),
    )
    write_report("engine_floor", table)

    record = {
        "benchmark": "engine enumeration floor",
        "scale": scale,
        "rounds": ROUNDS,
        "hardware": hardware_context(),
        "workload": "fig6a sweep: 6 market databases x supports 100/95/90/85%",
        "nodes": nodes,
        "nodes_per_second": nodes_per_second,
        "default_seconds": default_s,
        "no_witnesses_seconds": no_wit_s,
        "no_emission_seconds": no_emit_s,
        "hooks_passive_seconds": passive_s,
        "hooks_armed_seconds": armed_s,
        "slab_default_seconds": slab_s,
        "per_node_us": {
            "enumeration": enumeration_us,
            "emission": emission_us,
            "witnesses": witnesses_us,
            "statistics_hooks": statistics_hooks_us,
            "armed_sink": armed_us,
        },
    }
    (REPO_ROOT / "BENCH_floor.json").write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )

    # CI floor-regression bar (tiny runs are too short to time):
    if scale in ("small", "medium", "paper"):
        assert nodes_per_second > MIN_NODES_PER_SECOND, (
            f"{nodes_per_second:,.0f} nodes/s under the "
            f"{MIN_NODES_PER_SECOND:,} floor bar"
        )
