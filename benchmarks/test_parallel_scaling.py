"""Extension benchmark — static chunking vs the work-stealing executor.

Not a paper figure: the paper predates multi-core ubiquity.  CLAN's DFS
subtrees are independent under structural redundancy pruning, so root
labels partition the work — but *unevenly*: on dense databases the
lowest-alphabet "hub" roots own most of the search, and a static
chunking's makespan degenerates to the heaviest root.  This benchmark
builds a deliberately skewed hub database, then compares the static
scheduler against the work-stealing executor (cost-guided root
splitting) at 1/2/4/8 workers.

CI boxes (and this container) may expose a single core, so raw
wall-clock cannot demonstrate scaling.  Instead the speedups are
*modeled*: every schedulable task is timed serially, and a greedy
list-scheduling simulation — the same heaviest-first pop and
fair-share split rule the executor runs — computes each scheduler's
makespan from the measured task times.  Real pool runs at 2 and 4
processes still execute for the part machines can always check:
byte-identical results and the executor's own straggler accounting.

Results land in ``BENCH_parallel.json`` at the repo root (speedups,
max-straggler ratios, split counts) as the perf-trajectory record.
"""

import heapq
import json
import random
import time
from pathlib import Path

from repro.bench import format_table, hardware_context
from repro.core import (
    ClanMiner,
    MiningExecutor,
    estimate_root_costs,
    mine_closed_cliques,
    partition_roots,
)
from repro.core.executor import DEFAULT_SPLIT_FACTOR, STATIC, STEALING
from repro.graphdb import Graph, GraphDatabase

from conftest import write_report

REPO_ROOT = Path(__file__).resolve().parent.parent
WORKER_COUNTS = (1, 2, 4, 8)
REAL_WORKER_COUNTS = (2, 4)
MIN_SUP = 3
CHUNKS_PER_PROCESS = 4

#: Scale knobs: graphs, hub label count, copies of each hub label (the
#: front-loaded profile is the skew), hub edge density, tail labels,
#: tail edge density.
SKEW_PARAMS = {
    "tiny": (4, 8, (4, 2, 2, 2, 2, 2, 2, 2), 0.65, 6, 0.12),
    "small": (6, 12, (6, 4, 3, 3, 2, 2, 2, 2, 2, 2, 2, 2), 0.72, 8, 0.12),
    "medium": (6, 12, (7, 4, 4, 3, 3, 2, 2, 2, 2, 2, 2, 2), 0.74, 10, 0.15),
    "paper": (6, 12, (7, 4, 4, 3, 3, 2, 2, 2, 2, 2, 2, 2), 0.74, 10, 0.15),
}


def skewed_hub_database(scale: str, seed: int = 7) -> GraphDatabase:
    """A database whose root costs are dominated by one hub label.

    Each transaction has a dense "hub" of low-alphabet vertices — label
    ``a`` gets the most copies, so under structural redundancy pruning
    (extensions only ≥ the last label) the root-``a`` subtree sees the
    whole hub while later roots see ever smaller suffixes — plus a
    sparse high-alphabet tail of near-trivial roots.  Per-graph seeds
    vary the edges so supports don't tie and Lemma 4.4 can't collapse
    the hub subtrees.
    """
    n_graphs, hub_labels, copies, p_hub, tail_labels, p_tail = SKEW_PARAMS[scale]
    alphabet = "abcdefghijklmnopqrstuvwxyz"
    database = GraphDatabase(name=f"skewed-hub-{scale}")
    for gid in range(n_graphs):
        rng = random.Random(seed * 1000 + gid)
        labels = {}
        hub_ids, tail_ids = [], []
        vid = 0
        for li in range(hub_labels):
            for _ in range(copies[li]):
                labels[vid] = alphabet[li]
                hub_ids.append(vid)
                vid += 1
        for li in range(tail_labels):
            labels[vid] = alphabet[hub_labels + li]
            tail_ids.append(vid)
            vid += 1
        edges = []
        for i in range(len(hub_ids)):
            for j in range(i + 1, len(hub_ids)):
                if rng.random() < p_hub:
                    edges.append((hub_ids[i], hub_ids[j]))
        everyone = hub_ids + tail_ids
        for tail in tail_ids:
            for other in everyone:
                if other != tail and rng.random() < p_tail:
                    edges.append((min(other, tail), max(other, tail)))
        database.add(Graph.from_edges(labels, edges, graph_id=gid))
    return database


class TaskTimer:
    """Serial measurements of every schedulable task's mining time."""

    def __init__(self, database, min_sup):
        self.miner = ClanMiner(database).prepare()
        self.min_sup = min_sup
        self.abs_sup = database.absolute_support(min_sup)
        self.roots = tuple(database.frequent_labels(self.abs_sup))
        self.root_seconds = {root: self._time_root(root) for root in self.roots}
        self.estimates = estimate_root_costs(database, self.roots)

    def _time_root(self, root):
        started = time.perf_counter()
        self.miner.mine(self.min_sup, root_labels=(root,))
        return time.perf_counter() - started

    def split(self, root, estimate):
        """Measured level-2 subtasks of one root, or None if unsplittable."""
        plan = self.miner.root_extension_plan(self.abs_sup, root)
        if len(plan) < 2:
            return None
        total_support = sum(sup for _label, sup in plan) or 1
        subtasks = []
        for index, (label, sup) in enumerate(plan):
            started = time.perf_counter()
            self.miner.mine(
                self.min_sup,
                root_labels=(root,),
                first_extensions=(label,),
                include_root=index == 0,
            )
            seconds = time.perf_counter() - started
            subtasks.append((estimate * sup / total_support, seconds))
        return subtasks


def simulate(timer, processes, scheduler):
    """Greedy list-scheduling over measured task times.

    Mirrors the executor's policy: static pops round-robin chunks in
    submission order; stealing pops whole roots heaviest-first (by the
    static cost estimate) and splits a popped root into its measured
    level-2 subtasks when its estimate exceeds the fair share of the
    remaining estimated work — the executor's own split rule at
    :data:`DEFAULT_SPLIT_FACTOR`.  Each dispatched task goes to the
    earliest-free worker.  Returns makespan, straggler ratio, splits.
    """
    if scheduler == STATIC:
        chunks = partition_roots(timer.roots, processes * CHUNKS_PER_PROCESS)
        pending = [
            (
                0.0,
                index,
                sum(timer.estimates[root] for root in chunk),
                sum(timer.root_seconds[root] for root in chunk),
                None,
            )
            for index, chunk in enumerate(chunks)
        ]
    else:
        pending = [
            (-timer.estimates[root], index, timer.estimates[root],
             timer.root_seconds[root], root)
            for index, root in enumerate(timer.roots)
        ]
    heapq.heapify(pending)
    tiebreak = len(pending)
    busy = [0.0] * processes
    splits = 0
    while pending:
        _, _, estimate, seconds, root = heapq.heappop(pending)
        remaining = sum(entry[2] for entry in pending) + estimate
        if (
            scheduler == STEALING
            and root is not None
            and estimate > DEFAULT_SPLIT_FACTOR * (remaining / processes)
        ):
            subtasks = timer.split(root, estimate)
            if subtasks is not None:
                splits += 1
                for sub_estimate, sub_seconds in subtasks:
                    tiebreak += 1
                    heapq.heappush(
                        pending,
                        (-sub_estimate, tiebreak, sub_estimate, sub_seconds, None),
                    )
                continue
        worker = min(range(processes), key=lambda index: busy[index])
        busy[worker] += seconds
    total = sum(busy)
    straggler = max(busy) / (total / processes) if total > 0 else 1.0
    return max(busy), straggler, splits


def test_work_stealing_beats_static_on_skewed_roots(benchmark, scale):
    db = skewed_hub_database(scale)

    serial = benchmark.pedantic(
        lambda: mine_closed_cliques(db, MIN_SUP), rounds=1, iterations=1
    )
    serial_keys = sorted(p.key() for p in serial)

    started = time.perf_counter()
    mine_closed_cliques(db, MIN_SUP)
    serial_seconds = time.perf_counter() - started

    timer = TaskTimer(db, MIN_SUP)

    # Modeled scaling: list-scheduling simulation over measured tasks.
    modeled = {}
    for processes in WORKER_COUNTS:
        row = {}
        for scheduler in (STATIC, STEALING):
            makespan, straggler, splits = simulate(timer, processes, scheduler)
            row[scheduler] = {
                "makespan_seconds": makespan,
                "speedup": serial_seconds / makespan if makespan > 0 else 0.0,
                "max_straggler_ratio": straggler,
                "splits": splits,
            }
        modeled[processes] = row

    # Real pool runs: machines may expose one core, so these verify the
    # invariants (byte-identical results) and record the executor's own
    # straggler accounting rather than wall-clock scaling.
    real = {}
    for processes in REAL_WORKER_COUNTS:
        row = {}
        for scheduler in (STATIC, STEALING):
            with MiningExecutor(db, processes=processes, scheduler=scheduler) as ex:
                result = ex.mine(MIN_SUP)
                report = ex.last_report
            assert sorted(p.key() for p in result) == serial_keys
            assert result.statistics.snapshot() == serial.statistics.snapshot()
            row[scheduler] = {
                "elapsed_seconds": result.elapsed_seconds,
                "cpu_seconds": report.cpu_seconds,
                "tasks": report.tasks,
                "splits": report.splits,
                "max_straggler_ratio": report.max_straggler_ratio,
            }
        real[processes] = row

    rows = []
    for processes in WORKER_COUNTS:
        static_row = modeled[processes][STATIC]
        stealing_row = modeled[processes][STEALING]
        rows.append(
            [
                processes,
                f"{static_row['speedup']:.2f}x",
                f"{static_row['max_straggler_ratio']:.2f}",
                f"{stealing_row['speedup']:.2f}x",
                f"{stealing_row['max_straggler_ratio']:.2f}",
                stealing_row["splits"],
            ]
        )
    table = format_table(
        ["workers", "static", "straggler", "stealing", "straggler", "splits"],
        rows,
        title=(
            f"Modeled scaling on skewed-hub-{scale} @ sup {MIN_SUP} "
            f"(serial {serial_seconds:.3f}s, {len(timer.roots)} roots, "
            "identical outputs)"
        ),
    )
    write_report("parallel", table)

    record = {
        "benchmark": "parallel scaling (static vs work-stealing)",
        "scale": scale,
        "hardware": hardware_context(),
        "database": f"skewed-hub-{scale}",
        "min_sup": MIN_SUP,
        "serial_seconds": serial_seconds,
        "roots": len(timer.roots),
        "heaviest_root_share": max(timer.root_seconds.values())
        / sum(timer.root_seconds.values()),
        # "modeled" speedups come from the list-scheduling simulation
        # over serially measured task times — they are what an
        # unconstrained machine could reach, and are meaningful even on
        # a 1-core runner.  "real" rows are actual pool runs on THIS
        # machine (see "hardware": with usable_cpus=1 their
        # elapsed_seconds cannot show scaling, only correctness and
        # straggler accounting).
        "speedup_semantics": {
            "modeled": "greedy list-scheduling simulation over measured task times",
            "real": "actual process-pool wall clock on the recorded hardware",
        },
        "modeled": {str(w): modeled[w] for w in WORKER_COUNTS},
        "real": {str(w): real[w] for w in REAL_WORKER_COUNTS},
    }
    (REPO_ROOT / "BENCH_parallel.json").write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )

    # Acceptance bar: at 4+ workers the stealing scheduler beats static
    # by >= 1.3x with a lower max-straggler ratio.  Skipped at the tiny
    # scale, where per-task times are microseconds of pure noise.
    if scale != "tiny":
        for processes in (4, 8):
            static_row = modeled[processes][STATIC]
            stealing_row = modeled[processes][STEALING]
            assert stealing_row["speedup"] >= 1.3 * static_row["speedup"], processes
            assert (
                stealing_row["max_straggler_ratio"]
                < static_row["max_straggler_ratio"]
            ), processes
