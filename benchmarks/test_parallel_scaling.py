"""Extension benchmark — parallel mining over DFS roots.

Not a paper figure: the paper predates multi-core ubiquity.  CLAN's DFS
subtrees are independent under structural redundancy pruning, so root
labels partition the work; this benchmark measures the wall-clock
effect and asserts result equality with the serial miner.
"""

import multiprocessing
import time

from repro.bench import format_table
from repro.core import mine_closed_cliques, mine_closed_cliques_parallel

from conftest import write_report


def test_parallel_matches_serial_and_reports_speedup(benchmark, market_databases):
    db = market_databases[0.90]
    min_sup = 0.85

    serial = benchmark.pedantic(
        lambda: mine_closed_cliques(db, min_sup), rounds=1, iterations=1
    )

    rows = []
    started = time.perf_counter()
    serial_again = mine_closed_cliques(db, min_sup)
    serial_seconds = time.perf_counter() - started
    rows.append(["serial", f"{serial_seconds:.3f}", len(serial_again)])

    # Run the pool even on single-core machines: the point of record is
    # output equality; the wall-clock column only shows a speedup when
    # cores are actually available.
    available = multiprocessing.cpu_count()
    for processes in sorted({2, min(4, max(2, available))}):
        started = time.perf_counter()
        parallel = mine_closed_cliques_parallel(db, min_sup, processes=processes)
        seconds = time.perf_counter() - started
        rows.append([f"{processes} processes", f"{seconds:.3f}", len(parallel)])
        assert sorted(p.key() for p in parallel) == sorted(
            p.key() for p in serial_again
        )

    table = format_table(
        ["configuration", "seconds", "closed cliques"],
        rows,
        title="Parallel mining on stock-market-0.90 @85% (identical outputs)",
    )
    write_report("parallel", table)

    assert len(serial) == len(serial_again)
