"""Engine tasks — maximal / top-k through the full kernel+executor stack.

Before the engine refactor, ``maximal`` and ``topk`` were standalone
serial miners: no bitset kernel choice, no worker pool, no cache.  Now
they are task strategies over the one enumeration engine, so the whole
acceleration stack composes.  This benchmark measures that composition
on a Figure 6(a)-style market workload against the *pre-refactor
shape* (set kernel, serial — what the standalone miners cost):

* the engine's kernel tier — bitset kernel, serial (real wall-clock),
* the engine's pool tier — ``processes=4`` makespan *modeled* from
  measured per-root subtree times, exactly as in
  ``test_parallel_scaling.py`` (this container exposes a single core,
  so a real pool cannot demonstrate scaling; a real 4-process run
  still executes for the byte-identity check),
* the cache's exact-replay tier — a warmed re-run of the same sweep.

Each task's headline ``speedup`` is the *measured* ratio for the
engine shape the refactor unlocked for it: ``maximal`` rides the
bitset kernel (``mine(task="maximal", kernel="bitset", processes=4)``),
``topk`` rides the cache (``mine(task="topk", cache=...)``).  Results
must be byte-identical on every path; the timings are written to
``BENCH_engine.json`` at the repo root as the perf-trajectory record.

``quasi`` (ported onto the engine last) gets one extra baseline: the
*pre-port bounded-enumeration path* — per-transaction γ-quasi-clique
enumeration with a global closed filter, which is exactly what
``bruteforce_quasi_cliques`` still implements.  Its headline is the
warm-cache run against that old path, and the record also carries the
bitset-engine-vs-bounded-enumeration ratio.
"""

import heapq
import json
import time
from pathlib import Path

from repro.baselines.bruteforce import bruteforce_quasi_cliques
from repro.bench import format_table, hardware_context
from repro.core import MinerConfig, MiningCache, mine
from repro.core.engine import engine_for_task

from conftest import write_report

REPO_ROOT = Path(__file__).resolve().parent.parent
THETAS = (0.95, 0.90)
SUPPORTS = (1.00, 0.95, 0.90, 0.85)
PROCESSES = 4
ROUNDS = 2  # best-of, to shed scheduler noise

#: task -> (mine() extras, the engine shape whose measured speedup is
#: the task's headline number)
TASKS = (
    ("maximal", {}, "bitset kernel, serial"),
    ("topk", {"k": 10}, "bitset kernel + warm exact-replay cache"),
    (
        "quasi",
        {"gamma": 0.8, "max_size": 4},
        "bitset kernel + warm cache, vs pre-port bounded enumeration",
    ),
)


def fig6a_task_sweep(market_databases, task, extra, **options):
    keys = []
    started = time.perf_counter()
    for theta in THETAS:
        database = market_databases[theta]
        for min_sup in SUPPORTS:
            result = mine(database, min_sup, task=task, **extra, **options)
            keys.append(sorted(p.key() for p in result))
    return time.perf_counter() - started, keys


def fig6a_quasi_baseline(market_databases, extra):
    """The pre-port quasi path over the same sweep: per-transaction
    bounded enumeration plus the global relaxed closed filter.  Run
    once (no best-of) — exhaustive enumeration is deterministic and
    already the slowest shape measured here."""
    keys = []
    started = time.perf_counter()
    for theta in THETAS:
        database = market_databases[theta]
        for min_sup in SUPPORTS:
            result = bruteforce_quasi_cliques(
                database,
                min_sup,
                gamma=extra["gamma"],
                min_size=2,
                max_size=extra["max_size"],
            )
            keys.append(sorted(p.key() for p in result))
    return time.perf_counter() - started, keys


def best_of(measure, *args, **options):
    best_seconds, keys = measure(*args, **options)
    for _ in range(ROUNDS - 1):
        seconds, _ = measure(*args, **options)
        best_seconds = min(best_seconds, seconds)
    return best_seconds, keys


def modeled_pool(database, task, extra, min_sup, processes):
    """Greedy list-scheduling makespan from measured per-root times.

    Every root subtree is timed serially (bitset kernel), then packed
    heaviest-first onto ``processes`` workers — the same model
    ``test_parallel_scaling.py`` uses, because a single-core container
    cannot show real pool scaling.
    """
    if "max_size" in extra:  # quasi needs its finite size ceiling
        config = MinerConfig(kernel="bitset", min_size=2, max_size=extra["max_size"])
    else:
        config = MinerConfig(kernel="bitset")
    engine = engine_for_task(
        database, config, task, k=extra.get("k"), gamma=extra.get("gamma")
    ).prepare()
    abs_sup = database.absolute_support(min_sup)
    roots = database.frequent_labels(abs_sup)
    times = []
    for root in roots:
        started = time.perf_counter()
        engine.mine(min_sup, root_labels=(root,))
        times.append(time.perf_counter() - started)
    workers = [0.0] * processes
    heapq.heapify(workers)
    for seconds in sorted(times, reverse=True):
        heapq.heappush(workers, heapq.heappop(workers) + seconds)
    makespan = max(workers)
    serial = sum(times)
    return {
        "roots": len(roots),
        "serial_seconds": serial,
        "makespan_seconds": makespan,
        "modeled_speedup": serial / makespan if makespan else 1.0,
    }


def test_engine_tasks(benchmark, market_databases, scale):
    benchmark.pedantic(
        lambda: fig6a_task_sweep(market_databases, "maximal", {}, kernel="bitset"),
        rounds=1,
        iterations=1,
    )

    record = {
        "benchmark": "engine tasks (maximal/topk/quasi through kernel+executor+cache)",
        "scale": scale,
        "rounds": ROUNDS,
        "hardware": hardware_context(),
        # Per-task "modeled_speedup" fields are list-scheduling
        # simulations over serially measured root times (what a machine
        # with that many free cores could reach); every *_seconds field
        # is real wall clock on the recorded hardware.
        "speedup_semantics": {
            "modeled_speedup": "greedy list-scheduling simulation over measured root times",
            "kernel_speedup / cache_speedup": "real wall clock on the recorded hardware",
        },
        "workload": (
            f"market thetas {THETAS} x supports {SUPPORTS}; "
            f"baseline = set kernel serial (the pre-refactor shape); "
            f"quasi additionally scored vs the pre-port bounded-"
            f"enumeration path (bruteforce_quasi_cliques); "
            f"pool makespan modeled at {PROCESSES} processes "
            f"(single-core container), real pool run checks identity"
        ),
        "tasks": {},
    }
    rows = []
    heavy_theta, heavy_sup = THETAS[0], min(SUPPORTS)
    for task, extra, shape in TASKS:
        base_seconds, base_keys = best_of(
            fig6a_task_sweep, market_databases, task, extra, kernel="set"
        )
        kernel_seconds, kernel_keys = best_of(
            fig6a_task_sweep, market_databases, task, extra, kernel="bitset"
        )
        # The stack must be invisible in the output.
        assert kernel_keys == base_keys, task

        # Real 4-process pool run: identity is checkable on any box
        # even though wall-clock scaling is not.
        pool_started = time.perf_counter()
        _, pool_keys = fig6a_task_sweep(
            market_databases, task, extra, kernel="bitset", processes=PROCESSES
        )
        pool_seconds = time.perf_counter() - pool_started
        assert pool_keys == base_keys, task

        pool_model = modeled_pool(
            market_databases[heavy_theta],
            task,
            extra,
            heavy_sup,
            PROCESSES,
        )

        # The cache's exact-replay tier: a warmed re-run of the same
        # sweep replays every root.
        cache = MiningCache()
        fig6a_task_sweep(market_databases, task, extra, kernel="bitset", cache=cache)
        warm_seconds, warm_keys = fig6a_task_sweep(
            market_databases, task, extra, kernel="bitset", cache=cache
        )
        assert warm_keys == base_keys, task

        kernel_speedup = base_seconds / kernel_seconds
        cache_speedup = base_seconds / warm_seconds
        record["tasks"][task] = {
            "engine_shape": shape,
            "baseline_set_serial_seconds": base_seconds,
            "kernel_bitset_serial_seconds": kernel_seconds,
            "kernel_speedup": kernel_speedup,
            "pool_real_x4_seconds": pool_seconds,
            "pool_modeled_x4": pool_model,
            "cache_warm_seconds": warm_seconds,
            "cache_speedup": cache_speedup,
        }
        if task == "quasi":
            # The differential baseline: the algorithm quasi ran on
            # before the engine port.  Its output must match the engine
            # byte-for-key, and both engine-unlocked shapes are scored
            # against it.
            bounded_seconds, bounded_keys = fig6a_quasi_baseline(
                market_databases, extra
            )
            assert bounded_keys == base_keys, task
            record["tasks"][task].update(
                bounded_enum_serial_seconds=bounded_seconds,
                kernel_speedup_vs_bounded=bounded_seconds / kernel_seconds,
                cache_speedup_vs_bounded=bounded_seconds / warm_seconds,
            )
            speedup = bounded_seconds / warm_seconds
        elif task == "maximal":
            speedup = kernel_speedup
        else:
            speedup = cache_speedup
        record["tasks"][task]["speedup"] = speedup
        rows.append(
            [
                task,
                f"{base_seconds:.3f}",
                f"{kernel_seconds:.3f}",
                f"{kernel_speedup:.2f}x",
                f"{pool_model['modeled_speedup']:.2f}x",
                f"{warm_seconds:.3f}",
                f"{cache_speedup:.2f}x",
            ]
        )

    table = format_table(
        [
            "task",
            "set serial (s)",
            "bitset serial (s)",
            "kernel",
            f"pool x{PROCESSES} (modeled)",
            "warm cache (s)",
            "cache",
        ],
        rows,
        title=f"Engine tasks, best of {ROUNDS} (scale={scale})",
    )
    write_report("engine_tasks", table)

    (REPO_ROOT / "BENCH_engine.json").write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )

    # Acceptance bar: each task's engine shape is at least 2x the
    # pre-refactor serial shape (asserted with slack for CI noise at
    # the tiny scale; the json carries the true ratios).
    if scale in ("small", "medium", "paper"):
        for task, numbers in record["tasks"].items():
            assert numbers["speedup"] >= 1.5, (task, numbers)
