"""Ablation — the §4.1 canonical-form complexity argument, measured.

The paper argues that general-purpose canonical forms (minimum
adjacency-matrix codes, minimum DFS codes) are needlessly expensive for
cliques, whose isomorphism class is just their label bag.  This
benchmark times all three on k-cliques for growing k:

* CLAN string form — sort k labels;
* minimum DFS code — automorphism-pruned DFS (cliques are the worst
  case: every vertex order is an automorphism branch);
* minimum adjacency-matrix code — all k! permutations.
"""

import time

from repro.baselines import minimum_dfs_code
from repro.bench import format_table
from repro.core import CanonicalForm
from repro.graphdb import AdjacencyMatrix, Graph, clique_matrix

from conftest import write_report


def labeled_clique(size: int) -> Graph:
    labels = {i: chr(ord("a") + (i % 5)) for i in range(size)}
    edges = [(i, j) for i in range(size) for j in range(i + 1, size)]
    return Graph.from_edges(labels, edges)


def time_of(fn, repeats: int = 20) -> float:
    started = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - started) / repeats


def test_ablation_canonical_form_costs(benchmark):
    benchmark.pedantic(
        lambda: minimum_dfs_code(labeled_clique(6)), rounds=1, iterations=1
    )

    rows = []
    string_times, dfs_times, matrix_times = [], [], []
    for size in (3, 4, 5, 6, 7, 8):
        graph = labeled_clique(size)
        labels = [graph.label(v) for v in graph.vertices()]

        t_string = time_of(lambda: CanonicalForm.from_labels(labels), repeats=200)
        t_dfs = time_of(lambda: minimum_dfs_code(graph), repeats=3)
        if size <= 7:
            matrix = AdjacencyMatrix.from_graph(graph)
            t_matrix = time_of(lambda: matrix.canonical_code(), repeats=1)
            matrix_cell = f"{t_matrix * 1e3:.2f}"
        else:
            t_matrix = float("inf")
            matrix_cell = "(k! blow-up)"
        string_times.append(t_string)
        dfs_times.append(t_dfs)
        matrix_times.append(t_matrix)
        rows.append([
            size, f"{t_string * 1e6:.1f}", f"{t_dfs * 1e3:.2f}", matrix_cell,
        ])

    table = format_table(
        ["clique size", "CLAN string (us)", "min DFS code (ms)",
         "min matrix code (ms)"],
        rows,
        title="Ablation: canonical form cost on k-cliques (section 4.1)",
    )
    write_report("canonical_forms", table)

    # The string form stays microseconds while both general forms grow
    # super-polynomially on cliques; by k=6 the gap is >= 100x.
    assert dfs_times[3] > 100 * string_times[3]
    finite_matrix = [t for t in matrix_times if t != float("inf")]
    assert finite_matrix[-1] > 100 * string_times[len(finite_matrix) - 1]
    # And the general forms themselves grow steeply with k.
    assert dfs_times[-1] > dfs_times[0]
