"""Out-of-core scale benchmark — SQLite store + sharded mining vs eager.

Not a paper figure: CLAN's experiments fit in 2006-era RAM.  This
benchmark is the acceptance gate for the GraphSource seam — it
replicates the paper's Figure 6a database far past its original size,
imports it into a SQLite transaction store, and mines it twice:

* **eager** — decode every transaction into an in-memory
  :class:`GraphDatabase` up front (what every pre-seam caller did),
  then run the serial engine;
* **out-of-core** — mine straight off the store with
  :func:`repro.core.sharding.mine_sharded`, a small decode cache, and
  shard-sized candidate passes.

Both runs must produce byte-identical canonical envelopes, and the
out-of-core tracemalloc peak must sit at least ``MEMORY_BAR``× below
the eager peak.  Results land in ``BENCH_scale.json`` at the repo root
(peaks, ratio, wall-clock, replication factor) as the perf-trajectory
record.
"""

import json
import time
import tracemalloc
from pathlib import Path

from repro.core.api import MiningRequest, MiningResultEnvelope, execute_request
from repro.core.sharding import mine_sharded
from repro.bench import format_table, hardware_context
from repro.graphdb import GraphDatabase, import_graphs, paper_example_database
from repro.graphdb.storage import SqliteGraphSource

from conftest import write_report

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Required headroom: out-of-core peak must be at least this many times
#: below the eager full-materialisation peak.
MEMORY_BAR = 3.0

#: Replication factor for fig6a (the ISSUE floor is 10x), shard size,
#: and decode-cache geometry (batch_size, max_batches) per scale.
SCALE_PARAMS = {
    "tiny": (512, 128, 16, 2),
    "small": (1024, 128, 16, 2),
    "medium": (2048, 256, 32, 2),
    "paper": (4096, 256, 32, 2),
}


def test_outofcore_scale(scale, tmp_path):
    factor, shard_size, batch_size, max_batches = SCALE_PARAMS[scale]
    base = paper_example_database()
    replicated = base.replicate(factor)
    store_path = tmp_path / "fig6a_replicated.sqlite"
    import_graphs(store_path, iter(replicated), name=f"fig6a-x{factor}").close()
    store_bytes = store_path.stat().st_size

    # Witnesses off: the memory under test is the transaction store,
    # not the per-pattern witness lists both runs would share.
    request = MiningRequest.from_options(
        2 * factor, task="closed", kernel="bitset", collect_witnesses=False
    )

    eager_source = SqliteGraphSource(store_path)
    tracemalloc.start()
    t0 = time.perf_counter()
    eager_db = GraphDatabase(list(eager_source), name="eager")
    eager_result = execute_request(eager_db, request)
    eager_seconds = time.perf_counter() - t0
    eager_peak = tracemalloc.get_traced_memory()[1]
    tracemalloc.stop()
    eager_source.close()
    eager_envelope = MiningResultEnvelope.from_result(
        request, eager_result
    ).canonical_json()
    del eager_db, eager_result

    ooc_source = SqliteGraphSource(
        store_path, batch_size=batch_size, max_batches=max_batches
    )
    ooc_db = GraphDatabase(source=ooc_source)
    tracemalloc.start()
    t0 = time.perf_counter()
    ooc_result = mine_sharded(ooc_db, request, shard_size=shard_size)
    ooc_seconds = time.perf_counter() - t0
    ooc_peak = tracemalloc.get_traced_memory()[1]
    tracemalloc.stop()
    ooc_envelope = MiningResultEnvelope.from_result(request, ooc_result).canonical_json()
    ooc_source.close()

    assert factor >= 10
    assert ooc_envelope == eager_envelope
    ratio = eager_peak / ooc_peak
    assert ratio >= MEMORY_BAR, (
        f"out-of-core peak {ooc_peak} is only {ratio:.2f}x below eager "
        f"peak {eager_peak}; the bar is {MEMORY_BAR}x"
    )

    record = {
        "benchmark": "out-of-core scale (SQLite store + sharded mining vs eager)",
        "scale": scale,
        "hardware": hardware_context(),
        "replication_factor": factor,
        "transactions": len(replicated),
        "store_bytes": store_bytes,
        "shard_size": shard_size,
        "decode_cache": {"batch_size": batch_size, "max_batches": max_batches},
        "memory_bar": MEMORY_BAR,
        "eager_peak_bytes": eager_peak,
        "outofcore_peak_bytes": ooc_peak,
        "memory_ratio": ratio,
        "eager_seconds": eager_seconds,
        "outofcore_seconds": ooc_seconds,
        "identical_envelopes": True,
        "patterns": len(ooc_result),
    }
    (REPO_ROOT / "BENCH_scale.json").write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )
    table = format_table(
        ("run", "peak MiB", "seconds"),
        [
            ("eager", f"{eager_peak / 2**20:.2f}", f"{eager_seconds:.2f}"),
            ("out-of-core", f"{ooc_peak / 2**20:.2f}", f"{ooc_seconds:.2f}"),
        ],
        title=(
            f"fig6a x{factor} ({len(replicated)} transactions, "
            f"{store_bytes / 2**20:.2f} MiB store): memory ratio {ratio:.2f}x"
        ),
    )
    write_report("scale_outofcore", table)
