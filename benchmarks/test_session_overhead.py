"""Session-instrumentation overhead on the Figure 6(a) workload.

The MiningSession control plane threads a ``hooks`` object through
the engine's iterative search loop (``MiningEngine._search``); hooks
that can neither abort nor sample skip the per-node callback entirely
(the loop settles their counters at subtree boundaries), so a dormant
session pays almost nothing per prefix.  This benchmark quantifies the
whole ladder:

* ``plain``      — ``ClanMiner.mine`` exactly as before the control
  plane existed (``hooks=None`` fast path);
* ``hooks``      — the same mine with an armed :class:`SearchHooks`
  carrying no sinks, budget, or token (what a budgeted-but-quiet
  session costs inside the DFS);
* ``armed``      — hooks carrying a live ring sink, so every pattern
  and prune event is delivered.  Events are buffered and handed to
  the sink in batches (``SearchHooks.flush``), which is what keeps
  this mode cheap — per-event ``sink.emit`` calls used to cost ~50%
  on this workload;
* ``session``    — a full :class:`MiningSession` with an in-memory
  ring sink and sampled prefix events (the observable configuration).

Acceptance bars: dormant hooks under 5% overhead, armed ring-sink
hooks under 15%.  The measured numbers are written to
``BENCH_session.json`` at the repo root as the perf-trajectory record.
"""

import json
import time
from pathlib import Path

from repro.bench import format_table, hardware_context
from repro.core import ClanMiner, MinerConfig, MiningSession, RingBufferSink
from repro.core.session import SearchHooks
from repro.stockmarket import PAPER_THETAS

from conftest import write_report

REPO_ROOT = Path(__file__).resolve().parent.parent
SUPPORTS = (1.00, 0.95, 0.90, 0.85)
ROUNDS = 5  # best-of, to shed scheduler noise


def sweep_plain(market_databases):
    keys = []
    started = time.perf_counter()
    for theta in PAPER_THETAS:
        miner = ClanMiner(market_databases[theta], MinerConfig())
        for min_sup in SUPPORTS:
            keys.append(sorted(p.key() for p in miner.mine(min_sup)))
    return time.perf_counter() - started, keys


def sweep_hooks(market_databases):
    keys = []
    started = time.perf_counter()
    for theta in PAPER_THETAS:
        miner = ClanMiner(market_databases[theta], MinerConfig())
        for min_sup in SUPPORTS:
            keys.append(
                sorted(p.key() for p in miner.mine(min_sup, hooks=SearchHooks()))
            )
    return time.perf_counter() - started, keys


def sweep_armed(market_databases):
    keys = []
    started = time.perf_counter()
    for theta in PAPER_THETAS:
        miner = ClanMiner(market_databases[theta], MinerConfig())
        for min_sup in SUPPORTS:
            hooks = SearchHooks(sinks=(RingBufferSink(capacity=None),))
            keys.append(sorted(p.key() for p in miner.mine(min_sup, hooks=hooks)))
            hooks.flush()
    return time.perf_counter() - started, keys


def sweep_session(market_databases):
    keys = []
    started = time.perf_counter()
    for theta in PAPER_THETAS:
        for min_sup in SUPPORTS:
            session = MiningSession(
                market_databases[theta],
                min_sup,
                sinks=(RingBufferSink(),),
                sample_every=64,
            )
            keys.append(sorted(p.key() for p in session.run()))
    return time.perf_counter() - started, keys


def best_of(measure, *args):
    best_seconds, keys = measure(*args)
    for _ in range(ROUNDS - 1):
        seconds, _ = measure(*args)
        best_seconds = min(best_seconds, seconds)
    return best_seconds, keys


def test_session_overhead(benchmark, market_databases, scale):
    benchmark.pedantic(lambda: sweep_hooks(market_databases), rounds=1, iterations=1)

    plain_seconds, plain_keys = best_of(sweep_plain, market_databases)
    hooks_seconds, hooks_keys = best_of(sweep_hooks, market_databases)
    armed_seconds, armed_keys = best_of(sweep_armed, market_databases)
    session_seconds, session_keys = best_of(sweep_session, market_databases)

    # Instrumentation must be invisible in the results.
    assert hooks_keys == plain_keys
    assert armed_keys == plain_keys
    assert session_keys == plain_keys

    hooks_overhead = hooks_seconds / plain_seconds - 1.0
    armed_overhead = armed_seconds / plain_seconds - 1.0
    session_overhead = session_seconds / plain_seconds - 1.0

    table = format_table(
        ["mode", "seconds", "overhead"],
        [
            ["plain", f"{plain_seconds:.3f}", "-"],
            ["hooks, no sinks", f"{hooks_seconds:.3f}", f"{hooks_overhead:+.1%}"],
            ["hooks + ring sink", f"{armed_seconds:.3f}", f"{armed_overhead:+.1%}"],
            ["session + ring sink", f"{session_seconds:.3f}", f"{session_overhead:+.1%}"],
        ],
        title=f"Session instrumentation overhead, best of {ROUNDS} (scale={scale})",
    )
    write_report("session_overhead", table)

    record = {
        "benchmark": "session instrumentation overhead",
        "scale": scale,
        "rounds": ROUNDS,
        "hardware": hardware_context(),
        "workload": "fig6a sweep: 6 market databases x supports 100/95/90/85%",
        "plain_seconds": plain_seconds,
        "hooks_no_sinks_seconds": hooks_seconds,
        "armed_ring_sink_seconds": armed_seconds,
        "session_ring_sink_seconds": session_seconds,
        "hooks_overhead_fraction": hooks_overhead,
        "armed_overhead_fraction": armed_overhead,
        "session_overhead_fraction": session_overhead,
    }
    (REPO_ROOT / "BENCH_session.json").write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )

    # Acceptance bars (tiny runs are too short to time reliably):
    # dormant hooks cost < 5%, and a live ring sink — every pattern and
    # prune event delivered, via batched emission — costs < 15%.
    if scale in ("small", "medium", "paper"):
        assert hooks_overhead < 0.05, f"hooks overhead {hooks_overhead:.1%}"
        assert armed_overhead < 0.15, f"armed overhead {armed_overhead:.1%}"
