"""Table 1 — real database characteristics.

Regenerates the paper's Table 1 for the reproduction's databases: the
CA-like chemical database and the six stock-market databases derived
from one simulated price history at θ = 0.90 .. 0.95.

Paper's published rows (for shape comparison; our sizes are scaled):

    CA                  422 graphs, avg 39 vertices, avg 42 edges
    Stock Market-0.95    11 graphs, avg 1683 vertices, avg 20074 edges
    ...
    Stock Market-0.90    11 graphs, avg 3636 vertices, avg 206747 edges
"""

from repro.graphdb import characteristics_table, database_characteristics
from repro.stockmarket import PAPER_THETAS

from conftest import write_report


def build_table(ca_database, market_databases, extended: bool) -> str:
    rows = [database_characteristics(ca_database, name="CA")]
    for theta in sorted(PAPER_THETAS, reverse=True):
        rows.append(
            database_characteristics(
                market_databases[theta], name=f"Stock Market-{theta:.2f}"
            )
        )
    return characteristics_table(rows, extended=extended)


def test_table1_characteristics(benchmark, ca_database, market_databases):
    table = benchmark.pedantic(
        build_table, args=(ca_database, market_databases, False),
        rounds=1, iterations=1,
    )
    extended = build_table(ca_database, market_databases, True)
    write_report("table1", "== Table 1: database characteristics ==\n"
                 + table + "\n\n" + extended)

    # Shape assertions mirroring the paper's table.
    chem = database_characteristics(ca_database)
    # CA is sparse: |E| barely above |V| (paper: 42 vs 39).
    assert 0.85 * chem.avg_vertices < chem.avg_edges < 1.35 * chem.avg_vertices
    market = [database_characteristics(market_databases[t]) for t in PAPER_THETAS]
    # All market databases have 11 transactions.
    assert all(m.n_graphs == 11 for m in market)
    # Density (and vertex counts) grow monotonically as theta falls.
    edges = [m.avg_edges for m in market]          # theta ascending
    vertices = [m.avg_vertices for m in market]
    assert edges == sorted(edges, reverse=True)
    assert vertices == sorted(vertices, reverse=True)
    # The market graphs are far denser than the chemical ones.
    assert market[0].avg_edges > 5 * chem.avg_edges
