"""Figure 6(b) — closed-clique counts by clique size at 100% support.

The paper plots, for each of the six stock-market databases, the
number of closed cliques against clique size at the 100% support
threshold: many small cliques, a long thin tail, and the maximum size
growing as θ falls (reaching 12 at θ = 0.90).
"""

from repro.core import mine_closed_cliques
from repro.bench import format_series_table
from repro.stockmarket import PAPER_THETAS

from conftest import write_report


def histograms(market_databases):
    result = {}
    for theta in PAPER_THETAS:
        mined = mine_closed_cliques(market_databases[theta], min_sup=1.0)
        result[theta] = mined.size_histogram()
    return result


def test_fig6b_closed_clique_size_distribution(benchmark, market_databases):
    per_theta = benchmark.pedantic(
        histograms, args=(market_databases,), rounds=1, iterations=1
    )
    max_size = max(max(h) for h in per_theta.values())
    sizes = list(range(1, max_size + 1))
    columns = [
        [per_theta[theta].get(size, 0) for size in sizes] for theta in PAPER_THETAS
    ]
    table = format_series_table(
        "clique size",
        [f"SM-{theta:.2f}" for theta in PAPER_THETAS],
        sizes,
        columns,
        title="Figure 6(b): #closed cliques by size at 100% support",
    )
    write_report("fig6b", table)

    hist_090 = per_theta[0.90]
    hist_095 = per_theta[0.95]
    # The dense database reaches size 12 (the Figure 5 clique)...
    assert max(hist_090) == 12
    # ...while the sparse one tops out strictly lower.
    assert max(hist_095) < 12
    # Counts are dominated by small cliques in every database.
    for theta in PAPER_THETAS:
        h = per_theta[theta]
        assert h.get(1, 0) + h.get(2, 0) > h.get(max(h), 0)
    # The denser the database, the more closed cliques in total.
    totals = [sum(per_theta[theta].values()) for theta in PAPER_THETAS]
    assert totals[0] > totals[-1]
