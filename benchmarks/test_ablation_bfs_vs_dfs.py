"""Ablation — depth-first (CLAN) vs breadth-first (FSG-style) search.

Section 4.2 cites both strategies from prior work and picks DFS.  This
benchmark quantifies the choice on the market data: result sets are
identical (also property-tested), but BFS must hold entire levels of
patterns *with their embeddings* in memory at once, while CLAN's DFS
keeps only the current path.
"""

import time

from repro.baselines import mine_closed_cliques_bfs
from repro.bench import format_table
from repro.core import mine_closed_cliques

from conftest import write_report


def test_ablation_bfs_vs_dfs(benchmark, market_databases):
    workloads = [(theta, 1.0) for theta in (0.95, 0.93, 0.90)] + [(0.90, 0.85)]

    benchmark.pedantic(
        lambda: mine_closed_cliques(market_databases[0.90], 1.0),
        rounds=1, iterations=1,
    )

    rows = []
    for theta, min_sup in workloads:
        db = market_databases[theta]
        started = time.perf_counter()
        dfs = mine_closed_cliques(db, min_sup)
        dfs_seconds = time.perf_counter() - started
        started = time.perf_counter()
        bfs = mine_closed_cliques_bfs(db, min_sup)
        bfs_seconds = time.perf_counter() - started

        assert sorted(p.key() for p in bfs) == sorted(p.key() for p in dfs)
        rows.append([
            f"SM-{theta:.2f} @{int(min_sup * 100)}%",
            f"{dfs_seconds:.3f}", f"{bfs_seconds:.3f}",
            dfs.statistics.peak_embeddings, bfs.statistics.peak_embeddings,
            dfs.statistics.prefixes_visited, bfs.statistics.prefixes_visited,
        ])

    table = format_table(
        ["workload", "DFS s", "BFS s", "DFS peak emb", "BFS peak emb",
         "DFS prefixes", "BFS prefixes"],
        rows,
        title="Ablation: CLAN's DFS vs level-wise BFS (identical outputs)",
    )
    write_report("bfs_vs_dfs", table)

    # DFS with non-closed prefix pruning touches fewer pattern nodes
    # than BFS, which cannot prune subtrees it has not generated.
    for row in rows:
        assert row[5] <= row[6]
