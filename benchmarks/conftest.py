"""Shared fixtures and reporting helpers for the benchmark suite.

All benchmarks honour ``REPRO_BENCH_SCALE`` (tiny | small | medium |
paper; default small).  Every figure/table regeneration writes its
output both to stdout and to ``benchmarks/results/<name>.txt`` so the
artefacts survive pytest's output capture.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

from repro.bench import bench_scale
from repro.chem import ca_like_database
from repro.stockmarket import PAPER_THETAS, stock_market_series

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def write_report(name: str, text: str) -> None:
    """Print a regenerated table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}", file=sys.stderr)


@pytest.fixture(scope="session")
def scale() -> str:
    return bench_scale()


@pytest.fixture(scope="session")
def market_databases(scale):
    """The six stock-market databases (one per paper threshold)."""
    return dict(zip(PAPER_THETAS, stock_market_series(PAPER_THETAS, scale=scale)))


@pytest.fixture(scope="session")
def ca_database(scale):
    """The CA-like chemical database, scaled."""
    sizes = {"tiny": 120, "small": 422, "medium": 844, "paper": 422}
    return ca_like_database(n_compounds=sizes[scale])
