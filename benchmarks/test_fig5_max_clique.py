"""Figure 5 — the maximum frequent closed clique in the market data.

The paper: at correlation threshold 0.9 and minimum relative support
100%, CLAN finds 327 closed cliques of size ≥ 3; the maximum contains
the 12 fund stocks DMF, IQM, MEN, MNP, NPX, NUV, PPM, VCF, VKL, VMO,
VNV, XAA.  The reproduction plants the same 12-ticker fund group in
its simulated market (see DESIGN.md) and must recover it exactly.
"""

from repro.core import mine_closed_cliques
from repro.stockmarket import (
    FIGURE5_TICKERS,
    StockMarketSimulator,
    clique_prediction_study,
    correlated_groups,
    market_config,
    maximum_group,
    report,
)

from conftest import write_report


def mine(market_databases):
    return mine_closed_cliques(market_databases[0.90], min_sup=1.0)


def test_fig5_maximum_closed_clique(benchmark, market_databases, scale):
    result = benchmark.pedantic(mine, args=(market_databases,), rounds=1, iterations=1)
    db = market_databases[0.90]

    top = maximum_group(result, n_periods=len(db))
    assert top is not None

    # The paper's "quite safe to say" prediction claim, quantified.
    simulator = StockMarketSimulator(market_config(scale))
    study = clique_prediction_study(simulator.simulate_period(0), top.tickers, seed=1)

    lines = [
        "== Figure 5: maximum frequent closed clique "
        "(theta=0.9, min_sup=100%) ==",
        f"closed cliques of size >= 3: {len(result.at_least_size(3))} "
        f"(paper: 327 at full scale; 381 at our full scale)",
        f"maximum clique size: {top.size} (paper: 12)",
        f"members: {', '.join(top.tickers)}",
        f"direction prediction from clique-mates: "
        f"{study['clique_hit_rate']:.1%} vs random {study['control_hit_rate']:.1%}",
        "",
        report(result, n_periods=len(db), min_size=3, limit=15),
    ]
    write_report("fig5", "\n".join(lines))
    assert study["advantage"] > 0.2

    # The headline result: exactly the paper's 12 fund tickers.
    assert top.size == 12
    assert set(top.tickers) == set(FIGURE5_TICKERS)
    assert top.support == len(db)

    # It is the unique maximum, as in the paper.
    assert len(result.maximum_patterns()) == 1

    # And a meaningful population of smaller closed cliques exists.
    groups = correlated_groups(result, n_periods=len(db), min_size=3)
    assert len(groups) >= 10
