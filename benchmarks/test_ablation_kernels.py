"""Ablation — set kernel vs bitset kernel on the paper workloads.

Both kernels run the identical CLAN algorithm (the differential suite
enforces byte-identical results and statistics); the only difference
is the candidate-set representation, so the runtime gap is a pure
measure of the bitset engineering.  Measured on the Figure 6(a) sweep
(six market databases × four thresholds) and a Figure 7(b) style
replicated workload; the Figure 6(a) numbers are also written to
``BENCH_kernels.json`` at the repo root as the perf-trajectory
baseline for future PRs.
"""

import json
import time
from pathlib import Path

from repro.bench import format_table
from repro.core import BITSET, SET, ClanMiner, MinerConfig
from repro.stockmarket import PAPER_THETAS

from conftest import write_report

REPO_ROOT = Path(__file__).resolve().parent.parent
SUPPORTS = (1.00, 0.95, 0.90, 0.85)
ROUNDS = 3  # best-of, to shed scheduler noise


def fig6a_sweep(market_databases, kernel):
    config = MinerConfig(kernel=kernel)
    keys = []
    started = time.perf_counter()
    for theta in PAPER_THETAS:
        miner = ClanMiner(market_databases[theta], config)
        for min_sup in SUPPORTS:
            keys.append(sorted(p.key() for p in miner.mine(min_sup)))
    return time.perf_counter() - started, keys


def fig7b_cell(market_databases, kernel):
    replica = market_databases[0.95].replicate(4)
    config = MinerConfig(kernel=kernel)
    started = time.perf_counter()
    result = ClanMiner(replica, config).mine(0.85)
    return time.perf_counter() - started, sorted(p.key() for p in result)


def best_of(measure, *args):
    best_seconds, keys = measure(*args)
    for _ in range(ROUNDS - 1):
        seconds, _ = measure(*args)
        best_seconds = min(best_seconds, seconds)
    return best_seconds, keys


def test_ablation_kernels(benchmark, market_databases, scale):
    benchmark.pedantic(
        lambda: fig6a_sweep(market_databases, BITSET), rounds=1, iterations=1
    )

    timings = {}
    reference_keys = {}
    for kernel in (SET, BITSET):
        sweep_seconds, sweep_keys = best_of(fig6a_sweep, market_databases, kernel)
        cell_seconds, cell_keys = best_of(fig7b_cell, market_databases, kernel)
        timings[kernel] = {"fig6a_sweep": sweep_seconds, "fig7b_x4": cell_seconds}
        keys = {"fig6a": sweep_keys, "fig7b": cell_keys}
        if not reference_keys:
            reference_keys = keys
        else:
            # The kernels must be indistinguishable on results.
            assert keys == reference_keys, kernel

    rows = []
    for workload in ("fig6a_sweep", "fig7b_x4"):
        set_s = timings[SET][workload]
        bit_s = timings[BITSET][workload]
        rows.append(
            [workload, f"{set_s:.3f}", f"{bit_s:.3f}", f"{set_s / bit_s:.2f}x"]
        )
    table = format_table(
        ["workload", "set (s)", "bitset (s)", "speedup"],
        rows,
        title=f"Kernel ablation, best of {ROUNDS} (scale={scale})",
    )
    write_report("kernels", table)

    record = {
        "benchmark": "kernel ablation (set vs bitset)",
        "scale": scale,
        "rounds": ROUNDS,
        "workloads": {
            "fig6a_sweep": "6 market databases x supports 100/95/90/85%",
            "fig7b_x4": "SM-0.95 replicated x4 @ 85%",
        },
        "set_seconds": timings[SET],
        "bitset_seconds": timings[BITSET],
        "speedup": {
            workload: timings[SET][workload] / timings[BITSET][workload]
            for workload in timings[SET]
        },
    }
    (REPO_ROOT / "BENCH_kernels.json").write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )

    # Acceptance bar: the default (bitset) kernel is at least 2x the
    # set kernel on the fig6a workload (generous slack for CI noise —
    # the recorded json carries the true ratio).
    if scale in ("small", "medium", "paper"):
        assert record["speedup"]["fig6a_sweep"] >= 1.5
