"""Ablation — set vs bitset vs slab kernels on the paper workloads.

All three kernels run the identical CLAN algorithm (the differential
suite enforces byte-identical results and statistics); the only
difference is the candidate-set representation, so the runtime gaps
are a pure measure of the kernel engineering:

* ``set``    — frozensets of transaction ids (the readable oracle);
* ``bitset`` — one Python int bitmask per candidate set;
* ``slab``   — numpy uint64 word slabs, batched level-by-level across
  the whole DFS forest (vectorised AND + popcount over every sibling
  at once).

Measured on the Figure 6(a) sweep (six market databases × four
thresholds) and a Figure 7(b) style replicated workload; the numbers
are written to ``BENCH_kernels.json`` at the repo root as the
perf-trajectory baseline for future PRs.

Interpreting the two workloads: fig6a@small has only 11 transactions
per database, so per-node mask arithmetic is already cheap and the
run is dominated by the shared engine/emission floor — slab's win
there is modest.  fig7b_x4 multiplies the transaction axis 4x, which
is exactly the axis slab vectorises over, and the gap widens.  Slab's
advantage scales with transaction count, not alphabet size.
"""

import json
import time
from pathlib import Path

from repro.bench import format_table, hardware_context
from repro.core import BITSET, SET, SLAB, ClanMiner, MinerConfig
from repro.stockmarket import PAPER_THETAS

from conftest import write_report

REPO_ROOT = Path(__file__).resolve().parent.parent
SUPPORTS = (1.00, 0.95, 0.90, 0.85)
ROUNDS = 3  # best-of, to shed scheduler noise
KERNELS = (SET, BITSET, SLAB)


def fig6a_sweep(market_databases, kernel):
    config = MinerConfig(kernel=kernel)
    keys = []
    started = time.perf_counter()
    for theta in PAPER_THETAS:
        miner = ClanMiner(market_databases[theta], config)
        for min_sup in SUPPORTS:
            keys.append(sorted(p.key() for p in miner.mine(min_sup)))
    return time.perf_counter() - started, keys


def fig7b_cell(replica, kernel):
    # The replica is built once by the caller so best-of rounds measure
    # steady-state mining, not one-time index construction (the fig6a
    # databases come from a session fixture and amortise the same way).
    config = MinerConfig(kernel=kernel)
    started = time.perf_counter()
    result = ClanMiner(replica, config).mine(0.85)
    return time.perf_counter() - started, sorted(p.key() for p in result)


def best_of(measure, *args):
    best_seconds, keys = measure(*args)
    for _ in range(ROUNDS - 1):
        seconds, _ = measure(*args)
        best_seconds = min(best_seconds, seconds)
    return best_seconds, keys


def test_ablation_kernels(benchmark, market_databases, scale):
    benchmark.pedantic(
        lambda: fig6a_sweep(market_databases, BITSET), rounds=1, iterations=1
    )

    timings = {}
    reference_keys = {}
    replica = market_databases[0.95].replicate(4)
    for kernel in KERNELS:
        sweep_seconds, sweep_keys = best_of(fig6a_sweep, market_databases, kernel)
        cell_seconds, cell_keys = best_of(fig7b_cell, replica, kernel)
        timings[kernel] = {"fig6a_sweep": sweep_seconds, "fig7b_x4": cell_seconds}
        keys = {"fig6a": sweep_keys, "fig7b": cell_keys}
        if not reference_keys:
            reference_keys = keys
        else:
            # The kernels must be indistinguishable on results.
            assert keys == reference_keys, kernel

    rows = []
    for workload in ("fig6a_sweep", "fig7b_x4"):
        set_s = timings[SET][workload]
        bit_s = timings[BITSET][workload]
        slab_s = timings[SLAB][workload]
        rows.append(
            [
                workload,
                f"{set_s:.3f}",
                f"{bit_s:.3f}",
                f"{slab_s:.3f}",
                f"{set_s / bit_s:.2f}x",
                f"{bit_s / slab_s:.2f}x",
            ]
        )
    table = format_table(
        ["workload", "set (s)", "bitset (s)", "slab (s)", "bitset/set", "slab/bitset"],
        rows,
        title=f"Kernel ablation, best of {ROUNDS} (scale={scale})",
    )
    write_report("kernels", table)

    record = {
        "benchmark": "kernel ablation (set vs bitset vs slab)",
        "scale": scale,
        "rounds": ROUNDS,
        "hardware": hardware_context(),
        "workloads": {
            "fig6a_sweep": "6 market databases x supports 100/95/90/85%",
            "fig7b_x4": "SM-0.95 replicated x4 @ 85%",
        },
        "set_seconds": timings[SET],
        "bitset_seconds": timings[BITSET],
        "slab_seconds": timings[SLAB],
        "speedup": {
            workload: timings[SET][workload] / timings[BITSET][workload]
            for workload in timings[SET]
        },
        "slab_speedup_vs_bitset": {
            workload: timings[BITSET][workload] / timings[SLAB][workload]
            for workload in timings[BITSET]
        },
        "slab_speedup_vs_set": {
            workload: timings[SET][workload] / timings[SLAB][workload]
            for workload in timings[SET]
        },
    }
    (REPO_ROOT / "BENCH_kernels.json").write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )

    # Acceptance bars (generous slack for CI noise — the recorded json
    # carries the true ratios): bitset is at least 1.5x the set kernel
    # on fig6a, and slab beats bitset on both workloads.  fig6a@small
    # is floor-bound (see module docstring) so the slab bar there is
    # 1.3x; the transaction-heavy fig7b cell is where slab's batching
    # pays (measured ~3.4x) and gets a 1.5x bar.
    if scale in ("small", "medium", "paper"):
        assert record["speedup"]["fig6a_sweep"] >= 1.5
        assert record["slab_speedup_vs_bitset"]["fig6a_sweep"] >= 1.3
        assert record["slab_speedup_vs_bitset"]["fig7b_x4"] >= 1.5
