"""Figure 7(b) — runtime scalability against database base size.

The paper replicates each database 2 to 16 times and reports that
CLAN's runtime grows linearly with the number of graphs.  Workloads as
in the paper: stock-market-0.95 and -0.94 at 85% support, and CA at
10%, where the paper also plots ADI-Mine's (much higher, also linear)
curve — reproduced here with the edge-capped complete miner.
"""

import time

from repro.baselines import mine_closed_cliques_via_subgraphs
from repro.bench import format_series_table
from repro.core import mine_closed_cliques

from conftest import write_report

FACTORS = (1, 2, 4, 8, 16)
COMPLETE_FACTORS = (1, 2, 4)  # the baseline is ~100x slower per graph
COMPLETE_SUBSET = 40


def measure(database, min_sup):
    column = []
    for factor in FACTORS:
        replica = database.replicate(factor)
        started = time.perf_counter()
        result = mine_closed_cliques(replica, min_sup)
        column.append(time.perf_counter() - started)
        # Replication preserves relative supports, hence the result set.
        if factor == 1:
            baseline_keys = sorted(p.form.labels for p in result)
        else:
            assert sorted(p.form.labels for p in result) == baseline_keys
    return column


def test_fig7b_linear_scalability(benchmark, market_databases, ca_database, scale):
    workloads = [
        ("SM-0.95 @85%", market_databases[0.95], 0.85),
        ("SM-0.94 @85%", market_databases[0.94], 0.85),
        ("CA @10%", ca_database.subset(range(min(len(ca_database), 120)), name="CA"), 0.10),
    ]
    benchmark.pedantic(
        lambda: mine_closed_cliques(market_databases[0.95].replicate(4), 0.85),
        rounds=1, iterations=1,
    )

    columns = [measure(db, min_sup) for _, db, min_sup in workloads]
    table = format_series_table(
        "replication factor",
        [name + " (s)" for name, _, _ in workloads],
        list(FACTORS),
        columns,
        title="Figure 7(b): runtime vs base size (seconds)",
    )

    ratios = []
    for column in columns:
        # Normalised cost per replica copy: flat under linear scaling.
        per_copy = [seconds / factor for seconds, factor in zip(column, FACTORS)]
        ratios.append(per_copy[-1] / per_copy[0])
    table += "\n" + "\n".join(
        f"{name}: time(x16)/(16*time(x1)) = {ratio:.2f} (1.0 = perfectly linear)"
        for (name, _, _), ratio in zip(workloads, ratios)
    )

    # The paper's ADI-Mine curve on CA @10%: also ~linear, far above
    # CLAN's.  The edge cap keeps the pure-Python baseline finite.
    ca_small = ca_database.subset(range(min(len(ca_database), COMPLETE_SUBSET)),
                                  name="CA-baseline")
    complete_column = []
    for factor in COMPLETE_FACTORS:
        replica = ca_small.replicate(factor)
        started = time.perf_counter()
        mine_closed_cliques_via_subgraphs(replica, 0.10, max_edges=5)
        complete_column.append(time.perf_counter() - started)
    per_copy = [s / f for s, f in zip(complete_column, COMPLETE_FACTORS)]
    complete_ratio = per_copy[-1] / per_copy[0]
    table += (
        f"\ncomplete miner on {ca_small.name} @10% (edge cap 5): "
        + ", ".join(
            f"x{f}={s:.2f}s" for f, s in zip(COMPLETE_FACTORS, complete_column)
        )
        + f"; per-copy ratio {complete_ratio:.2f}"
    )
    write_report("fig7b", table)

    for column, ratio in zip(columns, ratios):
        # Runtime must grow with the base size...
        assert column[-1] > column[0]
        # ...and stay near-linear: the per-copy cost at x16 is within
        # 3x of the per-copy cost at x1 (the paper's curves are straight
        # lines; we leave generous room for Python timer noise).
        assert ratio < 3.0
    # The baseline scales linearly too but sits orders above CLAN.
    assert complete_ratio < 3.0
    assert complete_column[0] > columns[2][0]
