"""Figure 7(a) — CLAN vs a complete frequent-subgraph miner on CA.

The paper compares CLAN against ADI-Mine on the sparse chemical
database while varying min_sup, and finds CLAN faster by orders of
magnitude even there (on the dense market databases ADI-Mine does not
finish at all).  Our comparator is the from-scratch gSpan-style miner
(see DESIGN.md's substitution table); the complete miner additionally
post-filters cliques, i.e. it implements the "mine everything first"
pipeline the paper argues against.

The published curves: ADI-Mine ~80–600 s vs CLAN ~1–10 s as support
falls from 30% to 10%.  We assert the *shape*: both slow down as
support falls, CLAN wins every cell by a growing factor.
"""

import time

from repro.baselines import mine_closed_cliques_via_subgraphs
from repro.bench import format_series_table, timed_or_budget
from repro.core import mine_closed_cliques

from conftest import write_report

SUPPORTS = (0.30, 0.25, 0.20, 0.15)
#: Edge cap for the complete miner; without a cap pure Python would
#: need hours on the full CA workload, which is itself the paper's
#: point — the cap keeps the benchmark finite while preserving both
#: shape and clique-result exactness (CA cliques have <= 3 edges).
MAX_EDGES = 6
SUBSET_SIZES = {"tiny": 40, "small": 80, "medium": 160, "paper": 422}


def test_fig7a_clan_vs_complete_miner(benchmark, ca_database, scale):
    subset = ca_database.subset(range(SUBSET_SIZES[scale]), name="CA-subset")

    benchmark.pedantic(
        lambda: mine_closed_cliques(subset, SUPPORTS[-1]),
        rounds=1, iterations=1,
    )

    clan_column, complete_column, factors = [], [], []
    for min_sup in SUPPORTS:
        started = time.perf_counter()
        clan_result = mine_closed_cliques(subset, min_sup)
        clan_seconds = time.perf_counter() - started
        clan_column.append(clan_seconds)

        run = timed_or_budget(
            f"complete@{min_sup}",
            lambda ms=min_sup: mine_closed_cliques_via_subgraphs(
                subset, ms, max_nodes=200_000, max_edges=MAX_EDGES
            ),
            note="did not complete",
        )
        complete_column.append(run.seconds if run.completed else float("nan"))
        factors.append(run.seconds / clan_seconds if run.completed else float("inf"))

        if run.completed:
            # Same closed cliques either way (completeness check).
            assert sorted(p.key() for p in run.value) == sorted(
                p.key() for p in clan_result
            )

    table = format_series_table(
        "min_sup",
        ["CLAN (s)", "complete miner (s)", "speedup (x)"],
        [f"{int(s * 100)}%" for s in SUPPORTS],
        [clan_column, complete_column, factors],
        title=f"Figure 7(a): CLAN vs complete subgraph miner on {subset.name}",
    )
    write_report("fig7a", table)

    # Shape 1: CLAN wins every cell by a large factor (paper: 10-100x).
    finite = [f for f in factors if f != float("inf")]
    assert finite and min(finite) > 5.0
    # Shape 2: both runtimes grow (or the baseline dies) as support falls.
    assert clan_column[-1] >= clan_column[0] * 0.5
    assert complete_column[-1] >= complete_column[0] or factors[-1] == float("inf")


def test_fig7a_dense_database_baseline_dies(benchmark, market_databases):
    """The paper's companion observation: on every dense stock-market
    database the complete miner 'could not complete after running for
    several days' even at 100% support, while CLAN finishes routinely.
    Reproduced with a generous node budget standing in for days."""
    db = market_databases[0.95]
    clan = benchmark.pedantic(
        lambda: mine_closed_cliques(db, 1.0), rounds=1, iterations=1
    )
    assert len(clan) > 0

    run = timed_or_budget(
        "complete@dense",
        lambda: mine_closed_cliques_via_subgraphs(db, 1.0, max_nodes=1_500),
        note="did not complete",
    )
    write_report(
        "fig7a_dense",
        "== Figure 6/7 companion: complete miner on stock-market-0.95 @100% ==\n"
        f"CLAN: {clan.elapsed_seconds:.2f}s ({len(clan)} closed cliques)\n"
        f"complete miner: {run.cell()}",
    )
    assert not run.completed
