"""Future-work extension — closed quasi-clique mining (paper §6).

The paper's conclusion proposes relaxing CLAN to quasi-cliques.  This
benchmark sweeps gamma on a workload with planted near-clique
structure — K5-minus-an-edge blocks and bowties (two triangles sharing
a vertex) on top of a random background — and reports how the closed
pattern count grows as the structure requirement loosens.  At
gamma = 1.0 the result coincides with exact CLAN (asserted).
"""

import random
import time

from repro.bench import format_table
from repro.core import (
    MinerConfig,
    QuasiTaskStrategy,
    mine,
    mine_closed_cliques,
)
from repro.core.api import MiningRequest
from repro.core.engine import MiningEngine
from repro.graphdb import Graph, GraphDatabase
from repro.graphdb.generators import default_label_alphabet, random_transaction

from conftest import write_report

GAMMAS = (1.0, 0.9, 0.75, 0.6)
MAX_SIZE = 5
N_GRAPHS = 6


def build_workload(seed: int = 13) -> GraphDatabase:
    """Random transactions with a planted K5−e and a planted bowtie.

    The K5−e ("PQRST", one missing edge) is a 0.75-quasi-clique, the
    bowtie ("UVWXY", two triangles sharing W) a 0.5-quasi-clique; both
    are planted in every transaction so their patterns reach 100%
    support, but neither is a clique.
    """
    rng = random.Random(seed)
    labels = default_label_alphabet(4)
    database = GraphDatabase(name="quasi-workload")
    for gid in range(N_GRAPHS):
        graph = random_transaction(rng, 10, 0.25, labels, gid)
        base = 100
        for offset, label in enumerate("PQRST"):
            graph.add_vertex(base + offset, label)
        for i in range(5):
            for j in range(i + 1, 5):
                if (i, j) != (3, 4):  # S-T missing: K5 minus one edge
                    graph.add_edge(base + i, base + j)
        bow = 200
        for offset, label in enumerate("UVWXY"):
            graph.add_vertex(bow + offset, label)
        for u, v in ((0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)):
            graph.add_edge(bow + u, bow + v)
        graph.add_edge(base, rng.randrange(10))
        graph.add_edge(bow, rng.randrange(10))
        database.add(graph)
    return database


def test_quasiclique_gamma_sweep(benchmark):
    database = build_workload()
    min_sup = 1.0

    def closed_quasi(gamma, min_size):
        # Direct construction, not from_options: the legacy builder
        # bumps quasi min_size 1 -> 2, and this sweep wants singletons.
        return mine(
            database,
            MiningRequest(
                min_sup=min_sup, task="quasi", gamma=gamma,
                min_size=min_size, max_size=MAX_SIZE,
            ),
        )

    def all_quasi(gamma, min_size):
        # closed_only=False has no request spelling: drive the engine
        # with the quasi strategy's closure filter switched off.
        config = MinerConfig.all_frequent(min_size=min_size, max_size=MAX_SIZE)
        engine = MiningEngine(
            database, config, strategy=QuasiTaskStrategy(gamma, closed=False)
        )
        return engine.mine(min_sup)

    benchmark.pedantic(
        lambda: closed_quasi(0.75, 2),
        rounds=1, iterations=1,
    )

    exact = mine_closed_cliques(database, min_sup, max_size=MAX_SIZE)
    exact_keys = sorted(p.key() for p in exact)

    rows, all_counts, max_sizes = [], [], []
    found_at = {}
    for gamma in GAMMAS:
        started = time.perf_counter()
        result = closed_quasi(gamma, 1)
        seconds = time.perf_counter() - started
        unfiltered = all_quasi(gamma, 1)
        all_counts.append(len(unfiltered))
        max_sizes.append(result.max_size())
        found_at[gamma] = {p.key() for p in result}
        rows.append([
            gamma, len(result), len(unfiltered), len(result.at_least_size(3)),
            result.max_size(), f"{seconds:.2f}",
        ])
        if gamma == 1.0:
            assert sorted(p.key() for p in result) == exact_keys

    table = format_table(
        ["gamma", "closed", "all frequent", "size >= 3", "max size", "seconds"],
        rows,
        title=f"Quasi-clique extension on {database.name} @100% (max size {MAX_SIZE})",
    )
    write_report("quasiclique", table)

    # The planted K5−e appears exactly when gamma admits it (and then
    # absorbs its own sub-cliques, so the *closed* count may shrink).
    assert "PQRST:6" not in found_at[1.0]
    assert "PQRST:6" in found_at[0.75]
    # Each outer bowtie vertex has in-set degree 2 of 4, so the bowtie
    # needs gamma <= 0.5 and must still be absent at 0.6.
    assert "UVWXY:6" not in found_at[0.6]
    # The frequent (unfiltered) pattern count grows monotonically as
    # gamma relaxes, and the reachable structure size does too.
    assert all_counts == sorted(all_counts)
    assert max_sizes[-1] >= max_sizes[0]
