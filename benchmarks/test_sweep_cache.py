"""Extension benchmark — the cross-run mining cache on the Figure 6(a) sweep.

Not a paper figure: the paper re-mines from scratch at every threshold
of its support sweeps.  Lemma 4.3 makes that redundant — the closed
(and all-frequent) pattern sets at support ``t`` are exactly the
``support >= t`` subsets of the sets at any ``s <= t`` — so a sweep
only ever needs to *mine* at its lowest threshold and can answer the
rest by filtering.  The :class:`~repro.core.cache.MiningCache` adds a
second, cross-run tier: per-root entries keyed by database fingerprint
and config digest, so repeating the sweep (same process or reloaded
from disk) replays every root without touching the search.

This benchmark replays the Figure 6(a) protocol (supports 100% down to
85% on the six market databases) four ways:

* **cold** — a fresh uncached mine per threshold (the paper's way and
  the fig6a baseline);
* **first sweep** — one empty cache; mines once at 85%, derives the
  rest (the sweep tier);
* **warm sweep** — the same cache again (the memoization tier);
* **persisted** — the cache saved and reloaded through
  :mod:`repro.io.runlog` first (the cross-process case).

All four produce byte-identical pattern sets per threshold.  Results
land in ``BENCH_cache.json`` at the repo root, with per-threshold
hit-rate curves.  Acceptance bar: the warm and persisted sweeps beat
the cold baseline by >= 3x (skipped at the tiny scale, where per-mine
times are microseconds of noise).
"""

import json
import time
from pathlib import Path

from repro.bench import format_table, hardware_context
from repro.core import MiningCache, mine_closed_cliques, sweep
from repro.io.runlog import open_cache, save_cache
from repro.stockmarket import PAPER_THETAS

from conftest import write_report

REPO_ROOT = Path(__file__).resolve().parent.parent
SUPPORTS = (1.00, 0.95, 0.90, 0.85)
SPEEDUP_BAR = 3.0


def _keys_by_support(results):
    return {spec: sorted(p.key() for p in result) for spec, result in results.items()}


def _timed_sweep(db, cache):
    started = time.perf_counter()
    results = sweep(db, SUPPORTS, cache=cache)
    return time.perf_counter() - started, results


def _hit_curve(db, results):
    curve = {}
    for spec, result in results.items():
        roots = len(db.frequent_labels(db.absolute_support(spec)))
        hits = result.statistics.roots_from_cache
        curve[f"{int(spec * 100)}%"] = hits / roots if roots else 1.0
    return curve


def test_sweep_cache_speedup(benchmark, scale, market_databases, tmp_path):
    per_database = {}
    for theta in PAPER_THETAS:
        db = market_databases[theta]

        cold_seconds = {}
        cold_keys = {}
        started_cold = time.perf_counter()
        for min_sup in SUPPORTS:
            started = time.perf_counter()
            result = mine_closed_cliques(db, min_sup)
            cold_seconds[f"{int(min_sup * 100)}%"] = time.perf_counter() - started
            cold_keys[min_sup] = sorted(p.key() for p in result)
        cold_total = time.perf_counter() - started_cold

        cache = MiningCache()
        first_total, first_results = _timed_sweep(db, cache)
        warm_total, warm_results = _timed_sweep(db, cache)

        target = save_cache(cache, tmp_path / f"cache-{theta:.2f}.json")
        reloaded = open_cache(target)
        persisted_total, persisted_results = _timed_sweep(db, reloaded)

        # The whole point: every tier is byte-identical to cold mining.
        for results in (first_results, warm_results, persisted_results):
            assert _keys_by_support(results) == {
                spec: cold_keys[spec] for spec in SUPPORTS
            }

        per_database[f"{theta:.2f}"] = {
            "cold_seconds": cold_seconds,
            "cold_total": cold_total,
            "first_sweep_total": first_total,
            "warm_sweep_total": warm_total,
            "persisted_sweep_total": persisted_total,
            "speedup_first": cold_total / first_total if first_total else 0.0,
            "speedup_warm": cold_total / warm_total if warm_total else 0.0,
            "speedup_persisted": (
                cold_total / persisted_total if persisted_total else 0.0
            ),
            "hit_rate_first": _hit_curve(db, first_results),
            "hit_rate_warm": _hit_curve(db, warm_results),
            "cache_entries": len(cache),
            "cache_hit_rate": cache.hit_rate,
            "sweep_hits": cache.sweep_hits,
        }

    # The benchmarked cell: a fully-warm sweep of the densest database.
    warm_cache = MiningCache()
    sweep(market_databases[0.90], SUPPORTS, cache=warm_cache)
    benchmark.pedantic(
        lambda: sweep(market_databases[0.90], SUPPORTS, cache=warm_cache),
        rounds=1,
        iterations=1,
    )

    rows = [
        [
            f"SM-{theta}",
            f"{row['cold_total']:.3f}s",
            f"{row['speedup_first']:.1f}x",
            f"{row['speedup_warm']:.1f}x",
            f"{row['speedup_persisted']:.1f}x",
            f"{min(row['hit_rate_warm'].values()):.2f}",
        ]
        for theta, row in per_database.items()
    ]
    table = format_table(
        ["database", "cold", "first", "warm", "persisted", "warm hit rate"],
        rows,
        title=(
            f"Sweep-cache speedups vs cold fig6a baseline ({scale}; "
            "supports 100/95/90/85%, identical outputs)"
        ),
    )
    write_report("cache", table)

    record = {
        "benchmark": "sweep cache (support-monotone reuse + memoization)",
        "scale": scale,
        "hardware": hardware_context(),
        "supports": [f"{int(s * 100)}%" for s in SUPPORTS],
        "speedup_bar": SPEEDUP_BAR,
        "per_database": per_database,
    }
    (REPO_ROOT / "BENCH_cache.json").write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )

    if scale != "tiny":
        for theta, row in per_database.items():
            assert row["speedup_warm"] >= SPEEDUP_BAR, theta
            assert row["speedup_persisted"] >= SPEEDUP_BAR, theta
        # The first sweep already wins: it mines once, not four times.
        assert any(row["speedup_first"] > 1.0 for row in per_database.values())
