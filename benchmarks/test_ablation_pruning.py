"""Ablation — what each Section 4 technique contributes.

Not a paper figure, but the paper's §4 claims each pruning method
"accelerates the mining"; this benchmark attributes the speedup.  All
configurations must produce identical result sets (also enforced by
the property tests); the interesting output is the work counters:

* structural redundancy pruning: duplicate generations avoided;
* non-closed prefix pruning: subtrees cut;
* pseudo low-degree pruning: only consequential under the paper's
  literal ``rescan`` strategy, where extension vertices are re-derived
  from the (pruned) vertex lists on every scan.
"""

import time

from repro.bench import format_table
from repro.core import RESCAN, ClanMiner, MinerConfig
from repro.stockmarket import stock_market_database

from conftest import write_report


def run(db, min_sup, config):
    miner = ClanMiner(db, config)
    started = time.perf_counter()
    result = miner.mine(min_sup)
    return time.perf_counter() - started, result


def test_ablation_each_pruning(benchmark, market_databases, scale):
    db = market_databases[0.93]
    min_sup = 1.0

    configurations = [
        ("full CLAN", MinerConfig()),
        ("no non-closed prefix pruning", MinerConfig().without("nonclosed_prefix")),
        ("no structural redundancy", MinerConfig().without("structural_redundancy")),
        ("rescan strategy (paper-literal)", MinerConfig(embedding_strategy=RESCAN)),
        (
            "rescan, no low-degree pruning",
            MinerConfig(embedding_strategy=RESCAN).without("low_degree"),
        ),
    ]

    benchmark.pedantic(lambda: run(db, min_sup, MinerConfig()), rounds=1, iterations=1)

    rows = []
    reference_keys = None
    timings = {}
    for name, config in configurations:
        seconds, result = run(db, min_sup, config)
        timings[name] = seconds
        keys = sorted(p.key() for p in result)
        if reference_keys is None:
            reference_keys = keys
        assert keys == reference_keys, name
        stats = result.statistics
        rows.append([
            name, f"{seconds:.3f}", stats.prefixes_visited,
            stats.nonclosed_prefix_prunes, stats.duplicates_collapsed,
            stats.embeddings_created,
        ])
    table = format_table(
        ["configuration", "seconds", "prefixes", "subtree prunes",
         "duplicates", "embeddings"],
        rows,
        title="Ablation: Section 4 techniques on stock-market-0.93 @100%",
    )
    write_report("ablation", table)

    # Non-closed prefix pruning must visibly cut the search tree.
    full = next(r for r in rows if r[0] == "full CLAN")
    no_prefix = next(r for r in rows if r[0] == "no non-closed prefix pruning")
    assert full[2] < no_prefix[2]
    # Redundancy pruning avoids duplicate generation entirely.
    no_redundancy = next(r for r in rows if r[0] == "no structural redundancy")
    assert full[4] == 0 and no_redundancy[4] > 0
    # The paper-literal rescan strategy benefits from low-degree pruning.
    assert timings["rescan strategy (paper-literal)"] <= timings[
        "rescan, no low-degree pruning"
    ] * 1.5
