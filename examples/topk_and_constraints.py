"""Top-k mining and constraint pushdown on the market data.

Two everyday variations on the paper's task:

* "just give me the k biggest co-moving groups" — top-k closed clique
  mining with a branch-and-bound cut instead of mine-then-truncate;
* "only within this watchlist / must include this stock" — constraint-
  based mining with the anti-monotone constraints pushed into a
  projected database.

Run:  python examples/topk_and_constraints.py
"""

from repro.core import (
    CliqueConstraints,
    mine_top_k_closed_cliques,
    mine_with_constraints,
)
from repro.stockmarket import FIGURE5_TICKERS, stock_market_database


def main() -> None:
    database = stock_market_database(theta=0.90, scale="tiny")
    n = len(database)

    # ------------------------------------------------------------------
    print("top-3 largest closed cliques at 100% support:")
    top3 = mine_top_k_closed_cliques(database, min_sup=1.0, k=3, min_size=2)
    for rank, pattern in enumerate(top3, start=1):
        print(f"  #{rank}: {pattern.size} stocks, "
              f"support {pattern.support}/{n} — {', '.join(pattern.labels)}")
    stats = top3.statistics
    print(f"  (search visited {stats.prefixes_visited} prefixes, "
          f"bound cut {stats.redundancy_skips} subtrees)\n")

    # ------------------------------------------------------------------
    anchor = "NUV"
    print(f"closed cliques that must contain {anchor} (size >= 3):")
    required = mine_with_constraints(
        database, 1.0,
        CliqueConstraints.of(required=[anchor], min_size=3),
    )
    for pattern in required.sorted_by_form():
        print(f"  {pattern.key()}")
    print()

    # ------------------------------------------------------------------
    watchlist = sorted(FIGURE5_TICKERS)[:8]
    print(f"mining restricted to the watchlist {', '.join(watchlist)}:")
    constrained = mine_with_constraints(
        database, 1.0,
        CliqueConstraints.of(allowed=watchlist, min_size=2),
    )
    for pattern in constrained.sorted_by_form():
        print(f"  {pattern.key()}")
    print("\n(the whole watchlist forms one closed clique: the fund group "
          "restricted to 8 of its members)")


if __name__ == "__main__":
    main()
