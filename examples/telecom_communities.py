"""Communities of interest in call-detail graphs (the paper's [1]).

The paper's introduction cites Abello et al.: quasi-clique detection in
telephone call graphs reveals communities of interest.  This example
runs the comparison the paper's §6 future work anticipates:

* exact closed clique mining (CLAN) only recovers communities whose
  members *all* call each other every active day;
* the closed quasi-clique extension recovers the realistic ones, whose
  daily call patterns cover only part of the pairs.

Run:  python examples/telecom_communities.py
"""

from repro.core import mine, mine_closed_cliques
from repro.core.api import MiningRequest
from repro.telecom import call_graph_database, expected_communities


def main() -> None:
    database = call_graph_database()
    print(f"workload: {database}  (one graph per day)\n")

    print("planted calling communities:")
    for labels, spec in expected_communities():
        print(
            f"  {len(labels)} members, per-day pair-call density "
            f"{spec.density:.0%}, active {spec.activity:.0%} of days: "
            f"{', '.join(labels)}"
        )
    print()

    exact = mine_closed_cliques(database, 0.7, min_size=4)
    print(f"exact CLAN (>=4 members, 70% of days): {len(exact)} closed cliques")
    for pattern in exact:
        print(f"  {pattern.key()}")
    print("  -> only the density-100% community forms an exact clique\n")

    quasi = mine(
        database,
        MiningRequest.from_options(
            0.7, task="quasi", gamma=0.6, min_size=4, max_size=6
        ),
    )
    print(
        f"closed 0.6-quasi-cliques (>=4 members, 70% of days): {len(quasi)}"
    )
    for pattern in sorted(quasi, key=lambda p: (-p.size, -p.support))[:5]:
        print(f"  {pattern.key()}")

    biggest = max(quasi, key=lambda p: p.size)
    planted = {labels for labels, _ in expected_communities()}
    recovered = biggest.labels in planted
    print(
        f"\nlargest quasi-clique community ({biggest.size} members, "
        f"support {biggest.support}) matches a planted community: {recovered}"
    )
    assert recovered


if __name__ == "__main__":
    main()
