"""File-based workflow: generate → save → reload → mine → save → reload.

Shows the interchange surface a downstream pipeline would use: the
``t/v/e`` text format for databases (shared with gSpan-family tools),
the paper's adjacency-matrix format, JSON for structured interchange,
CSV for price panels, and pattern listings for result diffing.

Run:  python examples/file_workflow.py   (writes into ./clan-workdir)
"""

from pathlib import Path

from repro.analysis import diff_results
from repro.core import mine_closed_cliques
from repro.graphdb import GraphDatabase, paper_example_database
from repro.io import gspan_format, json_format, matrix_format, patterns
from repro.stockmarket import (
    StockMarketSimulator,
    load_panels_csv,
    market_config,
    market_graph_from_prices,
    save_panels_csv,
)


def main() -> None:
    workdir = Path("clan-workdir")
    workdir.mkdir(exist_ok=True)

    # 1. A database out and back through every graph format.
    database = paper_example_database()
    gspan_format.save_database(database, workdir / "example.tve")
    matrix_format.save_database(database, workdir / "example.matrix")
    json_format.save_database(database, workdir / "example.json")
    print(f"wrote {workdir}/example.{{tve,matrix,json}}")

    reloaded = gspan_format.open_database(workdir / "example.tve")
    result = mine_closed_cliques(reloaded, min_sup=2)
    patterns.save_result(result, workdir / "closed.txt")
    json_format.save_result(result, workdir / "closed.json")
    print(f"mined {len(result)} closed cliques -> closed.txt / closed.json")

    # 2. Results reload and diff cleanly.
    from_text = patterns.open_result(workdir / "closed.txt")
    from_json = json_format.open_result(workdir / "closed.json")
    diff = diff_results(from_text, from_json)
    print("text vs json results:", "identical" if diff.identical else diff.render())

    # 3. The price-panel CSV path (how real exported data would enter).
    simulator = StockMarketSimulator(market_config("tiny"))
    panels = [simulator.simulate_period(p) for p in range(4)]
    paths = save_panels_csv(panels, workdir / "prices")
    market = GraphDatabase(
        [market_graph_from_prices(p, theta=0.9) for p in load_panels_csv(paths)],
        name="from-csv",
    )
    market_result = mine_closed_cliques(market, min_sup=1.0, min_size=3)
    print(f"CSV price path: {len(paths)} period files -> {len(market)} market "
          f"graphs -> {len(market_result)} closed cliques of size >= 3")

    # 4. End-to-end assertion for the smoke test.
    assert diff.identical
    assert sorted(p.key() for p in from_text) == ["abcd:2", "bde:2"]
    print("round trip OK")


if __name__ == "__main__":
    main()
