"""Common structural features of a protein family (the paper's [11]).

The paper's introduction motivates clique mining with Kato & Takahashi's
use of cliques to find maximal common 3-D structural features in protein
molecular graphs.  This example runs that scenario on a synthetic
protein family: contact-map graphs (residues labeled by amino acid,
edges = spatial contact) sharing conserved motifs.

Mining frequent closed cliques across the family recovers each motif as
a pattern whose support is its conservation level — and the closedness
filter collapses the motif's sub-compositions automatically.

Run:  python examples/protein_motifs.py
"""

from repro.bio import FamilyConfig, expected_motif_patterns, protein_family
from repro.analysis import evaluate_recovery
from repro.core import mine_closed_cliques
from repro.graphdb import database_characteristics


def main() -> None:
    config = FamilyConfig()
    family = protein_family(config)
    ch = database_characteristics(family)
    print(
        f"protein family: {ch.n_graphs} contact maps, "
        f"avg {ch.avg_vertices:.0f} residues / {ch.avg_edges:.0f} contacts, "
        f"{ch.distinct_labels} amino-acid labels\n"
    )

    result = mine_closed_cliques(family, min_sup=0.6, min_size=3)
    print(f"closed cliques of size >= 3 at 60% conservation: {len(result)}")
    for pattern in sorted(result, key=lambda p: (-p.size, -p.support))[:8]:
        share = pattern.support / len(family)
        print(f"  {pattern.key():>12}  in {share:.0%} of the family")
    print()

    planted = [
        (labels, round(conservation * config.n_proteins))
        for labels, conservation in expected_motif_patterns(config)
    ]
    report = evaluate_recovery(result, [(labels, None) for labels, _ in planted])
    print("recovery against the planted motifs:")
    print(report.render())

    assert report.exact_recall == 1.0
    print("\nall conserved motifs recovered as closed cliques "
          "(the [11] use case, at family scale)")


if __name__ == "__main__":
    main()
