"""Mining highly correlated stocks — the paper's Section 5.1 application.

Simulates 11 periods of daily prices for a stock universe (the real US
data is proprietary; see DESIGN.md), converts each period to a market
graph by thresholding Equation 1 correlations at theta = 0.9, and mines
the frequent closed cliques at 100% support: sets of stocks whose
prices moved together in *every* period.

The maximum clique recovers the 12 fund tickers of the paper's
Figure 5 (DMF, IQM, MEN, MNP, NPX, NUV, PPM, VCF, VKL, VMO, VNV, XAA).

Run:  python examples/stock_market_analysis.py [scale]
      (scale: tiny | small | medium; default small)
"""

import sys

from repro import mine_closed_cliques
from repro.graphdb import database_characteristics
from repro.stockmarket import (
    FIGURE5_TICKERS,
    StockMarketSimulator,
    clique_prediction_study,
    group_correlation_profile,
    market_config,
    maximum_group,
    report,
    stock_market_database,
)


def main(scale: str = "small") -> None:
    theta = 0.90
    database = stock_market_database(theta=theta, scale=scale)
    ch = database_characteristics(database)
    print(
        f"{ch.name}: {ch.n_graphs} market graphs, avg |V|={ch.avg_vertices:.0f}, "
        f"avg |E|={ch.avg_edges:.0f}, {ch.distinct_labels} distinct tickers, "
        f"max degree {ch.max_degree}\n"
    )

    # 100% support: correlated over all 11 x {period length} days.
    result = mine_closed_cliques(database, min_sup=1.0)
    print(report(result, n_periods=len(database), min_size=3))
    print(f"\nmined in {result.elapsed_seconds:.2f}s "
          f"({result.statistics.prefixes_visited} prefixes, "
          f"{result.statistics.nonclosed_prefix_prunes} subtrees pruned)\n")

    top = maximum_group(result, n_periods=len(database))
    assert top is not None
    print(f"maximum frequent closed clique ({top.size} stocks): "
          f"{', '.join(top.tickers)}")
    recovered = set(top.tickers) == set(FIGURE5_TICKERS)
    print(f"matches the paper's Figure 5 fund clique: {recovered}\n")

    # Why the paper calls the prediction 'quite safe': every pair stays
    # above theta in every period.
    simulator = StockMarketSimulator(market_config(scale))
    profile = group_correlation_profile(top.tickers, simulator.simulate_all())
    print("minimum pairwise correlation of the clique, per period:")
    for period, value in profile.items():
        bar = "#" * int(max(0.0, value - 0.8) * 100)
        print(f"  period {period:2d}: {value:.4f} {bar}")
    print(f"\nall above theta={theta}: {all(v > theta for v in profile.values())}")

    # The paper's motivating claim, quantified: clique-mates predict a
    # member's daily price direction far better than random stocks do.
    panel = simulator.simulate_period(0)
    study = clique_prediction_study(panel, top.tickers, seed=1)
    print(
        f"\ndirection prediction from clique-mates: "
        f"{study['clique_hit_rate']:.1%} hit rate "
        f"(random predictors: {study['control_hit_rate']:.1%}; "
        f"advantage {study['advantage']:+.1%})"
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "small")
