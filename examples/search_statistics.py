"""Anatomy of a CLAN run: statistics, lattice, occurrences, profile.

A guided tour of the instrumentation around the miner, first on the
paper's running example (where every number can be checked against the
text) and then on a market database.

Run:  python examples/search_statistics.py
"""

from repro.bench.profiling import profiled
from repro.core import (
    CanonicalForm,
    CliqueLattice,
    mine_closed_cliques,
    mine_frequent_cliques,
    occurrence_report,
)
from repro.graphdb import paper_example_database
from repro.stockmarket import stock_market_database


def main() -> None:
    database = paper_example_database()

    # ------------------------------------------------------------------
    print("=== running example (Figures 1-4) ===\n")
    closed = mine_closed_cliques(database, 2)
    stats = closed.statistics
    print(f"prefixes visited: {stats.prefixes_visited} "
          f"(19 frequent cliques exist; Lemma 4.4 cut "
          f"{stats.nonclosed_prefix_prunes} subtrees before their turn)")
    print(f"closure checks rejected {stats.closure_rejections} non-closed "
          f"patterns; {stats.closed_cliques} closed cliques remain")
    print(f"embeddings materialised: {stats.embeddings_created} "
          f"(peak {stats.peak_embeddings} for one prefix)\n")

    # Occurrence counts vs supports: the §4.3 distinction.
    forms = [CanonicalForm.from_labels(x) for x in ("bd", "abd", "abcd", "bde")]
    print("occurrences vs transaction support (see §4.3's 'four occurrences'):")
    print(occurrence_report(database, forms))
    print()

    # The lattice, with solid vs dotted extension edges.
    lattice = CliqueLattice.from_result(mine_frequent_cliques(database, 2))
    valid, redundant = lattice.edge_count()
    print(f"lattice: {len(lattice)} nodes, {valid} DFS edges followed, "
          f"{redundant} redundant extensions pruned\n")

    # ------------------------------------------------------------------
    print("=== market database (stock-market-0.90, tiny scale) ===\n")
    market = stock_market_database(0.90, scale="tiny")
    report = profiled(lambda: mine_closed_cliques(market, 0.85))
    result = report.value
    print(f"{len(result)} closed cliques in {result.elapsed_seconds:.3f}s; "
          f"{result.statistics.summary()}\n")
    print("where the time went:")
    print(report.render(limit=6))


if __name__ == "__main__":
    main()
