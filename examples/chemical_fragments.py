"""Frequent clique fragments in a chemical compound database.

Rebuilds the sparse CA-style workload of the paper's Figure 7(a): a
422-compound synthetic database with the published characteristics
(avg 39 vertices / 42 edges).  CLAN mines its closed cliques — in
molecular graphs these are atoms, bonds, and three-membered rings —
and a complete gSpan-style subgraph miner runs on a subset to show the
cost gap the figure reports.

Run:  python examples/chemical_fragments.py
"""

import time

from repro import mine_closed_cliques
from repro.baselines import mine_frequent_subgraphs
from repro.chem import CLIQUE_FRAGMENTS, ca_like_database
from repro.graphdb import database_characteristics


def main() -> None:
    database = ca_like_database()
    ch = database_characteristics(database)
    print(
        f"{ch.name}: {ch.n_graphs} compounds, avg |V|={ch.avg_vertices:.1f}, "
        f"avg |E|={ch.avg_edges:.1f} (paper's CA: 422 / 39 / 42)\n"
    )

    result = mine_closed_cliques(database, min_sup=0.10)
    print(f"CLAN @10%: {len(result)} closed cliques in {result.elapsed_seconds:.2f}s, "
          f"sizes {result.size_histogram()}")
    print("closed 3-cliques (three-membered rings) and their supports:")
    planted = {tuple(sorted(f.labels)): f.name for f in CLIQUE_FRAGMENTS if f.size == 3}
    for pattern in result.of_size(3):
        name = planted.get(pattern.labels, "(emergent)")
        share = 100.0 * pattern.support / len(database)
        print(f"  {pattern.key():>14}  {share:5.1f}% of compounds  <- {name}")
    print()

    # The mine-everything route on a subset, to keep it tractable: the
    # complete miner touches hundreds of non-clique patterns for every
    # clique it finds — the cost the paper's Figure 7(a) quantifies.
    subset = database.subset(range(60), name="CA-60")
    started = time.perf_counter()
    complete = mine_frequent_subgraphs(subset, min_sup=0.30, max_edges=7)
    elapsed = time.perf_counter() - started
    clan_subset = mine_closed_cliques(subset, min_sup=0.30)
    print(
        f"on {len(subset)} compounds @30%: complete subgraph miner visited "
        f"{complete.total_patterns()} frequent subgraphs "
        f"(≤7 edges) in {elapsed:.2f}s, of which "
        f"{len(complete.clique_patterns()) + len(complete.single_vertices)} are cliques;"
    )
    print(
        f"CLAN mined the {len(clan_subset)} closed cliques directly in "
        f"{clan_subset.elapsed_seconds:.3f}s "
        f"({elapsed / max(clan_subset.elapsed_seconds, 1e-9):.0f}x faster)."
    )


if __name__ == "__main__":
    main()
