"""Closed quasi-clique mining — the paper's Section 6 future work.

The paper closes by proposing to relax CLAN from exact cliques to
quasi-cliques.  This example exercises our implementation of that
extension on a small synthetic database: at gamma = 1.0 the results
coincide with CLAN's exact closed cliques; as gamma drops, near-clique
structures (cliques with a few missing edges) join the result set.

Run:  python examples/quasicliques.py
"""

from repro import MiningRequest, mine, mine_closed_cliques
from repro.graphdb import GraphDatabase, Graph


def build_database() -> GraphDatabase:
    """Three transactions sharing a 5-near-clique (one edge missing).

    Vertices p,q,r,s,t form K5 minus the (s,t) edge in every
    transaction — a 0.75-quasi-clique but not a clique — plus a proper
    triangle x,y,z in two transactions.
    """
    database = GraphDatabase(name="quasi-demo")
    for tid in range(3):
        labels = {0: "p", 1: "q", 2: "r", 3: "s", 4: "t", 5: "x", 6: "y", 7: "z"}
        edges = [
            (0, 1), (0, 2), (0, 3), (0, 4),
            (1, 2), (1, 3), (1, 4),
            (2, 3), (2, 4),
            # (3, 4) deliberately missing: s-t
        ]
        if tid < 2:
            edges += [(5, 6), (5, 7), (6, 7), (2, 5)]
        else:
            labels = {k: v for k, v in labels.items() if k < 5}
        database.add(Graph.from_edges(labels, edges, graph_id=tid))
    return database


def main() -> None:
    database = build_database()
    print(f"database: {database}\n")

    exact = mine_closed_cliques(database, min_sup=2, min_size=3)
    print("exact closed cliques (size >= 3):")
    for pattern in exact:
        print(f"  {pattern.key()}")

    for gamma in (1.0, 0.9, 0.75, 0.6):
        result = mine(
            database,
            MiningRequest.from_options(
                2, task="quasi", gamma=gamma, min_size=3, max_size=6
            ),
        )
        keys = ", ".join(p.key() for p in result.sorted_by_form())
        print(f"\ngamma={gamma}: {len(result)} closed quasi-cliques: {keys}")

    print(
        "\nAt gamma=1.0 the quasi-clique miner reproduces CLAN exactly; "
        "at 0.75 the 5-vertex near-clique pqrst (K5 minus one edge) "
        "appears — the structure the paper's future work is after."
    )


if __name__ == "__main__":
    main()
