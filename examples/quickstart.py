"""Quickstart: CLAN on the paper's running example (Figures 1–4).

Builds the two-transaction database D of Figure 1, mines it at
min_sup = 2, and walks through everything Sections 2 and 4 derive from
it: the 19 frequent cliques, the two closed ones, the lattice, and the
closed → frequent expansion.

Run:  python examples/quickstart.py
"""

from repro import CliqueLattice, mine_closed_cliques, mine_frequent_cliques
from repro.graphdb import paper_example_database


def main() -> None:
    database = paper_example_database()
    print(f"database: {database}\n")

    # The paper's default task: frequent *closed* cliques.
    closed = mine_closed_cliques(database, min_sup=2)
    print("frequent closed cliques (Example 2.1):")
    for pattern in closed:
        tx = ", ".join(f"G{tid + 1}" for tid in pattern.transactions)
        print(f"  {pattern.key()}   supported by {tx}")
    print(f"search: {closed.statistics.summary()}\n")

    # The full frequent set, in CLAN's DFS enumeration order (§4.2).
    frequent = mine_frequent_cliques(database, min_sup=2)
    print(f"all {len(frequent)} frequent cliques in enumeration order:")
    print("  " + ", ".join(frequent.keys()) + "\n")

    # The closed set loses nothing: expanding it recovers every
    # frequent clique with its exact support (Section 1's argument).
    expanded = closed.expand_to_frequent()
    assert sorted(expanded.keys()) == sorted(frequent.keys())
    print("closed set expands back to the full frequent set: OK\n")

    # The lattice-like structure of Figure 4; [.] marks closed nodes.
    lattice = CliqueLattice.from_result(frequent)
    print("the Figure 4 lattice:")
    print(lattice.render())
    valid, redundant = lattice.edge_count()
    print(f"\nDFS follows {valid} solid edges; structural redundancy "
          f"pruning skips the other {redundant} (dotted) extensions.")

    # The critical path of §4.3: pruning bd:2 would lose bde:2.
    target = next(p.form for p in closed if str(p.form) == "bde")
    path = " -> ".join(str(f) for f in lattice.critical_path(target))
    print(f"critical path to bde:2 (why occurrence-match pruning fails): {path}")


if __name__ == "__main__":
    main()
