"""Command-line interface.

::

    clan mine DATABASE --min-sup 0.85 [--all-frequent|--maximal] [--min-size 3]
    clan sweep DATABASE --min-sups 1.00,0.95,0.90,0.85 [--cache DIR]
    clan topk DATABASE --min-sup 85% -k 5
    clan quasi DATABASE --min-sup 2 --gamma 0.8 --max-size 5
    clan stats DATABASE [--extended]
    clan validate DATABASE
    clan lattice DATABASE --min-sup 2 [--dot]
    clan convert INPUT OUTPUT --from tve --to json
    clan diff RESULT_A RESULT_B
    clan generate {stock,chem,example} OUTPUT [options]
    clan serve DATABASE --state DIR [--port 8765] [--max-concurrency 2]
    clan submit URL [--request FILE | --task ... --min-sup ...] [--wait]
    clan watch-job URL JOB_ID
    clan experiments

``DATABASE`` is a file in ``t/v/e`` format (``--format matrix`` or
``--format json`` select the others).  ``clan`` is also reachable as
``python -m repro``.

Exit codes: 0 success; 1 comparison mismatch (diff/replay/validate);
2 usage or input error; 3 mining configuration error; 4 result
truncated by a budget (see :data:`EXIT_TRUNCATED`).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__
from .bench.experiments import registry_report
from .core.config import MinerConfig
from .core.lattice import CliqueLattice
from .core.miner import ClanMiner
from .exceptions import MiningError, ReproError
from .graphdb.database import GraphDatabase
from .graphdb.examples import paper_example_database
from .graphdb.stats import characteristics_table, database_characteristics
from .io import gspan_format, json_format, matrix_format, patterns

# ----------------------------------------------------------------------
# Exit codes (documented in docs/API.md).  Scripts can rely on these:
#
# 0  success
# 1  comparison mismatch (`clan diff`, `clan replay`, `clan validate`)
# 2  usage / input error (bad flags, unreadable or malformed files)
# 3  mining configuration error (MiningError: bad task/gamma/k/support...)
# 4  truncated result (a --deadline/--max-patterns budget stopped the
#    search; the partial patterns were still printed)
# ----------------------------------------------------------------------
EXIT_OK = 0
EXIT_MISMATCH = 1
EXIT_USAGE = 2
EXIT_MINING = 3
EXIT_TRUNCATED = 4


def _load(path: str, fmt: str) -> GraphDatabase:
    if fmt == "tve":
        return gspan_format.open_database(path)
    if fmt == "matrix":
        return matrix_format.open_database(path)
    if fmt == "json":
        return json_format.open_database(path)
    if fmt == "sqlite":
        # A view over the on-disk store: transactions stream in
        # shard-sized batches instead of materialising up front.
        from .graphdb import open_source

        return GraphDatabase(source=open_source(path))
    raise ReproError(f"unknown database format {fmt!r}")


def _save(database: GraphDatabase, path: str, fmt: str) -> None:
    if fmt == "tve":
        gspan_format.save_database(database, path)
    elif fmt == "matrix":
        matrix_format.save_database(database, path)
    elif fmt == "json":
        json_format.save_database(database, path)
    elif fmt == "sqlite":
        from .graphdb import import_graphs

        import_graphs(path, iter(database), name=database.name)
    else:
        raise ReproError(f"unknown database format {fmt!r}")


def _parse_min_sup(text: str) -> float:
    """Accept '10' (absolute), '0.85' (fraction), or '85%'.

    Thin alias over the shared :func:`repro.core.support.parse_support`
    so the CLI and the Python API accept identical spellings.
    """
    from .core.support import parse_support

    return parse_support(text)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="clan",
        description="CLAN: mine frequent closed cliques from graph transaction databases",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    mine = sub.add_parser("mine", help="mine frequent closed cliques")
    mine.add_argument("database", help="input database file")
    mine.add_argument("--format", default="tve",
                      choices=("tve", "matrix", "json", "sqlite"))
    mine.add_argument("--db", dest="sqlite_db", action="store_true",
                      help="shorthand for --format sqlite: DATABASE is a "
                           "store written by 'clan import'")
    mine.add_argument("--shards", type=int, default=None, metavar="N",
                      help="mine via N transaction-range shards and an exact "
                           "merge (out-of-core; results identical)")
    mine.add_argument("--shard-size", type=int, default=None, metavar="T",
                      help="like --shards, but sized in transactions per shard")
    mine.add_argument("--min-sup", default="2", help="absolute count, fraction, or percentage")
    mine.add_argument("--min-size", type=int, default=1)
    mine.add_argument("--max-size", type=int, default=None)
    kind = mine.add_mutually_exclusive_group()
    kind.add_argument("--all-frequent", action="store_true", help="report all frequent cliques")
    kind.add_argument("--maximal", action="store_true", help="report maximal frequent cliques")
    mine.add_argument("--output", default=None, help="write patterns to this file")
    mine.add_argument("--stats", action="store_true", help="print search statistics")
    mine.add_argument("--processes", type=int, default=1,
                      help="worker processes for parallel closed mining")
    mine.add_argument("--scheduler", default="stealing",
                      choices=("stealing", "static"),
                      help="parallel root scheduler: adaptive work-stealing "
                           "with cost-guided splitting (default) or static "
                           "round-robin chunks; results are identical")
    mine.add_argument("--kernel", default="bitset", choices=("bitset", "slab", "set"),
                      help="candidate-intersection kernel: integer bitmasks "
                           "(default) or the hashed-set reference")
    mine.add_argument("--require", default=None, metavar="L1,L2",
                      help="only report cliques containing all these labels")
    mine.add_argument("--allow", default=None, metavar="L1,L2",
                      help="restrict mining to these vertex labels")
    mine.add_argument("--forbid", default=None, metavar="L1,L2",
                      help="exclude these vertex labels from mining")
    mine.add_argument("--progress", action="store_true",
                      help="print per-root heartbeat lines to stderr")
    mine.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                      help="stop cooperatively after this much wall-clock time "
                           "and return the completed DFS roots")
    mine.add_argument("--max-patterns", type=int, default=None, metavar="N",
                      help="stop cooperatively once N patterns have been mined")
    mine.add_argument("--trace", default=None, metavar="FILE",
                      help="write the typed session event stream as JSONL")
    mine.add_argument("--checkpoint", default=None, metavar="FILE",
                      help="write a resumable checkpoint of the completed roots")
    mine.add_argument("--resume", default=None, metavar="FILE",
                      help="resume from a checkpoint written by --checkpoint")
    mine.add_argument("--cache", default=None, metavar="DIR",
                      help="reuse (and update) a persistent mining cache in "
                           "this directory; repeated runs and threshold "
                           "sweeps skip already-mined DFS roots")

    sweep = sub.add_parser(
        "sweep",
        help="mine at several support thresholds, sharing work between them",
    )
    sweep.add_argument("database", help="input database file")
    sweep.add_argument("--format", default="tve", choices=("tve", "matrix", "json"))
    sweep.add_argument("--min-sups", default="1.00,0.95,0.90,0.85",
                       metavar="S1,S2,...",
                       help="comma-separated thresholds (counts, fractions, or "
                            "percentages); one real mine at the lowest, the "
                            "rest answered by support filtering")
    sweep.add_argument("--all-frequent", action="store_true",
                       help="sweep the all-frequent task instead of closed")
    sweep.add_argument("--min-size", type=int, default=1)
    sweep.add_argument("--max-size", type=int, default=None)
    sweep.add_argument("--kernel", default="bitset", choices=("bitset", "slab", "set"))
    sweep.add_argument("--processes", type=int, default=1,
                       help="worker processes for the mining calls")
    sweep.add_argument("--scheduler", default="stealing",
                       choices=("stealing", "static"))
    sweep.add_argument("--cache", default=None, metavar="DIR",
                       help="persist the cache here: later sweeps and "
                            "'clan mine --cache' runs start warm")
    sweep.add_argument("--output-dir", default=None, metavar="DIR",
                       help="write one pattern file per threshold into DIR")

    topk = sub.add_parser("topk", help="mine the k largest closed cliques")
    topk.add_argument("database")
    topk.add_argument("--format", default="tve", choices=("tve", "matrix", "json"))
    topk.add_argument("--min-sup", default="2")
    topk.add_argument("-k", type=int, default=5)
    topk.add_argument("--min-size", type=int, default=1)
    topk.add_argument("--kernel", default="bitset", choices=("bitset", "slab", "set"),
                      help="candidate-intersection kernel (as for 'clan mine')")
    topk.add_argument("--processes", type=int, default=1,
                      help="worker processes for the root search")
    topk.add_argument("--scheduler", default="stealing",
                      choices=("stealing", "static"))
    topk.add_argument("--stats", action="store_true",
                      help="print search statistics")

    quasi = sub.add_parser("quasi", help="mine closed quasi-cliques (gamma-relaxed)")
    quasi.add_argument("database")
    quasi.add_argument("--format", default="tve", choices=("tve", "matrix", "json"))
    quasi.add_argument("--min-sup", default="2")
    quasi.add_argument("--gamma", type=float, default=0.8)
    quasi.add_argument("--min-size", type=int, default=2)
    quasi.add_argument("--max-size", type=int, default=5)
    quasi.add_argument("--kernel", default="bitset", choices=("bitset", "slab", "set"),
                       help="candidate-intersection kernel (as for 'clan mine')")
    quasi.add_argument("--processes", type=int, default=1,
                       help="worker processes for the root search")
    quasi.add_argument("--scheduler", default="stealing",
                       choices=("stealing", "static"))
    quasi.add_argument("--cache", default=None, metavar="DIR",
                       help="persist the mining cache here: repeated runs "
                            "replay cached roots instead of re-mining")
    quasi.add_argument("--stats", action="store_true",
                       help="print search statistics")

    validate = sub.add_parser("validate", help="check database integrity")
    validate.add_argument("database")
    validate.add_argument("--format", default="tve",
                          choices=("tve", "matrix", "json", "sqlite"))

    convert = sub.add_parser("convert", help="convert between database formats")
    convert.add_argument("input")
    convert.add_argument("output")
    convert.add_argument("--from", dest="from_format", default="tve",
                         choices=("tve", "matrix", "json", "sqlite"))
    convert.add_argument("--to", dest="to_format", default="json",
                         choices=("tve", "matrix", "json", "sqlite"))

    imp = sub.add_parser(
        "import",
        help="stream a database file into an out-of-core SQLite store",
    )
    imp.add_argument("database", help="input database file")
    imp.add_argument("store", help="SQLite store to create (e.g. db.sqlite)")
    imp.add_argument("--format", default="tve", choices=("tve", "matrix", "json"))
    imp.add_argument("--name", default="",
                     help="database name recorded in the store "
                          "(defaults to the input file name)")

    diff = sub.add_parser("diff", help="compare two pattern result files")
    diff.add_argument("left")
    diff.add_argument("right")

    record = sub.add_parser("record", help="mine and write a reproducible run record")
    record.add_argument("database")
    record.add_argument("record_file")
    record.add_argument("--format", default="tve", choices=("tve", "matrix", "json"))
    record.add_argument("--min-sup", default="2")
    record.add_argument("--min-size", type=int, default=1)

    replay = sub.add_parser("replay", help="re-mine a recorded run and compare")
    replay.add_argument("record_file")
    replay.add_argument("database")
    replay.add_argument("--format", default="tve", choices=("tve", "matrix", "json"))

    stats = sub.add_parser("stats", help="print database characteristics (Table 1 style)")
    stats.add_argument("database")
    stats.add_argument("--format", default="tve",
                       choices=("tve", "matrix", "json", "sqlite"))
    stats.add_argument("--extended", action="store_true")

    lattice = sub.add_parser("lattice", help="print the frequent-clique lattice (Figure 4)")
    lattice.add_argument("database")
    lattice.add_argument("--format", default="tve", choices=("tve", "matrix", "json"))
    lattice.add_argument("--min-sup", default="2")
    lattice.add_argument("--dot", action="store_true", help="emit Graphviz DOT")

    generate = sub.add_parser("generate", help="generate a synthetic database")
    generate.add_argument("kind", choices=("stock", "chem", "example"))
    generate.add_argument("output")
    generate.add_argument("--format", default="tve", choices=("tve", "matrix", "json"))
    generate.add_argument("--theta", type=float, default=0.90, help="stock: correlation threshold")
    generate.add_argument("--scale", default="small", help="stock: tiny/small/medium/paper")
    generate.add_argument("--compounds", type=int, default=422, help="chem: compound count")
    generate.add_argument("--seed", type=int, default=7)

    serve = sub.add_parser(
        "serve",
        help="run the mining service: a multi-tenant HTTP control plane "
             "over one database",
    )
    serve.add_argument("database", help="the database jobs mine by default")
    serve.add_argument("--format", default="tve",
                       choices=("tve", "matrix", "json", "sqlite"))
    serve.add_argument("--storage-root", default=None, metavar="DIR",
                       help="allow jobs to name an alternative SQLite store "
                            "(X-Clan-Database header / --database-uri) "
                            "resolved inside this directory")
    serve.add_argument("--state", required=True, metavar="DIR",
                       help="durable state: job records, result envelopes, "
                            "per-job checkpoints, and the shared mining cache; "
                            "restarting on the same DIR resumes unfinished jobs")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765,
                       help="TCP port (0 picks a free one)")
    serve.add_argument("--max-concurrency", type=int, default=2,
                       help="jobs mining at once; the rest queue fairly "
                            "round-robin across tenants")
    serve.add_argument("--default-deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="per-job SLO: a deadline budget applied to "
                            "requests that carry no budget of their own")

    submit = sub.add_parser(
        "submit", help="submit a mining job to a running 'clan serve'"
    )
    submit.add_argument("url", help="service address, e.g. http://127.0.0.1:8765")
    submit.add_argument("--request", default=None, metavar="FILE",
                        help="a mining-request JSON file (the exact wire "
                             "format); when given, the task flags are ignored")
    submit.add_argument("--tenant", default="default",
                        help="tenant name (the X-Clan-Tenant header)")
    submit.add_argument("--task", default="closed",
                        choices=("closed", "frequent", "maximal", "topk", "quasi"))
    submit.add_argument("--min-sup", default="2")
    submit.add_argument("--min-size", type=int, default=1)
    submit.add_argument("--max-size", type=int, default=None)
    submit.add_argument("-k", type=int, default=None, help="topk: patterns to keep")
    submit.add_argument("--gamma", type=float, default=None,
                        help="quasi: density threshold in [0.5, 1.0]")
    submit.add_argument("--kernel", default=None, choices=("bitset", "slab", "set"))
    submit.add_argument("--database-uri", default=None, metavar="NAME",
                        help="mine this SQLite store (relative to the "
                             "service's --storage-root) instead of the "
                             "service's default database")
    submit.add_argument("--wait", action="store_true",
                        help="block until the job finishes and print its "
                             "result envelope JSON to stdout")
    submit.add_argument("--timeout", type=float, default=300.0,
                        help="--wait: seconds to wait before giving up")

    watch = sub.add_parser(
        "watch-job",
        help="stream a job's live session events (JSONL; ends when the job does)",
    )
    watch.add_argument("url", help="service address, e.g. http://127.0.0.1:8765")
    watch.add_argument("job_id")

    sub.add_parser("experiments", help="list the paper's tables/figures and their benchmarks")
    return parser


def _split_labels(text: Optional[str]) -> Optional[List[str]]:
    if text is None:
        return None
    labels = [token.strip() for token in text.split(",") if token.strip()]
    if not labels:
        raise ReproError(f"no labels in {text!r}")
    return labels


def _open_cli_cache(path: Optional[str]):
    """Load (or create) the persistent cache behind ``--cache DIR``."""
    if not path:
        return None
    from pathlib import Path

    from .io.runlog import load_or_create_cache

    Path(path).mkdir(parents=True, exist_ok=True)
    return load_or_create_cache(path)


def _save_cli_cache(cache, path: Optional[str]) -> None:
    if cache is None or not path:
        return
    from .io.runlog import save_cache

    target = save_cache(cache, path)
    print(
        f"# cache: {cache.hits} root hits, {cache.misses} misses "
        f"({len(cache)} entries saved to {target})",
        file=sys.stderr,
    )


def _session_mine(args: argparse.Namespace, database, min_sup, cache=None):
    """The ``clan mine`` control-plane path (--progress/--deadline/...)."""
    from .core.api import MiningRequest
    from .core.session import (
        JsonlTraceSink,
        MiningBudget,
        MiningSession,
        ProgressSink,
    )
    from .io.runlog import open_checkpoint, save_checkpoint

    sinks = []
    if args.progress:
        sinks.append(ProgressSink())
    if args.trace:
        sinks.append(JsonlTraceSink(args.trace))
    budget = None
    if args.deadline is not None or args.max_patterns is not None:
        budget = MiningBudget(
            deadline_seconds=args.deadline, max_patterns=args.max_patterns
        )
    resume_from = open_checkpoint(args.resume) if args.resume else None
    task = _mine_task(args)
    request = MiningRequest.from_options(
        min_sup,
        task=task,
        min_size=args.min_size,
        max_size=args.max_size,
        kernel=args.kernel,
        processes=max(args.processes, 1),
        scheduler=args.scheduler,
        budget=budget,
    )
    session = MiningSession.from_request(
        database,
        request,
        sinks=sinks,
        resume_from=resume_from,
        cache=cache,
    )
    result = session.run()
    if args.checkpoint:
        save_checkpoint(session.checkpoint(), args.checkpoint)
        print(
            f"# checkpoint ({len(result.completed_roots or ())} completed roots) "
            f"written to {args.checkpoint}",
            file=sys.stderr,
        )
    if result.truncated:
        print(
            f"# TRUNCATED: partial result covers {len(result.completed_roots or ())} "
            f"completed roots; resume with --resume to finish",
            file=sys.stderr,
        )
    return result, task


def _mine_task(args: argparse.Namespace) -> str:
    if args.maximal:
        return "maximal"
    return "frequent" if args.all_frequent else "closed"


def cmd_mine(args: argparse.Namespace) -> int:
    fmt = "sqlite" if getattr(args, "sqlite_db", False) else args.format
    database = _load(args.database, fmt)
    min_sup = _parse_min_sup(args.min_sup)
    require = _split_labels(args.require)
    allow = _split_labels(args.allow)
    forbid = _split_labels(args.forbid)
    task = _mine_task(args)
    if args.maximal and args.max_size is not None:
        raise ReproError(
            "--maximal cannot be combined with --max-size; a size ceiling "
            "makes subcliques of capped cliques look maximal"
        )
    session_wanted = bool(
        args.progress
        or args.deadline is not None
        or args.max_patterns is not None
        or args.trace
        or args.checkpoint
        or args.resume
    )
    if session_wanted and (require or allow or forbid):
        raise ReproError(
            "--progress/--deadline/--max-patterns/--trace/--checkpoint/--resume "
            "cannot be combined with label constraints"
        )
    if args.cache and (require or allow or forbid):
        raise ReproError(
            "--cache cannot be combined with label constraints"
        )
    sharded = bool(args.shards or args.shard_size)
    if sharded and (session_wanted or require or allow or forbid or args.cache):
        raise ReproError(
            "--shards/--shard-size cannot be combined with session options, "
            "label constraints, or --cache"
        )
    cache = _open_cli_cache(args.cache)
    if require or allow or forbid:
        if args.maximal or args.all_frequent:
            raise ReproError(
                "label constraints are only supported for closed mining"
            )
        from .core.constraints import CliqueConstraints, mine_with_constraints

        constraints = CliqueConstraints.of(
            allowed=allow,
            forbidden=forbid or (),
            required=require or (),
            min_size=args.min_size,
            max_size=args.max_size,
        )
        result = mine_with_constraints(
            database,
            min_sup,
            constraints,
            kernel=args.kernel,
            processes=max(args.processes, 1),
            scheduler=args.scheduler,
        )
        sys.stdout.write(patterns.dumps_result(result))
        print(
            f"# {len(result)} closed cliques under constraints, "
            f"min_sup={result.min_sup}",
            file=sys.stderr,
        )
        if args.output:
            patterns.save_result(result, args.output)
        return 0
    if session_wanted:
        result, kind = _session_mine(args, database, min_sup, cache=cache)
    else:
        # One engine path for closed / frequent / maximal: kernels,
        # worker pools, and the cache apply to every task.
        from .core.api import MiningRequest, execute_request

        request = MiningRequest.from_options(
            min_sup,
            task=task,
            min_size=args.min_size,
            max_size=args.max_size,
            kernel=args.kernel,
            processes=max(args.processes, 1),
            scheduler=args.scheduler,
        )
        if sharded:
            from .core.sharding import mine_sharded

            result = mine_sharded(
                database, request, shards=args.shards, shard_size=args.shard_size
            )
        else:
            result = execute_request(database, request, cache=cache)
        kind = task
    _save_cli_cache(cache, args.cache)
    if args.output:
        patterns.save_result(result, args.output)
        print(f"{len(result)} patterns written to {args.output}")
    else:
        sys.stdout.write(patterns.dumps_result(result))
    print(
        f"# {len(result)} {kind} cliques, min_sup={result.min_sup}, "
        f"{result.elapsed_seconds:.3f}s",
        file=sys.stderr,
    )
    if args.stats:
        print("# " + result.statistics.summary(), file=sys.stderr)
    return EXIT_TRUNCATED if result.truncated else EXIT_OK


def cmd_sweep(args: argparse.Namespace) -> int:
    from .core.cache import sweep as run_sweep

    database = _load(args.database, args.format)
    specs = [token.strip() for token in args.min_sups.split(",") if token.strip()]
    if not specs:
        raise ReproError(f"no thresholds in {args.min_sups!r}")
    supports = [_parse_min_sup(token) for token in specs]
    cache = _open_cli_cache(args.cache)
    results = run_sweep(
        database,
        supports,
        task="frequent" if args.all_frequent else "closed",
        cache=cache,
        min_size=args.min_size,
        max_size=args.max_size,
        kernel=args.kernel,
        processes=max(args.processes, 1),
        scheduler=args.scheduler if args.processes > 1 else None,
    )
    print(f"{'min_sup':>10} {'absolute':>8} {'patterns':>8} "
          f"{'cached_roots':>12} {'seconds':>8}")
    for token, spec in zip(specs, supports):
        result = results[spec]
        print(
            f"{token:>10} {result.min_sup:>8} {len(result):>8} "
            f"{result.statistics.roots_from_cache:>12} "
            f"{result.elapsed_seconds:>8.3f}"
        )
    if args.output_dir:
        from pathlib import Path

        out = Path(args.output_dir)
        out.mkdir(parents=True, exist_ok=True)
        for token, spec in zip(specs, supports):
            target = out / f"patterns-{token.replace('%', 'pct')}.json"
            patterns.save_result(results[spec], target)
        print(f"# {len(specs)} pattern files written to {out}", file=sys.stderr)
    _save_cli_cache(cache, args.cache)
    return 0


def cmd_topk(args: argparse.Namespace) -> int:
    from .core.api import MiningRequest, execute_request

    database = _load(args.database, args.format)
    request = MiningRequest.from_options(
        _parse_min_sup(args.min_sup),
        task="topk",
        k=args.k,
        min_size=args.min_size,
        kernel=args.kernel,
        processes=max(args.processes, 1),
        scheduler=args.scheduler,
    )
    result = execute_request(database, request)
    for pattern in result:
        print(pattern.key())
    print(f"# top-{args.k} closed cliques by size", file=sys.stderr)
    if args.stats:
        print("# " + result.statistics.summary(), file=sys.stderr)
    return EXIT_OK


def cmd_quasi(args: argparse.Namespace) -> int:
    from .core.api import MiningRequest, execute_request

    database = _load(args.database, args.format)
    cache = _open_cli_cache(args.cache)
    request = MiningRequest.from_options(
        _parse_min_sup(args.min_sup),
        task="quasi",
        gamma=args.gamma,
        min_size=args.min_size,
        max_size=args.max_size,
        kernel=args.kernel,
        processes=max(args.processes, 1),
        scheduler=args.scheduler,
    )
    result = execute_request(database, request, cache=cache)
    sys.stdout.write(patterns.dumps_result(result))
    print(
        f"# {len(result)} closed {args.gamma}-quasi-cliques "
        f"(sizes {args.min_size}..{args.max_size})",
        file=sys.stderr,
    )
    if args.stats:
        print("# " + result.statistics.summary(), file=sys.stderr)
    _save_cli_cache(cache, args.cache)
    return EXIT_OK


def _service_endpoint(url: str):
    """Parse 'http://host:port' (or bare 'host:port') into (host, port)."""
    from urllib.parse import urlsplit

    split = urlsplit(url if "//" in url else f"//{url}", scheme="http")
    if not split.hostname or not split.port:
        raise ReproError(
            f"service url must include host and port, got {url!r} "
            "(e.g. http://127.0.0.1:8765)"
        )
    return split.hostname, split.port


def _http_json(host, port, method, path, body=None, headers=None, timeout=310.0):
    """One JSON request/response against the service."""
    import http.client
    import json as json_

    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        payload = json_.loads(response.read().decode("utf-8") or "{}")
        return response.status, payload
    finally:
        conn.close()


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .core.session import MiningBudget
    from .service import MiningService

    database = _load(args.database, args.format)
    budget = (
        MiningBudget(deadline_seconds=args.default_deadline)
        if args.default_deadline is not None
        else None
    )
    service = MiningService(
        database,
        args.state,
        host=args.host,
        port=args.port,
        max_concurrency=args.max_concurrency,
        default_budget=budget,
        storage_root=args.storage_root,
    )

    def announce(host: str, port: int) -> None:
        print(
            f"# clan service on http://{host}:{port} "
            f"({len(database)} graphs, state: {args.state})",
            file=sys.stderr,
        )

    try:
        asyncio.run(service.run_forever(announce))
    except KeyboardInterrupt:
        print("# interrupted; shutting down", file=sys.stderr)
    return EXIT_OK


def cmd_submit(args: argparse.Namespace) -> int:
    import json as json_

    from .core.api import MiningRequest

    host, port = _service_endpoint(args.url)
    if args.request:
        from .io.runlog import open_request

        request = open_request(args.request)
    else:
        request = MiningRequest.from_options(
            args.min_sup,
            task=args.task,
            min_size=args.min_size,
            max_size=args.max_size,
            k=args.k,
            gamma=args.gamma,
            kernel=args.kernel,
        )
    headers = {"X-Clan-Tenant": args.tenant}
    if args.database_uri:
        headers["X-Clan-Database"] = args.database_uri
    status, payload = _http_json(
        host,
        port,
        "POST",
        "/v1/jobs",
        body=request.to_json(),
        headers=headers,
    )
    if status != 202:
        raise ReproError(f"submit failed ({status}): {payload.get('error', payload)}")
    job_id = payload["id"]
    if not args.wait:
        print(job_id)
        return EXIT_OK
    print(f"# submitted {job_id}; waiting", file=sys.stderr)
    status, payload = _http_json(
        host,
        port,
        "GET",
        f"/v1/jobs/{job_id}/result?wait=1&timeout={args.timeout}",
        timeout=args.timeout + 10.0,
    )
    if status != 200:
        raise MiningError(
            f"job {job_id} did not finish: {payload.get('error', payload)}"
        )
    print(json_.dumps(payload, indent=1, sort_keys=True))
    truncated = payload.get("result", {}).get("truncated")
    return EXIT_TRUNCATED if truncated else EXIT_OK


def cmd_watch_job(args: argparse.Namespace) -> int:
    import http.client
    import json as json_

    host, port = _service_endpoint(args.url)
    conn = http.client.HTTPConnection(host, port, timeout=3600.0)
    try:
        conn.request("GET", f"/v1/jobs/{args.job_id}/trace")
        response = conn.getresponse()
        if response.status != 200:
            payload = json_.loads(response.read().decode("utf-8") or "{}")
            raise ReproError(
                f"watch failed ({response.status}): "
                f"{payload.get('error', payload)}"
            )
        while True:
            line = response.readline()
            if not line:
                break
            sys.stdout.write(line.decode("utf-8"))
            sys.stdout.flush()
    finally:
        conn.close()
    status, payload = _http_json(host, port, "GET", f"/v1/jobs/{args.job_id}")
    state = payload.get("state") if status == 200 else "unknown"
    print(f"# job {args.job_id}: {state}", file=sys.stderr)
    if state == "done":
        return EXIT_OK
    if state == "failed":
        return EXIT_MINING
    return EXIT_TRUNCATED


def cmd_validate(args: argparse.Namespace) -> int:
    from .graphdb.validation import validate_database

    database = _load(args.database, args.format)
    report = validate_database(database)
    print(report.render())
    return 0 if report.ok else 1


def cmd_convert(args: argparse.Namespace) -> int:
    database = _load(args.input, args.from_format)
    _save(database, args.output, args.to_format)
    print(f"converted {len(database)} graphs: {args.input} ({args.from_format}) "
          f"-> {args.output} ({args.to_format})")
    return 0


def cmd_import(args: argparse.Namespace) -> int:
    from .graphdb import import_graphs

    name = args.name or args.database
    if args.format == "tve":
        graphs = gspan_format.iter_database_file(args.database)
    elif args.format == "json":
        graphs = json_format.iter_database_file(args.database)
    else:
        # The matrix format has no streaming reader; the eager parse is
        # the bound, the store write still batches.
        graphs = iter(_load(args.database, args.format))
    source = import_graphs(args.store, graphs, name=name)
    print(f"imported {len(source)} graphs into {args.store}")
    source.close()
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    from .analysis import diff_results

    left = patterns.open_result(args.left)
    right = patterns.open_result(args.right)
    diff = diff_results(left, right)
    print(diff.render())
    return 0 if diff.identical else 1


def cmd_record(args: argparse.Namespace) -> int:
    from .io.runlog import record_run, save_record

    database = _load(args.database, args.format)
    config = MinerConfig(min_size=args.min_size)
    record = record_run(database, _parse_min_sup(args.min_sup), config)
    save_record(record, args.record_file)
    print(
        f"recorded {len(record.patterns())} patterns "
        f"(min_sup={record.min_sup}, fingerprint "
        f"{record.database_fingerprint[:12]}...) to {args.record_file}"
    )
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    from .io.runlog import open_record, replay

    record = open_record(args.record_file)
    database = _load(args.database, args.format)
    outcome = replay(record, database)
    print(f"database fingerprint matches: {outcome.fingerprint_matches}")
    print(f"patterns match: {outcome.patterns_match} "
          f"({outcome.recorded_patterns} recorded, {outcome.replayed_patterns} replayed)")
    print("reproduced" if outcome.reproduced else "NOT reproduced")
    return 0 if outcome.reproduced else 1


def cmd_stats(args: argparse.Namespace) -> int:
    database = _load(args.database, args.format)
    print(characteristics_table([database_characteristics(database)], extended=args.extended))
    return 0


def cmd_lattice(args: argparse.Namespace) -> int:
    database = _load(args.database, args.format)
    config = MinerConfig(closed_only=False, nonclosed_prefix_pruning=False)
    result = ClanMiner(database, config).mine(_parse_min_sup(args.min_sup))
    lattice = CliqueLattice.from_result(result)
    print(lattice.to_dot() if args.dot else lattice.render())
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "stock":
        from .stockmarket.datasets import stock_market_database

        database = stock_market_database(theta=args.theta, scale=args.scale, seed=args.seed)
    elif args.kind == "chem":
        from .chem.generator import ca_like_database

        database = ca_like_database(n_compounds=args.compounds, seed=args.seed)
    else:
        database = paper_example_database()
    _save(database, args.output, args.format)
    print(
        f"wrote {len(database)} graphs "
        f"(avg |V|={database.average_vertices():.1f}, avg |E|={database.average_edges():.1f}) "
        f"to {args.output}"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "mine": cmd_mine,
        "sweep": cmd_sweep,
        "topk": cmd_topk,
        "quasi": cmd_quasi,
        "stats": cmd_stats,
        "validate": cmd_validate,
        "lattice": cmd_lattice,
        "convert": cmd_convert,
        "import": cmd_import,
        "diff": cmd_diff,
        "record": cmd_record,
        "replay": cmd_replay,
        "generate": cmd_generate,
        "serve": cmd_serve,
        "submit": cmd_submit,
        "watch-job": cmd_watch_job,
        "experiments": lambda _: (print(registry_report()), 0)[1],
    }
    try:
        return handlers[args.command](args)
    except MiningError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_MINING
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE


if __name__ == "__main__":
    sys.exit(main())
