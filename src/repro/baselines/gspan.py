"""A complete frequent-subgraph miner in the gSpan style.

The paper's efficiency study (Figure 7(a)) compares CLAN against
ADI-Mine [17], a complete frequent-subgraph miner, to make the point
that "mine everything, then keep the cliques" is hopeless on dense
data.  ADI-Mine is closed source; per the reproduction's substitution
rule we implement a complete miner from scratch — gSpan-style DFS-code
enumeration with rightmost extension and minimality pruning — which
exercises the same combinatorial explosion on the same inputs.

The miner enumerates every frequent *connected* subgraph with at least
one edge (plus, separately, frequent single vertices), counting support
per transaction, exactly like the originals.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..exceptions import MiningError
from ..graphdb.database import GraphDatabase
from ..graphdb.graph import Label
from .dfscode import DFSCode, EdgeTuple, _candidate_extensions, edge_order_key, is_minimal_code

#: One pattern embedding in a transaction: DFS index -> graph vertex.
Embedding = Dict[int, int]


@dataclass
class SubgraphPattern:
    """A frequent subgraph: its minimum DFS code and support evidence."""

    code: DFSCode
    support: int
    transactions: Tuple[int, ...]

    @property
    def vertex_count(self) -> int:
        return self.code.vertex_count()

    @property
    def edge_count(self) -> int:
        return self.code.edge_count

    def is_clique(self) -> bool:
        """Whether the pattern is a complete graph."""
        return self.code.is_clique_code()

    def label_multiset(self) -> Tuple[Label, ...]:
        """Sorted vertex labels (the CLAN canonical form if a clique)."""
        return tuple(sorted(self.code.vertex_labels().values()))

    def key(self) -> str:
        return f"{self.code!r}:{self.support}"


@dataclass
class SingleVertexPattern:
    """A frequent single-vertex pattern (gSpan reports these separately)."""

    label: Label
    support: int
    transactions: Tuple[int, ...]


@dataclass
class GSpanResult:
    """Everything a complete run found, with basic search counters."""

    patterns: List[SubgraphPattern] = field(default_factory=list)
    single_vertices: List[SingleVertexPattern] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    nodes_visited: int = 0
    minimality_rejections: int = 0
    infrequent_extensions: int = 0

    def __len__(self) -> int:
        return len(self.patterns)

    def total_patterns(self) -> int:
        """All frequent subgraphs, counting single vertices."""
        return len(self.patterns) + len(self.single_vertices)

    def clique_patterns(self) -> List[SubgraphPattern]:
        """The subset of patterns that are cliques (≥ 2 vertices)."""
        return [p for p in self.patterns if p.is_clique()]

    def by_size(self) -> Dict[int, int]:
        """Pattern count per vertex count (single vertices included)."""
        histogram: Dict[int, int] = {}
        if self.single_vertices:
            histogram[1] = len(self.single_vertices)
        for pattern in self.patterns:
            n = pattern.vertex_count
            histogram[n] = histogram.get(n, 0) + 1
        return dict(sorted(histogram.items()))


class GSpanMiner:
    """Complete frequent connected-subgraph miner.

    Parameters
    ----------
    database:
        The graph transaction database.
    max_edges:
        Optional cap on pattern edge count.  The dense-database
        experiments use it to emulate "did not complete": a run that
        hits the cap (or the node budget) is reported as truncated.
    max_nodes:
        Optional budget on search-tree nodes, the offline stand-in for
        the paper's "ADI-Mine could not complete after running for
        several days".
    """

    def __init__(
        self,
        database: GraphDatabase,
        max_edges: Optional[int] = None,
        max_nodes: Optional[int] = None,
    ) -> None:
        self.database = database
        self.max_edges = max_edges
        self.max_nodes = max_nodes

    # ------------------------------------------------------------------
    def mine(self, min_sup: float) -> GSpanResult:
        """Mine all frequent connected subgraphs at the given threshold."""
        started = time.perf_counter()
        abs_sup = self.database.absolute_support(min_sup)
        result = GSpanResult()

        for label in self.database.frequent_labels(abs_sup):
            tids = tuple(
                tid
                for tid, graph in enumerate(self.database)
                if graph.vertices_with_label(label)
            )
            result.single_vertices.append(SingleVertexPattern(label, len(tids), tids))

        # Seed with every frequent single-edge code.
        seeds = self._single_edge_seeds(abs_sup)
        for code, embeddings in seeds:
            self._recurse(code, embeddings, abs_sup, result)

        result.elapsed_seconds = time.perf_counter() - started
        return result

    # ------------------------------------------------------------------
    def _single_edge_seeds(
        self, abs_sup: int
    ) -> List[Tuple[DFSCode, Dict[int, List[Embedding]]]]:
        """All frequent one-edge DFS codes with their embeddings."""
        grouped: Dict[EdgeTuple, Dict[int, List[Embedding]]] = {}
        for tid, graph in enumerate(self.database):
            for u, v in graph.edges():
                lu, lv = graph.label(u), graph.label(v)
                for a, b, la, lb in ((u, v, lu, lv), (v, u, lv, lu)):
                    edge = (0, 1, la, lb)
                    if la > lb:
                        # (la, lb) with la > lb is never a minimal first
                        # edge; the mirrored orientation covers it.
                        continue
                    grouped.setdefault(edge, {}).setdefault(tid, []).append({0: a, 1: b})
        seeds = []
        for edge in sorted(grouped, key=edge_order_key):
            embeddings = grouped[edge]
            if len(embeddings) >= abs_sup:
                seeds.append((DFSCode([edge]), embeddings))
        return seeds

    # ------------------------------------------------------------------
    def _recurse(
        self,
        code: DFSCode,
        embeddings: Dict[int, List[Embedding]],
        abs_sup: int,
        result: GSpanResult,
    ) -> None:
        result.nodes_visited += 1
        if self.max_nodes is not None and result.nodes_visited > self.max_nodes:
            raise MiningError(
                f"gSpan baseline exceeded its search budget of {self.max_nodes} "
                f"nodes (the dense-database 'could not complete' regime)"
            )
        tids = tuple(sorted(embeddings))
        result.patterns.append(SubgraphPattern(code, len(tids), tids))

        if self.max_edges is not None and code.edge_count >= self.max_edges:
            return

        # Group rightmost extensions over all embeddings.
        grouped: Dict[EdgeTuple, Dict[int, List[Embedding]]] = {}
        for tid, per_tid in embeddings.items():
            graph = self.database[tid]
            for embedding in per_tid:
                for edge, new_vertex in _candidate_extensions(graph, code, embedding):
                    child = dict(embedding)
                    if new_vertex is not None:
                        child[edge[1]] = new_vertex
                    grouped.setdefault(edge, {}).setdefault(tid, []).append(child)

        for edge in sorted(grouped, key=edge_order_key):
            child_embeddings = grouped[edge]
            if len(child_embeddings) < abs_sup:
                result.infrequent_extensions += 1
                continue
            child_code = code.extend(edge)
            if not is_minimal_code(child_code):
                result.minimality_rejections += 1
                continue
            self._recurse(child_code, child_embeddings, abs_sup, result)


def mine_frequent_subgraphs(
    database: GraphDatabase,
    min_sup: float,
    max_edges: Optional[int] = None,
    max_nodes: Optional[int] = None,
) -> GSpanResult:
    """Convenience wrapper over :class:`GSpanMiner`."""
    return GSpanMiner(database, max_edges=max_edges, max_nodes=max_nodes).mine(min_sup)
