"""Minimum DFS codes for vertex-labeled graphs (gSpan canonical form).

This is the canonical form the paper contrasts with CLAN's string form
in Section 4.1: general graph miners such as gSpan [19] identify a
pattern with the lexicographically minimum sequence of DFS edge tuples.
We implement it for undirected, vertex-labeled, edge-unlabeled graphs
(the paper's setting) to power the complete frequent-subgraph baseline
of Figure 7(a).

An edge tuple is ``(i, j, li, lj)`` where ``i``/``j`` are DFS discovery
indices and ``li``/``lj`` the endpoint labels; ``i < j`` marks a
forward (tree) edge, ``i > j`` a backward edge.  The total order on
tuples and the rightmost-extension rule follow the gSpan paper.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..exceptions import PatternError
from ..graphdb.graph import Graph, Label

#: One DFS-code edge: (from index, to index, from label, to label).
EdgeTuple = Tuple[int, int, Label, Label]


def is_forward(edge: EdgeTuple) -> bool:
    """Forward (tree) edges discover a new vertex: ``i < j``."""
    return edge[0] < edge[1]


def edge_order_key(edge: EdgeTuple) -> Tuple:
    """Sort key realising gSpan's total order on DFS-code edge tuples.

    For two edges in valid codes the structural part orders first:

    * backward vs backward: by ``i`` then ``j``;
    * forward vs forward: by ``j`` then *descending* ``i``;
    * backward (i1, j1) precedes forward (i2, j2) iff ``i1 < j2``;
    * forward (i1, j1) precedes backward (i2, j2) iff ``j1 <= i2``.

    The key below encodes those four rules into one comparable tuple:
    each edge maps to ``(t, s, labels)`` where forward edges use
    ``t = j`` and backward edges use ``t = i + 0.5`` — a backward edge
    from the vertex discovered at time ``i`` sorts after the forward
    edge that discovered time ``i`` and before the one discovering
    ``i + 1``, which is exactly the rule set above.
    """
    i, j, li, lj = edge
    if i < j:  # forward
        return (2 * j, -i, li, lj)
    return (2 * i + 1, j, li, lj)


class DFSCode:
    """An immutable sequence of DFS-code edge tuples."""

    __slots__ = ("edges",)

    def __init__(self, edges: Sequence[EdgeTuple] = ()) -> None:
        self.edges: Tuple[EdgeTuple, ...] = tuple(edges)

    # ------------------------------------------------------------------
    def extend(self, edge: EdgeTuple) -> "DFSCode":
        """Return the code with one more edge appended."""
        return DFSCode(self.edges + (edge,))

    @property
    def edge_count(self) -> int:
        return len(self.edges)

    def vertex_count(self) -> int:
        """Number of distinct DFS indices (vertices) in the code."""
        if not self.edges:
            return 0
        return max(max(i, j) for i, j, _, _ in self.edges) + 1

    def rightmost_vertex(self) -> int:
        """The most recently discovered vertex index."""
        if not self.edges:
            raise PatternError("empty DFS code has no rightmost vertex")
        return max(max(i, j) for i, j, _, _ in self.edges)

    def rightmost_path(self) -> List[int]:
        """DFS indices on the rightmost path, root (0) first.

        Reconstructed from the forward edges: walk from the rightmost
        vertex up through the tree parents.
        """
        parents: Dict[int, int] = {}
        for i, j, _, _ in self.edges:
            if i < j:
                parents[j] = i
        path = [self.rightmost_vertex()]
        while path[-1] in parents:
            path.append(parents[path[-1]])
        path.reverse()
        return path

    def vertex_labels(self) -> Dict[int, Label]:
        """Map DFS index → vertex label."""
        labels: Dict[int, Label] = {}
        for i, j, li, lj in self.edges:
            labels.setdefault(i, li)
            labels.setdefault(j, lj)
        return labels

    def to_graph(self) -> Graph:
        """Materialise the pattern graph (ids are DFS indices)."""
        graph = Graph()
        for index, label in sorted(self.vertex_labels().items()):
            graph.add_vertex(index, label)
        for i, j, _, _ in self.edges:
            graph.add_edge(i, j)
        return graph

    def is_clique_code(self) -> bool:
        """Whether the pattern is a complete graph."""
        n = self.vertex_count()
        return len(self.edges) == n * (n - 1) // 2

    # ------------------------------------------------------------------
    def sort_key(self) -> Tuple:
        """Lexicographic key over per-edge order keys."""
        return tuple(edge_order_key(e) for e in self.edges)

    def __lt__(self, other: "DFSCode") -> bool:
        return self.sort_key() < other.sort_key()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DFSCode):
            return NotImplemented
        return self.edges == other.edges

    def __hash__(self) -> int:
        return hash(self.edges)

    def __len__(self) -> int:
        return len(self.edges)

    def __iter__(self) -> Iterator[EdgeTuple]:
        return iter(self.edges)

    def __repr__(self) -> str:
        body = ",".join(f"({i},{j},{li},{lj})" for i, j, li, lj in self.edges)
        return f"DFSCode[{body}]"


def minimum_dfs_code(graph: Graph) -> DFSCode:
    """Compute the minimum DFS code of a connected graph.

    Exhaustive over automorphism branches but pruned: partial codes are
    grown one minimal edge at a time, keeping only the embeddings that
    realise the current minimal prefix.  Intended for the small pattern
    graphs a frequent-subgraph miner manipulates.
    """
    if graph.vertex_count == 0:
        return DFSCode()
    if len(graph.connected_components()) > 1:
        raise PatternError("minimum_dfs_code requires a connected graph")
    if graph.edge_count == 0:
        # Single isolated vertex: represent as empty code (callers treat
        # single vertices separately).
        return DFSCode()

    code = DFSCode()
    # Each embedding maps DFS index -> graph vertex; start from every
    # vertex with the minimum label.
    min_label = min(graph.label(v) for v in graph.vertices())
    embeddings: List[Dict[int, int]] = [
        {0: v} for v in graph.vertices() if graph.label(v) == min_label
    ]
    edge_total = graph.edge_count
    while code.edge_count < edge_total:
        code, embeddings = _grow_minimal(graph, code, embeddings)
    return code


def _candidate_extensions(
    graph: Graph, code: DFSCode, embedding: Dict[int, int]
) -> Iterator[Tuple[EdgeTuple, Optional[int]]]:
    """Rightmost extensions of one embedding.

    Yields ``(edge tuple, new graph vertex or None)``; backward edges
    carry ``None`` because they map no new vertex.
    """
    mapped = set(embedding.values())
    reverse = {v: k for k, v in embedding.items()}
    if not code.edges:
        vertex = embedding[0]
        for neighbor in graph.neighbors(vertex):
            yield (0, 1, graph.label(vertex), graph.label(neighbor)), neighbor
        return
    rightmost = code.rightmost_vertex()
    path = code.rightmost_path()
    labels = code.vertex_labels()
    existing = {frozenset((i, j)) for i, j, _, _ in code.edges}
    rm_vertex = embedding[rightmost]
    # Backward edges: rightmost vertex -> earlier rightmost-path vertex.
    for index in path[:-1]:
        if frozenset((rightmost, index)) in existing:
            continue
        if embedding[index] in graph.neighbors(rm_vertex):
            yield (rightmost, index, labels[rightmost], labels[index]), None
    # Forward edges: from any rightmost-path vertex to an unmapped vertex.
    for index in reversed(path):
        source = embedding[index]
        for neighbor in graph.neighbors(source):
            if neighbor in mapped:
                continue
            yield (index, rightmost + 1, labels[index], graph.label(neighbor)), neighbor


def _grow_minimal(
    graph: Graph, code: DFSCode, embeddings: List[Dict[int, int]]
) -> Tuple[DFSCode, List[Dict[int, int]]]:
    """Extend the partial minimal code by its single minimal next edge."""
    best_edge: Optional[EdgeTuple] = None
    best_key: Optional[Tuple] = None
    grouped: Dict[EdgeTuple, List[Dict[int, int]]] = {}
    for embedding in embeddings:
        for edge, new_vertex in _candidate_extensions(graph, code, embedding):
            key = edge_order_key(edge)
            if best_key is None or key < best_key:
                best_key = key
                best_edge = edge
                grouped = {edge: []}
            if edge == best_edge:
                child = dict(embedding)
                if new_vertex is not None:
                    child[edge[1]] = new_vertex
                grouped[edge].append(child)
    if best_edge is None:
        raise PatternError("graph is disconnected; DFS ran out of extensions")
    return code.extend(best_edge), grouped[best_edge]


def is_minimal_code(code: DFSCode) -> bool:
    """Whether ``code`` is the minimum DFS code of its own pattern graph.

    The standard gSpan pruning test: grow the true minimal code of the
    pattern edge by edge; the first position where it beats ``code``
    proves non-minimality.
    """
    if code.edge_count <= 1:
        return True
    graph = code.to_graph()
    min_label = min(graph.label(v) for v in graph.vertices())
    candidate = DFSCode()
    embeddings: List[Dict[int, int]] = [
        {0: v} for v in graph.vertices() if graph.label(v) == min_label
    ]
    for position in range(code.edge_count):
        candidate, embeddings = _grow_minimal(graph, candidate, embeddings)
        mine = edge_order_key(candidate.edges[position])
        theirs = edge_order_key(code.edges[position])
        if mine < theirs:
            return False
        if mine > theirs:  # pragma: no cover - cannot happen for valid codes
            raise PatternError("candidate minimal code exceeded the tested code")
    return True
