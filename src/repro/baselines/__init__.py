"""Baselines and reference miners.

* :mod:`repro.baselines.bruteforce` — exhaustive ground truth for tests.
* :mod:`repro.baselines.gspan` — a from-scratch complete frequent
  subgraph miner (the paper's ADI-Mine stand-in for Figure 7(a)).
* :mod:`repro.baselines.subgraph_filter` — mine-everything-then-filter
  pipeline the paper argues against.
* :mod:`repro.baselines.naive` — post-filtered / duplicate-generating
  closed-clique miners for the ablation study.
"""

from .apriori import (
    AprioriCliqueMiner,
    mine_closed_cliques_bfs,
    mine_frequent_cliques_bfs,
)
from .bruteforce import (
    bruteforce_closed_cliques,
    bruteforce_frequent_cliques,
    pattern_supports,
)
from .dfscode import DFSCode, EdgeTuple, edge_order_key, is_minimal_code, minimum_dfs_code
from .gspan import (
    GSpanMiner,
    GSpanResult,
    SingleVertexPattern,
    SubgraphPattern,
    mine_frequent_subgraphs,
)
from .naive import enumeration_orders, mine_closed_by_postfilter, mine_closed_with_duplicates
from .subgraph_filter import cliques_from_subgraphs, mine_closed_cliques_via_subgraphs

__all__ = [
    "AprioriCliqueMiner",
    "DFSCode",
    "mine_closed_cliques_bfs",
    "mine_frequent_cliques_bfs",
    "EdgeTuple",
    "GSpanMiner",
    "GSpanResult",
    "SingleVertexPattern",
    "SubgraphPattern",
    "bruteforce_closed_cliques",
    "bruteforce_frequent_cliques",
    "cliques_from_subgraphs",
    "edge_order_key",
    "enumeration_orders",
    "is_minimal_code",
    "mine_closed_by_postfilter",
    "mine_closed_cliques_via_subgraphs",
    "mine_closed_with_duplicates",
    "mine_frequent_subgraphs",
    "minimum_dfs_code",
    "pattern_supports",
]
