"""Level-wise (breadth-first) closed clique mining.

Section 4.2 notes two search strategies in the literature: breadth-
first (FSG-style [13]) and depth-first; CLAN chooses depth-first.  This
module implements the breadth-first alternative at the clique-pattern
level so the DFS-vs-BFS choice can be measured:

* level 1 = frequent labels;
* level k+1 candidates = Apriori join of two level-k canonical forms
  sharing their first k−1 labels, pruned when any direct subclique is
  infrequent (downward closure of cliques);
* support counting reuses the embedding stores, extended per candidate;
* closedness falls out of having whole levels in memory: a k-pattern is
  non-closed iff some frequent (k+1)-pattern contains it with equal
  support.

Results are identical to CLAN's (tested); the cost profile differs —
BFS holds every pattern of a level (plus embeddings) at once, which is
exactly the memory-pressure argument for CLAN's DFS.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from ..graphdb.core_index import PseudoDatabase
from ..graphdb.database import GraphDatabase
from ..core.canonical import CanonicalForm, Label
from ..core.embeddings import EmbeddingStore
from ..core.pattern import CliquePattern
from ..core.results import MiningResult
from ..core.statistics import MinerStatistics


class AprioriCliqueMiner:
    """Breadth-first frequent closed clique miner."""

    def __init__(self, database: GraphDatabase) -> None:
        self.database = database

    def mine(self, min_sup: float, closed_only: bool = True) -> MiningResult:
        """Mine level by level; return closed (or all frequent) cliques."""
        started = time.perf_counter()
        abs_sup = self.database.absolute_support(min_sup)
        stats = MinerStatistics()
        pseudo = PseudoDatabase(self.database)

        # Level 1.
        label_supports = self.database.label_supports()
        stats.database_scans += 1
        level: Dict[Tuple[Label, ...], EmbeddingStore] = {}
        for label in sorted(label_supports):
            if label_supports[label] < abs_sup:
                stats.infrequent_extensions += 1
                continue
            store = EmbeddingStore.for_label(self.database, pseudo, label)
            level[(label,)] = store
            stats.record_prefix(1)
            stats.record_frequent(1)
            stats.record_embeddings(store.embedding_count)

        frequent: Dict[Tuple[Label, ...], EmbeddingStore] = dict(level)
        peak_level_patterns = len(level)

        while level:
            next_level: Dict[Tuple[Label, ...], EmbeddingStore] = {}
            forms = sorted(level)
            for i, p in enumerate(forms):
                prefix = p[:-1]
                for q in forms[i:]:
                    if q[:-1] != prefix:
                        # Sorted order: once prefixes diverge, no later
                        # q shares p's prefix.
                        break
                    candidate = p + (q[-1],)
                    if not self._all_subcliques_frequent(candidate, frequent):
                        stats.redundancy_skips += 1
                        continue
                    child = level[p].extend(q[-1], p[-1])
                    stats.record_prefix(len(candidate))
                    stats.record_embeddings(child.embedding_count)
                    if child.support < abs_sup:
                        stats.infrequent_extensions += 1
                        continue
                    next_level[candidate] = child
                    stats.record_frequent(len(candidate))
            frequent.update(next_level)
            peak_level_patterns = max(peak_level_patterns, len(next_level))
            level = next_level

        result = self._collect(frequent, abs_sup, closed_only, stats)
        result.elapsed_seconds = time.perf_counter() - started
        return result

    # ------------------------------------------------------------------
    @staticmethod
    def _all_subcliques_frequent(
        candidate: Tuple[Label, ...],
        frequent: Dict[Tuple[Label, ...], EmbeddingStore],
    ) -> bool:
        """Apriori pruning: every direct subclique must be frequent."""
        seen = set()
        for i in range(len(candidate)):
            reduced = candidate[:i] + candidate[i + 1 :]
            if reduced in seen:
                continue
            seen.add(reduced)
            if reduced and reduced not in frequent:
                return False
        return True

    def _collect(
        self,
        frequent: Dict[Tuple[Label, ...], EmbeddingStore],
        abs_sup: int,
        closed_only: bool,
        stats: MinerStatistics,
    ) -> MiningResult:
        """Assemble the result; closedness via next-level containment."""
        supports = {form: store.support for form, store in frequent.items()}
        non_closed = set()
        if closed_only:
            for form, support in supports.items():
                for sub in CanonicalForm(form).direct_subcliques():
                    if supports.get(sub.labels) == support:
                        non_closed.add(sub.labels)
        result = MiningResult(
            min_sup=abs_sup, closed_only=closed_only, statistics=stats
        )
        for form in sorted(frequent):
            if closed_only and form in non_closed:
                stats.closure_rejections += 1
                continue
            store = frequent[form]
            result.add(
                CliquePattern(
                    form=CanonicalForm(form),
                    support=store.support,
                    transactions=store.transactions(),
                    witnesses=store.witnesses(),
                )
            )
            if closed_only:
                stats.closed_cliques += 1
        return result


def mine_closed_cliques_bfs(database: GraphDatabase, min_sup: float) -> MiningResult:
    """Convenience wrapper over :class:`AprioriCliqueMiner`."""
    return AprioriCliqueMiner(database).mine(min_sup, closed_only=True)


def mine_frequent_cliques_bfs(database: GraphDatabase, min_sup: float) -> MiningResult:
    """All frequent cliques, breadth first."""
    return AprioriCliqueMiner(database).mine(min_sup, closed_only=False)
