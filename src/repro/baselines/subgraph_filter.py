"""The "mine everything, then keep the cliques" pipeline.

Section 1 of the paper describes the obvious alternative to CLAN: run a
complete frequent-subgraph miner and post-filter the clique-shaped
patterns.  This module implements that pipeline on top of the gSpan
baseline, so the Figure 7(a) comparison measures exactly the approach
the paper argues against.
"""

from __future__ import annotations

import time
from typing import Optional, Set, Tuple

from ..core.canonical import CanonicalForm, Label
from ..core.pattern import CliquePattern
from ..core.results import MiningResult
from ..graphdb.database import GraphDatabase
from .gspan import GSpanMiner, GSpanResult


def cliques_from_subgraphs(
    gspan_result: GSpanResult, min_sup: int
) -> MiningResult:
    """Extract clique patterns from a complete subgraph-mining result.

    Each clique-shaped subgraph pattern maps to its label multiset
    (cliques with equal label bags are isomorphic — the paper's
    Section 4.1 observation — so minimum DFS codes and label multisets
    are in one-to-one correspondence here).  Frequent single vertices
    are the 1-cliques.
    """
    result = MiningResult(min_sup=min_sup, closed_only=False)
    seen: Set[Tuple[Label, ...]] = set()
    for single in gspan_result.single_vertices:
        labels = (single.label,)
        seen.add(labels)
        result.add(
            CliquePattern(
                form=CanonicalForm(labels),
                support=single.support,
                transactions=single.transactions,
            )
        )
    for pattern in gspan_result.clique_patterns():
        labels = pattern.label_multiset()
        if labels in seen:  # pragma: no cover - codes are canonical
            continue
        seen.add(labels)
        result.add(
            CliquePattern(
                form=CanonicalForm(labels),
                support=pattern.support,
                transactions=pattern.transactions,
            )
        )
    return result


def mine_closed_cliques_via_subgraphs(
    database: GraphDatabase,
    min_sup: float,
    max_nodes: Optional[int] = None,
    max_edges: Optional[int] = None,
) -> MiningResult:
    """Full pipeline: complete subgraph mining → clique filter → closed filter.

    ``max_nodes`` bounds the subgraph search (see
    :class:`~repro.baselines.gspan.GSpanMiner`); exceeding it raises,
    which benchmarks report as "did not complete" — the paper's ADI-Mine
    outcome on every dense stock-market database.  ``max_edges`` caps
    pattern size; any cap at least as large as the largest frequent
    clique's edge count leaves the clique result exact while keeping
    the complete miner's workload finite.
    """
    started = time.perf_counter()
    abs_sup = database.absolute_support(min_sup)
    gspan_result = GSpanMiner(database, max_nodes=max_nodes, max_edges=max_edges).mine(abs_sup)
    frequent_cliques = cliques_from_subgraphs(gspan_result, abs_sup)
    closed = frequent_cliques.closed_subset()
    closed.elapsed_seconds = time.perf_counter() - started
    return closed
