"""Naive clique miners used as ablation reference points.

Two strategies the paper dismisses, implemented so benchmarks can put
numbers on the dismissal:

* **post-filtering** — enumerate all frequent cliques with CLAN's
  enumerator (redundancy pruning on, all closure machinery off), then
  filter the closed ones in a second pass using the hash structure of
  Section 4.3 (:class:`~repro.core.closure.HistoryClosureIndex`);
* **duplicate-generation** — disable structural redundancy pruning and
  fall back to "maintain the set of already mined cliques", measuring
  the redundant generation the canonical prefix discipline avoids.
"""

from __future__ import annotations

import time
from typing import List

from ..core.closure import HistoryClosureIndex
from ..core.config import MinerConfig
from ..core.miner import ClanMiner
from ..core.results import MiningResult
from ..graphdb.database import GraphDatabase


def mine_closed_by_postfilter(database: GraphDatabase, min_sup: float) -> MiningResult:
    """Two-phase closed mining: all frequent cliques, then a closed filter.

    The closed filter uses the support-bucketed canonical-form hash
    index (Lemma 4.1 route): a pattern is closed iff no already-indexed
    proper superclique shares its support.
    """
    started = time.perf_counter()
    config = MinerConfig(closed_only=False, nonclosed_prefix_pruning=False)
    frequent = ClanMiner(database, config).mine(min_sup)

    index = HistoryClosureIndex(frequent)
    closed = MiningResult(
        min_sup=frequent.min_sup, closed_only=True, statistics=frequent.statistics
    )
    for pattern in frequent.sorted_by_form():
        if not index.has_superclique_with_support(pattern.form, pattern.support):
            closed.add(pattern)
    closed.elapsed_seconds = time.perf_counter() - started
    return closed


def mine_closed_with_duplicates(database: GraphDatabase, min_sup: float) -> MiningResult:
    """Closed mining without structural redundancy pruning.

    Non-canonical growth orders are explored and collapsed via the
    already-mined set; ``result.statistics.duplicates_collapsed``
    reports the wasted generations.
    """
    config = MinerConfig(
        closed_only=True,
        structural_redundancy_pruning=False,
        nonclosed_prefix_pruning=False,
    )
    return ClanMiner(database, config).mine(min_sup)


def enumeration_orders(database: GraphDatabase, min_sup: float) -> List[str]:
    """The canonical DFS enumeration order of all frequent cliques.

    Returns the ``form:support`` keys in the order CLAN visits them —
    the sequence spelled out for the running example in Section 4.2.
    """
    config = MinerConfig(closed_only=False, nonclosed_prefix_pruning=False)
    result = ClanMiner(database, config).mine(min_sup)
    return result.keys()
