"""Brute-force reference miners.

These exist to define ground truth for tests (including the hypothesis
property suites): enumerate every clique of every transaction
explicitly, aggregate label multisets, and filter.  Exponential — for
small inputs only.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Set, Tuple

from ..core.canonical import CanonicalForm, Label
from ..core.pattern import CliquePattern
from ..core.results import MiningResult
from ..graphdb.cliques import all_cliques
from ..graphdb.database import GraphDatabase


def pattern_supports(
    database: GraphDatabase,
    min_size: int = 1,
    max_size: Optional[int] = None,
) -> Dict[Tuple[Label, ...], Set[int]]:
    """Map every clique label-multiset to its supporting transaction set."""
    supports: Dict[Tuple[Label, ...], Set[int]] = {}
    for tid, graph in enumerate(database):
        for clique in all_cliques(graph, min_size=min_size, max_size=max_size):
            labels = graph.label_multiset(clique)
            supports.setdefault(labels, set()).add(tid)
    return supports


def bruteforce_frequent_cliques(
    database: GraphDatabase,
    min_sup: float,
    min_size: int = 1,
    max_size: Optional[int] = None,
) -> MiningResult:
    """All frequent clique patterns by exhaustive enumeration."""
    started = time.perf_counter()
    abs_sup = database.absolute_support(min_sup)
    supports = pattern_supports(database, min_size=min_size, max_size=max_size)
    result = MiningResult(min_sup=abs_sup, closed_only=False)
    for labels in sorted(supports):
        tids = supports[labels]
        if len(tids) >= abs_sup:
            result.add(
                CliquePattern(
                    form=CanonicalForm(labels),
                    support=len(tids),
                    transactions=tuple(sorted(tids)),
                )
            )
    result.elapsed_seconds = time.perf_counter() - started
    return result


def bruteforce_quasi_cliques(
    database: GraphDatabase,
    min_sup: float,
    gamma: float,
    min_size: int = 2,
    max_size: int = 6,
    closed_only: bool = True,
) -> MiningResult:
    """All frequent γ-quasi-clique patterns by exhaustive enumeration.

    Ground truth for ``task="quasi"``: every transaction's γ-quasi-
    cliques inside the size window are enumerated explicitly
    (:func:`repro.core.quasiclique.quasi_cliques_in_graph`), label
    multisets aggregated into supporting-transaction sets, and the
    frequent ones reported.  With ``closed_only`` the *relaxed* closure
    filter applies — a pattern is dropped when a proper superpattern in
    the same windowed frequent set has equal support.  Unlike exact
    cliques, quasi support is not anti-monotone under label extension,
    so closure here is a global post-filter over the window, exactly as
    the engine strategy applies it.  Witnesses are the
    lexicographically smallest qualifying vertex set per transaction.
    """
    from ..core.quasiclique import quasi_cliques_in_graph

    started = time.perf_counter()
    abs_sup = database.absolute_support(min_sup)
    supports: Dict[Tuple[Label, ...], Set[int]] = {}
    witnesses: Dict[Tuple[Label, ...], Dict[int, Tuple[int, ...]]] = {}
    for tid, graph in enumerate(database):
        for members in quasi_cliques_in_graph(graph, gamma, min_size, max_size):
            labels = graph.label_multiset(members)
            supports.setdefault(labels, set()).add(tid)
            witness = tuple(sorted(members))
            per_tid = witnesses.setdefault(labels, {})
            if tid not in per_tid or witness < per_tid[tid]:
                per_tid[tid] = witness
    frequent = {
        labels: tids for labels, tids in supports.items() if len(tids) >= abs_sup
    }
    result = MiningResult(min_sup=abs_sup, closed_only=closed_only)
    for labels in sorted(frequent):
        tids = frequent[labels]
        if closed_only:
            form = CanonicalForm(labels)
            dominated = any(
                len(other_tids) == len(tids)
                and form.is_proper_subclique_of(CanonicalForm(other))
                for other, other_tids in frequent.items()
            )
            if dominated:
                continue
        result.add(
            CliquePattern(
                form=CanonicalForm(labels),
                support=len(tids),
                transactions=tuple(sorted(tids)),
                witnesses=dict(sorted(witnesses[labels].items())),
            )
        )
    result.elapsed_seconds = time.perf_counter() - started
    return result


def bruteforce_closed_cliques(
    database: GraphDatabase,
    min_sup: float,
    min_size: int = 1,
    max_size: Optional[int] = None,
) -> MiningResult:
    """All frequent *closed* clique patterns by exhaustive enumeration.

    Closedness is evaluated against the unfiltered frequent set: when a
    size window is given, it is applied after the closure filter (a
    size-3 clique dominated by a size-4 clique of equal support is
    non-closed even if only size-3 patterns are requested) — matching
    how the paper reports "closed cliques with a size no smaller than
    three".
    """
    started = time.perf_counter()
    frequent = bruteforce_frequent_cliques(database, min_sup)
    closed = frequent.closed_subset()
    result = MiningResult(min_sup=frequent.min_sup, closed_only=True)
    for pattern in closed:
        if pattern.size < min_size:
            continue
        if max_size is not None and pattern.size > max_size:
            continue
        result.add(pattern)
    result.elapsed_seconds = time.perf_counter() - started
    return result
