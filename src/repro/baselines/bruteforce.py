"""Brute-force reference miners.

These exist to define ground truth for tests (including the hypothesis
property suites): enumerate every clique of every transaction
explicitly, aggregate label multisets, and filter.  Exponential — for
small inputs only.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Set, Tuple

from ..core.canonical import CanonicalForm, Label
from ..core.pattern import CliquePattern
from ..core.results import MiningResult
from ..graphdb.cliques import all_cliques
from ..graphdb.database import GraphDatabase


def pattern_supports(
    database: GraphDatabase,
    min_size: int = 1,
    max_size: Optional[int] = None,
) -> Dict[Tuple[Label, ...], Set[int]]:
    """Map every clique label-multiset to its supporting transaction set."""
    supports: Dict[Tuple[Label, ...], Set[int]] = {}
    for tid, graph in enumerate(database):
        for clique in all_cliques(graph, min_size=min_size, max_size=max_size):
            labels = graph.label_multiset(clique)
            supports.setdefault(labels, set()).add(tid)
    return supports


def bruteforce_frequent_cliques(
    database: GraphDatabase,
    min_sup: float,
    min_size: int = 1,
    max_size: Optional[int] = None,
) -> MiningResult:
    """All frequent clique patterns by exhaustive enumeration."""
    started = time.perf_counter()
    abs_sup = database.absolute_support(min_sup)
    supports = pattern_supports(database, min_size=min_size, max_size=max_size)
    result = MiningResult(min_sup=abs_sup, closed_only=False)
    for labels in sorted(supports):
        tids = supports[labels]
        if len(tids) >= abs_sup:
            result.add(
                CliquePattern(
                    form=CanonicalForm(labels),
                    support=len(tids),
                    transactions=tuple(sorted(tids)),
                )
            )
    result.elapsed_seconds = time.perf_counter() - started
    return result


def bruteforce_closed_cliques(
    database: GraphDatabase,
    min_sup: float,
    min_size: int = 1,
    max_size: Optional[int] = None,
) -> MiningResult:
    """All frequent *closed* clique patterns by exhaustive enumeration.

    Closedness is evaluated against the unfiltered frequent set: when a
    size window is given, it is applied after the closure filter (a
    size-3 clique dominated by a size-4 clique of equal support is
    non-closed even if only size-3 patterns are requested) — matching
    how the paper reports "closed cliques with a size no smaller than
    three".
    """
    started = time.perf_counter()
    frequent = bruteforce_frequent_cliques(database, min_sup)
    closed = frequent.closed_subset()
    result = MiningResult(min_sup=frequent.min_sup, closed_only=True)
    for pattern in closed:
        if pattern.size < min_size:
            continue
        if max_size is not None and pattern.size > max_size:
            continue
        result.add(pattern)
    result.elapsed_seconds = time.perf_counter() - started
    return result
