"""The paper's running example database (Figures 1–4).

The figures themselves are not machine readable, but the text pins the
structure down completely; the graphs below satisfy every stated fact:

* ``|D| = 2`` with transactions G1 and G2 over labels a..e (Figure 1).
* The 4-clique ``abcd`` has two embeddings in G1 and one in G2
  (Figure 3), and ``bde`` is embedded in both transactions.
* With ``min_sup = 2`` there are exactly 19 frequent cliques, of which
  only ``abcd:2`` and ``bde:2`` are closed (Example 2.1, Figure 4).
* Under structural redundancy pruning the DFS enumeration order is
  a, ab, abc, abcd, abd, ac, acd, ad, b, bc, bcd, bd, bde, be, c, cd,
  d, de, e (Section 4.2).
* In G1, vertex u4 (label c) has exactly the four neighbours u1, u2,
  u3, u5, and u1 (label a) connects to all the other neighbours; in G2,
  vertex v4 (label c) has exactly the three neighbours v1, v2, v5 and
  v1 (label a) connects to the others (the Lemma 4.4 walkthrough).
* In G2, v6 has degree 2, and removing it drops v3 to degree 2 (the
  pseudo low-degree pruning walkthrough in Section 4.2).
* ``bd:2`` has exactly four occurrences in D, each contained in an
  occurrence of ``abd:2`` (the occurrence-match discussion in §4.3).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .database import GraphDatabase
from .graph import Graph

#: The 19 frequent cliques of the running example at min_sup = 2, keyed
#: by canonical form, all with support 2 (Figure 4).
PAPER_FREQUENT_CLIQUES: Tuple[str, ...] = (
    "a", "ab", "abc", "abcd", "abd", "ac", "acd", "ad",
    "b", "bc", "bcd", "bd", "bde", "be",
    "c", "cd",
    "d", "de",
    "e",
)

#: The two closed cliques of the running example (Example 2.1).
PAPER_CLOSED_CLIQUES: Tuple[str, ...] = ("abcd", "bde")

#: DFS enumeration order under structural redundancy pruning (§4.2).
PAPER_ENUMERATION_ORDER: Tuple[str, ...] = PAPER_FREQUENT_CLIQUES


def paper_graph_g1() -> Graph:
    """Transaction G1 of Figure 1 (vertices u1..u6, ids 1..6)."""
    labels: Dict[int, str] = {1: "a", 2: "b", 3: "d", 4: "c", 5: "d", 6: "e"}
    edges: List[Tuple[int, int]] = [
        (1, 2), (1, 3), (1, 4), (1, 5),
        (2, 3), (2, 4), (2, 5), (2, 6),
        (3, 4), (3, 6),
        (4, 5),
    ]
    return Graph.from_edges(labels, edges, graph_id=0)


def paper_graph_g2() -> Graph:
    """Transaction G2 of Figure 1 (vertices v1..v6, ids 1..6)."""
    labels: Dict[int, str] = {1: "a", 2: "b", 3: "d", 4: "c", 5: "d", 6: "e"}
    edges: List[Tuple[int, int]] = [
        (1, 2), (1, 3), (1, 4), (1, 5),
        (2, 3), (2, 4), (2, 5), (2, 6),
        (3, 6),
        (4, 5),
    ]
    return Graph.from_edges(labels, edges, graph_id=1)


def paper_example_database() -> GraphDatabase:
    """The running-example database D = {G1, G2} of Figure 1."""
    return GraphDatabase([paper_graph_g1(), paper_graph_g2()], name="paper-example")
