"""Labeled-graph isomorphism and subgraph isomorphism.

A compact VF2-style backtracking matcher for vertex-labeled undirected
graphs.  In this library it is the *independent referee*: tests use it
to verify the gSpan baseline's embeddings and the DFS-code canonical
form without sharing any code with them, and it is generally useful to
downstream users inspecting mined structures.

Subgraph isomorphism here is the standard (monomorphism) notion used by
frequent-subgraph miners: an injective mapping preserving labels and
pattern edges; the image may contain extra edges.  Pass
``induced=True`` for the induced variant (non-edges preserved too).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from .graph import Graph


def _label_histogram(graph: Graph) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for vertex in graph.vertices():
        label = graph.label(vertex)
        counts[label] = counts.get(label, 0) + 1
    return counts


def find_subgraph_isomorphisms(
    pattern: Graph,
    target: Graph,
    induced: bool = False,
    limit: Optional[int] = None,
) -> Iterator[Dict[int, int]]:
    """Yield injective label/edge-preserving mappings pattern → target.

    Mappings are dicts from pattern vertex ids to target vertex ids.
    ``limit`` caps the number of mappings yielded.  Pattern vertices are
    matched in a connectivity-aware order with degree and label
    pruning — adequate for the small patterns miners manipulate.
    """
    pattern_vertices = list(pattern.vertices())
    if not pattern_vertices:
        yield {}
        return
    if pattern.vertex_count > target.vertex_count:
        return
    target_histogram = _label_histogram(target)
    for label, count in _label_histogram(pattern).items():
        if target_histogram.get(label, 0) < count:
            return

    # Order: start from the rarest-label vertex, then grow along edges
    # (connectivity keeps the candidate sets small).
    order: List[int] = []
    placed = set()
    remaining = set(pattern_vertices)
    rarity = {v: target_histogram[pattern.label(v)] for v in pattern_vertices}
    while remaining:
        frontier = [v for v in remaining if any(u in placed for u in pattern.neighbors(v))]
        pool = frontier if frontier else list(remaining)
        chosen = min(pool, key=lambda v: (rarity[v], -pattern.degree(v), v))
        order.append(chosen)
        placed.add(chosen)
        remaining.discard(chosen)

    yielded = 0
    mapping: Dict[int, int] = {}
    used: set = set()

    def candidates(pattern_vertex: int) -> Iterator[int]:
        mapped_neighbors = [
            mapping[u] for u in pattern.neighbors(pattern_vertex) if u in mapping
        ]
        if mapped_neighbors:
            # Must be adjacent to all already-mapped pattern neighbours.
            base = set(target.neighbors(mapped_neighbors[0]))
            for other in mapped_neighbors[1:]:
                base &= target.neighbors(other)
            pool: Iterator[int] = iter(sorted(base))
        else:
            pool = iter(sorted(target.vertices()))
        label = pattern.label(pattern_vertex)
        degree = pattern.degree(pattern_vertex)
        for candidate in pool:
            if candidate in used:
                continue
            if target.label(candidate) != label:
                continue
            if target.degree(candidate) < degree:
                continue
            yield candidate

    def feasible(pattern_vertex: int, candidate: int) -> bool:
        if not induced:
            return True
        # Induced: pattern non-edges must map to target non-edges.
        for mapped_pattern, mapped_target in mapping.items():
            pattern_edge = pattern.has_edge(pattern_vertex, mapped_pattern)
            target_edge = target.has_edge(candidate, mapped_target)
            if pattern_edge != target_edge:
                return False
        return True

    def backtrack(position: int) -> Iterator[Dict[int, int]]:
        nonlocal yielded
        if position == len(order):
            yielded += 1
            yield dict(mapping)
            return
        vertex = order[position]
        for candidate in candidates(vertex):
            if not feasible(vertex, candidate):
                continue
            mapping[vertex] = candidate
            used.add(candidate)
            yield from backtrack(position + 1)
            used.discard(candidate)
            del mapping[vertex]
            if limit is not None and yielded >= limit:
                return

    yield from backtrack(0)


def find_subgraph_isomorphism(
    pattern: Graph, target: Graph, induced: bool = False
) -> Optional[Dict[int, int]]:
    """The first mapping, or ``None``."""
    for mapping in find_subgraph_isomorphisms(pattern, target, induced, limit=1):
        return mapping
    return None


def is_subgraph_isomorphic(pattern: Graph, target: Graph, induced: bool = False) -> bool:
    """Whether the pattern embeds in the target."""
    return find_subgraph_isomorphism(pattern, target, induced) is not None


def are_isomorphic(a: Graph, b: Graph) -> bool:
    """Whole-graph isomorphism (labels, edges, both directions)."""
    if a.vertex_count != b.vertex_count or a.edge_count != b.edge_count:
        return False
    if _label_histogram(a) != _label_histogram(b):
        return False
    return find_subgraph_isomorphism(a, b, induced=True) is not None
