"""Graph transaction databases.

A :class:`GraphDatabase` is the ``D`` of Section 2: an ordered
collection of labeled undirected graph transactions.  It owns the
support-threshold arithmetic (relative percentages → absolute counts)
and the replication operation used by the scalability study of
Figure 7(b).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set

from ..exceptions import DatabaseError, InvalidSupportError
from .bitset import DatabaseLabelSpace, build_label_space
from .graph import Graph, Label

# Sentinel: the aligned label space has not been computed yet (``None``
# is a valid cached answer, meaning "alignment impossible").
_SPACE_UNSET = object()


class GraphDatabase:
    """An ordered collection of graph transactions.

    Transactions keep their position index as the authoritative
    transaction id used in embeddings and support sets.

    Examples
    --------
    >>> db = GraphDatabase([Graph.from_edges({0: "a", 1: "b"}, [(0, 1)])])
    >>> len(db)
    1
    >>> db.absolute_support(1.0)
    1
    """

    __slots__ = ("_graphs", "name", "_aligned_space", "_slab_cache")

    def __init__(self, graphs: Optional[Iterable[Graph]] = None, name: str = "") -> None:
        self._graphs: List[Graph] = []
        self.name = name
        self._aligned_space: object = _SPACE_UNSET
        self._slab_cache: Optional[tuple] = None
        for graph in graphs or ():
            self.add(graph)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, graph: Graph) -> int:
        """Append a transaction and return its transaction id."""
        tid = len(self._graphs)
        if graph.graph_id is None:
            graph.graph_id = tid
        self._graphs.append(graph)
        self._aligned_space = _SPACE_UNSET
        return tid

    def aligned_space(self) -> Optional[DatabaseLabelSpace]:
        """The database-global label bit space, or ``None``.

        Available exactly when every transaction's labels are unique
        per vertex (see :class:`~repro.graphdb.bitset.DatabaseLabelSpace`);
        the bitset kernel then counts extension supports bit-sliced
        across transactions.  Cached, and rebuilt lazily when a
        transaction was added or an existing graph mutated.
        """
        space = self._aligned_space
        if space is _SPACE_UNSET or (space is not None and space.stale()):  # type: ignore[union-attr]
            space = build_label_space(self._graphs)
            self._aligned_space = space
        return space  # type: ignore[return-value]

    def slab_space(self):
        """The transposed uint64 slab index, or ``None``.

        Derived from :meth:`aligned_space` (and therefore ``None``
        whenever alignment is impossible) by
        :func:`repro.graphdb.slab.build_slab_space`, which also gates
        on its build-memory ceiling.  Cached against the aligned
        space's identity, so mutation invalidates it for free: a
        mutated database yields a new aligned space object.
        """
        space = self.aligned_space()
        if space is None:
            return None
        cached = self._slab_cache
        if cached is not None and cached[0] is space:
            return cached[1]
        from .slab import build_slab_space

        slab = build_slab_space(space)
        self._slab_cache = (space, slab)
        return slab

    def replicate(self, factor: int, name: str = "") -> "GraphDatabase":
        """Return a database with every transaction repeated ``factor`` times.

        This is the base-size scaling of the paper's Figure 7(b): the
        graphs are replicated from 2 to 16 times and runtime is expected
        to grow linearly.  Each copy is an independent transaction (ids
        are reassigned), so relative supports are preserved.
        """
        if factor < 1:
            raise DatabaseError(f"replication factor must be >= 1, got {factor}")
        replica = GraphDatabase(name=name or f"{self.name}x{factor}")
        for _ in range(factor):
            for graph in self._graphs:
                replica.add(graph.copy(graph_id=len(replica)))
        return replica

    def subset(self, transaction_ids: Iterable[int], name: str = "") -> "GraphDatabase":
        """Return a database holding copies of the selected transactions."""
        picked = GraphDatabase(name=name or f"{self.name}-subset")
        for tid in transaction_ids:
            picked.add(self[tid].copy(graph_id=len(picked)))
        return picked

    # ------------------------------------------------------------------
    # Support arithmetic
    # ------------------------------------------------------------------
    def absolute_support(self, min_sup: float) -> int:
        """Convert a support threshold to an absolute transaction count.

        ``min_sup`` may be an absolute integer count (``1 <= min_sup <=
        |D|``, integers only), a relative fraction in ``(0, 1]`` (floats
        only), or any string :func:`repro.core.support.parse_support`
        accepts (``"10"``, ``"0.85"``, ``"85%"``).  The relative form
        rounds *up*, matching the usual "at least x%" semantics: 85% of
        11 graphs requires support 10.  Zero, negative, and float-count
        spellings like ``2.0`` are ambiguous and rejected outright.
        """
        from ..core.support import parse_support

        if not self._graphs:
            raise DatabaseError("cannot derive a support threshold for an empty database")
        min_sup = parse_support(min_sup)
        if isinstance(min_sup, int):
            if min_sup > len(self._graphs):
                raise InvalidSupportError(
                    min_sup,
                    f"absolute support exceeds the database's {len(self._graphs)} "
                    f"transactions",
                )
            return min_sup
        absolute = -int(-min_sup * len(self._graphs) // 1)  # ceil without math import
        return max(1, absolute)

    def label_supports(self) -> Dict[Label, int]:
        """Return, for each label, the number of transactions containing it."""
        supports: Dict[Label, int] = {}
        for graph in self._graphs:
            for label in graph.distinct_labels():
                supports[label] = supports.get(label, 0) + 1
        return supports

    def frequent_labels(self, min_sup_abs: int) -> List[Label]:
        """Return labels supported by at least ``min_sup_abs`` transactions, sorted."""
        return sorted(
            label for label, sup in self.label_supports().items() if sup >= min_sup_abs
        )

    def distinct_labels(self) -> Set[Label]:
        """Return the union of all transaction label sets."""
        labels: Set[Label] = set()
        for graph in self._graphs:
            labels |= graph.distinct_labels()
        return labels

    # ------------------------------------------------------------------
    # Aggregate statistics (feeds Table 1)
    # ------------------------------------------------------------------
    def total_vertices(self) -> int:
        """Total vertex count across all transactions."""
        return sum(g.vertex_count for g in self._graphs)

    def total_edges(self) -> int:
        """Total edge count across all transactions."""
        return sum(g.edge_count for g in self._graphs)

    def average_vertices(self) -> float:
        """Average ``|V|`` per transaction (0.0 for an empty database)."""
        if not self._graphs:
            return 0.0
        return self.total_vertices() / len(self._graphs)

    def average_edges(self) -> float:
        """Average ``|E|`` per transaction (0.0 for an empty database)."""
        if not self._graphs:
            return 0.0
        return self.total_edges() / len(self._graphs)

    def max_vertices(self) -> int:
        """Largest ``|V|`` over all transactions (0 if empty)."""
        return max((g.vertex_count for g in self._graphs), default=0)

    def max_edges(self) -> int:
        """Largest ``|E|`` over all transactions (0 if empty)."""
        return max((g.edge_count for g in self._graphs), default=0)

    def max_degree(self) -> int:
        """Largest vertex degree over all transactions (0 if empty)."""
        return max((g.max_degree() for g in self._graphs), default=0)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._graphs)

    def __iter__(self) -> Iterator[Graph]:
        return iter(self._graphs)

    def __getitem__(self, tid: int) -> Graph:
        try:
            return self._graphs[tid]
        except IndexError:
            raise DatabaseError(
                f"transaction id {tid} out of range for database of size {len(self._graphs)}"
            ) from None

    def __repr__(self) -> str:
        name = f" {self.name!r}" if self.name else ""
        return (
            f"<GraphDatabase{name} |D|={len(self._graphs)} "
            f"avg|V|={self.average_vertices():.1f} avg|E|={self.average_edges():.1f}>"
        )
