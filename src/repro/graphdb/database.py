"""Graph transaction databases.

A :class:`GraphDatabase` is the ``D`` of Section 2: an ordered
collection of labeled undirected graph transactions.  It owns the
support-threshold arithmetic (relative percentages → absolute counts)
and the replication operation used by the scalability study of
Figure 7(b).

Storage is pluggable: the database is a *view* over a
:class:`~repro.graphdb.storage.GraphSource` — the in-memory list by
default, or an out-of-core backend like
:class:`~repro.graphdb.storage.SqliteGraphSource` that streams
transactions instead of holding them resident.  Everything above this
class (kernels, engine, executor, sessions, service) is
storage-agnostic.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set

from ..exceptions import DatabaseError, InvalidSupportError
from .bitset import DatabaseLabelSpace
from .graph import Graph, Label
from .storage import GraphSource, InMemoryGraphSource


class GraphDatabase:
    """An ordered collection of graph transactions.

    Transactions keep their position index as the authoritative
    transaction id used in embeddings and support sets.

    Examples
    --------
    >>> db = GraphDatabase([Graph.from_edges({0: "a", 1: "b"}, [(0, 1)])])
    >>> len(db)
    1
    >>> db.absolute_support(1.0)
    1
    """

    __slots__ = ("_source", "_resident", "name")

    def __init__(
        self,
        graphs: Optional[Iterable[Graph]] = None,
        name: str = "",
        source: Optional[GraphSource] = None,
    ) -> None:
        if source is None:
            source = InMemoryGraphSource()
        self._source = source
        #: Direct reference to the resident list for in-memory sources —
        #: keeps ``db[tid]`` in the kernels' extension loops a plain
        #: list index instead of a delegating method call.
        self._resident: Optional[List[Graph]] = (
            source.graphs if isinstance(source, InMemoryGraphSource) else None
        )
        self.name = name or source.name
        for graph in graphs or ():
            self.add(graph)

    @property
    def source(self) -> GraphSource:
        """The storage backend this database is a view over."""
        return self._source

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, graph: Graph) -> int:
        """Append a transaction and return its transaction id."""
        tid = self._source.append(graph)
        if graph.graph_id is None:
            graph.graph_id = tid
        return tid

    def aligned_space(self) -> Optional[DatabaseLabelSpace]:
        """The database-global label bit space, or ``None``.

        Available exactly when every transaction's labels are unique
        per vertex (see :class:`~repro.graphdb.bitset.DatabaseLabelSpace`)
        *and* the storage backend keeps transactions resident (aligning
        an out-of-core store would materialise it); the bitset kernel
        then counts extension supports bit-sliced across transactions,
        and falls back to per-graph masks otherwise.
        """
        return self._source.aligned_space()

    def slab_space(self):
        """The transposed uint64 slab index, or ``None``.

        Derived from :meth:`aligned_space` (and therefore ``None``
        whenever alignment is impossible or the backend is
        out-of-core) by :func:`repro.graphdb.slab.build_slab_space`,
        which also gates on its build-memory ceiling.
        """
        return self._source.slab_space()

    def replicate(self, factor: int, name: str = "") -> "GraphDatabase":
        """Return a database with every transaction repeated ``factor`` times.

        This is the base-size scaling of the paper's Figure 7(b): the
        graphs are replicated from 2 to 16 times and runtime is expected
        to grow linearly.  Each occurrence is an independent transaction
        (a fresh tid), but the :class:`Graph` objects are *shared*, not
        copied — transactions are immutable once added, so replication
        is O(factor × |D|) references, and the graphs' lazily-built
        kernel indexes are shared too.
        """
        if factor < 1:
            raise DatabaseError(f"replication factor must be >= 1, got {factor}")
        replica = GraphDatabase(name=name or f"{self.name}x{factor}")
        for _ in range(factor):
            for graph in self:
                replica._source.append(graph)
        return replica

    def subset(self, transaction_ids: Iterable[int], name: str = "") -> "GraphDatabase":
        """Return a database holding the selected transactions.

        The selected :class:`Graph` objects are shared with this
        database (never copied): transactions are immutable once
        added, so a subset is O(k) references — see the 10k-transaction
        no-copy regression in ``tests/test_storage.py``.
        """
        picked = GraphDatabase(name=name or f"{self.name}-subset")
        for tid in transaction_ids:
            picked._source.append(self[tid])
        return picked

    # ------------------------------------------------------------------
    # Support arithmetic
    # ------------------------------------------------------------------
    def absolute_support(self, min_sup: float) -> int:
        """Convert a support threshold to an absolute transaction count.

        ``min_sup`` may be an absolute integer count (``1 <= min_sup <=
        |D|``, integers only), a relative fraction in ``(0, 1]`` (floats
        only), or any string :func:`repro.core.support.parse_support`
        accepts (``"10"``, ``"0.85"``, ``"85%"``).  The relative form
        rounds *up*, matching the usual "at least x%" semantics: 85% of
        11 graphs requires support 10.  Zero, negative, and float-count
        spellings like ``2.0`` are ambiguous and rejected outright.
        """
        from ..core.support import parse_support

        size = len(self)
        if not size:
            raise DatabaseError("cannot derive a support threshold for an empty database")
        min_sup = parse_support(min_sup)
        if isinstance(min_sup, int):
            if min_sup > size:
                raise InvalidSupportError(
                    min_sup,
                    f"absolute support exceeds the database's {size} "
                    f"transactions",
                )
            return min_sup
        absolute = -int(-min_sup * size // 1)  # ceil without math import
        return max(1, absolute)

    def label_supports(self) -> Dict[Label, int]:
        """Return, for each label, the number of transactions containing it.

        Delegated to the storage backend: the SQLite store answers from
        its ``label_supports`` table without decoding a single graph,
        which is what keeps the engine's root scan out-of-core.
        """
        return self._source.label_supports()

    def frequent_labels(self, min_sup_abs: int) -> List[Label]:
        """Return labels supported by at least ``min_sup_abs`` transactions, sorted."""
        return sorted(
            label for label, sup in self.label_supports().items() if sup >= min_sup_abs
        )

    def distinct_labels(self) -> Set[Label]:
        """Return the union of all transaction label sets."""
        return set(self.label_supports())

    # ------------------------------------------------------------------
    # Fingerprinting
    # ------------------------------------------------------------------
    def transaction_digests(self) -> Iterator[str]:
        """Per-transaction structural digests, in transaction order.

        The stream :func:`repro.io.runlog.database_fingerprint` folds;
        the SQLite backend serves it from its stored ``digest`` column.
        """
        return self._source.transaction_digests()

    # ------------------------------------------------------------------
    # Aggregate statistics (feeds Table 1)
    # ------------------------------------------------------------------
    def total_vertices(self) -> int:
        """Total vertex count across all transactions."""
        return sum(g.vertex_count for g in self)

    def total_edges(self) -> int:
        """Total edge count across all transactions."""
        return sum(g.edge_count for g in self)

    def average_vertices(self) -> float:
        """Average ``|V|`` per transaction (0.0 for an empty database)."""
        size = len(self)
        if not size:
            return 0.0
        return self.total_vertices() / size

    def average_edges(self) -> float:
        """Average ``|E|`` per transaction (0.0 for an empty database)."""
        size = len(self)
        if not size:
            return 0.0
        return self.total_edges() / size

    def max_vertices(self) -> int:
        """Largest ``|V|`` over all transactions (0 if empty)."""
        return max((g.vertex_count for g in self), default=0)

    def max_edges(self) -> int:
        """Largest ``|E|`` over all transactions (0 if empty)."""
        return max((g.edge_count for g in self), default=0)

    def max_degree(self) -> int:
        """Largest vertex degree over all transactions (0 if empty)."""
        return max((g.max_degree() for g in self), default=0)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        resident = self._resident
        if resident is not None:
            return len(resident)
        return len(self._source)

    def __iter__(self) -> Iterator[Graph]:
        resident = self._resident
        if resident is not None:
            return iter(resident)
        return iter(self._source)

    def __getitem__(self, tid: int) -> Graph:
        resident = self._resident
        if resident is not None:
            try:
                return resident[tid]
            except IndexError:
                raise DatabaseError(
                    f"transaction id {tid} out of range for database of size "
                    f"{len(resident)}"
                ) from None
        return self._source.get(tid)

    def __repr__(self) -> str:
        name = f" {self.name!r}" if self.name else ""
        return (
            f"<GraphDatabase{name} |D|={len(self)} "
            f"avg|V|={self.average_vertices():.1f} avg|E|={self.average_edges():.1f}>"
        )
