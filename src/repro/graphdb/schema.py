"""On-disk schema and canonical encodings for graph transactions.

This module is the contract between :class:`~repro.graphdb.storage.
SqliteGraphSource` and every reader of a ``.sqlite`` graph store:

* the SQL DDL (one row per transaction, mirroring the
  cliques/contents-as-tables shape of the graphstreams exemplar, with
  the graph body in a single ``encoding`` column);
* a lossless JSON transaction encoding (:func:`encode_graph` /
  :func:`decode_graph`) — labels are arbitrary strings, so the
  positional text format the fingerprint hashes cannot be parsed back;
* the per-transaction digest (:func:`transaction_digest`) that the
  store persists alongside each row.  The digest preimage is the exact
  byte string the pre-sharding ``database_fingerprint`` hashed per
  graph, so a digest is a pure structural property of the transaction:
  an in-memory graph and its SQLite row always agree, which is what
  makes fingerprints (and therefore cache keys) portable across
  storage backends.
"""

from __future__ import annotations

import hashlib
import json
from typing import Iterable

from .graph import Graph

#: Version stamped into the ``meta`` table; bump on any DDL or
#: encoding change.
SCHEMA_VERSION = 1

#: The store layout.  ``tid`` is the authoritative transaction id
#: (densely 0..n-1, assigned at append time); ``digest`` caches
#: :func:`transaction_digest` so fingerprinting a store never decodes
#: a graph; ``n_vertices``/``n_edges`` serve the Table-1 statistics
#: without decoding either.
DDL = (
    """
    CREATE TABLE IF NOT EXISTS meta (
        key   TEXT PRIMARY KEY,
        value TEXT NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS graphs (
        tid        INTEGER PRIMARY KEY,
        encoding   TEXT NOT NULL,
        digest     TEXT NOT NULL,
        n_vertices INTEGER NOT NULL,
        n_edges    INTEGER NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS label_supports (
        label   TEXT PRIMARY KEY,
        support INTEGER NOT NULL
    )
    """,
)


def encode_graph(graph: Graph) -> str:
    """Encode one transaction as compact, canonical JSON.

    Vertices and edges are sorted, so structurally equal graphs encode
    to identical bytes; the encoding is lossless for arbitrary string
    labels (unlike the digest preimage, which is a hash input only).
    """
    return json.dumps(
        {
            "v": [[v, graph.label(v)] for v in sorted(graph.vertices())],
            "e": sorted(graph.edges()),
        },
        sort_keys=True,
        separators=(",", ":"),
    )


def decode_graph(text: str, graph_id: int) -> Graph:
    """Rebuild a transaction from :func:`encode_graph` output."""
    payload = json.loads(text)
    graph = Graph(graph_id)
    for vertex, label in payload["v"]:
        graph.add_vertex(int(vertex), str(label))
    for u, v in payload["e"]:
        graph.add_edge(int(u), int(v))
    return graph


def digest_preimage(graph: Graph) -> bytes:
    """The canonical byte string a transaction hashes to its digest.

    Exactly the per-graph slice of the historical whole-database
    fingerprint stream: ``t`` then ``v<id>=<label>;`` per sorted
    vertex then ``e<u>-<v>;`` per sorted edge.
    """
    parts = ["t"]
    parts.extend(
        f"v{vertex}={graph.label(vertex)};" for vertex in sorted(graph.vertices())
    )
    parts.extend(f"e{u}-{v};" for u, v in sorted(graph.edges()))
    return "".join(parts).encode()


def transaction_digest(graph: Graph) -> str:
    """SHA-256 hex digest of one transaction's structure.

    A pure function of (vertex ids, labels, edges) — independent of
    construction order, the transaction's position, and the storage
    backend holding it.
    """
    return hashlib.sha256(digest_preimage(graph)).hexdigest()


def fingerprint_digests(digests: Iterable[str]) -> str:
    """Fold an ordered stream of per-transaction digests into one.

    This is the whole-database fingerprint: SHA-256 over the
    concatenated raw digest bytes, in transaction order.  Streaming —
    it never needs the transactions themselves, so a SQLite store
    fingerprints from its ``digest`` column without decoding a single
    graph, and lands on the same value as the in-memory database it
    was imported from.
    """
    rollup = hashlib.sha256()
    for digest in digests:
        rollup.update(bytes.fromhex(digest))
    return rollup.hexdigest()
