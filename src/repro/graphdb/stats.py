"""Database characteristics reporting (paper Table 1 and Section 5.1).

The paper characterises its real databases by transaction count,
average vertex count, and average edge count (Table 1), and the
stock-market-0.9 database additionally by distinct-label count, maxima,
and maximum degree (Section 5.1).  :func:`database_characteristics`
computes all of these for any database.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from .core_index import CoreIndex
from .database import GraphDatabase


@dataclass(frozen=True)
class DatabaseCharacteristics:
    """Summary row in the style of the paper's Table 1 (plus §5.1 extras)."""

    name: str
    n_graphs: int
    avg_vertices: float
    avg_edges: float
    distinct_labels: int
    max_vertices: int
    max_edges: int
    max_degree: int
    avg_degree: float
    max_clique_upper_bound: int

    def as_table1_row(self) -> tuple:
        """The (Database, #graphs, Avg #vertices, Avg #edges) row of Table 1."""
        return (self.name, self.n_graphs, round(self.avg_vertices), round(self.avg_edges))


def database_characteristics(
    database: GraphDatabase, name: Optional[str] = None
) -> DatabaseCharacteristics:
    """Compute the Table 1 / §5.1 characteristics of a database."""
    n = len(database)
    total_vertices = database.total_vertices()
    total_edges = database.total_edges()
    avg_degree = (2.0 * total_edges / total_vertices) if total_vertices else 0.0
    bound = 0
    for graph in database:
        bound = max(bound, CoreIndex(graph).max_clique_upper_bound())
    return DatabaseCharacteristics(
        name=name if name is not None else (database.name or "unnamed"),
        n_graphs=n,
        avg_vertices=database.average_vertices(),
        avg_edges=database.average_edges(),
        distinct_labels=len(database.distinct_labels()),
        max_vertices=database.max_vertices(),
        max_edges=database.max_edges(),
        max_degree=database.max_degree(),
        avg_degree=avg_degree,
        max_clique_upper_bound=bound,
    )


def characteristics_table(
    characteristics: Iterable[DatabaseCharacteristics],
    extended: bool = False,
) -> str:
    """Format characteristics as an aligned text table.

    With ``extended=False`` the columns are exactly Table 1's; with
    ``extended=True`` the §5.1 extras are appended.
    """
    rows: List[List[str]] = []
    if extended:
        header = [
            "Database", "# graphs", "Avg. # vertices", "Avg. # edges",
            "# labels", "Max |V|", "Max |E|", "Max degree", "Avg degree",
        ]
        for ch in characteristics:
            rows.append([
                ch.name, str(ch.n_graphs),
                f"{ch.avg_vertices:.0f}", f"{ch.avg_edges:.0f}",
                str(ch.distinct_labels), str(ch.max_vertices),
                str(ch.max_edges), str(ch.max_degree), f"{ch.avg_degree:.1f}",
            ])
    else:
        header = ["Database", "# graphs", "Avg. # vertices", "Avg. # edges"]
        for ch in characteristics:
            name, n, av, ae = ch.as_table1_row()
            rows.append([name, str(n), str(av), str(ae)])
    widths = [max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
              for i in range(len(header))]
    lines = [
        " | ".join(h.ljust(w) for h, w in zip(header, widths)),
        "-+-".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
