"""Pseudo low-degree vertex pruning (paper Section 4.2, Observation 4.1).

No vertex of degree below ``k - 1`` can participate in a k-clique, and
the pruning applies *recursively*: removing a low-degree vertex may
drop its neighbours below the bar.  Peeling vertices of degree < k
recursively is precisely the computation of the k-core, so one core
decomposition per transaction (linear in the edge count, Batagelj &
Zaveršnik's bucket algorithm) answers every level's question at once:

    v may occur in a k-clique  ⇔  core(v) >= k - 1.

The paper proposes keeping "a series of pseudo databases" as index sets
over the original database rather than materialised copies;
:class:`CoreIndex` is that index for one transaction and
:class:`PseudoDatabase` bundles one index per transaction.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from .database import GraphDatabase
from .graph import Graph, Label


def core_numbers(graph: Graph) -> Dict[int, int]:
    """Compute the core number of every vertex.

    The core number of ``v`` is the largest ``k`` such that ``v``
    belongs to a subgraph in which every vertex has degree ≥ ``k``.
    Runs in ``O(|V| + |E|)`` using bucketed peeling.
    """
    degrees = {v: graph.degree(v) for v in graph.vertices()}
    if not degrees:
        return {}
    max_degree = max(degrees.values())
    buckets: List[List[int]] = [[] for _ in range(max_degree + 1)]
    for vertex, degree in degrees.items():
        buckets[degree].append(vertex)

    cores: Dict[int, int] = {}
    current = {v: d for v, d in degrees.items()}
    processed: Set[int] = set()
    level = 0
    while len(processed) < len(degrees):
        while level <= max_degree and not buckets[level]:
            level += 1
        vertex = buckets[level].pop()
        if vertex in processed or current[vertex] != level:
            # Stale bucket entry: the vertex moved to a lower bucket.
            continue
        processed.add(vertex)
        cores[vertex] = level
        for neighbor in graph.neighbors(vertex):
            if neighbor in processed:
                continue
            if current[neighbor] > level:
                current[neighbor] -= 1
                buckets[current[neighbor]].append(neighbor)
                if current[neighbor] < level:
                    level = current[neighbor]
    return cores


class CoreIndex:
    """Per-transaction index answering "usable at clique size k" queries.

    A vertex is *usable at level k* (may occur in a k-clique) iff its
    core number is at least ``k - 1``.  The index precomputes, for each
    level, the surviving vertex set and a per-label breakdown, which is
    what the miner's label-directed extension scans consume.
    """

    __slots__ = ("graph", "_cores", "_levels", "_label_levels", "_mask_levels", "max_core")

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self._cores = core_numbers(graph)
        self.max_core = max(self._cores.values(), default=0)
        # _levels[k] = frozenset of vertices usable in a (k+... ) — indexed
        # directly by clique size k, for k in 1..max_core+1.
        self._levels: Dict[int, FrozenSet[int]] = {}
        self._label_levels: Dict[Tuple[int, Label], FrozenSet[int]] = {}
        # Bitset kernel analogue: _mask_levels[k] is the surviving-vertex
        # set of level k as a mask, so the miner's core pruning is one
        # AND per candidate set instead of a per-vertex membership scan.
        self._mask_levels: Dict[int, int] = {}

    def core_number(self, vertex: int) -> int:
        """Return the core number of ``vertex``."""
        return self._cores[vertex]

    def max_clique_upper_bound(self) -> int:
        """An upper bound on the transaction's maximum clique size.

        A clique of size k lies in the (k−1)-core, so the max clique has
        at most ``max_core + 1`` vertices.
        """
        if not self._cores:
            return 0
        return self.max_core + 1

    def usable_at(self, clique_size: int) -> FrozenSet[int]:
        """Vertices that can occur in a clique of ``clique_size`` vertices."""
        if clique_size <= 1:
            return frozenset(self._cores)
        if clique_size > self.max_core + 1:
            return frozenset()
        cached = self._levels.get(clique_size)
        if cached is None:
            threshold = clique_size - 1
            cached = frozenset(v for v, c in self._cores.items() if c >= threshold)
            self._levels[clique_size] = cached
        return cached

    def usable_mask_at(self, clique_size: int) -> int:
        """The level's surviving-vertex set as a bitmask.

        Mask form of :meth:`usable_at` over the graph's bit order; the
        bitset kernel applies pseudo low-degree pruning by ANDing this
        into each candidate-extension mask.
        """
        if clique_size <= 1:
            return self.graph.vertices_mask()
        if clique_size > self.max_core + 1:
            return 0
        cached = self._mask_levels.get(clique_size)
        if cached is None:
            cached = self.graph.mask_of(self.usable_at(clique_size))
            self._mask_levels[clique_size] = cached
        return cached

    def usable_mask_with_label(self, clique_size: int, label: Label) -> int:
        """Mask of the vertices with ``label`` usable at the given size."""
        return self.graph.label_mask(label) & self.usable_mask_at(clique_size)

    def usable_with_label(self, clique_size: int, label: Label) -> FrozenSet[int]:
        """Vertices with ``label`` usable at the given clique size."""
        key = (clique_size, label)
        cached = self._label_levels.get(key)
        if cached is None:
            cached = self.graph.vertices_with_label(label) & self.usable_at(clique_size)
            self._label_levels[key] = cached
        return cached

    def pruned_graph(self, clique_size: int) -> Graph:
        """Materialise the pseudo database for one level (mostly for tests).

        The miner itself never calls this — it works off the index sets,
        as the paper recommends to save memory.
        """
        return self.graph.induced_subgraph(self.usable_at(clique_size))

    def __repr__(self) -> str:
        return f"<CoreIndex |V|={self.graph.vertex_count} max_core={self.max_core}>"


class PseudoDatabase:
    """One :class:`CoreIndex` per transaction of a database."""

    __slots__ = ("database", "indices")

    def __init__(self, database: GraphDatabase) -> None:
        self.database = database
        # Per-graph indices are owned (and invalidation-tracked) by the
        # graphs themselves, so repeated PseudoDatabase construction
        # over an unchanged database reuses the core decompositions.
        self.indices: List[CoreIndex] = [graph.core_index() for graph in database]

    def index(self, tid: int) -> CoreIndex:
        """Return the core index of transaction ``tid``."""
        return self.indices[tid]

    def max_clique_upper_bound(self) -> int:
        """Upper bound on the max clique size over the whole database."""
        return max((idx.max_clique_upper_bound() for idx in self.indices), default=0)

    def usable_transactions(self, clique_size: int) -> Iterable[int]:
        """Transaction ids that can still host a clique of the given size."""
        for tid, idx in enumerate(self.indices):
            if idx.usable_at(clique_size):
                yield tid

    def __len__(self) -> int:
        return len(self.indices)
