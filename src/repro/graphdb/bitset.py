"""Bitset primitives for the mining hot path.

CLAN's inner loop — growing a k-clique by one fully-connected vertex
and re-checking closure over every embedding — is dominated by
neighbour-set intersections.  Python's arbitrary-precision ``int`` is a
packed bit vector with hardware-speed ``&``/``|`` implemented in C, so
representing vertex sets as masks (one bit per vertex) turns each
intersection into a handful of word operations instead of a hashed
set walk.  This module owns the primitives; :class:`GraphBitIndex`
is the per-transaction mask index that
:meth:`repro.graphdb.graph.Graph.neighbor_mask` lazily builds.

Bit positions are assigned by **sorted vertex id**, not insertion
order.  That makes the vertex-id → bit mapping a pure function of the
graph's vertex set: two structurally equal graphs (same ids, labels,
edges) always agree on the mapping regardless of construction order,
and the per-label ascending-vertex-id discipline of the embedding
store translates to plain ascending bit order.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

Label = str

def popcount(mask: int) -> int:
    """Number of set bits in ``mask`` (``int.bit_count``, Python >= 3.10)."""
    return mask.bit_count()


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the positions of set bits in ascending order.

    Isolating the lowest set bit with ``mask & -mask`` keeps each step
    a couple of bigint operations; the loop is linear in the number of
    *set* bits, not in the width of the mask.
    """
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def mask_from_bits(bits: Iterable[int]) -> int:
    """Build a mask with the given bit positions set."""
    mask = 0
    for bit in bits:
        mask |= 1 << bit
    return mask


def lowest_bit(mask: int) -> int:
    """Position of the lowest set bit (-1 for the empty mask)."""
    return (mask & -mask).bit_length() - 1


class GraphBitIndex:
    """Mask representation of one graph transaction.

    Built once (lazily) per :class:`~repro.graphdb.graph.Graph` and
    invalidated on mutation.  Holds, with bit ``i`` standing for the
    ``i``-th smallest vertex id:

    * ``order`` — bit position → vertex id,
    * ``bit`` — vertex id → bit position,
    * ``labels_by_bit`` — bit position → label (the hot-loop companion
      of ``order``: extension scans read labels straight off bit
      positions without a vertex-id hop),
    * ``neighbor_masks`` — vertex id → mask of its neighbours,
    * ``label_masks`` — label → mask of the vertices carrying it,
    * ``unique_labels`` — whether no label repeats inside this graph
      (true for vertex-identity alphabets like stock tickers; lets
      per-transaction label deduplication be skipped),
    * ``all_mask`` — every vertex bit set.
    """

    __slots__ = (
        "order",
        "bit",
        "labels_by_bit",
        "neighbor_masks",
        "label_masks",
        "unique_labels",
        "all_mask",
        "_sorted_labels",
        "_prefix_masks",
    )

    def __init__(
        self,
        labels: Mapping[int, Label],
        adjacency: Mapping[int, Set[int]],
    ) -> None:
        self.order: Tuple[int, ...] = tuple(sorted(labels))
        self.bit: Dict[int, int] = {v: i for i, v in enumerate(self.order)}
        bit = self.bit
        self.labels_by_bit: Tuple[Label, ...] = tuple(labels[v] for v in self.order)
        self.neighbor_masks: Dict[int, int] = {}
        for vertex, neighbors in adjacency.items():
            mask = 0
            for neighbor in neighbors:
                mask |= 1 << bit[neighbor]
            self.neighbor_masks[vertex] = mask
        self.label_masks: Dict[Label, int] = {}
        for vertex, label in labels.items():
            self.label_masks[label] = self.label_masks.get(label, 0) | (1 << bit[vertex])
        self.unique_labels = len(self.label_masks) == len(self.order)
        self.all_mask = (1 << len(self.order)) - 1
        self._sorted_labels: Optional[List[Label]] = None
        self._prefix_masks: Optional[List[int]] = None

    def mask_below(self, label: Label) -> int:
        """Mask of every vertex whose label sorts strictly below ``label``.

        Backed by a lazily-built prefix-union over the sorted label
        alphabet, so the Lemma 4.4 old-label restriction is a binary
        search plus one lookup instead of a per-label union.
        """
        labels = self._sorted_labels
        if labels is None:
            labels = self._sorted_labels = sorted(self.label_masks)
            running = 0
            prefix = [0]
            for known in labels:
                running |= self.label_masks[known]
                prefix.append(running)
            self._prefix_masks = prefix
        return self._prefix_masks[bisect_left(labels, label)]  # type: ignore[index]

    def mask_of(self, vertices: Iterable[int]) -> int:
        """Mask with the bits of the given vertex ids set."""
        bit = self.bit
        mask = 0
        for vertex in vertices:
            mask |= 1 << bit[vertex]
        return mask

    def vertices_of(self, mask: int) -> List[int]:
        """Vertex ids of the set bits, ascending."""
        order = self.order
        return [order[i] for i in iter_bits(mask)]

    def __repr__(self) -> str:
        return f"<GraphBitIndex |V|={len(self.order)}>"


class AlignedGraphView:
    """One transaction's masks in the database-global label bit space.

    Only defined for graphs whose labels are unique per vertex: the
    local vertex ↔ label bijection then lifts every vertex mask to a
    label mask, with bit ``i`` standing for the ``i``-th smallest label
    of the *database* alphabet.  Masks of different transactions become
    directly comparable — the key to bit-sliced support counting.

    ``source`` is the :class:`GraphBitIndex` the view was derived from;
    holders compare it by identity to detect graph mutation.
    """

    __slots__ = (
        "source",
        "vertex_by_bit",
        "bit_of_vertex",
        "neighbor_masks",
        "present_mask",
        "_usable_source",
        "_usable_levels",
    )

    def __init__(
        self,
        source: GraphBitIndex,
        adjacency: Mapping[int, Set[int]],
        space_bit_of: Mapping[Label, int],
    ) -> None:
        bit_of: Dict[int, int] = {}
        vertex_by_bit: Dict[int, int] = {}
        present = 0
        for vertex, label in zip(source.order, source.labels_by_bit):
            position = space_bit_of[label]
            bit_of[vertex] = position
            vertex_by_bit[position] = vertex
            present |= 1 << position
        self.source = source
        self.vertex_by_bit = vertex_by_bit
        self.bit_of_vertex = bit_of
        self.present_mask = present
        self.neighbor_masks = {}
        for vertex, neighbors in adjacency.items():
            mask = 0
            for neighbor in neighbors:
                mask |= 1 << bit_of[neighbor]
            self.neighbor_masks[vertex] = mask
        self._usable_source: Optional[object] = None
        self._usable_levels: Dict[int, int] = {}

    def usable_mask_at(self, core_index, clique_size: int) -> int:
        """Core-pruning survivor mask of one level, in aligned space.

        Cached per level against the given core index (a new pseudo
        database resets the cache).
        """
        if clique_size <= 1:
            return self.present_mask
        if core_index is not self._usable_source:
            self._usable_source = core_index
            self._usable_levels = {}
        cached = self._usable_levels.get(clique_size)
        if cached is None:
            bit_of = self.bit_of_vertex
            cached = 0
            for vertex in core_index.usable_at(clique_size):
                cached |= 1 << bit_of[vertex]
            self._usable_levels[clique_size] = cached
        return cached

    def vertices_of(self, mask: int) -> List[int]:
        """Vertex ids of the set bits (in ascending label order)."""
        vertex_by_bit = self.vertex_by_bit
        return [vertex_by_bit[i] for i in iter_bits(mask)]

    def __repr__(self) -> str:
        return f"<AlignedGraphView |V|={len(self.bit_of_vertex)}>"


class DatabaseLabelSpace:
    """The database-global label bit space and its per-transaction views.

    Exists only when *every* transaction has unique per-vertex labels
    (vertex-identity alphabets such as stock tickers).  Bit ``i`` is
    the ``i``-th smallest label of the database alphabet, so the mask
    of "labels strictly below β" is the contiguous low mask
    ``(1 << rank(β)) - 1`` — shared by all transactions.
    """

    __slots__ = ("labels", "bit_of", "graphs", "views", "_sources", "_below")

    def __init__(self, graphs, labels: Tuple[Label, ...]) -> None:
        self.labels = labels
        self.bit_of: Dict[Label, int] = {label: i for i, label in enumerate(labels)}
        self.graphs = list(graphs)
        self.views: List[AlignedGraphView] = [
            AlignedGraphView(graph.bit_index(), graph.adjacency_map(), self.bit_of)
            for graph in self.graphs
        ]
        self._sources = [view.source for view in self.views]
        self._below: Dict[Label, int] = {}

    def mask_below(self, label: Label) -> int:
        """Mask of every label of the alphabet sorting strictly below."""
        cached = self._below.get(label)
        if cached is None:
            cached = (1 << bisect_left(self.labels, label)) - 1
            self._below[label] = cached
        return cached

    def stale(self) -> bool:
        """Whether any transaction mutated since the space was built."""
        for graph, source in zip(self.graphs, self._sources):
            if graph._bit_index is not source:
                return True
        return False

    def __repr__(self) -> str:
        return f"<DatabaseLabelSpace |L|={len(self.labels)} |D|={len(self.views)}>"


def build_label_space(graphs) -> Optional[DatabaseLabelSpace]:
    """Build the aligned label space, or ``None`` if labels repeat.

    A single transaction with a repeated label disables alignment for
    the whole database (the local-bit-space kernel path still applies).
    """
    alphabet: Set[Label] = set()
    graphs = list(graphs)
    for graph in graphs:
        index = graph.bit_index()
        if not index.unique_labels:
            return None
        alphabet.update(index.labels_by_bit)
    return DatabaseLabelSpace(graphs, tuple(sorted(alphabet)))
