"""Database transformations.

Whole-database operations downstream pipelines need around the miner:
merging, label remapping, label-based restriction (the projection that
constraint pushdown uses), transaction filtering, vertex-id
permutation (the mining-invariance probe), and noise injection for
robustness experiments.
All transforms return new databases; inputs are never mutated.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterable, Mapping, Optional, Set

from ..exceptions import DatabaseError
from .database import GraphDatabase
from .graph import Graph, Label


def merge_databases(databases: Iterable[GraphDatabase], name: str = "") -> GraphDatabase:
    """Concatenate databases into one (transactions re-numbered)."""
    merged = GraphDatabase(name=name or "merged")
    for database in databases:
        for graph in database:
            merged.add(graph.copy(graph_id=len(merged)))
    return merged


def relabel_database(
    database: GraphDatabase,
    mapping: Mapping[Label, Label],
    strict: bool = False,
    name: str = "",
) -> GraphDatabase:
    """Apply a label → label mapping to every vertex.

    Unmapped labels pass through unchanged unless ``strict`` is set, in
    which case they raise.  Merging labels (non-injective mappings) is
    allowed and meaningful: it coarsens the pattern space.
    """
    result = GraphDatabase(name=name or f"{database.name}|relabelled")
    for graph in database:
        clone = Graph(len(result))
        for vertex in graph.vertices():
            label = graph.label(vertex)
            if label in mapping:
                label = mapping[label]
            elif strict:
                raise DatabaseError(f"label {label!r} has no mapping")
            clone.add_vertex(vertex, label)
        for u, v in graph.edges():
            clone.add_edge(u, v)
        result.add(clone)
    return result


def restrict_labels(
    database: GraphDatabase,
    keep: Iterable[Label],
    name: str = "",
) -> GraphDatabase:
    """Drop every vertex whose label is not in ``keep``.

    Edges between surviving vertices are preserved; this is the sound
    projection for anti-monotone label constraints (cliques are induced
    by their vertex sets).
    """
    wanted: Set[Label] = set(keep)
    result = GraphDatabase(name=name or f"{database.name}|restricted")
    for graph in database:
        clone = Graph(len(result))
        for vertex in graph.vertices():
            if graph.label(vertex) in wanted:
                clone.add_vertex(vertex, graph.label(vertex))
        for u, v in graph.edges():
            if u in clone and v in clone:
                clone.add_edge(u, v)
        result.add(clone)
    return result


def drop_labels(
    database: GraphDatabase, forbidden: Iterable[Label], name: str = ""
) -> GraphDatabase:
    """Complement of :func:`restrict_labels`."""
    bad = set(forbidden)
    keep = database.distinct_labels() - bad
    return restrict_labels(database, keep, name=name or f"{database.name}|dropped")


def filter_transactions(
    database: GraphDatabase,
    predicate: Callable[[Graph], bool],
    name: str = "",
) -> GraphDatabase:
    """Keep only the transactions satisfying ``predicate``."""
    result = GraphDatabase(name=name or f"{database.name}|filtered")
    for graph in database:
        if predicate(graph):
            result.add(graph.copy(graph_id=len(result)))
    return result


def add_edge_noise(
    database: GraphDatabase,
    add_probability: float = 0.0,
    remove_probability: float = 0.0,
    seed: int = 0,
    name: str = "",
) -> GraphDatabase:
    """Perturb edges: add absent ones / remove present ones independently.

    Robustness experiments use this to measure how planted-pattern
    recovery degrades under noise.  Probabilities are per vertex pair.
    """
    if not 0.0 <= add_probability <= 1.0 or not 0.0 <= remove_probability <= 1.0:
        raise DatabaseError("noise probabilities must be in [0, 1]")
    rng = random.Random(seed)
    result = GraphDatabase(name=name or f"{database.name}|noisy")
    for graph in database:
        clone = Graph(len(result))
        vertices = sorted(graph.vertices())
        for vertex in vertices:
            clone.add_vertex(vertex, graph.label(vertex))
        for i, u in enumerate(vertices):
            for v in vertices[i + 1 :]:
                present = graph.has_edge(u, v)
                if present and remove_probability and rng.random() < remove_probability:
                    continue
                if not present and (not add_probability or rng.random() >= add_probability):
                    continue
                clone.add_edge(u, v)
        result.add(clone)
    return result


def permute_vertex_ids(
    database: GraphDatabase,
    seed: int = 0,
    name: str = "",
) -> GraphDatabase:
    """Apply a random vertex-id permutation to every transaction.

    Each transaction is replaced by an isomorphic copy whose ids are a
    seeded random permutation of the originals (labels and edges follow
    the permutation).  Mining is invariant under this transform —
    canonical forms, supports, and supporting transactions must not
    change — which makes it the regression probe for any state keyed
    by vertex id, such as the bitset kernel's vertex → bit mapping.
    """
    rng = random.Random(seed)
    result = GraphDatabase(name=name or f"{database.name}|permuted")
    for graph in database:
        original = sorted(graph.vertices())
        shuffled = list(original)
        rng.shuffle(shuffled)
        mapping = dict(zip(original, shuffled))
        clone = Graph(len(result))
        for vertex in original:
            clone.add_vertex(mapping[vertex], graph.label(vertex))
        for u, v in graph.edges():
            clone.add_edge(mapping[u], mapping[v])
        result.add(clone)
    return result


def label_projection_map(
    database: GraphDatabase, group_of: Mapping[Label, Label]
) -> Dict[Label, Label]:
    """Complete a partial label grouping to a total mapping (identity rest)."""
    mapping = dict(group_of)
    for label in database.distinct_labels():
        mapping.setdefault(label, label)
    return mapping
