"""Graph substrate: labeled undirected transactions and databases.

This package implements everything CLAN assumes about its input: the
graph-transaction model of Section 2, the adjacency-matrix view of
Figure 2, the pseudo low-degree pruning indices of Section 4.2, and the
single-graph clique routines the evaluation and baselines lean on.
"""

from .cliques import (
    all_cliques,
    clique_number,
    count_cliques_by_size,
    degeneracy_ordering,
    maximal_cliques,
    maximum_clique,
)
from .core_index import CoreIndex, PseudoDatabase, core_numbers
from .database import GraphDatabase
from .dot import clique_embedding_dot, graph_to_dot
from .schema import fingerprint_digests, transaction_digest
from .storage import (
    GraphSource,
    InMemoryGraphSource,
    SqliteGraphSource,
    create_store,
    import_graphs,
    open_source,
)
from .isomorphism import (
    are_isomorphic,
    find_subgraph_isomorphism,
    find_subgraph_isomorphisms,
    is_subgraph_isomorphic,
)
from .examples import (
    PAPER_CLOSED_CLIQUES,
    PAPER_ENUMERATION_ORDER,
    PAPER_FREQUENT_CLIQUES,
    paper_example_database,
    paper_graph_g1,
    paper_graph_g2,
)
from .generators import (
    PlantedClique,
    SyntheticDatabase,
    database_with_planted_cliques,
    default_label_alphabet,
    labelled_clique_database,
    overlapping_cliques_graph,
    plant_clique,
    random_database,
    random_transaction,
)
from .bitset import GraphBitIndex, iter_bits, lowest_bit, mask_from_bits, popcount
from .graph import Graph, Label
from .matrix import AdjacencyMatrix, clique_matrix
from .stats import DatabaseCharacteristics, characteristics_table, database_characteristics
from .validation import Finding, ValidationReport, validate_database
from .transforms import (
    add_edge_noise,
    drop_labels,
    filter_transactions,
    label_projection_map,
    merge_databases,
    permute_vertex_ids,
    relabel_database,
    restrict_labels,
)

__all__ = [
    "AdjacencyMatrix",
    "CoreIndex",
    "DatabaseCharacteristics",
    "Finding",
    "Graph",
    "GraphBitIndex",
    "GraphSource",
    "InMemoryGraphSource",
    "SqliteGraphSource",
    "create_store",
    "fingerprint_digests",
    "import_graphs",
    "open_source",
    "transaction_digest",
    "ValidationReport",
    "validate_database",
    "GraphDatabase",
    "Label",
    "PAPER_CLOSED_CLIQUES",
    "PAPER_ENUMERATION_ORDER",
    "PAPER_FREQUENT_CLIQUES",
    "PlantedClique",
    "PseudoDatabase",
    "SyntheticDatabase",
    "add_edge_noise",
    "all_cliques",
    "are_isomorphic",
    "find_subgraph_isomorphism",
    "find_subgraph_isomorphisms",
    "is_subgraph_isomorphic",
    "drop_labels",
    "filter_transactions",
    "label_projection_map",
    "merge_databases",
    "permute_vertex_ids",
    "relabel_database",
    "restrict_labels",
    "characteristics_table",
    "clique_embedding_dot",
    "clique_matrix",
    "graph_to_dot",
    "clique_number",
    "core_numbers",
    "count_cliques_by_size",
    "database_characteristics",
    "database_with_planted_cliques",
    "default_label_alphabet",
    "degeneracy_ordering",
    "labelled_clique_database",
    "maximal_cliques",
    "maximum_clique",
    "overlapping_cliques_graph",
    "iter_bits",
    "lowest_bit",
    "mask_from_bits",
    "paper_example_database",
    "paper_graph_g1",
    "paper_graph_g2",
    "plant_clique",
    "popcount",
    "random_database",
    "random_transaction",
]
