"""Native-width slab primitives for the mining hot path.

The bitset kernel (:mod:`repro.graphdb.bitset`) keeps every mask a
Python arbitrary-precision ``int``: each ``&``/popcount is fast C code,
but every *operation* still pays interpreter dispatch and a fresh
bigint allocation.  The slab kernel trades those per-operation costs
for numpy's per-*array* cost by batching masks into ``uint64`` slab
arrays and running ``&``/``|``/popcount vectorized across whole rows.

The payoff comes from the **transposed** layout this module builds for
aligned (unique-label) databases.  There, a prefix clique has exactly
one embedding per supporting transaction — a label names at most one
vertex — so the full kernel state of a prefix is *per extension label,
the set of transactions where it extends the prefix*:

``cand[α]``
    ``uint64[tx_words]`` — bit ``t`` set iff label ``α`` is a candidate
    extension of the prefix's embedding in transaction ``t``.

Stacked over the whole alphabet this is one ``[n_labels, tx_words]``
slab, and Algorithm 1's scans become single vectorized expressions:

* extension supports (lines 01–03): ``popcount(cand).sum(axis=-1)``,
* growing by β (line 09): ``cand & nbr[β] & cand[β]``,
* Lemma 4.4's full-connectivity test: ``cand & ~nbr[β]`` is zero.

``nbr`` is the transposed adjacency this module precomputes once per
database: ``nbr[b, a]`` holds, over transactions, where the vertices
labeled ``b`` and ``a`` are adjacent.  Word layout everywhere:
little-endian ``uint64`` words, bit ``t`` of word ``w`` standing for
transaction ``64*w + t`` — the numpy mirror of the int-mask convention,
so conversions are plain byte reinterpretation.

Popcount uses :func:`numpy.bitwise_count` (numpy >= 2.0) and falls
back to an 8-bit lookup table over the byte view on older numpy.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

from .bitset import DatabaseLabelSpace

#: Little-endian uint64: byte views line up with ``int.to_bytes(...,
#: "little")`` regardless of host endianness.
WORD_DTYPE = np.dtype("<u8")

#: Bits per slab word.
WORD_BITS = 64

#: Ceiling on the transposed-build working set (the unpacked
#: ``[n_tx, n_labels, n_labels]`` bit tensor and its transpose), in
#: bytes.  Databases above it simply keep the int-mask kernel.
DEFAULT_BUILD_BYTES = 256 * 1024 * 1024

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")

#: Byte-popcount lookup table for the pre-2.0 numpy fallback.
_POPCOUNT_LUT = np.array([i.bit_count() for i in range(256)], dtype=np.uint8)


def popcount_words(words: np.ndarray) -> np.ndarray:
    """Per-word popcounts of a ``uint64`` array (same shape, small ints).

    Uses :func:`numpy.bitwise_count` when available; otherwise an 8-bit
    lookup over the byte view (both return identical values).
    """
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(words)
    flat = np.ascontiguousarray(words)
    as_bytes = flat.view(np.uint8).reshape(flat.shape + (8,))
    return _POPCOUNT_LUT[as_bytes].sum(axis=-1, dtype=np.uint8)


def popcount_rows(rows: np.ndarray) -> np.ndarray:
    """Set-bit totals along the last (word) axis, as ``int64``.

    ``[..., n_words] uint64 -> [...] int64`` — the vectorized analogue
    of mapping :func:`repro.graphdb.bitset.popcount` over int masks.
    """
    return popcount_words(rows).sum(axis=-1, dtype=np.int64)


def words_from_int(mask: int, n_words: int) -> np.ndarray:
    """An int bitmask as a little-endian ``uint64`` word array."""
    return np.frombuffer(mask.to_bytes(n_words * 8, "little"), dtype=WORD_DTYPE).copy()


def int_from_words(words: np.ndarray) -> int:
    """The int bitmask a word array encodes (inverse of words_from_int)."""
    return int.from_bytes(np.ascontiguousarray(words, dtype=WORD_DTYPE).tobytes(), "little")


def iter_word_bits(words: np.ndarray) -> Iterator[int]:
    """Yield global set-bit positions of a word array, ascending.

    Matches :func:`repro.graphdb.bitset.iter_bits` on the equivalent
    int mask: position ``64*w + t`` for bit ``t`` of word ``w``.
    """
    for w, word in enumerate(words.tolist()):
        base = w * WORD_BITS
        while word:
            low = word & -word
            yield base + low.bit_length() - 1
            word ^= low


def _pack_tx_words(bits: np.ndarray, n_words: int) -> np.ndarray:
    """Pack a trailing transaction-bit axis into ``n_words`` uint64 words."""
    packed = np.packbits(bits, axis=-1, bitorder="little")
    pad = n_words * 8 - packed.shape[-1]
    if pad:
        packed = np.concatenate(
            [packed, np.zeros(packed.shape[:-1] + (pad,), dtype=np.uint8)], axis=-1
        )
    return np.ascontiguousarray(packed).view(WORD_DTYPE)


class TransposedSlabSpace:
    """The transposed slab index of one aligned database snapshot.

    Holds, with label bit order taken from the aligned
    :class:`~repro.graphdb.bitset.DatabaseLabelSpace` and bit ``t`` of
    the word axis standing for transaction ``t``:

    * ``nbr`` — ``uint64[n_labels, n_labels, tx_words]``; bit ``t`` of
      ``nbr[b, a]`` set iff both labels are present in transaction
      ``t`` and their vertices are adjacent there (symmetric, zero
      diagonal: a vertex is not its own neighbour),
    * ``presence`` — ``uint64[n_labels, tx_words]``; bit ``t`` of
      ``presence[b]`` set iff label ``b`` occurs in transaction ``t``,
    * ``label_tx_counts`` — ``int64[n_labels]`` row popcounts of
      ``presence`` (the per-label supports, precomputed so root stores
      are O(1)).

    ``space`` is the label space the slabs were derived from; holders
    compare it by identity to detect database mutation (a mutated
    database yields a *new* aligned space).
    """

    __slots__ = (
        "space",
        "n_labels",
        "n_transactions",
        "tx_words",
        "nbr",
        "presence",
        "label_tx_counts",
        "_nbr_neg",
        "_root_counts",
        "_presence_nonzero",
        "_vertex_matrix",
    )

    def __init__(self, space: DatabaseLabelSpace) -> None:
        views = space.views
        n_labels = len(space.labels)
        n_tx = len(views)
        label_words = (n_labels + WORD_BITS - 1) // WORD_BITS
        tx_words = max(1, (n_tx + WORD_BITS - 1) // WORD_BITS)
        row_bytes = label_words * 8

        # Per-transaction adjacency and presence in label bit order,
        # assembled from the aligned int masks via their little-endian
        # bytes — no per-bit python loops.
        adj = np.zeros((n_tx, n_labels, label_words), dtype=WORD_DTYPE)
        present = np.zeros((n_tx, max(1, label_words)), dtype=WORD_DTYPE)
        for tid, view in enumerate(views):
            buffer = bytearray(n_labels * row_bytes)
            neighbor_masks = view.neighbor_masks
            for bit, vertex in view.vertex_by_bit.items():
                mask = neighbor_masks[vertex]
                if mask:
                    start = bit * row_bytes
                    buffer[start : start + row_bytes] = mask.to_bytes(row_bytes, "little")
            adj[tid] = np.frombuffer(bytes(buffer), dtype=WORD_DTYPE).reshape(
                n_labels, label_words
            )
            present[tid, :label_words] = np.frombuffer(
                view.present_mask.to_bytes(row_bytes, "little"), dtype=WORD_DTYPE
            )

        # [n_tx, n_labels(member), n_labels(other)] adjacency bits, then
        # transpose the transaction axis innermost and repack over it.
        bits = np.unpackbits(
            adj.view(np.uint8).reshape(n_tx, n_labels, row_bytes),
            axis=-1,
            bitorder="little",
        )[:, :, :n_labels]
        self.nbr = _pack_tx_words(
            np.ascontiguousarray(bits.transpose(1, 2, 0)), tx_words
        )
        present_bits = np.unpackbits(
            present.view(np.uint8), axis=-1, bitorder="little"
        )[:, :n_labels]
        self.presence = _pack_tx_words(
            np.ascontiguousarray(present_bits.transpose(1, 0)), tx_words
        )
        self.label_tx_counts = popcount_rows(self.presence)

        self.space = space
        self.n_labels = n_labels
        self.n_transactions = n_tx
        self.tx_words = tx_words

        # Lazy derived slabs (support-independent, shared by every
        # mine call on this snapshot).
        self._nbr_neg: Optional[np.ndarray] = None
        self._root_counts: Optional[np.ndarray] = None
        self._presence_nonzero: Optional[np.ndarray] = None
        self._vertex_matrix: Optional[np.ndarray] = None

    def nbr_neg(self) -> np.ndarray:
        """``~nbr``, cached — the Lemma 4.4 non-adjacency slabs.

        Padding bits beyond the last transaction come back set; callers
        only ever AND these rows against candidate slabs, whose padding
        bits are zero, so the junk never reaches a popcount.
        """
        neg = self._nbr_neg
        if neg is None:
            neg = self._nbr_neg = ~self.nbr
        return neg

    def root_counts(self) -> np.ndarray:
        """``int64[n_labels, n_labels]`` root extension supports, cached.

        Row ``b`` holds the popcounts of ``nbr[b]`` — the support of
        every label as an extension of the 1-clique ``(b,)`` — so a
        root store's extension scan is a row view, not a popcount.
        """
        counts = self._root_counts
        if counts is None:
            counts = self._root_counts = popcount_rows(self.nbr)
        return counts

    def vertex_matrix(self) -> np.ndarray:
        """``int64[n_transactions, n_labels]`` vertex per (tx, bit), cached.

        Cell ``(t, b)`` is the vertex carrying label bit ``b`` in
        transaction ``t`` (labels are unique per vertex wherever a slab
        space exists), ``-1`` where the label is absent.  Lets witness
        materialisation gather whole embeddings with one fancy index
        instead of per-bit dict lookups.
        """
        matrix = self._vertex_matrix
        if matrix is None:
            matrix = np.full(
                (self.n_transactions, self.n_labels), -1, dtype=np.int64
            )
            for tid, view in enumerate(self.space.views):
                for bit, vertex in view.vertex_by_bit.items():
                    matrix[tid, bit] = vertex
            self._vertex_matrix = matrix
        return matrix

    def presence_nonzero(self) -> np.ndarray:
        """Per-label count of nonzero ``presence`` words, cached."""
        nonzero = self._presence_nonzero
        if nonzero is None:
            nonzero = self._presence_nonzero = np.count_nonzero(self.presence, axis=1)
        return nonzero

    def transactions_of(self, row: np.ndarray) -> List[int]:
        """Transaction ids of a word-mask row, ascending."""
        return list(iter_word_bits(row))

    def __repr__(self) -> str:
        return (
            f"<TransposedSlabSpace |L|={self.n_labels} |D|={self.n_transactions} "
            f"tx_words={self.tx_words}>"
        )


def build_slab_space(
    space: Optional[DatabaseLabelSpace],
    max_build_bytes: int = DEFAULT_BUILD_BYTES,
) -> Optional[TransposedSlabSpace]:
    """Build the transposed slab index, or ``None`` when ineligible.

    Requires an aligned label space (unique per-vertex labels), at
    least one label and transaction, and a build working set — two
    transient ``[n_tx, n_labels, n_labels]`` byte tensors — under
    ``max_build_bytes``.  Ineligible databases keep the int-mask
    kernel; results are byte-identical either way.
    """
    if space is None:
        return None
    n_labels = len(space.labels)
    n_tx = len(space.views)
    if not n_labels or not n_tx:
        return None
    if 2 * n_tx * n_labels * n_labels > max_build_bytes:
        return None
    return TransposedSlabSpace(space)
