"""Database integrity validation.

A loud pre-flight check for externally supplied databases (files,
converters): structural invariants the rest of the library assumes,
plus advisory findings (empty transactions, duplicate transactions,
label-type oddities) that usually indicate a conversion bug upstream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..exceptions import DatabaseError
from .database import GraphDatabase
from .graph import Graph


@dataclass(frozen=True)
class Finding:
    """One validation finding."""

    severity: str  # "error" | "warning"
    transaction: int  # -1 for database-level findings
    message: str

    def render(self) -> str:
        where = "database" if self.transaction < 0 else f"transaction {self.transaction}"
        return f"[{self.severity}] {where}: {self.message}"


@dataclass
class ValidationReport:
    """All findings of one validation pass."""

    findings: List[Finding] = field(default_factory=list)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def ok(self) -> bool:
        """Whether no errors (warnings allowed) were found."""
        return not self.errors

    def raise_if_invalid(self) -> None:
        """Raise :class:`DatabaseError` summarising any errors."""
        if self.errors:
            summary = "; ".join(f.render() for f in self.errors[:5])
            more = f" (+{len(self.errors) - 5} more)" if len(self.errors) > 5 else ""
            raise DatabaseError(f"invalid database: {summary}{more}")

    def render(self) -> str:
        if not self.findings:
            return "database valid: no findings"
        return "\n".join(f.render() for f in self.findings)


def _transaction_signature(graph: Graph) -> Tuple:
    """Isomorphism-insensitive-ish duplicate signature (exact on ids)."""
    return (
        tuple(sorted((v, graph.label(v)) for v in graph.vertices())),
        tuple(sorted(graph.edges())),
    )


def validate_database(database: GraphDatabase, max_findings: int = 100) -> ValidationReport:
    """Validate a database; never raises (see ``raise_if_invalid``)."""
    report = ValidationReport()

    def add(severity: str, transaction: int, message: str) -> None:
        if len(report.findings) < max_findings:
            report.findings.append(Finding(severity, transaction, message))

    if len(database) == 0:
        add("error", -1, "database has no transactions")
        return report

    signatures: Dict[Tuple, int] = {}
    for tid, graph in enumerate(database):
        if graph.vertex_count == 0:
            add("warning", tid, "transaction has no vertices")
            continue
        for vertex in graph.vertices():
            label = graph.label(vertex)
            if not isinstance(label, str):
                add("error", tid, f"vertex {vertex} label {label!r} is not a string")
            elif not label:
                add("error", tid, f"vertex {vertex} has an empty label")
            elif label != label.strip():
                add(
                    "warning", tid,
                    f"vertex {vertex} label {label!r} has surrounding whitespace",
                )
            if not isinstance(vertex, int):
                add("error", tid, f"vertex id {vertex!r} is not an integer")
        # Adjacency symmetry and dangling-neighbour checks.
        for vertex in graph.vertices():
            for neighbor in graph.neighbors(vertex):
                if not graph.has_vertex(neighbor):
                    add("error", tid, f"edge to unknown vertex {neighbor} from {vertex}")
                elif vertex not in graph.neighbors(neighbor):
                    add("error", tid, f"asymmetric adjacency between {vertex} and {neighbor}")
        if graph.edge_count == 0 and graph.vertex_count > 1:
            add("warning", tid, "transaction has vertices but no edges")
        signature = _transaction_signature(graph)
        if signature in signatures:
            add(
                "warning", tid,
                f"identical to transaction {signatures[signature]} "
                f"(intentional for replication; suspicious otherwise)",
            )
        else:
            signatures[signature] = tid
    return report
