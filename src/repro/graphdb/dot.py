"""Graphviz DOT export for graphs and mined patterns.

Used to draw Figure 5-style pictures: a transaction graph, optionally
with the vertices of one or more mined cliques highlighted.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Set

from .graph import Graph

#: Fill colors cycled over highlight groups.
_PALETTE = ("lightblue", "palegreen", "lightsalmon", "gold", "plum", "khaki")


def _quote(text: str) -> str:
    return '"' + text.replace('"', '\\"') + '"'


def graph_to_dot(
    graph: Graph,
    name: str = "G",
    highlights: Sequence[Iterable[int]] = (),
    show_ids: bool = False,
) -> str:
    """Render a transaction as an undirected DOT graph.

    ``highlights`` is a sequence of vertex groups (e.g. clique
    embeddings); each group gets one fill color from a fixed palette.
    Vertices display their label (plus the id when ``show_ids``).
    """
    color_of: Dict[int, str] = {}
    for index, group in enumerate(highlights):
        color = _PALETTE[index % len(_PALETTE)]
        for vertex in group:
            color_of.setdefault(vertex, color)

    lines = [f"graph {_quote(name)} {{", "  node [shape=circle];"]
    for vertex in sorted(graph.vertices()):
        label = graph.label(vertex)
        text = f"{label}#{vertex}" if show_ids else label
        attrs = [f"label={_quote(text)}"]
        if vertex in color_of:
            attrs.append("style=filled")
            attrs.append(f"fillcolor={color_of[vertex]}")
        lines.append(f"  {vertex} [{', '.join(attrs)}];")
    for u, v in sorted(graph.edges()):
        style = ""
        if u in color_of and color_of.get(u) == color_of.get(v):
            style = " [penwidth=2]"
        lines.append(f"  {u} -- {v}{style};")
    lines.append("}")
    return "\n".join(lines)


def clique_embedding_dot(
    graph: Graph,
    embedding: Iterable[int],
    name: str = "clique",
    context_hops: int = 1,
) -> str:
    """Render a clique embedding with ``context_hops`` of neighbourhood.

    The Figure 5 visual: the clique filled and bold, its immediate
    context faded around it.
    """
    members: Set[int] = set(embedding)
    context = set(members)
    frontier = set(members)
    for _ in range(max(0, context_hops)):
        grown: Set[int] = set()
        for vertex in frontier:
            grown |= graph.neighbors(vertex)
        frontier = grown - context
        context |= grown
    sub = graph.induced_subgraph(context)
    return graph_to_dot(sub, name=name, highlights=[members])
