"""Labeled undirected graph transactions.

A graph transaction is defined in Section 2 of the paper as a tuple
``G = {V, E, L_V, F_V}``: a set of vertices, undirected edges, vertex
labels, and a mapping from vertices to labels.  Edge labels are
deliberately not modelled — the paper explicitly ignores them when
computing frequent closed cliques (end of Section 2).

The representation here favours the access patterns CLAN needs:

* adjacency is stored as one ``set`` of neighbour ids per vertex, so
  "is v adjacent to every vertex of this embedding" and common-neighbour
  intersections are fast;
* vertices of each label are indexed (``vertices_with_label``) because
  clique extension enumerates candidate vertices label by label;
* a lazily-built bitset index (``neighbor_mask``/``label_mask``, one
  bit per vertex in sorted-id order) serves the miner's ``bitset``
  kernel, which intersects candidate sets with integer ``&`` instead
  of hashed set operations.

Vertex ids are small integers supplied by the caller; they do not need
to be contiguous, which lets pruned "pseudo databases" reuse the ids of
the original graph (Section 4.2 of the paper).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from ..exceptions import (
    DuplicateVertexError,
    GraphError,
    SelfLoopError,
    VertexNotFoundError,
)
from .bitset import GraphBitIndex

Label = str


class Graph:
    """A vertex-labeled, undirected, simple graph transaction.

    Parameters
    ----------
    graph_id:
        Identifier of this transaction inside its database (purely
        informational; the database assigns authoritative indices).

    Examples
    --------
    >>> g = Graph()
    >>> g.add_vertex(0, "a")
    >>> g.add_vertex(1, "b")
    >>> g.add_edge(0, 1)
    >>> g.has_edge(1, 0)
    True
    >>> sorted(g.neighbors(0))
    [1]
    """

    __slots__ = (
        "graph_id",
        "_labels",
        "_adjacency",
        "_label_index",
        "_edge_count",
        "_bit_index",
        "_core_index",
    )

    def __init__(self, graph_id: Optional[int] = None) -> None:
        self.graph_id = graph_id
        self._labels: Dict[int, Label] = {}
        self._adjacency: Dict[int, Set[int]] = {}
        self._label_index: Dict[Label, Set[int]] = {}
        self._edge_count = 0
        self._bit_index: Optional[GraphBitIndex] = None
        self._core_index = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_vertex(self, vertex: int, label: Label) -> None:
        """Add a vertex with the given label.

        Raises :class:`DuplicateVertexError` if the id is already used.
        """
        if vertex in self._labels:
            raise DuplicateVertexError(vertex)
        self._labels[vertex] = label
        self._adjacency[vertex] = set()
        self._label_index.setdefault(label, set()).add(vertex)
        self._bit_index = None
        self._core_index = None

    def add_edge(self, u: int, v: int) -> None:
        """Add an undirected edge between two existing vertices.

        Adding an edge twice is a no-op; self loops are rejected because
        transactions are simple graphs.
        """
        if u == v:
            raise SelfLoopError(u)
        if u not in self._labels:
            raise VertexNotFoundError(u)
        if v not in self._labels:
            raise VertexNotFoundError(v)
        if v in self._adjacency[u]:
            return
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)
        self._edge_count += 1
        self._bit_index = None
        self._core_index = None

    def remove_vertex(self, vertex: int) -> None:
        """Remove a vertex and all its incident edges."""
        if vertex not in self._labels:
            raise VertexNotFoundError(vertex)
        for neighbor in self._adjacency[vertex]:
            self._adjacency[neighbor].discard(vertex)
            self._edge_count -= 1
        label = self._labels[vertex]
        self._label_index[label].discard(vertex)
        if not self._label_index[label]:
            del self._label_index[label]
        del self._adjacency[vertex]
        del self._labels[vertex]
        self._bit_index = None
        self._core_index = None

    @classmethod
    def from_edges(
        cls,
        labels: Mapping[int, Label],
        edges: Iterable[Tuple[int, int]],
        graph_id: Optional[int] = None,
    ) -> "Graph":
        """Build a graph from a label mapping and an edge list."""
        graph = cls(graph_id)
        for vertex, label in labels.items():
            graph.add_vertex(vertex, label)
        for u, v in edges:
            graph.add_edge(u, v)
        return graph

    def copy(self, graph_id: Optional[int] = None) -> "Graph":
        """Return a deep copy, optionally with a new graph id."""
        clone = Graph(self.graph_id if graph_id is None else graph_id)
        clone._labels = dict(self._labels)
        clone._adjacency = {v: set(nbrs) for v, nbrs in self._adjacency.items()}
        clone._label_index = {l: set(vs) for l, vs in self._label_index.items()}
        clone._edge_count = self._edge_count
        return clone

    def relabeled(self, offset: int, graph_id: Optional[int] = None) -> "Graph":
        """Return a copy whose vertex ids are shifted by ``offset``.

        Used by database replication (the scalability experiment of
        Figure 7(b)) to keep ids unique if transactions are merged.
        """
        clone = Graph(graph_id)
        for vertex, label in self._labels.items():
            clone.add_vertex(vertex + offset, label)
        for u, v in self.edges():
            clone.add_edge(u + offset, v + offset)
        return clone

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def vertex_count(self) -> int:
        """Number of vertices, ``|V|``."""
        return len(self._labels)

    @property
    def edge_count(self) -> int:
        """Number of undirected edges, ``|E|``."""
        return self._edge_count

    def vertices(self) -> Iterator[int]:
        """Iterate over vertex ids (insertion order)."""
        return iter(self._labels)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over undirected edges as ``(u, v)`` with ``u < v``."""
        for u, nbrs in self._adjacency.items():
            for v in nbrs:
                if u < v:
                    yield (u, v)

    def label(self, vertex: int) -> Label:
        """Return the label of a vertex."""
        try:
            return self._labels[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def labels(self) -> Dict[int, Label]:
        """Return a copy of the vertex → label mapping."""
        return dict(self._labels)

    def label_map(self) -> Mapping[int, Label]:
        """Return the live vertex → label mapping (do not mutate).

        Exposed for hot loops (the miner's extension scans) that would
        otherwise pay a method call per vertex; treat it as read-only.
        """
        return self._labels

    def adjacency_map(self) -> Mapping[int, Set[int]]:
        """Return the live vertex → neighbour-set mapping (do not mutate).

        The adjacency analogue of :meth:`label_map`, for the miner's
        per-candidate intersection loops.
        """
        return self._adjacency

    def distinct_labels(self) -> Set[Label]:
        """Return the set of labels in use, ``L_V``."""
        return set(self._label_index)

    def vertices_with_label(self, label: Label) -> FrozenSet[int]:
        """Return the vertices carrying ``label`` (empty if none)."""
        return frozenset(self._label_index.get(label, frozenset()))

    def has_vertex(self, vertex: int) -> bool:
        """Return whether a vertex id exists."""
        return vertex in self._labels

    def has_edge(self, u: int, v: int) -> bool:
        """Return whether an undirected edge exists between ``u`` and ``v``."""
        return v in self._adjacency.get(u, ())

    def neighbors(self, vertex: int) -> Set[int]:
        """Return the (live) neighbour set of a vertex.

        The returned set is the internal adjacency set; callers must not
        mutate it.  It is exposed directly because CLAN's hot loop is
        set intersections over neighbourhoods.
        """
        try:
            return self._adjacency[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def degree(self, vertex: int) -> int:
        """Return the degree of a vertex."""
        return len(self.neighbors(vertex))

    def max_degree(self) -> int:
        """Return the maximum vertex degree (0 for an empty graph)."""
        if not self._adjacency:
            return 0
        return max(len(nbrs) for nbrs in self._adjacency.values())

    def density(self) -> float:
        """Return ``2|E| / (|V| (|V|-1))``; 0.0 for fewer than 2 vertices."""
        n = self.vertex_count
        if n < 2:
            return 0.0
        return 2.0 * self._edge_count / (n * (n - 1))

    def is_clique(self, vertices: Iterable[int]) -> bool:
        """Return whether the given vertices are pairwise adjacent.

        A set of fewer than two vertices is trivially a clique.  Raises
        :class:`VertexNotFoundError` for unknown ids.
        """
        vertex_list = list(vertices)
        for vertex in vertex_list:
            if vertex not in self._labels:
                raise VertexNotFoundError(vertex)
        for i, u in enumerate(vertex_list):
            adjacency = self._adjacency[u]
            for v in vertex_list[i + 1 :]:
                if v not in adjacency:
                    return False
        return True

    def label_multiset(self, vertices: Iterable[int]) -> Tuple[Label, ...]:
        """Return the sorted tuple of labels of the given vertices."""
        return tuple(sorted(self._labels[v] for v in vertices))

    def induced_subgraph(self, vertices: Iterable[int], graph_id: Optional[int] = None) -> "Graph":
        """Return the subgraph induced by ``vertices`` (ids preserved)."""
        keep = set(vertices)
        subgraph = Graph(graph_id if graph_id is not None else self.graph_id)
        for vertex in keep:
            subgraph.add_vertex(vertex, self.label(vertex))
        for vertex in keep:
            for neighbor in self._adjacency[vertex]:
                if neighbor in keep and vertex < neighbor:
                    subgraph.add_edge(vertex, neighbor)
        return subgraph

    def common_neighbors(self, vertices: Iterable[int]) -> Set[int]:
        """Return vertices adjacent to *every* vertex in ``vertices``.

        This is the extension-vertex set ``V_i`` of Section 4.3 for an
        embedding.  Raises :class:`GraphError` when called with no
        vertices, because "common neighbours of nothing" is ambiguous.
        """
        vertex_list = list(vertices)
        if not vertex_list:
            raise GraphError("common_neighbors requires at least one vertex")
        # Intersect starting from the smallest neighbourhood.
        vertex_list.sort(key=lambda v: len(self.neighbors(v)))
        result = set(self._adjacency[vertex_list[0]])
        for vertex in vertex_list[1:]:
            result &= self._adjacency[vertex]
            if not result:
                break
        result.difference_update(vertex_list)
        return result

    # ------------------------------------------------------------------
    # Bitset kernel (lazily-built mask index)
    # ------------------------------------------------------------------
    def bit_index(self) -> GraphBitIndex:
        """Return the lazily-built mask index of this graph.

        Bit ``i`` stands for the ``i``-th smallest vertex id, so the
        mapping is a pure function of the vertex set — stable across
        construction order and isomorphic re-insertion.  The index is
        invalidated by any mutation (``add_vertex``/``add_edge``/
        ``remove_vertex``) and rebuilt on next access.
        """
        index = self._bit_index
        if index is None:
            index = self._bit_index = GraphBitIndex(self._labels, self._adjacency)
        return index

    def core_index(self):
        """Return the lazily-built core-decomposition index of this graph.

        The :class:`~repro.graphdb.core_index.CoreIndex` is a pure
        function of the graph structure, so it is cached here and
        invalidated on mutation — repeated mining runs over the same
        database (parameter sweeps, benchmarks) pay for the core
        decomposition once instead of once per run.
        """
        index = self._core_index
        if index is None:
            from .core_index import CoreIndex

            index = self._core_index = CoreIndex(self)
        return index

    def vertex_bit_order(self) -> Tuple[int, ...]:
        """Bit position → vertex id (ascending vertex ids)."""
        return self.bit_index().order

    def bit_of(self, vertex: int) -> int:
        """Bit position of a vertex in this graph's masks."""
        try:
            return self.bit_index().bit[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def neighbor_mask(self, vertex: int) -> int:
        """Neighbour set of ``vertex`` as a bitmask."""
        try:
            return self.bit_index().neighbor_masks[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def label_mask(self, label: Label) -> int:
        """Mask of the vertices carrying ``label`` (0 if none)."""
        return self.bit_index().label_masks.get(label, 0)

    def vertices_mask(self) -> int:
        """Mask with every vertex bit set."""
        return self.bit_index().all_mask

    def mask_of(self, vertices: Iterable[int]) -> int:
        """Mask of an arbitrary vertex-id collection."""
        try:
            return self.bit_index().mask_of(vertices)
        except KeyError as exc:
            raise VertexNotFoundError(exc.args[0]) from None

    def vertices_from_mask(self, mask: int) -> List[int]:
        """Vertex ids of the set bits of ``mask``, ascending."""
        return self.bit_index().vertices_of(mask)

    def connected_components(self) -> List[Set[int]]:
        """Return connected components as vertex-id sets."""
        seen: Set[int] = set()
        components: List[Set[int]] = []
        for start in self._labels:
            if start in seen:
                continue
            component = {start}
            frontier = [start]
            while frontier:
                vertex = frontier.pop()
                for neighbor in self._adjacency[vertex]:
                    if neighbor not in component:
                        component.add(neighbor)
                        frontier.append(neighbor)
            seen |= component
            components.append(component)
        return components

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __contains__(self, vertex: object) -> bool:
        return vertex in self._labels

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self) -> Iterator[int]:
        return iter(self._labels)

    def __eq__(self, other: object) -> bool:
        """Structural equality: same ids, labels, and edges."""
        if not isinstance(other, Graph):
            return NotImplemented
        return self._labels == other._labels and self._adjacency == other._adjacency

    def __hash__(self) -> int:  # pragma: no cover - explicit unhashability
        raise TypeError("Graph is mutable and unhashable")

    def __repr__(self) -> str:
        gid = f" id={self.graph_id}" if self.graph_id is not None else ""
        return f"<Graph{gid} |V|={self.vertex_count} |E|={self.edge_count}>"
