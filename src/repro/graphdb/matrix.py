"""Adjacency-matrix representation of graph transactions (paper Figure 2).

The paper represents each transaction as an adjacency matrix ``M`` whose
diagonal holds vertex labels and whose off-diagonal entries hold edge
presence bits.  This module provides that representation, conversion to
and from :class:`~repro.graphdb.graph.Graph`, and the classic
*adjacency-matrix code* (the upper-triangular entry sequence) that
earlier miners such as FSG/FFSM use as a canonical form — included both
for I/O and so benchmarks can contrast its cost with CLAN's string
canonical form.
"""

from __future__ import annotations

from itertools import permutations
from typing import List, Optional, Sequence, Tuple

from ..exceptions import GraphError
from .bitset import popcount
from .graph import Graph, Label


class AdjacencyMatrix:
    """Dense adjacency matrix with labels on the diagonal.

    Vertices are positions ``0..n-1``; ``labels[i]`` is ``M[i][i]`` and
    ``bits[i][j]`` is 1 iff an edge joins positions ``i`` and ``j``.
    """

    __slots__ = ("labels", "bits")

    def __init__(self, labels: Sequence[Label], bits: Sequence[Sequence[int]]) -> None:
        n = len(labels)
        if len(bits) != n or any(len(row) != n for row in bits):
            raise GraphError("adjacency matrix must be square and match the label count")
        for i in range(n):
            if bits[i][i] != 0:
                raise GraphError("diagonal entries must be 0 (labels are stored separately)")
            for j in range(i + 1, n):
                if bits[i][j] not in (0, 1):
                    raise GraphError("off-diagonal entries must be 0 or 1")
                if bits[i][j] != bits[j][i]:
                    raise GraphError("adjacency matrix of an undirected graph must be symmetric")
        self.labels: Tuple[Label, ...] = tuple(labels)
        self.bits: Tuple[Tuple[int, ...], ...] = tuple(tuple(row) for row in bits)

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: Graph, order: Optional[Sequence[int]] = None) -> "AdjacencyMatrix":
        """Build a matrix from a graph, optionally in a given vertex order."""
        vertex_order: List[int] = list(order) if order is not None else sorted(graph.vertices())
        if sorted(vertex_order) != sorted(graph.vertices()):
            raise GraphError("order must be a permutation of the graph's vertices")
        index = {vertex: i for i, vertex in enumerate(vertex_order)}
        n = len(vertex_order)
        bits = [[0] * n for _ in range(n)]
        for u, v in graph.edges():
            i, j = index[u], index[v]
            bits[i][j] = 1
            bits[j][i] = 1
        return cls([graph.label(v) for v in vertex_order], bits)

    def to_graph(self, graph_id: Optional[int] = None) -> Graph:
        """Materialise the matrix as a :class:`Graph` with ids ``0..n-1``."""
        graph = Graph(graph_id)
        for i, label in enumerate(self.labels):
            graph.add_vertex(i, label)
        n = len(self.labels)
        for i in range(n):
            for j in range(i + 1, n):
                if self.bits[i][j]:
                    graph.add_edge(i, j)
        return graph

    # ------------------------------------------------------------------
    # Matrix codes
    # ------------------------------------------------------------------
    def code(self) -> Tuple[object, ...]:
        """Return the matrix code: labels then the upper-triangle bit sequence.

        This is the per-ordering code of Kuramochi & Karypis-style
        canonical forms; :meth:`canonical_code` minimises it over all
        vertex permutations.
        """
        n = len(self.labels)
        upper = [self.bits[i][j] for i in range(n) for j in range(i + 1, n)]
        return tuple(self.labels) + tuple(upper)

    def permuted(self, order: Sequence[int]) -> "AdjacencyMatrix":
        """Return the matrix re-indexed by the given position permutation."""
        n = len(self.labels)
        if sorted(order) != list(range(n)):
            raise GraphError("order must be a permutation of 0..n-1")
        labels = [self.labels[p] for p in order]
        bits = [[self.bits[order[i]][order[j]] for j in range(n)] for i in range(n)]
        return AdjacencyMatrix(labels, bits)

    def canonical_code(self) -> Tuple[object, ...]:
        """Return the minimum matrix code over all vertex permutations.

        Exponential in the vertex count — exactly the cost the paper's
        Section 4.1 argues against for cliques.  Intended for small
        graphs (tests, the matrix-vs-string ablation benchmark).
        """
        n = len(self.labels)
        if n > 9:
            raise GraphError(
                "canonical_code enumerates n! permutations and is capped at n=9; "
                "use the CLAN string canonical form for cliques instead"
            )
        return min(self.permuted(list(p)).code() for p in permutations(range(n)))

    def is_clique_matrix(self) -> bool:
        """Return whether every off-diagonal bit is 1 (the graph is a clique)."""
        n = len(self.labels)
        return all(self.bits[i][j] == 1 for i in range(n) for j in range(i + 1, n))

    # ------------------------------------------------------------------
    # Bitset interop
    # ------------------------------------------------------------------
    def bit_rows(self) -> Tuple[int, ...]:
        """Pack each adjacency row into one integer mask.

        Row ``i``'s bit ``j`` is set iff an edge joins positions ``i``
        and ``j`` — the same packing the miner's bitset kernel builds
        per graph via :meth:`Graph.neighbor_mask`, so the two layers
        can be checked against each other.
        """
        n = len(self.labels)
        rows = []
        for i in range(n):
            mask = 0
            row = self.bits[i]
            for j in range(n):
                if row[j]:
                    mask |= 1 << j
            rows.append(mask)
        return tuple(rows)

    @classmethod
    def from_bit_rows(cls, labels: Sequence[Label], rows: Sequence[int]) -> "AdjacencyMatrix":
        """Rebuild a matrix from labels and packed adjacency rows."""
        n = len(labels)
        if len(rows) != n:
            raise GraphError("need one packed row per label")
        for i, mask in enumerate(rows):
            if mask < 0 or mask >> n:
                raise GraphError(f"row {i} has bits outside positions 0..{n - 1}")
        bits = [[(rows[i] >> j) & 1 for j in range(n)] for i in range(n)]
        return cls(labels, bits)

    def edge_count(self) -> int:
        """Number of undirected edges, via popcount over the packed rows."""
        return sum(popcount(row) for row in self.bit_rows()) // 2

    # ------------------------------------------------------------------
    # Rendering (matches the look of Figure 2)
    # ------------------------------------------------------------------
    def render(self) -> str:
        """Render the matrix with labels on the diagonal, as in Figure 2."""
        n = len(self.labels)
        cells = [
            [self.labels[i] if i == j else str(self.bits[i][j]) for j in range(n)]
            for i in range(n)
        ]
        width = max((len(c) for row in cells for c in row), default=1)
        return "\n".join(" ".join(c.rjust(width) for c in row) for row in cells)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AdjacencyMatrix):
            return NotImplemented
        return self.labels == other.labels and self.bits == other.bits

    def __hash__(self) -> int:
        return hash((self.labels, self.bits))

    def __repr__(self) -> str:
        return f"<AdjacencyMatrix n={len(self.labels)}>"


def clique_matrix(labels: Sequence[Label]) -> AdjacencyMatrix:
    """Return the adjacency matrix of the clique over the given labels."""
    n = len(labels)
    bits = [[0 if i == j else 1 for j in range(n)] for i in range(n)]
    return AdjacencyMatrix(labels, bits)
