"""Pluggable transaction storage behind :class:`GraphDatabase`.

A :class:`GraphSource` is the storage seam the database delegates to:
random access by transaction id, ordered (streaming) iteration,
range iteration for sharding, per-label supports, per-transaction
digests, and the lazily-built kernel spaces.  Two backends implement
it:

* :class:`InMemoryGraphSource` — the historical Python list.  The
  default; every existing construction path uses it unchanged.
* :class:`SqliteGraphSource` — an on-disk SQLite store
  (:mod:`repro.graphdb.schema`) that decodes transactions on demand in
  shard-sized batches and never holds the full database resident.
  Label supports, digests, and size statistics come from dedicated
  columns, so fingerprinting and root planning do not decode graphs
  at all.

The seam is what makes out-of-core mining composable: the engine only
ever sees a :class:`GraphDatabase`, and
:func:`repro.core.sharding.mine_sharded` materialises one shard of any
source at a time.
"""

from __future__ import annotations

import os
import sqlite3
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from ..exceptions import DatabaseError
from .bitset import DatabaseLabelSpace, build_label_space
from .graph import Graph, Label
from .schema import (
    DDL,
    SCHEMA_VERSION,
    decode_graph,
    encode_graph,
    transaction_digest,
)

PathLike = Union[str, Path]

# Sentinel: the aligned label space has not been computed yet (``None``
# is a valid cached answer, meaning "alignment impossible").
_SPACE_UNSET = object()


class GraphSource:
    """The storage protocol behind :class:`~repro.graphdb.database.
    GraphDatabase`.

    Subclasses must preserve the database's core invariant: transaction
    ids are dense positions ``0..len-1`` in append order, and a graph,
    once appended, is never mutated through the source.
    """

    name: str = ""

    # -- required surface ----------------------------------------------
    def __len__(self) -> int:
        raise NotImplementedError

    def get(self, tid: int) -> Graph:
        """Transaction by id; raises :class:`DatabaseError` out of range."""
        raise NotImplementedError

    def __iter__(self) -> Iterator[Graph]:
        return self.iter_range(0, len(self))

    def iter_range(self, lo: int, hi: int) -> Iterator[Graph]:
        """Stream transactions ``lo <= tid < hi`` in tid order."""
        raise NotImplementedError

    def append(self, graph: Graph) -> int:
        """Persist a transaction; returns its assigned tid."""
        raise NotImplementedError

    def label_supports(self) -> Dict[Label, int]:
        """Per label, the number of transactions containing it."""
        raise NotImplementedError

    def transaction_digests(self) -> Iterator[str]:
        """Per-transaction structural digests, in tid order."""
        raise NotImplementedError

    # -- kernel spaces --------------------------------------------------
    def aligned_space(self) -> Optional[DatabaseLabelSpace]:
        """The database-global label bit space, or ``None``.

        ``None`` both when alignment is impossible and when the backend
        cannot afford it (alignment requires every transaction
        resident); kernels fall back to per-graph masks either way.
        """
        return None

    def slab_space(self):
        """The transposed uint64 slab index, or ``None`` (see above)."""
        return None

    def close(self) -> None:
        """Release backend resources (no-op for in-memory)."""

    def _check_range(self, tid: int) -> None:
        if not 0 <= tid < len(self):
            raise DatabaseError(
                f"transaction id {tid} out of range for database of size {len(self)}"
            )


class InMemoryGraphSource(GraphSource):
    """The historical backend: a Python list of resident graphs.

    Owns the lazily-built aligned/slab spaces that used to live on
    :class:`GraphDatabase` — they are storage-level caches (they index
    the resident graphs), so they moved with the storage.
    """

    __slots__ = ("graphs", "name", "_aligned_space", "_slab_cache")

    def __init__(self, graphs: Optional[List[Graph]] = None, name: str = "") -> None:
        self.graphs: List[Graph] = list(graphs) if graphs else []
        self.name = name
        self._aligned_space: object = _SPACE_UNSET
        self._slab_cache: Optional[tuple] = None

    def __len__(self) -> int:
        return len(self.graphs)

    def get(self, tid: int) -> Graph:
        try:
            return self.graphs[tid]
        except IndexError:
            raise DatabaseError(
                f"transaction id {tid} out of range for database of size "
                f"{len(self.graphs)}"
            ) from None

    def __iter__(self) -> Iterator[Graph]:
        return iter(self.graphs)

    def iter_range(self, lo: int, hi: int) -> Iterator[Graph]:
        return iter(self.graphs[lo:hi])

    def append(self, graph: Graph) -> int:
        tid = len(self.graphs)
        self.graphs.append(graph)
        self._aligned_space = _SPACE_UNSET
        return tid

    def label_supports(self) -> Dict[Label, int]:
        supports: Dict[Label, int] = {}
        for graph in self.graphs:
            for label in graph.distinct_labels():
                supports[label] = supports.get(label, 0) + 1
        return supports

    def transaction_digests(self) -> Iterator[str]:
        return (transaction_digest(graph) for graph in self.graphs)

    def aligned_space(self) -> Optional[DatabaseLabelSpace]:
        space = self._aligned_space
        if space is _SPACE_UNSET or (space is not None and space.stale()):  # type: ignore[union-attr]
            space = build_label_space(self.graphs)
            self._aligned_space = space
        return space  # type: ignore[return-value]

    def slab_space(self):
        space = self.aligned_space()
        if space is None:
            return None
        cached = self._slab_cache
        if cached is not None and cached[0] is space:
            return cached[1]
        from .slab import build_slab_space

        slab = build_slab_space(space)
        self._slab_cache = (space, slab)
        return slab


class SqliteGraphSource(GraphSource):
    """An on-disk SQLite transaction store.

    Transactions live one per row (:mod:`repro.graphdb.schema`); reads
    decode on demand and cache a bounded number of *batches* (windows
    of ``batch_size`` consecutive tids), so the miner's random-access
    patterns — which are strongly tid-local — hit warm decodes while
    resident memory stays O(``batch_size`` × ``max_batches``), not
    O(database).

    The connection is opened lazily and dropped on pickling, so a
    source (and any :class:`GraphDatabase` view over it) can cross a
    process boundary to worker pools; each process reopens its own
    connection on first use.
    """

    __slots__ = (
        "path",
        "name",
        "batch_size",
        "max_batches",
        "_conn",
        "_len",
        "_label_supports",
        "_batches",
        "_batch_order",
    )

    def __init__(
        self,
        path: PathLike,
        *,
        name: Optional[str] = None,
        batch_size: int = 64,
        max_batches: int = 4,
        create: bool = False,
    ) -> None:
        if batch_size < 1:
            raise DatabaseError(f"batch_size must be >= 1, got {batch_size}")
        if max_batches < 1:
            raise DatabaseError(f"max_batches must be >= 1, got {max_batches}")
        self.path = str(path)
        self.batch_size = batch_size
        self.max_batches = max_batches
        self._conn: Optional[sqlite3.Connection] = None
        self._len: Optional[int] = None
        self._label_supports: Optional[Dict[Label, int]] = None
        self._batches: Dict[int, Dict[int, Graph]] = {}
        self._batch_order: List[int] = []
        if not create and not os.path.exists(self.path):
            raise DatabaseError(f"no graph store at {self.path!r}")
        if create:
            conn = self._connect()
            for statement in DDL:
                conn.execute(statement)
            conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                ("schema_version", str(SCHEMA_VERSION)),
            )
            if name is not None:
                conn.execute(
                    "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                    ("name", name),
                )
            conn.commit()
        self.name = name if name is not None else self._stored_name()

    # -- connection management -----------------------------------------
    def _connect(self) -> sqlite3.Connection:
        conn = self._conn
        if conn is None:
            conn = self._conn = sqlite3.connect(self.path)
        return conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __getstate__(self):
        # Connections and decode caches do not cross processes.
        return (self.path, self.name, self.batch_size, self.max_batches)

    def __setstate__(self, state) -> None:
        self.path, self.name, self.batch_size, self.max_batches = state
        self._conn = None
        self._len = None
        self._label_supports = None
        self._batches = {}
        self._batch_order = []

    def _stored_name(self) -> str:
        try:
            row = self._connect().execute(
                "SELECT value FROM meta WHERE key = 'name'"
            ).fetchone()
        except sqlite3.Error as exc:
            raise DatabaseError(
                f"{self.path!r} is not a clan graph store: {exc}"
            ) from exc
        return row[0] if row is not None else ""

    def schema_version(self) -> int:
        try:
            row = self._connect().execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
        except sqlite3.Error as exc:
            raise DatabaseError(
                f"{self.path!r} is not a clan graph store: {exc}"
            ) from exc
        if row is None:
            raise DatabaseError(f"{self.path!r} is not a clan graph store")
        return int(row[0])

    # -- GraphSource surface -------------------------------------------
    def __len__(self) -> int:
        if self._len is None:
            row = self._connect().execute("SELECT COUNT(*) FROM graphs").fetchone()
            self._len = int(row[0])
        return self._len

    def get(self, tid: int) -> Graph:
        self._check_range(tid)
        base = (tid // self.batch_size) * self.batch_size
        batch = self._batches.get(base)
        if batch is None:
            batch = {
                row_tid: decode_graph(encoding, row_tid)
                for row_tid, encoding in self._connect().execute(
                    "SELECT tid, encoding FROM graphs WHERE tid >= ? AND tid < ? "
                    "ORDER BY tid",
                    (base, base + self.batch_size),
                )
            }
            self._batches[base] = batch
            self._batch_order.append(base)
            while len(self._batch_order) > self.max_batches:
                evicted = self._batch_order.pop(0)
                del self._batches[evicted]
        return batch[tid]

    def iter_range(self, lo: int, hi: int) -> Iterator[Graph]:
        cursor = self._connect().execute(
            "SELECT tid, encoding FROM graphs WHERE tid >= ? AND tid < ? "
            "ORDER BY tid",
            (lo, hi),
        )
        for tid, encoding in cursor:
            yield decode_graph(encoding, tid)

    def append(self, graph: Graph) -> int:
        conn = self._connect()
        tid = len(self)
        conn.execute(
            "INSERT INTO graphs (tid, encoding, digest, n_vertices, n_edges) "
            "VALUES (?, ?, ?, ?, ?)",
            (
                tid,
                encode_graph(graph),
                transaction_digest(graph),
                graph.vertex_count,
                graph.edge_count,
            ),
        )
        conn.executemany(
            "INSERT INTO label_supports (label, support) VALUES (?, 1) "
            "ON CONFLICT(label) DO UPDATE SET support = support + 1",
            [(label,) for label in sorted(graph.distinct_labels())],
        )
        conn.commit()
        self._len = tid + 1
        self._label_supports = None
        base = (tid // self.batch_size) * self.batch_size
        self._batches.pop(base, None)
        if base in self._batch_order:
            self._batch_order.remove(base)
        return tid

    def label_supports(self) -> Dict[Label, int]:
        if self._label_supports is None:
            self._label_supports = {
                label: int(support)
                for label, support in self._connect().execute(
                    "SELECT label, support FROM label_supports"
                )
            }
        return dict(self._label_supports)

    def transaction_digests(self) -> Iterator[str]:
        cursor = self._connect().execute("SELECT digest FROM graphs ORDER BY tid")
        for (digest,) in cursor:
            yield digest

    # -- decode-free statistics ----------------------------------------
    def size_totals(self) -> Tuple[int, int, int, int]:
        """``(total_vertices, total_edges, max_vertices, max_edges)``
        from the per-row columns, without decoding any graph."""
        row = self._connect().execute(
            "SELECT COALESCE(SUM(n_vertices), 0), COALESCE(SUM(n_edges), 0), "
            "COALESCE(MAX(n_vertices), 0), COALESCE(MAX(n_edges), 0) FROM graphs"
        ).fetchone()
        return (int(row[0]), int(row[1]), int(row[2]), int(row[3]))


def open_source(path: PathLike, **options) -> SqliteGraphSource:
    """Open an existing SQLite graph store (read/append)."""
    source = SqliteGraphSource(path, **options)
    source.schema_version()  # validates the file eagerly
    return source


def create_store(path: PathLike, name: str = "", **options) -> SqliteGraphSource:
    """Create a fresh SQLite graph store (fails if rows already exist)."""
    source = SqliteGraphSource(path, name=name, create=True, **options)
    if len(source) > 0:
        raise DatabaseError(f"{path!r} already holds {len(source)} transactions")
    return source


def import_graphs(
    path: PathLike,
    graphs: "Iterator[Graph]",
    *,
    name: str = "",
    commit_every: int = 256,
) -> SqliteGraphSource:
    """Stream transactions into a new SQLite store.

    Consumes any iterator (the streaming ``iter_database`` readers in
    :mod:`repro.io` compose directly), holding at most ``commit_every``
    encoded rows in flight — importing never materialises the database.
    """
    if commit_every < 1:
        raise DatabaseError(f"commit_every must be >= 1, got {commit_every}")
    source = create_store(path, name=name)
    conn = source._connect()
    tid = 0
    supports: Dict[Label, int] = {}
    rows = []
    for graph in graphs:
        rows.append(
            (
                tid,
                encode_graph(graph),
                transaction_digest(graph),
                graph.vertex_count,
                graph.edge_count,
            )
        )
        for label in graph.distinct_labels():
            supports[label] = supports.get(label, 0) + 1
        tid += 1
        if len(rows) >= commit_every:
            conn.executemany(
                "INSERT INTO graphs (tid, encoding, digest, n_vertices, n_edges) "
                "VALUES (?, ?, ?, ?, ?)",
                rows,
            )
            conn.commit()
            rows = []
    if rows:
        conn.executemany(
            "INSERT INTO graphs (tid, encoding, digest, n_vertices, n_edges) "
            "VALUES (?, ?, ?, ?, ?)",
            rows,
        )
    conn.executemany(
        "INSERT INTO label_supports (label, support) VALUES (?, ?) "
        "ON CONFLICT(label) DO UPDATE SET support = support + excluded.support",
        sorted(supports.items()),
    )
    conn.commit()
    source._len = tid
    source._label_supports = None
    return source
