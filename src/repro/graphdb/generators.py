"""Random graph-transaction generators.

These produce controlled synthetic databases for tests, examples, and
the ablation benchmarks: Erdős–Rényi-style background graphs with
optional *planted* frequent cliques whose label sets (and therefore
patterns and supports) are known in advance.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..exceptions import DataGenerationError
from .database import GraphDatabase
from .graph import Graph, Label


def default_label_alphabet(size: int) -> List[Label]:
    """Return ``size`` distinct short labels: a..z, then aa, ab, ...

    Labels are generated in lexicographic order, so the global label
    ordering CLAN assumes coincides with generation order.
    """
    if size <= 0:
        raise DataGenerationError("label alphabet size must be positive")
    alphabet: List[Label] = []
    letters = string.ascii_lowercase
    length = 1
    while len(alphabet) < size:
        def build(prefix: str, remaining: int) -> None:
            if remaining == 0:
                alphabet.append(prefix)
                return
            for ch in letters:
                if len(alphabet) >= size:
                    return
                build(prefix + ch, remaining - 1)

        build("", length)
        length += 1
    return alphabet[:size]


@dataclass
class PlantedClique:
    """Description of a clique planted into a subset of transactions.

    Attributes
    ----------
    labels:
        The vertex labels of the planted clique (its canonical form is
        their sorted order).
    transactions:
        Indices of the transactions carrying an embedding.
    """

    labels: Tuple[Label, ...]
    transactions: Tuple[int, ...]

    @property
    def canonical_labels(self) -> Tuple[Label, ...]:
        """Sorted label tuple — the expected canonical form."""
        return tuple(sorted(self.labels))

    @property
    def support(self) -> int:
        """Number of transactions the clique was planted into."""
        return len(self.transactions)


@dataclass
class SyntheticDatabase:
    """A generated database together with its planted ground truth."""

    database: GraphDatabase
    planted: List[PlantedClique] = field(default_factory=list)


def random_transaction(
    rng: random.Random,
    n_vertices: int,
    edge_probability: float,
    labels: Sequence[Label],
    graph_id: Optional[int] = None,
) -> Graph:
    """Generate one G(n, p) transaction with uniform random labels."""
    if n_vertices < 0:
        raise DataGenerationError("vertex count must be non-negative")
    if not 0.0 <= edge_probability <= 1.0:
        raise DataGenerationError("edge probability must be in [0, 1]")
    if n_vertices > 0 and not labels:
        raise DataGenerationError("need at least one label")
    graph = Graph(graph_id)
    for vertex in range(n_vertices):
        graph.add_vertex(vertex, rng.choice(list(labels)))
    for u in range(n_vertices):
        for v in range(u + 1, n_vertices):
            if rng.random() < edge_probability:
                graph.add_edge(u, v)
    return graph


def random_database(
    n_graphs: int,
    n_vertices: int,
    edge_probability: float,
    n_labels: int,
    seed: int = 0,
    name: str = "synthetic",
) -> GraphDatabase:
    """Generate a database of independent G(n, p) transactions."""
    rng = random.Random(seed)
    labels = default_label_alphabet(n_labels)
    database = GraphDatabase(name=name)
    for gid in range(n_graphs):
        database.add(random_transaction(rng, n_vertices, edge_probability, labels, gid))
    return database


def plant_clique(
    graph: Graph,
    labels: Sequence[Label],
    rng: random.Random,
) -> List[int]:
    """Embed a clique with the given labels into ``graph``.

    New vertices are appended (ids continue after the current maximum),
    then each planted vertex is also wired to a few random existing
    vertices so the clique does not sit in an isolated component.
    Returns the planted vertex ids.
    """
    next_id = max(graph.vertices(), default=-1) + 1
    planted: List[int] = []
    for label in labels:
        graph.add_vertex(next_id, label)
        planted.append(next_id)
        next_id += 1
    for i, u in enumerate(planted):
        for v in planted[i + 1 :]:
            graph.add_edge(u, v)
    outside = [v for v in graph.vertices() if v not in set(planted)]
    for u in planted:
        for v in rng.sample(outside, k=min(2, len(outside))):
            graph.add_edge(u, v)
    return planted


def database_with_planted_cliques(
    n_graphs: int,
    n_vertices: int,
    edge_probability: float,
    n_labels: int,
    planted_specs: Sequence[Tuple[Sequence[Label], Sequence[int]]],
    seed: int = 0,
    name: str = "planted",
) -> SyntheticDatabase:
    """Generate a G(n, p) database with explicitly planted cliques.

    ``planted_specs`` is a sequence of ``(labels, transaction_ids)``
    pairs.  Labels of planted cliques should usually be disjoint from
    the background alphabet (e.g. upper case) so ground-truth supports
    are exact rather than lower bounds.
    """
    rng = random.Random(seed)
    background = default_label_alphabet(n_labels)
    database = GraphDatabase(name=name)
    for gid in range(n_graphs):
        database.add(random_transaction(rng, n_vertices, edge_probability, background, gid))
    planted: List[PlantedClique] = []
    for labels, transaction_ids in planted_specs:
        tids = tuple(sorted(set(transaction_ids)))
        for tid in tids:
            if not 0 <= tid < n_graphs:
                raise DataGenerationError(
                    f"planted transaction id {tid} out of range [0, {n_graphs})"
                )
            plant_clique(database[tid], labels, rng)
        planted.append(PlantedClique(tuple(labels), tids))
    return SyntheticDatabase(database, planted)


def overlapping_cliques_graph(
    group_sizes: Sequence[int],
    overlap: int,
    labels: Optional[Sequence[Label]] = None,
    graph_id: Optional[int] = None,
) -> Graph:
    """Build a chain of cliques where consecutive cliques share ``overlap`` vertices.

    Useful for stressing embedding bookkeeping: patterns here have many
    embeddings per transaction and non-trivial closure structure.
    """
    if overlap < 0:
        raise DataGenerationError("overlap must be non-negative")
    if len(group_sizes) > 1 and any(size <= overlap for size in group_sizes):
        # Every clique must contribute at least one vertex beyond the
        # region it shares with its neighbour in the chain.
        raise DataGenerationError("each group size must exceed the overlap")
    total = sum(group_sizes) - overlap * max(0, len(group_sizes) - 1)
    if labels is None:
        labels = default_label_alphabet(total)
    if len(labels) < total:
        raise DataGenerationError(f"need at least {total} labels, got {len(labels)}")
    graph = Graph(graph_id)
    for vertex in range(total):
        graph.add_vertex(vertex, labels[vertex])
    start = 0
    for size in group_sizes:
        members = list(range(start, start + size))
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                graph.add_edge(u, v)
        start += size - overlap
    return graph


def labelled_clique_database(
    clique_specs: Sequence[Tuple[Sequence[Label], int]],
    n_graphs: int,
    name: str = "clique-only",
) -> GraphDatabase:
    """Build a database whose transactions are disjoint unions of cliques.

    ``clique_specs`` is a sequence of ``(labels, support)`` pairs; each
    clique is placed into the first ``support`` transactions.  Because
    the cliques are vertex-disjoint and label-disjoint placement is the
    caller's responsibility, expected mining output is easy to reason
    about in tests.
    """
    database = GraphDatabase(name=name)
    graphs = [Graph(gid) for gid in range(n_graphs)]
    next_ids = [0] * n_graphs
    for labels, support in clique_specs:
        if not 0 <= support <= n_graphs:
            raise DataGenerationError(f"support {support} out of range [0, {n_graphs}]")
        for tid in range(support):
            vertex_ids = []
            for label in labels:
                graphs[tid].add_vertex(next_ids[tid], label)
                vertex_ids.append(next_ids[tid])
                next_ids[tid] += 1
            for i, u in enumerate(vertex_ids):
                for v in vertex_ids[i + 1 :]:
                    graphs[tid].add_edge(u, v)
    for graph in graphs:
        database.add(graph)
    return database
