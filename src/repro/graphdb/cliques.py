"""Single-graph clique enumeration substrate.

The paper builds on the classic single-graph clique literature
(Section 3): maximal-clique enumeration and maximum clique.  CLAN does
not need these to mine frequent patterns, but the substrate is used by

* the brute-force reference miners (tests),
* dataset diagnostics (max clique size per market graph),
* the stock-market analysis example (Figure 5 reports the maximum
  frequent closed clique, which for support 100% is contained in the
  intersection structure of per-graph cliques).

The enumerator is Bron–Kerbosch with pivoting on a degeneracy ordering,
the standard output-sensitive algorithm for sparse-to-medium graphs.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from .core_index import core_numbers
from .graph import Graph


def degeneracy_ordering(graph: Graph) -> List[int]:
    """Return vertices in degeneracy (minimum-degree peeling) order.

    Derived from core numbers: sorting by core number (ties by id for
    determinism) yields an ordering in which every vertex has at most
    ``degeneracy`` later neighbours.
    """
    cores = core_numbers(graph)
    return sorted(graph.vertices(), key=lambda v: (cores[v], v))


def maximal_cliques(graph: Graph, min_size: int = 1) -> Iterator[FrozenSet[int]]:
    """Enumerate all maximal cliques of at least ``min_size`` vertices.

    Uses the degeneracy-ordered outer loop of Eppstein, Löffler &
    Strash, with Tomita pivoting inside.
    """
    order = degeneracy_ordering(graph)
    position = {v: i for i, v in enumerate(order)}
    for vertex in order:
        neighbors = graph.neighbors(vertex)
        candidates = {u for u in neighbors if position[u] > position[vertex]}
        excluded = {u for u in neighbors if position[u] < position[vertex]}
        yield from _bron_kerbosch_pivot(graph, {vertex}, candidates, excluded, min_size)


def _bron_kerbosch_pivot(
    graph: Graph,
    current: Set[int],
    candidates: Set[int],
    excluded: Set[int],
    min_size: int,
) -> Iterator[FrozenSet[int]]:
    """Recursive Bron–Kerbosch with Tomita pivot selection."""
    if not candidates and not excluded:
        if len(current) >= min_size:
            yield frozenset(current)
        return
    if len(current) + len(candidates) < min_size:
        return
    pivot = max(
        candidates | excluded,
        key=lambda u: len(graph.neighbors(u) & candidates),
    )
    pivot_neighbors = graph.neighbors(pivot)
    for vertex in list(candidates - pivot_neighbors):
        neighbors = graph.neighbors(vertex)
        yield from _bron_kerbosch_pivot(
            graph,
            current | {vertex},
            candidates & neighbors,
            excluded & neighbors,
            min_size,
        )
        candidates.discard(vertex)
        excluded.add(vertex)


def all_cliques(graph: Graph, min_size: int = 1, max_size: Optional[int] = None) -> Iterator[FrozenSet[int]]:
    """Enumerate *every* clique (not only maximal ones) by size range.

    Exponential in dense graphs; intended for the brute-force reference
    miner on small inputs.  Cliques are emitted exactly once each.
    """
    order = sorted(graph.vertices())
    position = {v: i for i, v in enumerate(order)}

    def extend(current: Tuple[int, ...], candidates: Set[int]) -> Iterator[FrozenSet[int]]:
        if len(current) >= min_size:
            yield frozenset(current)
        if max_size is not None and len(current) >= max_size:
            return
        for vertex in sorted(candidates, key=position.__getitem__):
            later = {u for u in candidates & graph.neighbors(vertex) if position[u] > position[vertex]}
            yield from extend(current + (vertex,), later)

    if min_size <= 0:
        min_size = 1
    for vertex in order:
        later = {u for u in graph.neighbors(vertex) if position[u] > position[vertex]}
        yield from extend((vertex,), later)


def maximum_clique(graph: Graph) -> FrozenSet[int]:
    """Return one maximum clique (empty frozenset for an empty graph).

    Branch-and-bound over the maximal-clique enumeration with a core-
    number bound: a clique through ``v`` has at most ``core(v) + 1``
    vertices, so vertices with low core numbers are skipped once a
    larger clique is known.
    """
    if graph.vertex_count == 0:
        return frozenset()
    cores = core_numbers(graph)
    best: FrozenSet[int] = frozenset()
    order = sorted(graph.vertices(), key=lambda v: (-cores[v], v))
    position = {v: i for i, v in enumerate(sorted(graph.vertices()))}
    for vertex in order:
        if cores[vertex] + 1 <= len(best):
            break
        candidates = {
            u
            for u in graph.neighbors(vertex)
            if cores[u] + 1 > len(best)
        }
        best = _max_clique_search(graph, (vertex,), candidates, best)
    return best


def _max_clique_search(
    graph: Graph,
    current: Tuple[int, ...],
    candidates: Set[int],
    best: FrozenSet[int],
) -> FrozenSet[int]:
    """Depth-first maximum-clique search with a simple size bound."""
    if len(current) > len(best):
        best = frozenset(current)
    if len(current) + len(candidates) <= len(best):
        return best
    for vertex in sorted(candidates, key=lambda v: -len(graph.neighbors(v) & candidates)):
        if len(current) + len(candidates) <= len(best):
            break
        candidates = candidates - {vertex}
        best = _max_clique_search(
            graph, current + (vertex,), candidates & graph.neighbors(vertex), best
        )
    return best


def clique_number(graph: Graph) -> int:
    """Return the size of the maximum clique."""
    return len(maximum_clique(graph))


def count_cliques_by_size(graph: Graph, max_size: Optional[int] = None) -> Dict[int, int]:
    """Count cliques per size; exponential, for diagnostics on small graphs."""
    counts: Dict[int, int] = {}
    for clique in all_cliques(graph, min_size=1, max_size=max_size):
        counts[len(clique)] = counts.get(len(clique), 0) + 1
    return counts
