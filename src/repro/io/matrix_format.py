"""The paper's adjacency-matrix database format (Figure 2).

Each transaction is written as its adjacency matrix with vertex labels
on the diagonal — the representation of Kuramochi & Karypis that the
paper adopts in Section 2.  Blank lines separate transactions::

    a 1 1 0
    1 b 1 1
    1 1 c 0
    0 1 0 d

Labels may be multi-character; tokens are whitespace separated.  ``0``
and ``1`` are reserved off-diagonal tokens, so labels must not equal
them (the parser enforces this).
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import List, TextIO, Union

from ..exceptions import FormatError
from ..graphdb.database import GraphDatabase
from ..graphdb.matrix import AdjacencyMatrix

PathLike = Union[str, Path]


def dump_database(database: GraphDatabase, stream: TextIO) -> None:
    """Write a database as blank-line-separated adjacency matrices."""
    for index, graph in enumerate(database):
        if index:
            stream.write("\n")
        matrix = AdjacencyMatrix.from_graph(graph)
        for label in matrix.labels:
            if label in ("0", "1"):
                raise FormatError(
                    f"label {label!r} collides with the matrix bit tokens"
                )
        stream.write(matrix.render() + "\n")


def dumps_database(database: GraphDatabase) -> str:
    """Render a database as matrix text."""
    buffer = io.StringIO()
    dump_database(database, buffer)
    return buffer.getvalue()


def save_database(database: GraphDatabase, path: PathLike) -> None:
    """Write matrix text to a file."""
    with open(path, "w", encoding="utf-8") as stream:
        dump_database(database, stream)


def _parse_block(rows: List[List[str]], first_line: int) -> AdjacencyMatrix:
    """Convert one whitespace-token block into a matrix."""
    n = len(rows)
    labels: List[str] = []
    bits = [[0] * n for _ in range(n)]
    for i, row in enumerate(rows):
        if len(row) != n:
            raise FormatError(
                f"matrix row has {len(row)} entries, expected {n}", first_line + i
            )
        for j, token in enumerate(row):
            if i == j:
                if token in ("0", "1"):
                    raise FormatError(
                        f"diagonal entry {token!r} is not a valid label", first_line + i
                    )
                labels.append(token)
            else:
                if token not in ("0", "1"):
                    raise FormatError(
                        f"off-diagonal entry {token!r} must be 0 or 1", first_line + i
                    )
                bits[i][j] = int(token)
    try:
        return AdjacencyMatrix(labels, bits)
    except Exception as exc:
        raise FormatError(f"invalid adjacency matrix: {exc}", first_line) from exc


def load_database(stream: TextIO, name: str = "") -> GraphDatabase:
    """Parse matrix text into a database."""
    database = GraphDatabase(name=name)
    block: List[List[str]] = []
    block_start = 1
    for line_number, raw in enumerate(stream, start=1):
        line = raw.strip()
        if not line:
            if block:
                database.add(_parse_block(block, block_start).to_graph(len(database)))
                block = []
            continue
        if not block:
            block_start = line_number
        block.append(line.split())
    if block:
        database.add(_parse_block(block, block_start).to_graph(len(database)))
    return database


def loads_database(text: str, name: str = "") -> GraphDatabase:
    """Parse matrix text from a string."""
    return load_database(io.StringIO(text), name=name)


def open_database(path: PathLike, name: str = "") -> GraphDatabase:
    """Read matrix text from a file."""
    with open(path, "r", encoding="utf-8") as stream:
        return load_database(stream, name=name or str(path))
