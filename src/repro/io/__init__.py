"""I/O formats: ``t/v/e`` text, paper-style adjacency matrices, JSON.

Submodules are imported explicitly because they share function names
(``load_database``/``save_database`` per format)::

    from repro.io import gspan_format, matrix_format, json_format, patterns
"""

from . import gspan_format, json_format, matrix_format, patterns, runlog

__all__ = ["gspan_format", "json_format", "matrix_format", "patterns", "runlog"]
