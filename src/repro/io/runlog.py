"""Reproducible run records, session traces, and checkpoints.

A :class:`RunRecord` captures everything needed to audit or replay a
mining run: the configuration, the threshold, a structural fingerprint
of the input database, the environment, the search statistics, and the
patterns themselves.  Records serialise to JSON; replaying re-mines and
diffs against the recorded patterns.

This module is also the persistence layer for the session control
plane (:mod:`repro.core.session`): :func:`open_trace` reads the JSONL
event streams written by
:class:`~repro.core.session.JsonlTraceSink`, and
:func:`save_checkpoint` / :func:`open_checkpoint` round-trip
:class:`~repro.core.session.MiningCheckpoint` snapshots so an
interrupted mine can resume in another process, and
:func:`save_cache` / :func:`open_cache` persist a
:class:`~repro.core.cache.MiningCache` so sweeps and repeated runs
warm up from disk (``clan sweep --cache DIR``).
"""

from __future__ import annotations

import hashlib
import json
import platform
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .. import __version__
from ..core.api import MiningRequest, MiningResultEnvelope
from ..core.cache import MiningCache
from ..core.config import MinerConfig
from ..core.miner import ClanMiner
from ..core.results import MiningResult
from ..core.session import MiningCheckpoint, MiningEvent, event_from_dict
from ..exceptions import FormatError, MiningError
from ..graphdb.database import GraphDatabase
from ..graphdb.schema import fingerprint_digests
from .json_format import result_from_dict, result_to_dict

PathLike = Union[str, Path]


def database_fingerprint(database: GraphDatabase) -> str:
    """A stable SHA-256 over the database's full structure.

    Covers transaction order, vertex ids, labels, and edges — two
    databases share a fingerprint iff they are structurally identical
    in the sense of :meth:`Graph.__eq__` with matching order.

    Computed incrementally as a fold over the per-transaction digests
    (:func:`repro.graphdb.transaction_digest`), so it streams: the
    database is never materialised, a
    :class:`~repro.graphdb.storage.SqliteGraphSource` answers from its
    stored digest column without decoding graphs, and any two storage
    backends holding the same transactions in the same order — in
    memory, on disk, or shard by shard — land on the same fingerprint.
    Cache keys therefore stay portable across backends.
    """
    return fingerprint_digests(database.transaction_digests())


@dataclass(frozen=True)
class RunRecord:
    """One mining run, fully described."""

    created_at: str
    library_version: str
    python_version: str
    database_name: str
    database_fingerprint: str
    n_transactions: int
    min_sup: int
    config: Dict[str, Any]
    statistics: Dict[str, Any]
    elapsed_seconds: float
    result: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def patterns(self) -> MiningResult:
        """Rehydrate the recorded result."""
        return result_from_dict(self.result)

    def miner_config(self) -> MinerConfig:
        """Rehydrate the recorded configuration."""
        return MinerConfig.from_dict(self.config)


def record_run(
    database: GraphDatabase,
    min_sup: float,
    config: Optional[MinerConfig] = None,
) -> RunRecord:
    """Mine and capture the complete run record."""
    if config is None:
        config = MinerConfig()
    result = ClanMiner(database, config).mine(min_sup)
    stats = result.statistics
    return RunRecord(
        created_at=time.strftime("%Y-%m-%dT%H:%M:%S"),
        library_version=__version__,
        python_version=platform.python_version(),
        database_name=database.name,
        database_fingerprint=database_fingerprint(database),
        n_transactions=len(database),
        min_sup=result.min_sup,
        config=config.to_dict(),
        statistics=stats.snapshot(),
        elapsed_seconds=result.elapsed_seconds,
        result=result_to_dict(result),
    )


def save_record(record: RunRecord, path: PathLike) -> None:
    """Write a run record as JSON."""
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(record.to_dict(), stream, indent=1)


def open_record(path: PathLike) -> RunRecord:
    """Read a run record back."""
    with open(path, "r", encoding="utf-8") as stream:
        payload = json.load(stream)
    try:
        return RunRecord(**payload)
    except TypeError as exc:
        raise FormatError(f"not a run record: {exc}") from exc


@dataclass(frozen=True)
class ReplayOutcome:
    """Result of replaying a recorded run against a database."""

    fingerprint_matches: bool
    patterns_match: bool
    recorded_patterns: int
    replayed_patterns: int

    @property
    def reproduced(self) -> bool:
        return self.fingerprint_matches and self.patterns_match


def replay(record: RunRecord, database: GraphDatabase) -> ReplayOutcome:
    """Re-mine with the recorded configuration and compare.

    A fingerprint mismatch means the database is not the recorded one;
    the patterns are compared regardless (useful when checking whether
    a *changed* database still yields the same result).
    """
    fingerprint_matches = database_fingerprint(database) == record.database_fingerprint
    config = record.miner_config()
    replayed = ClanMiner(database, config).mine(record.min_sup)
    recorded = record.patterns()
    patterns_match = sorted(p.key() for p in replayed) == sorted(
        p.key() for p in recorded
    )
    return ReplayOutcome(
        fingerprint_matches=fingerprint_matches,
        patterns_match=patterns_match,
        recorded_patterns=len(recorded),
        replayed_patterns=len(replayed),
    )


# ----------------------------------------------------------------------
# Session traces (JSONL event streams)
# ----------------------------------------------------------------------
def open_trace(path: PathLike) -> List[MiningEvent]:
    """Read back a JSONL event trace written by ``JsonlTraceSink``.

    Returns the typed events in file order.  Malformed lines raise
    :class:`FormatError` with the offending line number.
    """
    events: List[MiningEvent] = []
    with open(path, "r", encoding="utf-8") as stream:
        for number, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(event_from_dict(json.loads(line)))
            except (MiningError, ValueError, KeyError, TypeError) as exc:
                raise FormatError(f"bad trace event: {exc}", line_number=number) from exc
    return events


# ----------------------------------------------------------------------
# Session checkpoints
# ----------------------------------------------------------------------
def save_checkpoint(checkpoint: MiningCheckpoint, path: PathLike) -> None:
    """Write a session checkpoint as JSON."""
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(checkpoint.to_dict(), stream, indent=1)


def open_checkpoint(path: PathLike) -> MiningCheckpoint:
    """Read a session checkpoint back."""
    with open(path, "r", encoding="utf-8") as stream:
        payload = json.load(stream)
    try:
        return MiningCheckpoint.from_dict(payload)
    except (KeyError, TypeError) as exc:
        raise FormatError(f"not a mining checkpoint: {exc}") from exc


# ----------------------------------------------------------------------
# Mining requests and result envelopes (the service wire format)
# ----------------------------------------------------------------------
def save_request(request: MiningRequest, path: PathLike) -> None:
    """Write a :class:`~repro.core.api.MiningRequest` as JSON.

    The file holds exactly the wire payload ``clan submit --request
    FILE`` posts and the service persists per job.
    """
    with open(path, "w", encoding="utf-8") as stream:
        stream.write(json.dumps(request.to_dict(), sort_keys=True, indent=1))
        stream.write("\n")


def open_request(path: PathLike) -> MiningRequest:
    """Read a mining request back."""
    with open(path, "r", encoding="utf-8") as stream:
        payload = json.load(stream)
    try:
        return MiningRequest.from_dict(payload)
    except (MiningError, KeyError, TypeError, ValueError) as exc:
        raise FormatError(f"not a mining request: {exc}") from exc


def save_envelope(envelope: MiningResultEnvelope, path: PathLike) -> None:
    """Write a :class:`~repro.core.api.MiningResultEnvelope` as JSON."""
    with open(path, "w", encoding="utf-8") as stream:
        stream.write(json.dumps(envelope.to_dict(), sort_keys=True, indent=1))
        stream.write("\n")


def open_envelope(path: PathLike) -> MiningResultEnvelope:
    """Read a result envelope back."""
    with open(path, "r", encoding="utf-8") as stream:
        payload = json.load(stream)
    try:
        return MiningResultEnvelope.from_dict(payload)
    except (MiningError, KeyError, TypeError, ValueError) as exc:
        raise FormatError(f"not a mining result envelope: {exc}") from exc


# ----------------------------------------------------------------------
# Mining caches
# ----------------------------------------------------------------------
#: File name used inside a cache *directory* (the CLI passes
#: ``--cache DIR``; the API accepts a file path or a directory).
CACHE_FILENAME = "clan-cache.json"


def _cache_file(path: PathLike) -> Path:
    path = Path(path)
    if path.is_dir():
        return path / CACHE_FILENAME
    return path


def save_cache(cache: MiningCache, path: PathLike) -> Path:
    """Write a mining cache as JSON; returns the file written.

    ``path`` may be a file or an existing directory (the file is then
    ``clan-cache.json`` inside it).  Only the entries are persisted —
    hit/miss counters are process-local observability, not state.
    """
    target = _cache_file(path)
    with open(target, "w", encoding="utf-8") as stream:
        json.dump(cache.to_dict(), stream, indent=1)
    return target


def open_cache(path: PathLike) -> MiningCache:
    """Read a mining cache back (file or directory, as for save)."""
    target = _cache_file(path)
    with open(target, "r", encoding="utf-8") as stream:
        payload = json.load(stream)
    try:
        return MiningCache.from_dict(payload)
    except (MiningError, KeyError, TypeError, ValueError) as exc:
        raise FormatError(f"not a mining cache: {exc}") from exc


def load_or_create_cache(path: PathLike) -> MiningCache:
    """Open the cache at ``path`` if present, else a fresh empty one.

    The convenience the CLI uses for ``--cache DIR``: first run creates
    the cache, later runs warm from it.
    """
    target = _cache_file(path)
    if target.exists():
        return open_cache(target)
    return MiningCache()
