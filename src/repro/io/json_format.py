"""JSON serialisation for databases and mining results.

A structured format for programmatic interchange: databases round-trip
exactly (ids, labels, edges, name), and results carry enough to rebuild
:class:`~repro.core.pattern.CliquePattern` objects including witnesses.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from ..core.canonical import CanonicalForm
from ..core.pattern import CliquePattern
from ..core.results import MiningResult
from ..exceptions import FormatError
from ..graphdb.database import GraphDatabase
from ..graphdb.graph import Graph

PathLike = Union[str, Path]

FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Databases
# ----------------------------------------------------------------------
def database_to_dict(database: GraphDatabase) -> Dict[str, Any]:
    """Convert a database to a JSON-ready dict."""
    return {
        "version": FORMAT_VERSION,
        "kind": "graph-database",
        "name": database.name,
        "graphs": [
            {
                "vertices": [[v, graph.label(v)] for v in sorted(graph.vertices())],
                "edges": sorted(graph.edges()),
            }
            for graph in database
        ],
    }


def database_from_dict(payload: Dict[str, Any]) -> GraphDatabase:
    """Rebuild a database from :func:`database_to_dict` output."""
    if payload.get("kind") != "graph-database":
        raise FormatError(f"expected kind 'graph-database', got {payload.get('kind')!r}")
    database = GraphDatabase(name=payload.get("name", ""))
    for gid, entry in enumerate(payload.get("graphs", [])):
        graph = Graph(gid)
        for vertex, label in entry["vertices"]:
            graph.add_vertex(int(vertex), str(label))
        for u, v in entry["edges"]:
            graph.add_edge(int(u), int(v))
        database.add(graph)
    return database


def save_database(database: GraphDatabase, path: PathLike) -> None:
    """Write a database as JSON."""
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(database_to_dict(database), stream, indent=1)


def open_database(path: PathLike) -> GraphDatabase:
    """Read a JSON database."""
    with open(path, "r", encoding="utf-8") as stream:
        return database_from_dict(json.load(stream))


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
def pattern_to_dict(pattern: CliquePattern) -> Dict[str, Any]:
    """Convert one pattern to the JSON shape shared by results,
    checkpoints, and :class:`~repro.core.api.MiningResultEnvelope`."""
    return {
        "labels": list(pattern.labels),
        "support": pattern.support,
        "transactions": list(pattern.transactions),
        "witnesses": {str(t): list(w) for t, w in pattern.witnesses.items()},
    }


def pattern_from_dict(entry: Dict[str, Any]) -> CliquePattern:
    """Rebuild one pattern from :func:`pattern_to_dict` output."""
    return CliquePattern(
        form=CanonicalForm.from_labels(entry["labels"]),
        support=int(entry["support"]),
        transactions=tuple(int(t) for t in entry.get("transactions", ())),
        witnesses={
            int(t): tuple(int(v) for v in w)
            for t, w in entry.get("witnesses", {}).items()
        },
    )


def result_to_dict(result: MiningResult) -> Dict[str, Any]:
    """Convert a mining result to a JSON-ready dict."""
    return {
        "version": FORMAT_VERSION,
        "kind": "mining-result",
        "min_sup": result.min_sup,
        "closed_only": result.closed_only,
        "elapsed_seconds": result.elapsed_seconds,
        "patterns": [pattern_to_dict(p) for p in result],
    }


def result_from_dict(payload: Dict[str, Any]) -> MiningResult:
    """Rebuild a mining result from :func:`result_to_dict` output."""
    if payload.get("kind") != "mining-result":
        raise FormatError(f"expected kind 'mining-result', got {payload.get('kind')!r}")
    result = MiningResult(
        min_sup=int(payload.get("min_sup", 1)),
        closed_only=bool(payload.get("closed_only", True)),
        elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
    )
    for entry in payload.get("patterns", []):
        result.add(pattern_from_dict(entry))
    return result


def save_result(result: MiningResult, path: PathLike) -> None:
    """Write a mining result as JSON."""
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(result_to_dict(result), stream, indent=1)


def open_result(path: PathLike) -> MiningResult:
    """Read a JSON mining result."""
    with open(path, "r", encoding="utf-8") as stream:
        return result_from_dict(json.load(stream))
