"""JSON serialisation for databases and mining results.

A structured format for programmatic interchange: databases round-trip
exactly (ids, labels, edges, name), and results carry enough to rebuild
:class:`~repro.core.pattern.CliquePattern` objects including witnesses.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterator, Union

from ..core.canonical import CanonicalForm
from ..core.pattern import CliquePattern
from ..core.results import MiningResult
from ..exceptions import FormatError
from ..graphdb.database import GraphDatabase
from ..graphdb.graph import Graph

PathLike = Union[str, Path]

FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Databases
# ----------------------------------------------------------------------
def database_to_dict(database: GraphDatabase) -> Dict[str, Any]:
    """Convert a database to a JSON-ready dict."""
    return {
        "version": FORMAT_VERSION,
        "kind": "graph-database",
        "name": database.name,
        "graphs": [
            {
                "vertices": [[v, graph.label(v)] for v in sorted(graph.vertices())],
                "edges": sorted(graph.edges()),
            }
            for graph in database
        ],
    }


def database_from_dict(payload: Dict[str, Any]) -> GraphDatabase:
    """Rebuild a database from :func:`database_to_dict` output."""
    if payload.get("kind") != "graph-database":
        raise FormatError(f"expected kind 'graph-database', got {payload.get('kind')!r}")
    database = GraphDatabase(name=payload.get("name", ""))
    for gid, entry in enumerate(payload.get("graphs", [])):
        database.add(_graph_from_entry(entry, gid))
    return database


def _graph_from_entry(entry: Dict[str, Any], gid: int) -> Graph:
    graph = Graph(gid)
    for vertex, label in entry["vertices"]:
        graph.add_vertex(int(vertex), str(label))
    for u, v in entry["edges"]:
        graph.add_edge(int(u), int(v))
    return graph


def iter_database_file(path: PathLike) -> Iterator[Graph]:
    """Stream transactions from a JSON database file, one at a time.

    Scans the ``"graphs"`` array with
    :meth:`json.JSONDecoder.raw_decode` so only one decoded transaction
    is ever resident — the file's *text* is read once, but the parsed
    graph objects (which dominate memory by an order of magnitude) are
    yielded and released individually.  Accepts exactly the documents
    :func:`save_database` writes.
    """
    text = Path(path).read_text(encoding="utf-8")
    decoder = json.JSONDecoder()
    marker = '"graphs"'
    at = text.find(marker)
    if at < 0:
        raise FormatError("not a graph-database document: no 'graphs' array")
    at = text.index("[", at + len(marker))
    at += 1
    gid = 0
    while True:
        while at < len(text) and text[at] in " \t\r\n,":
            at += 1
        if at >= len(text):
            raise FormatError("unterminated 'graphs' array")
        if text[at] == "]":
            return
        try:
            entry, at = decoder.raw_decode(text, at)
        except json.JSONDecodeError as exc:
            raise FormatError(f"malformed graph entry: {exc}") from exc
        try:
            yield _graph_from_entry(entry, gid)
        except (KeyError, TypeError, ValueError) as exc:
            raise FormatError(f"malformed graph entry {gid}: {exc}") from exc
        gid += 1


def save_database(database: GraphDatabase, path: PathLike) -> None:
    """Write a database as JSON."""
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(database_to_dict(database), stream, indent=1)


def open_database(path: PathLike) -> GraphDatabase:
    """Read a JSON database."""
    with open(path, "r", encoding="utf-8") as stream:
        return database_from_dict(json.load(stream))


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
def pattern_to_dict(pattern: CliquePattern) -> Dict[str, Any]:
    """Convert one pattern to the JSON shape shared by results,
    checkpoints, and :class:`~repro.core.api.MiningResultEnvelope`."""
    return {
        "labels": list(pattern.labels),
        "support": pattern.support,
        "transactions": list(pattern.transactions),
        "witnesses": {str(t): list(w) for t, w in pattern.witnesses.items()},
    }


def pattern_from_dict(entry: Dict[str, Any]) -> CliquePattern:
    """Rebuild one pattern from :func:`pattern_to_dict` output."""
    return CliquePattern(
        form=CanonicalForm.from_labels(entry["labels"]),
        support=int(entry["support"]),
        transactions=tuple(int(t) for t in entry.get("transactions", ())),
        witnesses={
            int(t): tuple(int(v) for v in w)
            for t, w in entry.get("witnesses", {}).items()
        },
    )


def result_to_dict(result: MiningResult) -> Dict[str, Any]:
    """Convert a mining result to a JSON-ready dict."""
    return {
        "version": FORMAT_VERSION,
        "kind": "mining-result",
        "min_sup": result.min_sup,
        "closed_only": result.closed_only,
        "elapsed_seconds": result.elapsed_seconds,
        "patterns": [pattern_to_dict(p) for p in result],
    }


def result_from_dict(payload: Dict[str, Any]) -> MiningResult:
    """Rebuild a mining result from :func:`result_to_dict` output."""
    if payload.get("kind") != "mining-result":
        raise FormatError(f"expected kind 'mining-result', got {payload.get('kind')!r}")
    result = MiningResult(
        min_sup=int(payload.get("min_sup", 1)),
        closed_only=bool(payload.get("closed_only", True)),
        elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
    )
    for entry in payload.get("patterns", []):
        result.add(pattern_from_dict(entry))
    return result


def save_result(result: MiningResult, path: PathLike) -> None:
    """Write a mining result as JSON."""
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(result_to_dict(result), stream, indent=1)


def open_result(path: PathLike) -> MiningResult:
    """Read a JSON mining result."""
    with open(path, "r", encoding="utf-8") as stream:
        return result_from_dict(json.load(stream))
