"""The standard ``t/v/e`` graph-transaction text format.

The interchange format used by gSpan, FSG and most academic graph
miners (including the tools the paper's databases circulated in)::

    t # 0
    v 0 C
    v 1 O
    e 0 1

One ``t`` line per transaction, ``v <id> <label>`` per vertex,
``e <u> <v>`` per undirected edge.  Edge labels, if present as a third
token, are ignored — the paper explicitly mines without them.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterator, TextIO, Union

from ..exceptions import FormatError
from ..graphdb.database import GraphDatabase
from ..graphdb.graph import Graph

PathLike = Union[str, Path]


def dump_database(database: GraphDatabase, stream: TextIO) -> None:
    """Write a database in ``t/v/e`` format."""
    for tid, graph in enumerate(database):
        stream.write(f"t # {tid}\n")
        for vertex in sorted(graph.vertices()):
            stream.write(f"v {vertex} {graph.label(vertex)}\n")
        for u, v in sorted(graph.edges()):
            stream.write(f"e {u} {v}\n")


def dumps_database(database: GraphDatabase) -> str:
    """Render a database as a ``t/v/e`` string."""
    buffer = io.StringIO()
    dump_database(database, buffer)
    return buffer.getvalue()


def save_database(database: GraphDatabase, path: PathLike) -> None:
    """Write a database to a file."""
    with open(path, "w", encoding="utf-8") as stream:
        dump_database(database, stream)


def iter_database(stream: TextIO) -> Iterator[Graph]:
    """Stream a ``t/v/e`` stream one transaction at a time.

    Yields each :class:`Graph` as soon as its ``t`` block is complete,
    so a database can be imported into an out-of-core store (``clan
    import``) without ever holding more than one transaction resident.
    Raises :class:`FormatError` with a line number on any malformed
    line; vertices must be declared before the edges that use them.
    """
    graph: Graph | None = None
    for line_number, raw in enumerate(stream, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        tokens = line.split()
        kind = tokens[0]
        if kind == "t":
            if graph is not None:
                yield graph
            graph = Graph()
        elif kind == "v":
            if graph is None:
                raise FormatError("vertex line before any 't' line", line_number)
            if len(tokens) < 3:
                raise FormatError(f"malformed vertex line {line!r}", line_number)
            try:
                vertex = int(tokens[1])
            except ValueError:
                raise FormatError(f"vertex id {tokens[1]!r} is not an integer", line_number) from None
            graph.add_vertex(vertex, tokens[2])
        elif kind == "e":
            if graph is None:
                raise FormatError("edge line before any 't' line", line_number)
            if len(tokens) < 3:
                raise FormatError(f"malformed edge line {line!r}", line_number)
            try:
                u, v = int(tokens[1]), int(tokens[2])
            except ValueError:
                raise FormatError(f"edge endpoints {tokens[1:3]!r} are not integers", line_number) from None
            # tokens[3], an edge label, is deliberately ignored.
            try:
                graph.add_edge(u, v)
            except Exception as exc:
                raise FormatError(str(exc), line_number) from exc
        else:
            raise FormatError(f"unknown record type {kind!r}", line_number)
    if graph is not None:
        yield graph


def iter_database_file(path: PathLike) -> Iterator[Graph]:
    """Stream transactions from a ``t/v/e`` file, one at a time."""
    with open(path, "r", encoding="utf-8") as stream:
        yield from iter_database(stream)


def load_database(stream: TextIO, name: str = "") -> GraphDatabase:
    """Parse a ``t/v/e`` stream into an in-memory database.

    Eager counterpart of :func:`iter_database` (same parser, same
    errors): collects the streamed transactions into a
    :class:`GraphDatabase`.
    """
    database = GraphDatabase(name=name)
    for graph in iter_database(stream):
        database.add(graph)
    return database


def loads_database(text: str, name: str = "") -> GraphDatabase:
    """Parse a ``t/v/e`` string."""
    return load_database(io.StringIO(text), name=name)


def open_database(path: PathLike, name: str = "") -> GraphDatabase:
    """Read a database from a file."""
    with open(path, "r", encoding="utf-8") as stream:
        return load_database(stream, name=name or str(path))
