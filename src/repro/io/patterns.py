"""Plain-text pattern listings.

The compact ``canonical_form:support`` lines the paper uses throughout
(e.g. ``abcd:2``), one pattern per line, sorted in canonical order —
handy for diffing result sets across runs or implementations.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO, Tuple, Union

from ..core.canonical import CanonicalForm
from ..core.pattern import CliquePattern
from ..core.results import MiningResult
from ..exceptions import FormatError

PathLike = Union[str, Path]

#: Separator between labels of one pattern when labels are multi-char.
LABEL_SEPARATOR = "."


def format_pattern(pattern: CliquePattern) -> str:
    """One line: labels joined canonically, then ``:support``."""
    return f"{pattern.form}:{pattern.support}"


def dump_result(result: MiningResult, stream: TextIO) -> None:
    """Write patterns one per line, canonical order."""
    for pattern in result.sorted_by_form():
        stream.write(format_pattern(pattern) + "\n")


def dumps_result(result: MiningResult) -> str:
    """Render a result as pattern lines."""
    buffer = io.StringIO()
    dump_result(result, buffer)
    return buffer.getvalue()


def save_result(result: MiningResult, path: PathLike) -> None:
    """Write pattern lines to a file."""
    with open(path, "w", encoding="utf-8") as stream:
        dump_result(result, stream)


def parse_pattern_line(line: str) -> Tuple[Tuple[str, ...], int]:
    """Parse one ``labels:support`` line back into (labels, support).

    Single-character-label patterns are written without separators
    (``abcd:2``); multi-character labels use dots (``DMF.IQM:11``).
    """
    body, _, support_text = line.rpartition(":")
    if not body:
        raise FormatError(f"pattern line {line!r} has no ':support' suffix")
    try:
        support = int(support_text)
    except ValueError:
        raise FormatError(f"support {support_text!r} is not an integer") from None
    if LABEL_SEPARATOR in body:
        labels = tuple(body.split(LABEL_SEPARATOR))
    else:
        labels = tuple(body)
    if any(not label for label in labels):
        raise FormatError(f"pattern line {line!r} contains an empty label")
    return labels, support


def load_result(stream: TextIO, closed_only: bool = True) -> MiningResult:
    """Read pattern lines back into a (support-evidence-free) result."""
    result = MiningResult(closed_only=closed_only)
    for raw in stream:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        labels, support = parse_pattern_line(line)
        result.add(
            CliquePattern(form=CanonicalForm.from_labels(labels), support=support)
        )
    return result


def loads_result(text: str, closed_only: bool = True) -> MiningResult:
    """Parse pattern lines from a string."""
    return load_result(io.StringIO(text), closed_only=closed_only)


def open_result(path: PathLike, closed_only: bool = True) -> MiningResult:
    """Read pattern lines from a file."""
    with open(path, "r", encoding="utf-8") as stream:
        return load_result(stream, closed_only=closed_only)
