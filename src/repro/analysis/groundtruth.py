"""Evaluation against planted ground truth.

The synthetic generators know what they planted (fund groups, clique
specs); this module scores a mining result against that knowledge —
did the miner recover each planted structure, at what support, and how
much else did it report?  Used by the dataset-calibration tests and by
EXPERIMENTS.md's recovery claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.canonical import CanonicalForm, Label
from ..core.results import MiningResult


@dataclass(frozen=True)
class RecoveryOutcome:
    """How one planted structure fared in a mining result."""

    labels: Tuple[Label, ...]
    expected_support: Optional[int]
    #: exact: the full planted form is a mined pattern.
    exact: bool
    #: The largest mined sub-pattern of the planted form (None if none).
    best_subpattern: Optional[str]
    #: Fraction of the planted labels covered by the best sub-pattern.
    coverage: float
    #: Mined support of the exact pattern (None unless exact).
    mined_support: Optional[int]

    @property
    def support_matches(self) -> bool:
        """Whether the mined support equals the expected one (if both known)."""
        if not self.exact or self.expected_support is None:
            return False
        return self.mined_support == self.expected_support


@dataclass(frozen=True)
class RecoveryReport:
    """Aggregate scoring of a result against a planted structure list."""

    outcomes: Tuple[RecoveryOutcome, ...]
    #: Mined patterns (of the sizes under evaluation) matching no
    #: planted structure even partially — the "excess" patterns.
    unmatched_patterns: Tuple[str, ...]

    @property
    def exact_recall(self) -> float:
        """Fraction of planted structures recovered exactly."""
        if not self.outcomes:
            return 1.0
        return sum(1 for o in self.outcomes if o.exact) / len(self.outcomes)

    @property
    def mean_coverage(self) -> float:
        """Average label coverage of the planted structures."""
        if not self.outcomes:
            return 1.0
        return sum(o.coverage for o in self.outcomes) / len(self.outcomes)

    def render(self) -> str:
        """Human-readable recovery summary."""
        lines = [
            f"exact recall: {self.exact_recall:.2f}  "
            f"mean coverage: {self.mean_coverage:.2f}  "
            f"unmatched mined patterns: {len(self.unmatched_patterns)}"
        ]
        for outcome in self.outcomes:
            status = "EXACT" if outcome.exact else f"partial {outcome.coverage:.0%}"
            lines.append(
                f"  {'.'.join(outcome.labels)}: {status}"
                + (f" (support {outcome.mined_support})" if outcome.exact else
                   f" (best: {outcome.best_subpattern})")
            )
        return "\n".join(lines)


def evaluate_recovery(
    result: MiningResult,
    planted: Sequence[Tuple[Sequence[Label], Optional[int]]],
    min_size: int = 3,
) -> RecoveryReport:
    """Score a result against planted (labels, expected_support) pairs.

    A planted structure is *exactly* recovered when its canonical form
    is a mined pattern; otherwise the largest mined sub-pattern drawn
    entirely from its labels measures partial coverage.  Mined patterns
    of size ≥ ``min_size`` that are not sub-patterns of any planted
    structure are reported as unmatched.
    """
    mined = {p.form: p for p in result}
    planted_forms = [
        (CanonicalForm.from_labels(labels), expected)
        for labels, expected in planted
    ]

    outcomes: List[RecoveryOutcome] = []
    for form, expected in planted_forms:
        pattern = mined.get(form)
        if pattern is not None:
            outcomes.append(
                RecoveryOutcome(
                    labels=form.labels,
                    expected_support=expected,
                    exact=True,
                    best_subpattern=pattern.key(),
                    coverage=1.0,
                    mined_support=pattern.support,
                )
            )
            continue
        best = None
        for candidate in mined.values():
            if candidate.form.is_subclique_of(form):
                if best is None or candidate.size > best.size:
                    best = candidate
        outcomes.append(
            RecoveryOutcome(
                labels=form.labels,
                expected_support=expected,
                exact=False,
                best_subpattern=best.key() if best else None,
                coverage=(best.size / form.size) if best else 0.0,
                mined_support=None,
            )
        )

    unmatched = tuple(
        sorted(
            p.key()
            for p in result.at_least_size(min_size)
            if not any(p.form.is_subclique_of(f) for f, _ in planted_forms)
        )
    )
    return RecoveryReport(outcomes=tuple(outcomes), unmatched_patterns=unmatched)
