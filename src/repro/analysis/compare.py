"""Result-set comparison.

Reproduction work constantly diffs pattern sets — CLAN vs a baseline,
one commit vs another, one parameterisation vs another.  This module
gives that diff a structure: which forms appeared, which disappeared,
which changed support, plus the usual set-similarity summaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..core.canonical import Label
from ..core.results import MiningResult


@dataclass(frozen=True)
class ResultDiff:
    """Difference between two mining results (``left`` vs ``right``)."""

    only_left: Tuple[str, ...]
    only_right: Tuple[str, ...]
    support_changed: Tuple[Tuple[str, int, int], ...]
    common: int

    @property
    def identical(self) -> bool:
        """Whether the two results agree form-for-form and support-for-support."""
        return not self.only_left and not self.only_right and not self.support_changed

    def jaccard(self) -> float:
        """Jaccard similarity over canonical forms (1.0 for equal sets)."""
        union = self.common + len(self.only_left) + len(self.only_right)
        if union == 0:
            return 1.0
        return self.common / union

    def render(self, limit: int = 20) -> str:
        """Human-readable diff summary."""
        lines = [
            f"common forms: {self.common}, jaccard: {self.jaccard():.3f}",
        ]
        if self.only_left:
            lines.append(f"only in left ({len(self.only_left)}):")
            lines.extend(f"  - {key}" for key in self.only_left[:limit])
        if self.only_right:
            lines.append(f"only in right ({len(self.only_right)}):")
            lines.extend(f"  + {key}" for key in self.only_right[:limit])
        if self.support_changed:
            lines.append(f"support changed ({len(self.support_changed)}):")
            lines.extend(
                f"  ~ {form}: {a} -> {b}"
                for form, a, b in self.support_changed[:limit]
            )
        if self.identical:
            lines.append("results are identical")
        return "\n".join(lines)


def diff_results(left: MiningResult, right: MiningResult) -> ResultDiff:
    """Structured diff of two results by canonical form."""
    left_map = {p.form: p.support for p in left}
    right_map = {p.form: p.support for p in right}
    only_left = sorted(
        f"{form}:{sup}" for form, sup in left_map.items() if form not in right_map
    )
    only_right = sorted(
        f"{form}:{sup}" for form, sup in right_map.items() if form not in left_map
    )
    changed = sorted(
        (str(form), left_map[form], right_map[form])
        for form in left_map
        if form in right_map and left_map[form] != right_map[form]
    )
    common = sum(1 for form in left_map if form in right_map)
    return ResultDiff(
        only_left=tuple(only_left),
        only_right=tuple(only_right),
        support_changed=tuple(changed),
        common=common,
    )


def support_histogram(result: MiningResult) -> Dict[int, int]:
    """Number of patterns per support value, ascending."""
    histogram: Dict[int, int] = {}
    for pattern in result:
        histogram[pattern.support] = histogram.get(pattern.support, 0) + 1
    return dict(sorted(histogram.items()))


def label_frequency(result: MiningResult) -> Dict[Label, int]:
    """How many patterns each label participates in, most frequent first."""
    counts: Dict[Label, int] = {}
    for pattern in result:
        for label in set(pattern.labels):
            counts[label] = counts.get(label, 0) + 1
    return dict(sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])))
