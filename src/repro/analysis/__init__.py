"""Analysis utilities: result diffs, ground-truth recovery scoring."""

from .compare import ResultDiff, diff_results, label_frequency, support_histogram
from .groundtruth import RecoveryOutcome, RecoveryReport, evaluate_recovery

__all__ = [
    "RecoveryOutcome",
    "RecoveryReport",
    "ResultDiff",
    "diff_results",
    "evaluate_recovery",
    "label_frequency",
    "support_histogram",
]
