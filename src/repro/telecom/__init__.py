"""Telecom substrate: synthetic call-detail graphs.

Supports the paper's [1] motivation (quasi-clique communities of
interest in call graphs) — the natural workload for the §6 quasi-clique
extension.
"""

from .callgraph import (
    CallGraphConfig,
    CommunitySpec,
    call_graph_database,
    expected_communities,
    subscriber_label,
)

__all__ = [
    "CallGraphConfig",
    "CommunitySpec",
    "call_graph_database",
    "expected_communities",
    "subscriber_label",
]
