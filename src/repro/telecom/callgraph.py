"""Synthetic telephone call-detail graphs.

The paper's introduction cites Abello et al. [1]: quasi-clique detection
in massive call-detail graphs identifies "communities of interest".
This substrate models that workload at laptop scale:

* one graph transaction per observation day;
* vertices are subscribers (distinct labels — phone-number-like ids);
* edges join subscribers who called each other that day;
* background traffic follows a preferential-attachment-ish hub pattern;
* planted *calling communities* talk among themselves repeatedly, but
  on any given day only a random subset of each community's pairs call
  (density < 1) — so communities appear as **quasi-cliques**, not exact
  cliques, which is precisely why the paper's §6 future work matters on
  this domain.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..exceptions import DataGenerationError
from ..graphdb.database import GraphDatabase
from ..graphdb.graph import Graph


@dataclass(frozen=True)
class CommunitySpec:
    """One planted calling community.

    ``density`` is the per-day probability that a given member pair
    calls; 1.0 makes the community an exact clique every day.
    """

    size: int
    density: float = 0.75
    activity: float = 1.0  # fraction of days the community is active

    def __post_init__(self) -> None:
        if self.size < 3:
            raise DataGenerationError("communities need at least 3 members")
        if not 0.0 < self.density <= 1.0:
            raise DataGenerationError("density must be in (0, 1]")
        if not 0.0 < self.activity <= 1.0:
            raise DataGenerationError("activity must be in (0, 1]")


@dataclass(frozen=True)
class CallGraphConfig:
    """Parameters of the synthetic call-detail workload."""

    n_subscribers: int = 60
    n_days: int = 10
    background_calls_per_day: int = 70
    hub_fraction: float = 0.08
    seed: int = 31
    communities: Tuple[CommunitySpec, ...] = (
        CommunitySpec(size=6, density=0.85),
        CommunitySpec(size=5, density=0.75),
        CommunitySpec(size=4, density=1.0),
        CommunitySpec(size=5, density=0.9, activity=0.6),
    )

    def __post_init__(self) -> None:
        if self.n_subscribers < 10:
            raise DataGenerationError("need at least 10 subscribers")
        if self.n_days < 1:
            raise DataGenerationError("need at least one day")
        total = sum(c.size for c in self.communities)
        if total > self.n_subscribers:
            raise DataGenerationError(
                f"communities need {total} subscribers, only "
                f"{self.n_subscribers} exist"
            )


def subscriber_label(index: int) -> str:
    """Phone-number-like label, lexicographically ordered."""
    return f"s{index:04d}"


def call_graph_database(config: Optional[CallGraphConfig] = None) -> GraphDatabase:
    """Generate the per-day call-graph database."""
    cfg = config if config is not None else CallGraphConfig()
    rng = random.Random(cfg.seed)

    # Assign community membership from the front of the subscriber list.
    members: List[List[int]] = []
    cursor = 0
    for community in cfg.communities:
        members.append(list(range(cursor, cursor + community.size)))
        cursor += community.size

    # Hubs for background traffic (call centres, popular numbers).
    hubs = rng.sample(
        range(cfg.n_subscribers),
        max(1, int(cfg.n_subscribers * cfg.hub_fraction)),
    )

    database = GraphDatabase(name="call-graphs")
    for day in range(cfg.n_days):
        graph = Graph(day)
        for subscriber in range(cfg.n_subscribers):
            graph.add_vertex(subscriber, subscriber_label(subscriber))
        # Background traffic: hub-biased random calls.
        for _ in range(cfg.background_calls_per_day):
            if rng.random() < 0.5:
                u = rng.choice(hubs)
            else:
                u = rng.randrange(cfg.n_subscribers)
            v = rng.randrange(cfg.n_subscribers)
            if u != v:
                graph.add_edge(u, v)
        # Community traffic.
        for community, group in zip(cfg.communities, members):
            if rng.random() >= community.activity:
                continue
            for i, u in enumerate(group):
                for v in group[i + 1 :]:
                    if rng.random() < community.density:
                        graph.add_edge(u, v)
        database.add(graph)
    return database


def expected_communities(
    config: Optional[CallGraphConfig] = None,
) -> List[Tuple[Tuple[str, ...], CommunitySpec]]:
    """Ground truth: (sorted member labels, spec) per planted community."""
    cfg = config if config is not None else CallGraphConfig()
    result = []
    cursor = 0
    for community in cfg.communities:
        labels = tuple(
            subscriber_label(i) for i in range(cursor, cursor + community.size)
        )
        result.append((labels, community))
        cursor += community.size
    return result
