"""Constraint-based closed clique mining.

Downstream applications rarely want *all* closed cliques; they want the
ones over a label universe of interest (e.g. one market sector), the
ones containing specific labels (e.g. a known stock), or the ones
passing an arbitrary predicate.  This module wraps the miner with the
standard constraint taxonomy and pushes the pushable ones into the
search:

* **allowed_labels** (anti-monotone): vertices outside the whitelist
  can never join a clique of interest, so they are erased from a
  *projected database* before mining — a sound pushdown.
* **forbidden_labels** (anti-monotone): same pushdown, complementary.
* **required_labels** (monotone): cliques missing a required label are
  filtered after mining, but transactions lacking the label can be
  dropped up front when the requirement alone exceeds min_sup's slack.
* **predicate** (arbitrary): post-filter.

Note the closedness subtlety: constraints change the universe, so a
pattern closed in the projected database may be non-closed in the full
one and vice versa.  ``ConstrainedMiner`` defines its output as the
closed cliques *of the projected database* (the standard semantics in
the constrained-mining literature), and documents the alternative
(`project=False`: filter the unconstrained closed set).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, FrozenSet, Iterable, Optional

from ..exceptions import MiningError
from ..graphdb.database import GraphDatabase
from .canonical import Label
from .config import MinerConfig
from .miner import ClanMiner
from .pattern import CliquePattern
from .results import MiningResult


@dataclass(frozen=True)
class CliqueConstraints:
    """A bundle of constraints on reported cliques."""

    allowed_labels: Optional[FrozenSet[Label]] = None
    forbidden_labels: FrozenSet[Label] = frozenset()
    required_labels: FrozenSet[Label] = frozenset()
    min_size: int = 1
    max_size: Optional[int] = None
    predicate: Optional[Callable[[CliquePattern], bool]] = None

    def __post_init__(self) -> None:
        if self.allowed_labels is not None:
            missing = self.required_labels - self.allowed_labels
            if missing:
                raise MiningError(
                    f"required labels {sorted(missing)} are not in the allowed set"
                )
        overlap = self.required_labels & self.forbidden_labels
        if overlap:
            raise MiningError(
                f"labels {sorted(overlap)} are both required and forbidden"
            )
        if self.min_size < 1:
            raise MiningError("min_size must be >= 1")
        if self.max_size is not None and self.max_size < self.min_size:
            raise MiningError("max_size must be >= min_size")

    @classmethod
    def of(
        cls,
        allowed: Optional[Iterable[Label]] = None,
        forbidden: Iterable[Label] = (),
        required: Iterable[Label] = (),
        min_size: int = 1,
        max_size: Optional[int] = None,
        predicate: Optional[Callable[[CliquePattern], bool]] = None,
    ) -> "CliqueConstraints":
        """Convenience constructor taking plain iterables."""
        return cls(
            allowed_labels=frozenset(allowed) if allowed is not None else None,
            forbidden_labels=frozenset(forbidden),
            required_labels=frozenset(required),
            min_size=min_size,
            max_size=max_size,
            predicate=predicate,
        )

    # ------------------------------------------------------------------
    def label_admissible(self, label: Label) -> bool:
        """Whether a vertex label can appear in any satisfying clique."""
        if label in self.forbidden_labels:
            return False
        if self.allowed_labels is not None and label not in self.allowed_labels:
            return False
        return True

    def pattern_satisfies(self, pattern: CliquePattern) -> bool:
        """Full (post-mining) check of all constraints."""
        if pattern.size < self.min_size:
            return False
        if self.max_size is not None and pattern.size > self.max_size:
            return False
        label_set = set(pattern.labels)
        if not self.required_labels <= label_set:
            return False
        if any(not self.label_admissible(label) for label in label_set):
            return False
        if self.predicate is not None and not self.predicate(pattern):
            return False
        return True


def project_database(
    database: GraphDatabase, constraints: CliqueConstraints
) -> GraphDatabase:
    """Erase inadmissible-label vertices; copy everything else.

    Sound for the anti-monotone constraints: an inadmissible vertex can
    never be part of a satisfying clique, and removing it cannot break
    any satisfying embedding (cliques are induced by their vertices).
    """
    from ..graphdb.transforms import restrict_labels

    admissible = {
        label
        for label in database.distinct_labels()
        if constraints.label_admissible(label)
    }
    return restrict_labels(database, admissible, name=f"{database.name}|projected")


class ConstrainedMiner:
    """Closed clique mining under a :class:`CliqueConstraints` bundle."""

    def __init__(
        self,
        database: GraphDatabase,
        constraints: CliqueConstraints,
        project: bool = True,
    ) -> None:
        self.database = database
        self.constraints = constraints
        self.project = project

    def mine(self, min_sup: float) -> MiningResult:
        """Mine and return the satisfying closed cliques.

        With ``project=True`` (default) closedness is evaluated in the
        label-projected database; with ``project=False`` the full
        database's closed set is mined first and then filtered, which
        can drop patterns whose closed superclique uses inadmissible
        labels.
        """
        started = time.perf_counter()
        constraints = self.constraints
        if self.project and (
            constraints.allowed_labels is not None or constraints.forbidden_labels
        ):
            database = project_database(self.database, constraints)
        else:
            database = self.database
        abs_sup = self.database.absolute_support(min_sup)

        config = MinerConfig(min_size=1, max_size=constraints.max_size)
        mined = ClanMiner(database, config).mine(abs_sup)

        result = MiningResult(
            min_sup=abs_sup, closed_only=True, statistics=mined.statistics
        )
        for pattern in mined:
            if constraints.pattern_satisfies(pattern):
                result.add(pattern)
        result.elapsed_seconds = time.perf_counter() - started
        return result


def mine_with_constraints(
    database: GraphDatabase,
    min_sup: float,
    constraints: CliqueConstraints,
    project: bool = True,
) -> MiningResult:
    """One-call wrapper over :class:`ConstrainedMiner`."""
    return ConstrainedMiner(database, constraints, project=project).mine(min_sup)
