"""Constraint-based closed clique mining.

Downstream applications rarely want *all* closed cliques; they want the
ones over a label universe of interest (e.g. one market sector), the
ones containing specific labels (e.g. a known stock), or the ones
passing an arbitrary predicate.  This module wraps the miner with the
standard constraint taxonomy and pushes the pushable ones into the
search:

* **allowed_labels** (anti-monotone): vertices outside the whitelist
  can never join a clique of interest, so they are erased from a
  *projected database* before mining — a sound pushdown.
* **forbidden_labels** (anti-monotone): same pushdown, complementary.
* **required_labels** (monotone): cliques missing a required label are
  filtered after mining, but transactions lacking the label can be
  dropped up front when the requirement alone exceeds min_sup's slack.
* **predicate** (arbitrary): post-filter.

Note the closedness subtlety: constraints change the universe, so a
pattern closed in the projected database may be non-closed in the full
one and vice versa.  ``ConstrainedMiner`` defines its output as the
closed cliques *of the projected database* (the standard semantics in
the constrained-mining literature), and documents the alternative
(`project=False`: filter the unconstrained closed set).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, FrozenSet, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cache import MiningCache

from ..exceptions import MiningError
from ..graphdb.database import GraphDatabase
from .canonical import Label
from .pattern import CliquePattern
from .results import MiningResult


@dataclass(frozen=True)
class CliqueConstraints:
    """A bundle of constraints on reported cliques."""

    allowed_labels: Optional[FrozenSet[Label]] = None
    forbidden_labels: FrozenSet[Label] = frozenset()
    required_labels: FrozenSet[Label] = frozenset()
    min_size: int = 1
    max_size: Optional[int] = None
    predicate: Optional[Callable[[CliquePattern], bool]] = None

    def __post_init__(self) -> None:
        if self.allowed_labels is not None:
            missing = self.required_labels - self.allowed_labels
            if missing:
                raise MiningError(
                    f"required labels {sorted(missing)} are not in the allowed set"
                )
        overlap = self.required_labels & self.forbidden_labels
        if overlap:
            raise MiningError(
                f"labels {sorted(overlap)} are both required and forbidden"
            )
        if self.min_size < 1:
            raise MiningError("min_size must be >= 1")
        if self.max_size is not None and self.max_size < self.min_size:
            raise MiningError("max_size must be >= min_size")

    @classmethod
    def of(
        cls,
        allowed: Optional[Iterable[Label]] = None,
        forbidden: Iterable[Label] = (),
        required: Iterable[Label] = (),
        min_size: int = 1,
        max_size: Optional[int] = None,
        predicate: Optional[Callable[[CliquePattern], bool]] = None,
    ) -> "CliqueConstraints":
        """Convenience constructor taking plain iterables."""
        return cls(
            allowed_labels=frozenset(allowed) if allowed is not None else None,
            forbidden_labels=frozenset(forbidden),
            required_labels=frozenset(required),
            min_size=min_size,
            max_size=max_size,
            predicate=predicate,
        )

    # ------------------------------------------------------------------
    def label_admissible(self, label: Label) -> bool:
        """Whether a vertex label can appear in any satisfying clique."""
        if label in self.forbidden_labels:
            return False
        if self.allowed_labels is not None and label not in self.allowed_labels:
            return False
        return True

    def pattern_satisfies(self, pattern: CliquePattern) -> bool:
        """Full (post-mining) check of all constraints."""
        if pattern.size < self.min_size:
            return False
        if self.max_size is not None and pattern.size > self.max_size:
            return False
        label_set = set(pattern.labels)
        if not self.required_labels <= label_set:
            return False
        if any(not self.label_admissible(label) for label in label_set):
            return False
        if self.predicate is not None and not self.predicate(pattern):
            return False
        return True


def project_database(
    database: GraphDatabase, constraints: CliqueConstraints
) -> GraphDatabase:
    """Erase inadmissible-label vertices; copy everything else.

    Sound for the anti-monotone constraints: an inadmissible vertex can
    never be part of a satisfying clique, and removing it cannot break
    any satisfying embedding (cliques are induced by their vertices).
    """
    from ..graphdb.transforms import restrict_labels

    admissible = {
        label
        for label in database.distinct_labels()
        if constraints.label_admissible(label)
    }
    return restrict_labels(database, admissible, name=f"{database.name}|projected")


class ConstrainedMiner:
    """Engine-task clique mining under a :class:`CliqueConstraints` bundle.

    The search itself is the one enumeration engine behind
    :func:`repro.mine`, so every cross-cutting engine option applies to
    constrained mining too: ``task`` picks the emission semantics
    evaluated in the (projected) database, ``kernel`` the adjacency
    kernel, ``processes``/``scheduler`` a worker pool, and ``cache`` a
    :class:`~repro.core.cache.MiningCache` keyed by the projected
    database's fingerprint.  Constraints that cannot be pushed into
    the search (``required_labels``, ``predicate``, the size window)
    filter *after* the task semantics — for ``task="topk"`` the k
    largest are selected first and then filtered, so fewer than ``k``
    patterns may survive.
    """

    def __init__(
        self,
        database: GraphDatabase,
        constraints: CliqueConstraints,
        project: bool = True,
        task: str = "closed",
        k: Optional[int] = None,
        gamma: Optional[float] = None,
        kernel: Optional[str] = None,
        processes: int = 1,
        scheduler: str = "stealing",
        cache: Optional["MiningCache"] = None,
    ) -> None:
        self.database = database
        self.constraints = constraints
        self.project = project
        self.task = task
        self.k = k
        self.gamma = gamma
        self.kernel = kernel
        self.processes = processes
        self.scheduler = scheduler
        self.cache = cache

    def mine(self, min_sup: float) -> MiningResult:
        """Mine and return the satisfying cliques of the chosen task.

        With ``project=True`` (default) closedness/maximality is
        evaluated in the label-projected database; with
        ``project=False`` the full database's pattern set is mined
        first and then filtered, which can drop patterns whose closed
        superclique uses inadmissible labels.
        """
        from .api import MiningRequest, mine as _mine

        started = time.perf_counter()
        constraints = self.constraints
        if self.project and (
            constraints.allowed_labels is not None or constraints.forbidden_labels
        ):
            database = project_database(self.database, constraints)
        else:
            database = self.database
        abs_sup = self.database.absolute_support(min_sup)

        request = MiningRequest.from_options(
            abs_sup,
            task=self.task,
            k=self.k,
            gamma=self.gamma,
            max_size=constraints.max_size,
            kernel=self.kernel,
            processes=self.processes,
            scheduler=self.scheduler,
        )
        mined = _mine(database, request, cache=self.cache)

        result = MiningResult(
            min_sup=abs_sup,
            closed_only=mined.closed_only,
            statistics=mined.statistics,
        )
        for pattern in mined:
            if constraints.pattern_satisfies(pattern):
                result.add(pattern)
        result.elapsed_seconds = time.perf_counter() - started
        return result


def mine_with_constraints(
    database: GraphDatabase,
    min_sup: float,
    constraints: CliqueConstraints,
    project: bool = True,
    **engine_options: object,
) -> MiningResult:
    """One-call wrapper over :class:`ConstrainedMiner`.

    ``engine_options`` pass through to the :class:`ConstrainedMiner`
    constructor: ``task``, ``k``, ``gamma``, ``kernel``, ``processes``,
    ``scheduler``, ``cache``.
    """
    return ConstrainedMiner(
        database, constraints, project=project, **engine_options
    ).mine(min_sup)
