"""Maximal frequent clique mining.

The third classic condensation besides *all frequent* and *closed*: a
frequent clique is **maximal** when no proper superclique is frequent
at all.  Maximal sets are smaller than closed sets but lossy — they
determine which cliques are frequent, not their supports.  In CLAN's
framework maximality falls out of the same extension scan the closure
check uses (Lemma 4.3's machinery):

    C maximal  ⇔  no extension label β has sup(C ◇ β) ≥ min_sup.

One subtlety mirrors the closure check: β ranges over *all* labels,
old and new — a prefix-restricted check would wrongly report e.g. the
running example's ``bcd`` (extensible by old label ``a``) as maximal.

Subtree pruning: if any *frequent* extension label β is smaller than
the prefix's last label and fully connected across all embeddings'
extension sets, every clique in the subtree extends by β frequently
and the subtree contains no maximal clique — the Lemma 4.4 analogue
with "same support" relaxed to "frequent".  We reuse the stricter
(same-support) test, which is sound here too because equal support to
a frequent prefix implies frequency.
"""

from __future__ import annotations

import time
from typing import Optional

from ..graphdb.core_index import PseudoDatabase
from ..graphdb.database import GraphDatabase
from .canonical import CanonicalForm
from .embeddings import EmbeddingStore
from .pattern import CliquePattern
from .results import MiningResult
from .statistics import MinerStatistics


def mine_maximal_cliques(
    database: GraphDatabase,
    min_sup: float,
    min_size: int = 1,
) -> MiningResult:
    """Mine all maximal frequent cliques.

    Returns a :class:`MiningResult` (``closed_only`` is set — every
    maximal clique is closed, and the flag drives downstream semantics
    like lattice expansion).
    """
    started = time.perf_counter()
    abs_sup = database.absolute_support(min_sup)
    stats = MinerStatistics()
    result = MiningResult(min_sup=abs_sup, closed_only=True, statistics=stats)
    pseudo = PseudoDatabase(database)
    label_supports = database.label_supports()
    stats.database_scans += 1

    def recurse(form: CanonicalForm, store: EmbeddingStore) -> None:
        stats.record_prefix(form.size)
        stats.record_embeddings(store.embedding_count)
        stats.record_frequent(form.size)
        extension_supports = store.extension_supports()
        stats.database_scans += 1

        blocking = store.nonclosed_extension_label(form.last_label)
        if blocking is not None:
            stats.nonclosed_prefix_prunes += 1
            return

        frequent_extensions = {
            label: sup for label, sup in extension_supports.items() if sup >= abs_sup
        }
        if not frequent_extensions:
            if form.size >= min_size:
                result.add(
                    CliquePattern(
                        form=form,
                        support=store.support,
                        transactions=store.transactions(),
                        witnesses=store.witnesses(),
                    )
                )
                stats.closed_cliques += 1
            return
        stats.closure_rejections += 1

        for label in sorted(frequent_extensions):
            if label < form.last_label:
                stats.redundancy_skips += 1
                continue
            recurse(form.extend(label), store.extend(label, form.last_label))

    for label in sorted(label_supports):
        if label_supports[label] < abs_sup:
            stats.infrequent_extensions += 1
            continue
        recurse(
            CanonicalForm((label,)),
            EmbeddingStore.for_label(database, pseudo, label),
        )

    result.elapsed_seconds = time.perf_counter() - started
    return result


def maximal_subset(result: MiningResult, abs_sup: Optional[int] = None) -> MiningResult:
    """Filter any frequent/closed result down to its maximal patterns.

    A pattern is kept when no other pattern in the set is a proper
    superclique of it.  For a *complete* frequent or closed input this
    equals the maximal frequent cliques (every frequent clique has a
    closed superclique of the same size or larger).
    """
    patterns = list(result)
    kept = MiningResult(
        min_sup=abs_sup if abs_sup is not None else result.min_sup,
        closed_only=True,
    )
    for pattern in sorted(patterns, key=lambda p: p.form.labels):
        if not any(
            pattern.form.is_proper_subclique_of(other.form) for other in patterns
        ):
            kept.add(pattern)
    kept.elapsed_seconds = result.elapsed_seconds
    return kept
