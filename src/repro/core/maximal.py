"""Maximal frequent clique mining.

The third classic condensation besides *all frequent* and *closed*: a
frequent clique is **maximal** when no proper superclique is frequent
at all.  Maximal sets are smaller than closed sets but lossy — they
determine which cliques are frequent, not their supports.  In CLAN's
framework maximality falls out of the same extension scan the closure
check uses (Lemma 4.3's machinery):

    C maximal  ⇔  no extension label β has sup(C ◇ β) ≥ min_sup.

One subtlety mirrors the closure check: β ranges over *all* labels,
old and new — a prefix-restricted check would wrongly report e.g. the
running example's ``bcd`` (extensible by old label ``a``) as maximal.

Subtree pruning: if any *frequent* extension label β is smaller than
the prefix's last label and fully connected across all embeddings'
extension sets, every clique in the subtree extends by β frequently
and the subtree contains no maximal clique — the Lemma 4.4 analogue
with "same support" relaxed to "frequent".  We reuse the stricter
(same-support) test, which is sound here too because equal support to
a frequent prefix implies frequency.

Since the engine refactor this module is a thin wrapper: the search
itself is :class:`repro.core.engine.MiningEngine` running
:class:`repro.core.engine.MaximalStrategy`, so maximal mining inherits
the bitset kernels, the parallel executor, sessions, and the cache's
exact-replay tier through :func:`repro.mine`.
"""

from __future__ import annotations

from typing import Optional

from ..graphdb.database import GraphDatabase
from .results import MiningResult


def mine_maximal_cliques(
    database: GraphDatabase,
    min_sup: float,
    min_size: int = 1,
) -> MiningResult:
    """Mine all maximal frequent cliques.

    Returns a :class:`MiningResult` (``closed_only`` is set — every
    maximal clique is closed, and the flag drives downstream semantics
    like lattice expansion).  Soft-legacy: a thin wrapper over
    :func:`repro.mine` with ``task="maximal"``, which also exposes
    kernels, parallelism, sessions, and caching behind one signature.
    """
    from .api import MiningRequest, mine

    return mine(
        database,
        MiningRequest.from_options(min_sup, task="maximal", min_size=min_size),
    )


def maximal_subset(result: MiningResult, abs_sup: Optional[int] = None) -> MiningResult:
    """Filter any frequent/closed result down to its maximal patterns.

    A pattern is kept when no other pattern in the set is a proper
    superclique of it.  For a *complete* frequent or closed input this
    equals the maximal frequent cliques (every frequent clique has a
    closed superclique of the same size or larger).
    """
    patterns = list(result)
    kept = MiningResult(
        min_sup=abs_sup if abs_sup is not None else result.min_sup,
        closed_only=True,
    )
    for pattern in sorted(patterns, key=lambda p: p.form.labels):
        if not any(
            pattern.form.is_proper_subclique_of(other.form) for other in patterns
        ):
            kept.add(pattern)
    kept.elapsed_seconds = result.elapsed_seconds
    return kept
