"""The CLAN canonical form for cliques (paper Section 4.1).

Because a clique is completely connected, two same-size cliques with
the same *bag* of vertex labels are isomorphic — topology carries no
extra information.  The paper therefore defines the canonical form of a
clique as the lexicographically minimum *clique string* over its vertex
labels (Definition 4.1), i.e. simply the labels in sorted order.

That single observation collapses the two expensive primitives of
general graph mining:

* clique isomorphism   → string equality (``CanonicalForm.__eq__``),
* subclique testing    → sub-multiset / subsequence testing on sorted
  strings (Lemma 4.1, :meth:`CanonicalForm.is_subclique_of`).

Lemma 4.2 (prefix closure) — every non-empty prefix of a canonical
form is itself a canonical form — is what licenses CLAN's structural
redundancy pruning; :meth:`CanonicalForm.prefixes` and
:meth:`CanonicalForm.direct_prefix` expose it.

Labels are arbitrary strings under the default lexicographic order; a
custom total order can be supplied via a key function where relevant.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from ..exceptions import PatternError

Label = str


def canonical_label_sequence(labels: Iterable[Label]) -> Tuple[Label, ...]:
    """Return the canonical (sorted) label sequence for a bag of labels."""
    return tuple(sorted(labels))


def is_canonical_sequence(labels: Sequence[Label]) -> bool:
    """Return whether a label sequence is already in canonical order."""
    return all(labels[i] <= labels[i + 1] for i in range(len(labels) - 1))


def is_submultiset(smaller: Sequence[Label], larger: Sequence[Label]) -> bool:
    """Subsequence test between two *sorted* label sequences.

    For sorted sequences, "is a substring in the paper's subsequence
    sense" coincides with "is a sub-multiset", and a single merge pass
    decides it in ``O(len(larger))``.
    """
    i = 0
    n = len(smaller)
    if n > len(larger):
        return False
    for label in larger:
        if i == n:
            return True
        if smaller[i] == label:
            i += 1
        elif smaller[i] < label:
            # Sorted order: smaller[i] can no longer appear in larger.
            return False
    return i == n


class CanonicalForm:
    """An immutable canonical form — the sorted label string of a clique.

    Instances are ordered by the paper's global string order (length-
    respecting lexicographic comparison is *not* used: the paper orders
    strings of equal size positionally, and comparisons across sizes
    follow plain tuple ordering, which is what the lattice and the DFS
    need).

    Examples
    --------
    >>> cf = CanonicalForm.from_labels(["c", "a", "a"])
    >>> str(cf)
    'aac'
    >>> cf.direct_prefix()
    CanonicalForm('aa')
    >>> CanonicalForm.from_labels("ab").is_subclique_of(CanonicalForm.from_labels("abc"))
    True
    """

    __slots__ = ("labels",)

    def __init__(self, labels: Sequence[Label]) -> None:
        if not is_canonical_sequence(labels):
            raise PatternError(
                f"labels {tuple(labels)!r} are not sorted; use CanonicalForm.from_labels"
            )
        self.labels: Tuple[Label, ...] = tuple(labels)

    @classmethod
    def from_labels(cls, labels: Iterable[Label]) -> "CanonicalForm":
        """Build the canonical form of an arbitrary bag of labels."""
        return cls(canonical_label_sequence(labels))

    @classmethod
    def empty(cls) -> "CanonicalForm":
        """The canonical form of the empty prefix clique (DFS root)."""
        return cls(())

    @classmethod
    def wrap(cls, labels: Tuple[Label, ...]) -> "CanonicalForm":
        """Wrap an *already canonical* label tuple without re-validation.

        The engine's iterative search carries bare label tuples (grown
        one ``label >= last`` append at a time, so canonical by
        induction) and materialises forms only at emission time; this
        is that materialisation point.  The tuple is adopted as-is —
        callers must guarantee sortedness, as :meth:`extend` does.
        """
        form = cls.__new__(cls)
        form.labels = labels
        return form

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Clique size (number of vertices)."""
        return len(self.labels)

    @property
    def last_label(self) -> Label:
        """The last (largest) label; raises on the empty form."""
        if not self.labels:
            raise PatternError("the empty canonical form has no last label")
        return self.labels[-1]

    def extend(self, label: Label) -> "CanonicalForm":
        """Append an extension label (must be ≥ the current last label).

        This is the ``CF_C ◇ l`` of Algorithm 1; the precondition is the
        structural redundancy pruning rule of Section 4.2.
        """
        if self.labels and label < self.labels[-1]:
            raise PatternError(
                f"extension label {label!r} is smaller than the last label "
                f"{self.labels[-1]!r}; CLAN only grows canonical prefixes"
            )
        # Canonical by induction (sorted prefix + label ≥ last), so the
        # ctor's re-validation — O(size) per DFS step — is skipped.
        form = CanonicalForm.__new__(CanonicalForm)
        form.labels = self.labels + (label,)
        return form

    def direct_prefix(self) -> "CanonicalForm":
        """Drop the last label (Lemma 4.2 guarantees this is canonical)."""
        if not self.labels:
            raise PatternError("the empty canonical form has no direct prefix")
        form = CanonicalForm.__new__(CanonicalForm)
        form.labels = self.labels[:-1]
        return form

    def prefixes(self) -> Iterator["CanonicalForm"]:
        """Yield all non-empty proper prefixes, shortest first."""
        for length in range(1, len(self.labels)):
            form = CanonicalForm.__new__(CanonicalForm)
            form.labels = self.labels[:length]
            yield form

    def label_counts(self) -> Dict[Label, int]:
        """Return the multiplicity of each label."""
        counts: Dict[Label, int] = {}
        for label in self.labels:
            counts[label] = counts.get(label, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Relationship tests (Lemma 4.1)
    # ------------------------------------------------------------------
    def is_subclique_of(self, other: "CanonicalForm") -> bool:
        """Subclique test ``C ⊑ C'`` via the substring test of Lemma 4.1."""
        return is_submultiset(self.labels, other.labels)

    def is_proper_subclique_of(self, other: "CanonicalForm") -> bool:
        """Proper subclique test ``C ⊏ C'``."""
        return len(self.labels) < len(other.labels) and self.is_subclique_of(other)

    def is_superclique_of(self, other: "CanonicalForm") -> bool:
        """Superclique test ``C ⊒ C'``."""
        return other.is_subclique_of(self)

    def direct_subcliques(self) -> List["CanonicalForm"]:
        """All canonical forms obtained by deleting one vertex.

        These are the downward lattice edges of Figure 4; duplicates
        from equal labels are collapsed.
        """
        seen = set()
        result: List[CanonicalForm] = []
        for i in range(len(self.labels)):
            reduced = self.labels[:i] + self.labels[i + 1 :]
            if reduced not in seen:
                seen.add(reduced)
                result.append(CanonicalForm(reduced))
        return result

    def missing_labels(self, superform: "CanonicalForm") -> Tuple[Label, ...]:
        """Labels to add to reach ``superform`` (raises if not a subclique)."""
        if not self.is_subclique_of(superform):
            raise PatternError(f"{self} is not a subclique of {superform}")
        counts = self.label_counts()
        missing: List[Label] = []
        for label in superform.labels:
            if counts.get(label, 0) > 0:
                counts[label] -= 1
            else:
                missing.append(label)
        return tuple(missing)

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CanonicalForm):
            return NotImplemented
        return self.labels == other.labels

    def __lt__(self, other: "CanonicalForm") -> bool:
        return self.labels < other.labels

    def __le__(self, other: "CanonicalForm") -> bool:
        return self.labels <= other.labels

    def __gt__(self, other: "CanonicalForm") -> bool:
        return self.labels > other.labels

    def __ge__(self, other: "CanonicalForm") -> bool:
        return self.labels >= other.labels

    def __hash__(self) -> int:
        return hash(self.labels)

    def __len__(self) -> int:
        return len(self.labels)

    def __iter__(self) -> Iterator[Label]:
        return iter(self.labels)

    def __str__(self) -> str:
        # Single-character labels render as the paper's compact strings
        # ("abcd"); longer labels are dot-separated for readability.
        if all(len(label) == 1 for label in self.labels):
            return "".join(self.labels)
        return ".".join(self.labels)

    def __repr__(self) -> str:
        return f"CanonicalForm({str(self)!r})"
