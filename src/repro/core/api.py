"""The unified mining entry point: :func:`repro.mine`.

The library grew seven near-duplicate entry points (closed, frequent,
maximal, top-k, quasi, parallel, incremental), each with subtly
different knobs.  :func:`mine` is the one façade new code needs: pick
the task with ``task=...``, and every cross-cutting option — size
window, kernel, worker processes, budgets, event sinks, streaming — is
spelled the same way regardless of task.  The legacy entry points keep
working (several are now thin wrappers over this function) and are
documented as soft-legacy: no ``DeprecationWarning``, no removal
planned, just no new features.

Dispatch table::

    task="closed"    closed cliques        MiningEngine / executor / session
    task="frequent"  all frequent cliques  MiningEngine / executor / session
    task="maximal"   maximal cliques       MiningEngine / executor / session
    task="topk"      k largest closed      MiningEngine / executor / session
                                           (k=... required)
    task="quasi"     closed quasi-cliques  MiningEngine / executor / session
                                           (gamma=..., max_size required)

All five are **engine tasks**: one enumeration core
(:mod:`repro.core.engine`) under task strategies, so kernels, worker
pools, sessions, and the cache's exact-replay tier apply uniformly —
including ``quasi``, whose γ-relaxed strategy lives in
:mod:`repro.core.quasiclique`.

``stream=True`` (engine tasks) returns an unstarted
:class:`~repro.core.session.MiningSession` instead of running it, so
callers can attach a cancellation handler before calling
:meth:`~repro.core.session.MiningSession.run`.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

from ..exceptions import MiningError
from ..graphdb.database import GraphDatabase
from .cache import MiningCache
from .canonical import Label
from .config import MinerConfig
from .engine import engine_for_task
from .results import MiningResult
from .session import EventSink, MiningBudget, MiningCheckpoint, MiningSession
from .support import parse_support

__all__ = ["mine", "MINING_TASKS"]

MINING_TASKS = ("closed", "frequent", "maximal", "topk", "quasi")


def mine(
    database: GraphDatabase,
    min_sup: Union[int, float, str] = 2,
    *,
    task: str = "closed",
    stream: bool = False,
    min_size: int = 1,
    max_size: Optional[int] = None,
    k: Optional[int] = None,
    gamma: float = 0.8,
    config: Optional[MinerConfig] = None,
    kernel: Optional[str] = None,
    collect_witnesses: Optional[bool] = None,
    processes: int = 1,
    scheduler: str = "stealing",
    root_labels: Optional[Tuple[Label, ...]] = None,
    budget: Optional[MiningBudget] = None,
    deadline: Optional[float] = None,
    max_patterns: Optional[int] = None,
    max_expanded_prefixes: Optional[int] = None,
    sinks: Sequence[EventSink] = (),
    sample_every: int = 0,
    resume_from: Optional[MiningCheckpoint] = None,
    cache: Optional[MiningCache] = None,
) -> Union[MiningResult, MiningSession]:
    """Mine clique patterns from a graph transaction database.

    Parameters
    ----------
    database:
        The :class:`~repro.graphdb.database.GraphDatabase` to mine.
    min_sup:
        Support threshold: an absolute count (``10``), a fraction
        (``0.85``), or a string in either spelling plus percentages
        (``"85%"``) — see :func:`repro.core.support.parse_support`.
    task:
        One of ``"closed"`` (default), ``"frequent"``, ``"maximal"``,
        ``"topk"`` (requires ``k``), ``"quasi"`` (requires ``max_size``;
        ``gamma`` tunes the relaxation).
    stream:
        Return an unstarted :class:`MiningSession` instead of a result
        (engine tasks only).
    min_size / max_size:
        Size window on reported patterns.  ``task="maximal"`` rejects
        ``max_size`` (a capped search misreports maximality).
    config:
        Full :class:`MinerConfig` control (engine tasks only).  May
        be combined with ``min_size``/``max_size``; contradictions
        raise :class:`MiningError`.
    kernel / collect_witnesses:
        Shorthand config overrides (engine tasks only).
    processes:
        Mine DFS roots in a process pool when > 1 (engine tasks).
    scheduler:
        How the pool schedules roots: ``"stealing"`` (default) is the
        adaptive work queue with cost-guided root splitting,
        ``"static"`` the legacy round-robin chunks — see
        :class:`repro.core.executor.MiningExecutor`.  Results are
        identical either way; only wall-clock differs.  Ignored when
        ``processes=1``.
    root_labels:
        Restrict the search to the given DFS roots (engine tasks,
        non-session serial runs) — the partitioning primitive sessions
        and the pool build on.
    budget / deadline / max_patterns / max_expanded_prefixes:
        Cooperative budgets.  Either pass a ready
        :class:`MiningBudget`, or the individual shorthands (mutually
        exclusive with ``budget``).  Any budget routes the run through
        a :class:`MiningSession`; the result may come back
        ``truncated`` with its ``completed_roots`` set.
    sinks / sample_every:
        Event-stream plumbing; implies a session.
    resume_from:
        A :class:`MiningCheckpoint` to continue from; implies a session.
    cache:
        A :class:`~repro.core.cache.MiningCache` shared across calls
        (engine tasks).  Roots it can answer are replayed
        instead of mined, and mined roots are stored back — repeated
        mines of the same database, support sweeps, and incremental
        workloads reuse each other's work.  See
        :func:`repro.core.cache.sweep` for the multi-threshold
        convenience wrapper and ``docs/API.md`` for the reuse tiers.

    Returns
    -------
    A :class:`MiningResult`, or a :class:`MiningSession` when
    ``stream=True``.
    """
    if task not in MINING_TASKS:
        raise MiningError(f"unknown task {task!r}; expected one of {MINING_TASKS}")
    from .executor import SCHEDULERS

    if scheduler not in SCHEDULERS:
        raise MiningError(f"unknown scheduler {scheduler!r}; use one of {SCHEDULERS}")
    min_sup = parse_support(min_sup)
    budget = _resolve_budget(budget, deadline, max_patterns, max_expanded_prefixes)

    wants_session = bool(
        stream or sinks or sample_every or resume_from or (budget is not None)
    )
    if task == "topk" and k is None:
        raise MiningError("task='topk' requires k=<number of patterns>")
    gamma_arg: Optional[float] = None
    if task == "quasi":
        if not 0.5 <= gamma <= 1.0:
            raise MiningError(f"gamma must be in [0.5, 1.0], got {gamma}")
        gamma_arg = gamma
        # The façade's historical default: no singleton quasi patterns
        # unless the caller spells out a window (directly or via config).
        if config is None and min_size == 1:
            min_size = 2
        if max_size is None and (config is None or config.max_size is None):
            raise MiningError(
                "task='quasi' requires max_size (the γ-quasi-clique "
                "feasibility and c-closure bounds need a finite size "
                "ceiling; see repro.core.quasiclique)"
            )
    resolved = _resolve_config(task, config, min_size, max_size, kernel, collect_witnesses)
    if cache is not None and root_labels is not None:
        raise MiningError(
            "root_labels cannot be combined with cache; cached mining "
            "covers every frequent root"
        )
    if wants_session:
        if root_labels is not None:
            raise MiningError(
                "root_labels cannot be combined with session options; "
                "sessions manage root scheduling themselves"
            )
        session = MiningSession(
            database,
            min_sup,
            task=task,
            k=k,
            gamma=gamma_arg,
            config=resolved,
            budget=budget,
            sinks=sinks,
            sample_every=sample_every,
            processes=processes,
            scheduler=scheduler,
            resume_from=resume_from,
            cache=cache,
        )
        return session if stream else session.run()
    if cache is not None:
        from .cache import mine_with_cache

        return mine_with_cache(
            database,
            min_sup,
            cache=cache,
            config=resolved,
            processes=processes,
            scheduler=scheduler if processes > 1 else None,
            task=task,
            k=k,
            gamma=gamma_arg,
        )
    if processes > 1:
        from .executor import MiningExecutor

        if root_labels is not None:
            raise MiningError("root_labels and processes>1 cannot be combined")
        with MiningExecutor(
            database,
            resolved,
            processes=processes,
            scheduler=scheduler,
            task=task,
            k=k,
            gamma=gamma_arg,
        ) as executor:
            return executor.mine(min_sup)

    return engine_for_task(database, resolved, task, k, gamma_arg).mine(
        min_sup, root_labels=root_labels
    )


def _resolve_budget(
    budget: Optional[MiningBudget],
    deadline: Optional[float],
    max_patterns: Optional[int],
    max_expanded_prefixes: Optional[int],
) -> Optional[MiningBudget]:
    shorthand = (
        deadline is not None
        or max_patterns is not None
        or max_expanded_prefixes is not None
    )
    if budget is not None and shorthand:
        raise MiningError(
            "pass either budget=MiningBudget(...) or the deadline/max_patterns/"
            "max_expanded_prefixes shorthands, not both"
        )
    if shorthand:
        return MiningBudget(
            deadline_seconds=deadline,
            max_patterns=max_patterns,
            max_expanded_prefixes=max_expanded_prefixes,
        )
    if budget is not None and budget.unbounded:
        return None
    return budget


def _resolve_config(
    task: str,
    config: Optional[MinerConfig],
    min_size: int,
    max_size: Optional[int],
    kernel: Optional[str],
    collect_witnesses: Optional[bool],
) -> MinerConfig:
    """Build/merge the MinerConfig for an engine-task run.

    Maximal, top-k, and quasi mine closed-style (``closed_only=True``,
    subtree pruning on); their emission rules live in the task
    strategies, not the config.  ``task="maximal"`` rejects a size
    ceiling: capping the search makes subcliques of capped cliques
    look maximal.
    """
    closed = task != "frequent"
    if task == "maximal" and max_size is not None:
        raise MiningError(
            "task='maximal' cannot be combined with max_size; a size "
            "ceiling makes subcliques of capped cliques look maximal"
        )
    if config is None:
        resolved = MinerConfig(
            closed_only=closed,
            nonclosed_prefix_pruning=closed,
            min_size=min_size,
            max_size=max_size,
        )
    else:
        if config.closed_only != closed:
            raise MiningError(
                f"config.closed_only={config.closed_only} contradicts task {task!r}"
            )
        if task == "maximal" and config.max_size is not None:
            raise MiningError(
                "task='maximal' cannot be combined with max_size; a size "
                "ceiling makes subcliques of capped cliques look maximal"
            )
        resolved = config.with_window(min_size=min_size, max_size=max_size)
    if kernel is not None:
        resolved = resolved.with_kernel(kernel)
    if collect_witnesses is not None and collect_witnesses != resolved.collect_witnesses:
        from dataclasses import replace

        resolved = replace(resolved, collect_witnesses=collect_witnesses)
    return resolved
