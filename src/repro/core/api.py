"""The unified mining entry point and its typed request/response API.

The library grew seven near-duplicate entry points (closed, frequent,
maximal, top-k, quasi, parallel, incremental), each with subtly
different knobs, and :func:`mine` itself had accreted ~a dozen
loosely-typed keyword options.  This module is the one contract every
caller now shares:

* :class:`MiningRequest` — a versioned, serializable description of a
  mining run: the task, the support threshold, the config, and the
  execution/cache/session options.  ``to_json()``/``from_json()`` *is*
  the wire format of the mining service (:mod:`repro.service`), so an
  in-process call and an over-the-wire job are the same request object
  by construction.
* :class:`MiningResultEnvelope` — the response: the request echoed
  back, the :class:`~repro.core.results.MiningResult` core
  (patterns, support, truncation), and a non-canonical ``search``
  section (statistics, timing, cache counters).  Its
  ``canonical_json()`` is deterministic — byte-identical whether the
  run was in-process, over HTTP, cold, warm, or resumed from a
  checkpoint.
* :func:`mine` — the façade.  ``mine(database, request)`` is the
  primary signature; ``mine(database, 2)`` stays as warning-free sugar
  for a default request, and the legacy keyword sprawl
  (``task=...``, ``kernel=...``, ``processes=...``, …) still works via
  the :meth:`MiningRequest.from_options` builder but emits a
  ``DeprecationWarning``.
* :func:`execute_request` — the dispatcher underneath :func:`mine`,
  the CLI, and the service: session / cache / pool / serial engine.

Dispatch table::

    task="closed"    closed cliques        MiningEngine / executor / session
    task="frequent"  all frequent cliques  MiningEngine / executor / session
    task="maximal"   maximal cliques       MiningEngine / executor / session
    task="topk"      k largest closed      MiningEngine / executor / session
                                           (k=... required)
    task="quasi"     closed quasi-cliques  MiningEngine / executor / session
                                           (gamma=..., max_size required)

All five are **engine tasks**: one enumeration core
(:mod:`repro.core.engine`) under task strategies, so kernels, worker
pools, sessions, and the cache's exact-replay tier apply uniformly.

``stream=True`` returns an unstarted
:class:`~repro.core.session.MiningSession` instead of running it, so
callers can attach a cancellation handler before calling
:meth:`~repro.core.session.MiningSession.run`.
"""

from __future__ import annotations

import hashlib
import json
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple, Union

from ..exceptions import MiningError
from ..graphdb.database import GraphDatabase
from .cache import MiningCache
from .canonical import Label
from .config import MinerConfig
from .engine import engine_for_task
from .results import MiningResult
from .session import EventSink, MiningBudget, MiningCheckpoint, MiningSession
from .support import parse_support

__all__ = [
    "ENVELOPE_VERSION",
    "MINING_TASKS",
    "MiningRequest",
    "MiningResultEnvelope",
    "REQUEST_VERSION",
    "execute_request",
    "mine",
]

MINING_TASKS = ("closed", "frequent", "maximal", "topk", "quasi")

#: Version of the :class:`MiningRequest` wire format.
REQUEST_VERSION = 1

#: Version of the :class:`MiningResultEnvelope` wire format.
ENVELOPE_VERSION = 1

#: The historical quasi default density (``mine(..., task="quasi")``
#: without an explicit ``gamma``); the typed request requires gamma.
_LEGACY_QUASI_GAMMA = 0.8


# ----------------------------------------------------------------------
# The typed request
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MiningRequest:
    """A versioned, serializable description of one mining run.

    The request is the *entire* contract: :func:`repro.mine`, ``clan
    submit``, and the service's ``POST /v1/jobs`` all consume the same
    object, and ``from_json(to_json(r)) == r`` holds for every valid
    request (dataclass equality; property-tested per task in
    ``tests/test_api_contract.py``).

    Parameters
    ----------
    min_sup:
        Support threshold: an absolute count (``10``), a fraction
        (``0.85``), or a string in either spelling plus percentages
        (``"85%"``) — see :func:`repro.core.support.parse_support`.
    task:
        One of ``"closed"`` (default), ``"frequent"``, ``"maximal"``,
        ``"topk"`` (requires ``k``), ``"quasi"`` (requires ``gamma``
        and a finite ``max_size``).
    min_size / max_size:
        Size window on reported patterns.  ``task="maximal"`` rejects
        ``max_size`` (a capped search misreports maximality).
    k:
        ``task="topk"`` only: how many of the largest closed cliques.
    gamma:
        ``task="quasi"`` only: the γ density threshold in [0.5, 1.0].
    config:
        Full :class:`MinerConfig` control.  May be combined with the
        ``min_size``/``max_size``/``kernel``/``collect_witnesses``
        shorthands; contradictions raise :class:`MiningError`.
    kernel / collect_witnesses:
        Shorthand config overrides.
    processes / scheduler:
        Worker-pool execution (results are identical; only wall-clock
        differs).  Part of the request so a service job can ask for a
        pool, but excluded from cache keys and checkpoints.
    budget:
        A :class:`~repro.core.session.MiningBudget` — the per-job SLO.
        Any budget routes the run through a session; the result may
        come back ``truncated``.  An unbounded budget normalises to
        ``None``.
    sample_every:
        Emit every N-th prefix as a ``PrefixVisited`` event (0
        disables); implies a session when nonzero.
    use_cache:
        Whether this run may consult/populate a shared
        :class:`~repro.core.cache.MiningCache` offered by the caller
        or the service (``False`` forces a cold mine).
    """

    min_sup: Union[int, float, str] = 2
    task: str = "closed"
    min_size: int = 1
    max_size: Optional[int] = None
    k: Optional[int] = None
    gamma: Optional[float] = None
    config: Optional[MinerConfig] = None
    kernel: Optional[str] = None
    collect_witnesses: Optional[bool] = None
    processes: int = 1
    scheduler: str = "stealing"
    budget: Optional[MiningBudget] = None
    sample_every: int = 0
    use_cache: bool = True

    def __post_init__(self) -> None:
        if self.task not in MINING_TASKS:
            raise MiningError(
                f"unknown task {self.task!r}; expected one of {MINING_TASKS}"
            )
        from .executor import SCHEDULERS

        if self.scheduler not in SCHEDULERS:
            raise MiningError(
                f"unknown scheduler {self.scheduler!r}; use one of {SCHEDULERS}"
            )
        parse_support(self.min_sup)  # raises on malformed specs
        if self.processes < 1:
            raise MiningError(f"processes must be >= 1, got {self.processes}")
        if self.sample_every < 0:
            raise MiningError(f"sample_every must be >= 0, got {self.sample_every}")
        if self.task == "topk":
            if self.k is None:
                raise MiningError("task='topk' requires k=<number of patterns>")
            if self.k < 1:
                raise MiningError(f"k must be >= 1, got {self.k}")
        elif self.k is not None:
            raise MiningError(f"k only applies to task='topk', got task={self.task!r}")
        if self.task == "quasi":
            if self.gamma is None:
                raise MiningError(
                    "task='quasi' requires gamma=<density in [0.5, 1.0]>"
                )
            if not 0.5 <= self.gamma <= 1.0:
                raise MiningError(f"gamma must be in [0.5, 1.0], got {self.gamma}")
            if self.max_size is None and (
                self.config is None or self.config.max_size is None
            ):
                raise MiningError(
                    "task='quasi' requires max_size (the γ-quasi-clique "
                    "feasibility and c-closure bounds need a finite size "
                    "ceiling; see repro.core.quasiclique)"
                )
        elif self.gamma is not None:
            raise MiningError(
                f"gamma only applies to task='quasi', got task={self.task!r}"
            )
        if self.budget is not None and self.budget.unbounded:
            object.__setattr__(self, "budget", None)
        # Validate the config merge eagerly: contradictions (task vs
        # closed_only, maximal vs max_size, window conflicts, unknown
        # kernels) surface at construction, not at execution.
        self.resolved_config()

    # -- builders ------------------------------------------------------
    @classmethod
    def from_options(
        cls,
        min_sup: Union[int, float, str] = 2,
        *,
        task: str = "closed",
        min_size: int = 1,
        max_size: Optional[int] = None,
        k: Optional[int] = None,
        gamma: Optional[float] = None,
        config: Optional[MinerConfig] = None,
        kernel: Optional[str] = None,
        collect_witnesses: Optional[bool] = None,
        processes: int = 1,
        scheduler: str = "stealing",
        budget: Optional[MiningBudget] = None,
        deadline: Optional[float] = None,
        max_patterns: Optional[int] = None,
        max_expanded_prefixes: Optional[int] = None,
        sample_every: int = 0,
        use_cache: bool = True,
    ) -> "MiningRequest":
        """Build a request from :func:`mine`-style keyword options.

        The sanctioned spelling of the legacy kwargs — warning-free,
        used by the soft-legacy wrappers and the CLI.  It reproduces
        the façade's historical defaults: ``task="quasi"`` fills
        ``gamma=0.8`` when omitted and bumps the default ``min_size``
        to 2 (no singleton quasi patterns unless a window is spelled
        out), and the ``deadline``/``max_patterns``/
        ``max_expanded_prefixes`` shorthands build a
        :class:`~repro.core.session.MiningBudget` (mutually exclusive
        with ``budget=``).
        """
        budget = _resolve_budget(budget, deadline, max_patterns, max_expanded_prefixes)
        if task == "quasi":
            if gamma is None:
                gamma = _LEGACY_QUASI_GAMMA
            if config is None and min_size == 1:
                min_size = 2
        else:
            gamma = None
        return cls(
            min_sup=min_sup,
            task=task,
            min_size=min_size,
            max_size=max_size,
            k=k,
            gamma=gamma,
            config=config,
            kernel=kernel,
            collect_witnesses=collect_witnesses,
            processes=processes,
            scheduler=scheduler,
            budget=budget,
            sample_every=sample_every,
            use_cache=use_cache,
        )

    # -- derived views -------------------------------------------------
    def resolved_config(self) -> MinerConfig:
        """The effective :class:`MinerConfig` after merging shorthands."""
        return MinerConfig.for_task(
            self.task,
            self.config,
            self.min_size,
            self.max_size,
            self.kernel,
            self.collect_witnesses,
        )

    def absolute_support(self, database: GraphDatabase) -> int:
        """This request's threshold as an absolute transaction count."""
        return database.absolute_support(parse_support(self.min_sup))

    # -- serialization -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready dict; the inverse of :meth:`from_dict`."""
        budget = None
        if self.budget is not None:
            budget = {
                "deadline_seconds": self.budget.deadline_seconds,
                "max_patterns": self.budget.max_patterns,
                "max_expanded_prefixes": self.budget.max_expanded_prefixes,
            }
        return {
            "kind": "mining-request",
            "version": REQUEST_VERSION,
            "min_sup": self.min_sup,
            "task": self.task,
            "min_size": self.min_size,
            "max_size": self.max_size,
            "k": self.k,
            "gamma": self.gamma,
            "config": self.config.to_dict() if self.config is not None else None,
            "kernel": self.kernel,
            "collect_witnesses": self.collect_witnesses,
            "processes": self.processes,
            "scheduler": self.scheduler,
            "budget": budget,
            "sample_every": self.sample_every,
            "use_cache": self.use_cache,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "MiningRequest":
        """Rebuild a request; unknown keys are rejected (typo safety)."""
        if payload.get("kind") != "mining-request":
            raise MiningError(
                f"expected kind 'mining-request', got {payload.get('kind')!r}"
            )
        version = payload.get("version")
        if not isinstance(version, int) or not 1 <= version <= REQUEST_VERSION:
            raise MiningError(
                f"unsupported mining-request version {version!r} "
                f"(this library speaks versions 1..{REQUEST_VERSION})"
            )
        known = {
            "kind",
            "version",
            "min_sup",
            "task",
            "min_size",
            "max_size",
            "k",
            "gamma",
            "config",
            "kernel",
            "collect_witnesses",
            "processes",
            "scheduler",
            "budget",
            "sample_every",
            "use_cache",
        }
        unknown = set(payload) - known
        if unknown:
            raise MiningError(
                f"unknown mining-request keys {sorted(unknown)}"
            )
        config = payload.get("config")
        budget = payload.get("budget")
        if budget is not None:
            extra = set(budget) - {
                "deadline_seconds",
                "max_patterns",
                "max_expanded_prefixes",
            }
            if extra:
                raise MiningError(f"unknown budget keys {sorted(extra)}")
        return cls(
            min_sup=payload.get("min_sup", 2),
            task=payload.get("task", "closed"),
            min_size=int(payload.get("min_size", 1)),
            max_size=payload.get("max_size"),
            k=payload.get("k"),
            gamma=payload.get("gamma"),
            config=MinerConfig.from_dict(config) if config is not None else None,
            kernel=payload.get("kernel"),
            collect_witnesses=payload.get("collect_witnesses"),
            processes=int(payload.get("processes", 1)),
            scheduler=payload.get("scheduler", "stealing"),
            budget=MiningBudget(**budget) if budget else None,
            sample_every=int(payload.get("sample_every", 0)),
            use_cache=bool(payload.get("use_cache", True)),
        )

    def to_json(self) -> str:
        """The canonical wire bytes (sorted keys, compact separators)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "MiningRequest":
        return cls.from_dict(json.loads(text))

    def digest(self) -> str:
        """A stable SHA-256 over the wire bytes (job dedup, cache keys)."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()


# ----------------------------------------------------------------------
# The typed response envelope
# ----------------------------------------------------------------------
@dataclass(eq=False)
class MiningResultEnvelope:
    """A :class:`MiningResult` plus the request that produced it.

    The envelope is what the service returns and what
    ``clan submit``/:func:`repro.io.runlog.save_envelope` persist.  Its
    dict has three sections:

    ``request``
        The :class:`MiningRequest`, echoed back verbatim.
    ``result``
        The canonical core: absolute support, ``closed_only``,
        ``truncated``, the completed roots (only when truncated —
        complete runs normalise to ``[]`` so plain-engine and session
        paths serialise identically), and the patterns.
    ``search``
        Observability: the deterministic statistics snapshot, wall
        clock, and cache counters.  **Not** part of the canonical
        bytes — a warm, parallel, or checkpoint-resumed run reports
        different counters but the same canonical envelope.

    :meth:`canonical_json` covers ``request`` + ``result`` only and is
    therefore byte-identical for any two exact runs of the same
    request, which is the contract the ``service-contract`` CI job
    pins.
    """

    request: MiningRequest
    result: MiningResult = field(repr=False)

    @classmethod
    def from_result(
        cls, request: MiningRequest, result: MiningResult
    ) -> "MiningResultEnvelope":
        return cls(request=request, result=result)

    @property
    def status(self) -> str:
        return "truncated" if self.result.truncated else "complete"

    # -- serialization -------------------------------------------------
    def canonical_dict(self) -> Dict[str, Any]:
        """The deterministic sections only (``request`` + ``result``)."""
        from ..io.json_format import pattern_to_dict

        result = self.result
        completed: Tuple[Label, ...] = ()
        if result.truncated and result.completed_roots is not None:
            completed = tuple(sorted(result.completed_roots))
        return {
            "kind": "mining-result-envelope",
            "version": ENVELOPE_VERSION,
            "request": self.request.to_dict(),
            "result": {
                "min_sup": result.min_sup,
                "closed_only": result.closed_only,
                "truncated": result.truncated,
                "completed_roots": list(completed),
                "patterns": [pattern_to_dict(p) for p in result],
            },
        }

    def to_dict(self) -> Dict[str, Any]:
        stats = self.result.statistics
        payload = self.canonical_dict()
        payload["search"] = {
            "statistics": stats.snapshot(),
            "elapsed_seconds": self.result.elapsed_seconds,
            "cache": {
                "roots_from_cache": stats.roots_from_cache,
                "hits": stats.cache_hits,
                "misses": stats.cache_misses,
            },
        }
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "MiningResultEnvelope":
        from ..io.json_format import pattern_from_dict
        from .statistics import MinerStatistics

        if payload.get("kind") != "mining-result-envelope":
            raise MiningError(
                f"expected kind 'mining-result-envelope', got {payload.get('kind')!r}"
            )
        version = payload.get("version")
        if not isinstance(version, int) or not 1 <= version <= ENVELOPE_VERSION:
            raise MiningError(
                f"unsupported mining-result-envelope version {version!r}"
            )
        request = MiningRequest.from_dict(payload["request"])
        core = payload["result"]
        search = payload.get("search", {})
        statistics = MinerStatistics.from_snapshot(search.get("statistics", {}))
        cache = search.get("cache", {})
        statistics.roots_from_cache = int(cache.get("roots_from_cache", 0))
        statistics.cache_hits = int(cache.get("hits", 0))
        statistics.cache_misses = int(cache.get("misses", 0))
        truncated = bool(core.get("truncated", False))
        completed = core.get("completed_roots", [])
        result = MiningResult(
            min_sup=int(core["min_sup"]),
            closed_only=bool(core["closed_only"]),
            statistics=statistics,
            truncated=truncated,
            completed_roots=tuple(completed) if truncated else None,
            elapsed_seconds=float(search.get("elapsed_seconds", 0.0)),
        )
        for entry in core.get("patterns", []):
            result.add(pattern_from_dict(entry))
        return cls(request=request, result=result)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def canonical_json(self) -> str:
        """The byte-identity surface: same request + exact run ⇒ same bytes."""
        return json.dumps(
            self.canonical_dict(), sort_keys=True, separators=(",", ":")
        )

    @classmethod
    def from_json(cls, text: str) -> "MiningResultEnvelope":
        return cls.from_dict(json.loads(text))


# ----------------------------------------------------------------------
# The façade
# ----------------------------------------------------------------------
_UNSET: Any = object()

#: Legacy keyword options accepted (with a DeprecationWarning) by
#: :func:`mine`; each maps onto a :class:`MiningRequest` field or a
#: :meth:`MiningRequest.from_options` shorthand.
_LEGACY_OPTIONS = (
    "task",
    "min_size",
    "max_size",
    "k",
    "gamma",
    "config",
    "kernel",
    "collect_witnesses",
    "processes",
    "scheduler",
    "budget",
    "deadline",
    "max_patterns",
    "max_expanded_prefixes",
    "sample_every",
    "use_cache",
)


def mine(
    database: GraphDatabase,
    request: Union[MiningRequest, int, float, str] = _UNSET,
    *,
    stream: bool = False,
    sinks: Sequence[EventSink] = (),
    resume_from: Optional[MiningCheckpoint] = None,
    cache: Optional[MiningCache] = None,
    root_labels: Optional[Tuple[Label, ...]] = None,
    **options: Any,
) -> Union[MiningResult, MiningSession]:
    """Mine clique patterns from a graph transaction database.

    Primary signature::

        mine(database, MiningRequest(task="topk", min_sup="85%", k=5))

    The second argument may also be a bare support threshold —
    ``mine(database, 2)`` / ``mine(database, min_sup=2)`` — which is
    warning-free sugar for ``MiningRequest(min_sup=2)``.  Passing the
    legacy keyword options (``task=``, ``kernel=``, ``processes=``,
    ``deadline=``, …) still works via
    :meth:`MiningRequest.from_options` but emits a
    ``DeprecationWarning``; construct the request instead.

    Runtime arguments stay keywords on this call because they are not
    serializable run descriptions:

    stream:
        Return an unstarted :class:`MiningSession` instead of a result.
    sinks:
        :class:`~repro.core.session.EventSink` instances; implies a
        session.
    resume_from:
        A :class:`~repro.core.session.MiningCheckpoint` to continue
        from; implies a session.
    cache:
        A :class:`~repro.core.cache.MiningCache` shared across calls.
        Roots it can answer are replayed instead of mined, and mined
        roots are stored back.  Ignored when the request sets
        ``use_cache=False``.
    root_labels:
        Restrict the search to the given DFS roots (non-session serial
        runs) — the partitioning primitive sessions and the pool build
        on.

    Returns a :class:`MiningResult`, or a :class:`MiningSession` when
    ``stream=True``.
    """
    min_sup_kw = options.pop("min_sup", _UNSET)
    if request is _UNSET:
        request = min_sup_kw if min_sup_kw is not _UNSET else 2
    elif min_sup_kw is not _UNSET:
        raise TypeError(
            "mine() got both a positional request/min_sup and a min_sup keyword"
        )
    if isinstance(request, MiningRequest):
        if options:
            raise MiningError(
                f"mine(request=...) cannot be combined with the legacy keyword "
                f"options {sorted(options)}; set them on the MiningRequest"
            )
    else:
        unknown = set(options) - set(_LEGACY_OPTIONS)
        if unknown:
            raise TypeError(
                f"mine() got unexpected keyword arguments {sorted(unknown)}"
            )
        if options:
            warnings.warn(
                "passing mining options as keywords to repro.mine() is "
                "deprecated; construct a repro.MiningRequest (or use "
                "MiningRequest.from_options) and call mine(database, request)",
                DeprecationWarning,
                stacklevel=2,
            )
        request = MiningRequest.from_options(request, **options)
    return execute_request(
        database,
        request,
        stream=stream,
        sinks=sinks,
        resume_from=resume_from,
        cache=cache,
        root_labels=root_labels,
    )


def execute_request(
    database: GraphDatabase,
    request: MiningRequest,
    *,
    stream: bool = False,
    sinks: Sequence[EventSink] = (),
    resume_from: Optional[MiningCheckpoint] = None,
    cache: Optional[MiningCache] = None,
    root_labels: Optional[Tuple[Label, ...]] = None,
) -> Union[MiningResult, MiningSession]:
    """Dispatch a :class:`MiningRequest` to the right execution path.

    The single dispatcher behind :func:`mine`, the CLI subcommands, and
    the service's job runner: session (budgets/sinks/resume/streaming),
    cached mine, worker pool, or the serial engine — in that order of
    precedence.
    """
    resolved = request.resolved_config()
    min_sup = parse_support(request.min_sup)
    if not request.use_cache:
        cache = None
    wants_session = bool(
        stream
        or sinks
        or request.sample_every
        or resume_from is not None
        or request.budget is not None
    )
    if cache is not None and root_labels is not None:
        raise MiningError(
            "root_labels cannot be combined with cache; cached mining "
            "covers every frequent root"
        )
    if wants_session:
        if root_labels is not None:
            raise MiningError(
                "root_labels cannot be combined with session options; "
                "sessions manage root scheduling themselves"
            )
        session = MiningSession.from_request(
            database,
            request,
            sinks=sinks,
            resume_from=resume_from,
            cache=cache,
        )
        return session if stream else session.run()
    if cache is not None:
        from .cache import mine_with_cache

        return mine_with_cache(
            database,
            min_sup,
            cache=cache,
            config=resolved,
            processes=request.processes,
            scheduler=request.scheduler if request.processes > 1 else None,
            task=request.task,
            k=request.k,
            gamma=request.gamma,
        )
    if request.processes > 1:
        from .executor import MiningExecutor

        if root_labels is not None:
            raise MiningError("root_labels and processes>1 cannot be combined")
        with MiningExecutor(
            database,
            resolved,
            processes=request.processes,
            scheduler=request.scheduler,
            task=request.task,
            k=request.k,
            gamma=request.gamma,
        ) as executor:
            return executor.mine(min_sup)

    return engine_for_task(
        database, resolved, request.task, request.k, request.gamma
    ).mine(min_sup, root_labels=root_labels)


def _resolve_budget(
    budget: Optional[MiningBudget],
    deadline: Optional[float],
    max_patterns: Optional[int],
    max_expanded_prefixes: Optional[int],
) -> Optional[MiningBudget]:
    shorthand = (
        deadline is not None
        or max_patterns is not None
        or max_expanded_prefixes is not None
    )
    if budget is not None and shorthand:
        raise MiningError(
            "pass either budget=MiningBudget(...) or the deadline/max_patterns/"
            "max_expanded_prefixes shorthands, not both"
        )
    if shorthand:
        return MiningBudget(
            deadline_seconds=deadline,
            max_patterns=max_patterns,
            max_expanded_prefixes=max_expanded_prefixes,
        )
    if budget is not None and budget.unbounded:
        return None
    return budget
