"""Partition-parallel mining over transaction-range shards.

Out-of-core counterpart of the serial engine: the database is split
into contiguous transaction ranges, each shard is mined independently
for *candidate* forms at a shard-local threshold, and a single
streaming counting pass over the full database then assigns every
candidate its exact global support, transactions, and witnesses before
the task's merge rule decides what is reported.  The result is
byte-identical to the serial engine's patterns (see
``tests/test_sharded.py`` and the exactness note in
``docs/ALGORITHM.md``) while no stage ever needs more than one shard
of transactions resident — which is what makes mining directly from a
:class:`~repro.graphdb.storage.SqliteGraphSource` practical.

The exactness argument is the Savasere–Omiecinski–Navathe partition
argument specialised to label-multiset clique patterns:

* *Candidate recall.*  Shard ``i`` holding ``n_i`` of the ``N``
  transactions is mined at the local threshold ``s_i = max(1,
  (S * n_i) // N)`` where ``S`` is the absolute global threshold.  If a
  form had local support below ``s_i`` in *every* shard, its global
  support would be at most ``Σ_i (s_i - 1) < S`` (pigeonhole over the
  floor division), so every globally frequent form is locally frequent
  somewhere and therefore appears in the candidate union.
* *Exact merge.*  Clique supports are determined by the canonical
  label multiset alone, so the counting pass recovers the exact global
  support of each candidate; closure ("no equal-support superset") and
  maximality ("no frequent superset") are then decided on the merged
  counts, one superset level up — the same level the serial engine's
  extension plan consults.
"""

from __future__ import annotations

import gc
import time
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..exceptions import MiningError
from ..graphdb.database import GraphDatabase
from ..graphdb.graph import Label
from .api import MiningRequest
from .config import MinerConfig
from .embeddings import EmbeddingStore
from .engine import MiningEngine, engine_for_task, finalize_patterns
from .pattern import CliquePattern, make_pattern
from .quasiclique import QuasiEmbeddingStore, QuasiTaskStrategy
from .results import MiningResult
from .statistics import MinerStatistics
from .support import parse_support

#: Default transactions per shard when the caller names neither a shard
#: count nor a shard size.
DEFAULT_SHARD_SIZE = 1024

Form = Tuple[Label, ...]
_Counted = Tuple[int, Tuple[int, ...], Dict[int, Tuple[int, ...]]]


# ----------------------------------------------------------------------
# Shard geometry
# ----------------------------------------------------------------------
def shard_bounds(
    n_transactions: int,
    *,
    shards: Optional[int] = None,
    shard_size: Optional[int] = None,
) -> List[Tuple[int, int]]:
    """Split ``[0, n_transactions)`` into contiguous ``(lo, hi)`` ranges.

    Exactly one of ``shards`` (a target shard count) and ``shard_size``
    (a target transactions-per-shard) may be given; neither defaults to
    :data:`DEFAULT_SHARD_SIZE`-sized shards.  Every returned range is
    non-empty and the ranges concatenate to the full id space, so
    shard-local transaction ids are global ids minus ``lo``.
    """
    if shards is not None and shard_size is not None:
        raise MiningError("give either shards or shard_size, not both")
    if n_transactions < 0:
        raise MiningError(f"negative transaction count {n_transactions}")
    if not n_transactions:
        return []
    if shards is None:
        size = DEFAULT_SHARD_SIZE if shard_size is None else shard_size
        if size < 1:
            raise MiningError(f"shard_size must be >= 1, got {size}")
        return [
            (lo, min(lo + size, n_transactions))
            for lo in range(0, n_transactions, size)
        ]
    if shards < 1:
        raise MiningError(f"shards must be >= 1, got {shards}")
    shards = min(shards, n_transactions)
    base, extra = divmod(n_transactions, shards)
    bounds: List[Tuple[int, int]] = []
    lo = 0
    for index in range(shards):
        hi = lo + base + (1 if index < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def shard_database(
    database: GraphDatabase,
    *,
    shards: Optional[int] = None,
    shard_size: Optional[int] = None,
) -> Iterator[Tuple[int, int, GraphDatabase]]:
    """Yield ``(lo, hi, shard)`` views over contiguous transaction ranges.

    Each shard is a :class:`GraphDatabase` sharing the parent's
    :class:`Graph` objects (in-memory parent) or decoding just its own
    range (out-of-core parent) — consume shards one at a time to keep
    at most one range resident.
    """
    for lo, hi in shard_bounds(len(database), shards=shards, shard_size=shard_size):
        yield lo, hi, database.subset(
            range(lo, hi), name=f"{database.name}[{lo}:{hi}]"
        )


def local_threshold(global_sup: int, shard_size: int, n_transactions: int) -> int:
    """The shard-local candidate threshold ``max(1, (S * n_i) // N)``.

    The floor keeps the pigeonhole recall bound (see the module
    docstring) while never demanding more support than the global
    threshold scaled to the shard's share of the database.
    """
    if not 1 <= global_sup <= n_transactions:
        raise MiningError(
            f"global support {global_sup} out of range for {n_transactions} "
            f"transactions"
        )
    return max(1, (global_sup * shard_size) // n_transactions)


# ----------------------------------------------------------------------
# Phase A: per-shard candidate forms
# ----------------------------------------------------------------------
def _candidate_config(resolved: MinerConfig, task: str) -> MinerConfig:
    """The all-frequent config shard candidate mining runs under.

    Closed-style pruning must be off — a shard-locally non-closed form
    can be globally closed — and the size ceiling is raised one level
    for the tasks whose merge consults size+1 supersets: the serial
    engine decides closure (equal-support tie) and maximality (any
    frequent extension) at size ``max_size`` by looking at extensions
    of size ``max_size + 1``, so the merge needs those supports too.
    """
    if task in ("closed", "maximal", "topk"):
        cand_max = None if resolved.max_size is None else resolved.max_size + 1
    else:
        cand_max = resolved.max_size
    return MinerConfig.all_frequent(
        min_size=resolved.min_size,
        max_size=cand_max,
        kernel=resolved.kernel,
        collect_witnesses=False,
        low_degree_pruning=resolved.low_degree_pruning,
        embedding_strategy=resolved.embedding_strategy,
        max_embeddings=resolved.max_embeddings,
    )


def _shard_candidates(
    database: GraphDatabase,
    lo: int,
    hi: int,
    local_sup: int,
    task: str,
    config: MinerConfig,
    gamma: Optional[float],
) -> Tuple[Tuple[Form, ...], MinerStatistics]:
    """Mine one shard's candidate forms (module-level: pool-picklable)."""
    shard = database.subset(range(lo, hi), name=f"{database.name}[{lo}:{hi}]")
    if task == "quasi":
        engine = MiningEngine(
            shard, config, strategy=QuasiTaskStrategy(gamma, closed=False)
        )
    else:
        engine = engine_for_task(shard, config, "frequent")
    result = engine.mine(local_sup)
    return tuple(pattern.form.labels for pattern in result), result.statistics


def _collect_candidates(
    database: GraphDatabase,
    bounds: Sequence[Tuple[int, int]],
    global_sup: int,
    task: str,
    config: MinerConfig,
    gamma: Optional[float],
    processes: int,
) -> Tuple[set, MinerStatistics]:
    n_transactions = len(database)
    jobs = [
        (lo, hi, local_threshold(global_sup, hi - lo, n_transactions))
        for lo, hi in bounds
    ]
    stats = MinerStatistics()
    forms: set = set()
    if processes > 1 and len(jobs) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(processes, len(jobs))) as pool:
            futures = [
                pool.submit(
                    _shard_candidates, database, lo, hi, sup, task, config, gamma
                )
                for lo, hi, sup in jobs
            ]
            for future in futures:
                shard_forms, shard_stats = future.result()
                forms.update(shard_forms)
                stats.merge(shard_stats)
    else:
        for lo, hi, sup in jobs:
            shard_forms, shard_stats = _shard_candidates(
                database, lo, hi, sup, task, config, gamma
            )
            forms.update(shard_forms)
            stats.merge(shard_stats)
            # Decoded transactions and engine state form reference
            # cycles; waiting for the cyclic collector would let
            # several shards' worth pile up, defeating the bounded
            # residency this path exists for.
            gc.collect()
    return forms, stats


# ----------------------------------------------------------------------
# Phase B: exact global counts via canonical store chains
# ----------------------------------------------------------------------
def _form_trie(forms: set) -> Dict:
    trie: Dict = {}
    for labels in forms:
        node = trie
        for label in labels:
            node = node.setdefault(label, {})
    return trie


def _count_candidates(
    database: GraphDatabase,
    forms: set,
    resolved: MinerConfig,
    task: str,
    gamma: Optional[float],
    report_max: Optional[int],
) -> Dict[Form, _Counted]:
    """Exact global (support, transactions, witnesses) per candidate.

    Candidates are organised into a prefix trie and counted by chaining
    embedding stores along canonical prefixes — each shared prefix's
    store is built exactly once, and each store is the one the serial
    engine would hold at the same prefix, so supports, transactions,
    and witness tuples are byte-identical to a serial mine.  Witnesses
    are only materialised for forms inside the reporting window
    (helper candidates one level above ``max_size`` never need them).
    """
    counted: Dict[Form, _Counted] = {}
    if not forms:
        return counted
    trie = _form_trie(forms)
    collect = resolved.collect_witnesses

    def record(labels: Form, store) -> None:
        if task == "quasi":
            tids = store.quasi_transactions()
            support = len(tids)
            witnesses = store.quasi_witnesses() if collect and support else {}
        else:
            support = store.support
            tids = store.transactions()
            witnesses = {}
            if collect and support and (report_max is None or len(labels) <= report_max):
                witnesses = store.witnesses()
        counted[labels] = (support, tids, witnesses)

    def descend(labels: Form, store, node: Dict) -> None:
        if labels in forms:
            record(labels, store)
        last = labels[-1]
        for label in sorted(node):
            child = store.extend(label, last)
            # Feasible-embedding emptiness is inherited by every
            # extension, so the subtree below an empty store counts 0.
            if child.embedding_count:
                descend(labels + (label,), child, node[label])

    context: Dict = {}
    for root in sorted(trie):
        if task == "quasi":
            store = QuasiEmbeddingStore.for_label(
                database,
                root,
                kernel=resolved.kernel,
                gamma=gamma,
                min_size=resolved.min_size,
                max_size=resolved.max_size,
            )
        else:
            store = EmbeddingStore.for_label(
                database,
                None,
                root,
                resolved.embedding_strategy,
                resolved.kernel,
                context,
            )
        if store.embedding_count or (root,) in forms:
            descend((root,), store, trie[root])
    return counted


# ----------------------------------------------------------------------
# Merge
# ----------------------------------------------------------------------
def _merge_candidates(
    counted: Dict[Form, _Counted],
    global_sup: int,
    resolved: MinerConfig,
    task: str,
    k: Optional[int],
) -> List[CliquePattern]:
    frequent = {
        form: data for form, data in counted.items() if data[0] >= global_sup
    }
    # One superset level up suffices (module docstring): mark each
    # frequent form that has a frequent size+1 superset, and whether
    # some such superset ties its support.
    has_frequent_superset: set = set()
    has_equal_superset: set = set()
    if task in ("closed", "maximal", "topk"):
        for sup_form, (sup_support, _, _) in frequent.items():
            if len(sup_form) < 2:
                continue
            for index in range(len(sup_form)):
                if index and sup_form[index] == sup_form[index - 1]:
                    continue  # removing either copy gives the same sub-multiset
                sub = sup_form[:index] + sup_form[index + 1:]
                data = frequent.get(sub)
                if data is None:
                    continue
                has_frequent_superset.add(sub)
                if data[0] == sup_support:
                    has_equal_superset.add(sub)

    def in_window(form: Form) -> bool:
        if len(form) < resolved.min_size:
            return False
        return resolved.max_size is None or len(form) <= resolved.max_size

    if task == "frequent" or task == "quasi":
        kept = [form for form in frequent if in_window(form)]
    elif task == "maximal":
        kept = [
            form
            for form in frequent
            if in_window(form) and form not in has_frequent_superset
        ]
    else:  # closed, topk
        kept = [
            form
            for form in frequent
            if in_window(form) and form not in has_equal_superset
        ]
    patterns = [
        make_pattern(form, frequent[form][0], frequent[form][1], frequent[form][2])
        for form in kept
    ]
    return finalize_patterns(task, patterns, k=k)


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def mine_sharded(
    database: GraphDatabase,
    request: MiningRequest,
    *,
    shards: Optional[int] = None,
    shard_size: Optional[int] = None,
) -> MiningResult:
    """Mine a request shard-by-shard; exact for every engine task.

    Produces the same patterns (supports, transactions, witnesses —
    byte-identical after envelope serialisation) as
    :func:`repro.core.api.execute_request` on the same request, while
    holding at most one shard of transactions plus the candidate
    embeddings resident.  Statistics are honest *aggregates* of the
    per-shard candidate mines, not a replay of the serial counters.

    ``request.processes > 1`` mines shard candidates on a process
    pool; the counting pass is a single streaming scan either way.
    """
    if request.budget is not None or request.sample_every:
        raise MiningError(
            "sharded mining does not support budgets or sampling; "
            "use execute_request for session features"
        )
    started = time.perf_counter()
    resolved = request.resolved_config()
    task = request.task
    global_sup = database.absolute_support(parse_support(request.min_sup))
    bounds = shard_bounds(len(database), shards=shards, shard_size=shard_size)
    forms, stats = _collect_candidates(
        database,
        bounds,
        global_sup,
        task,
        _candidate_config(resolved, task),
        request.gamma,
        request.processes,
    )
    counted = _count_candidates(
        database, forms, resolved, task, request.gamma, resolved.max_size
    )
    patterns = _merge_candidates(counted, global_sup, resolved, task, request.k)
    result = MiningResult(
        min_sup=global_sup,
        closed_only=resolved.closed_only,
        statistics=stats,
        elapsed_seconds=time.perf_counter() - started,
    )
    for pattern in patterns:
        result.add(pattern)
    return result
