"""Adaptive parallel execution of CLAN's root-partitioned search.

Static round-robin chunking (the original
:func:`mine_closed_cliques_parallel` scheduler, which now lives in
this module) divides DFS roots up front, so one heavy low-alphabet root — the norm
in the paper's dense stock-market graphs, where structural redundancy
pruning concentrates work in the smallest labels — leaves every other
worker idle.  :class:`MiningExecutor` replaces that with a
work-stealing design:

* a **work queue of tasks** (initially one whole subtree per frequent
  root) that idle workers pull from, heaviest first, one task at a
  time;
* **cost-guided splitting** — each root gets a static cost estimate
  from label support × candidate-degree statistics
  (:func:`estimate_root_costs`), refined by live per-task timings fed
  back through the result channel; when a queued root's (calibrated)
  cost exceeds a fair share of the remaining work, the parent
  re-enqueues it as its independent level-2 subtrees
  (``first_extensions`` tasks of :meth:`ClanMiner.mine`), which the
  root-partitioning property makes exact one level down;
* **shared index warm-up** — the parent builds the label supports,
  the :class:`~repro.graphdb.core_index.PseudoDatabase`, and the
  per-graph bitset masks once (:meth:`ClanMiner.prepare`) *before*
  creating the pool, so under the ``fork`` start method every worker
  inherits the finished indexes copy-on-write instead of rebuilding
  them; under ``spawn`` the workers rebuild from the pickled database
  (the initargs double as the fallback payload);
* a **persistent pool**: the executor keeps its workers alive across
  :meth:`mine` calls, so repeated mining of the same database (support
  sweeps, benchmark loops) pays process start-up once.

Correctness contract: for every scheduler and any interleaving, the
merged :class:`MiningResult` — patterns, order, and statistics — is
byte-identical to the serial :class:`ClanMiner`'s, and the per-root
event substreams replayed by :class:`~repro.core.session.MiningSession`
in canonical task order are byte-identical to a serial session's.
Split tasks record *every* prefix (``sample_every=1``) and the parent
re-derives the serial sampling while renumbering ordinals during
replay, so even sampled streams match.
"""

from __future__ import annotations

import heapq
import itertools
import multiprocessing
import os
import queue
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..exceptions import MiningError
from ..graphdb.database import GraphDatabase
from .cache import CachedRoot, MiningCache
from .canonical import Label
from .config import MinerConfig
from .engine import MiningEngine, engine_digest, engine_for_task, finalize_patterns
from .results import MiningResult
from .session import MiningEvent, PrefixVisited, SearchHooks, _ListSink

__all__ = [
    "DEFAULT_SPLIT_FACTOR",
    "ExecutorReport",
    "MiningExecutor",
    "MiningTask",
    "SCHEDULERS",
    "STATIC",
    "STEALING",
    "estimate_root_costs",
    "mine_closed_cliques_parallel",
    "partition_roots",
]

#: Scheduler names: static round-robin chunks vs the adaptive queue.
STATIC = "static"
STEALING = "stealing"
SCHEDULERS = (STATIC, STEALING)

#: Split when a task's cost exceeds this multiple of the fair share
#: (remaining work / processes).  At 1.0 a task splits exactly when it
#: alone would dominate a perfectly balanced schedule — so small,
#: even workloads never split, while one hub root always does.
DEFAULT_SPLIT_FACTOR = 1.0


def partition_roots(labels: Sequence[Label], chunks: int) -> List[Tuple[Label, ...]]:
    """Split root labels into round-robin chunks (the static scheduler).

    Round-robin (rather than contiguous blocks) spreads the typically
    heavy low-alphabet roots across workers.
    """
    if chunks < 1:
        raise MiningError("need at least one chunk")
    buckets: List[List[Label]] = [[] for _ in range(min(chunks, max(1, len(labels))))]
    for index, label in enumerate(labels):
        buckets[index % len(buckets)].append(label)
    return [tuple(bucket) for bucket in buckets if bucket]


def estimate_root_costs(
    database: GraphDatabase, roots: Sequence[Label]
) -> Dict[Label, float]:
    """Static per-root subtree cost estimates, from one database pass.

    Under structural redundancy pruning the subtree of root ℓ explores
    cliques inside the *forward* neighbourhoods of ℓ-vertices — the
    neighbours whose labels sort ≥ ℓ.  Each such vertex therefore
    contributes its embedding (1), one candidate per forward neighbour
    (f), and a quadratic term for the intersections among them
    (f²/2).  The absolute scale is irrelevant; only the ratios steer
    the heaviest-first ordering and the split decision, and live
    per-task timings recalibrate them as results arrive.
    """
    wanted = set(roots)
    costs: Dict[Label, float] = {root: 1.0 for root in roots}
    for graph in database:
        label_map = graph.label_map()
        adjacency = graph.adjacency_map()
        for vertex, label in label_map.items():
            if label not in wanted:
                continue
            forward = 0
            for neighbor in adjacency[vertex]:
                if label_map[neighbor] >= label:
                    forward += 1
            costs[label] += 1.0 + forward + 0.5 * forward * forward
    return costs


@dataclass(frozen=True)
class MiningTask:
    """One unit of schedulable work: a subtree (or sub-subtree) mine.

    ``roots``
        The DFS root labels this task mines (one root per task under
        the stealing scheduler; a chunk under static).
    ``first_extensions``
        ``None`` mines the whole subtree(s); a tuple restricts the
        task to the level-2 subtrees ``root ◇ β`` for those β (split
        tasks — exactly one root then).
    ``include_root``
        Whether this task owns the root-level work: the root's own
        pattern, its statistics, its events, and the Lemma 4.4 check.
        Exactly one task per root carries ``True``.
    ``cost``
        The scheduler's current cost estimate (arbitrary units).
    ``seq``
        Position in the root's task plan; replay order key.
    """

    roots: Tuple[Label, ...]
    first_extensions: Optional[Tuple[Label, ...]] = None
    include_root: bool = True
    cost: float = 1.0
    seq: int = 0

    @property
    def splittable(self) -> bool:
        """Whole single-root subtrees can split; split tasks cannot."""
        return len(self.roots) == 1 and self.first_extensions is None


@dataclass
class ExecutorReport:
    """Observability record of one executor run (``last_report``)."""

    scheduler: str
    processes: int
    roots: int = 0
    tasks: int = 0
    splits: int = 0
    elapsed_seconds: float = 0.0
    #: Roots answered from the executor's :class:`MiningCache` instead
    #: of entering the work queue at all.
    roots_from_cache: int = 0
    #: Summed in-worker mining time (the statistics' ``cpu_seconds``).
    cpu_seconds: float = 0.0
    #: Per-worker busy seconds, keyed by worker pid.
    worker_busy_seconds: Dict[int, float] = field(default_factory=dict)

    def record(self, pid: int, seconds: float) -> None:
        self.tasks += 1
        self.cpu_seconds += seconds
        self.worker_busy_seconds[pid] = (
            self.worker_busy_seconds.get(pid, 0.0) + seconds
        )

    @property
    def max_straggler_ratio(self) -> float:
        """Busiest worker's share over a perfectly even share.

        ``max(busy) / (total busy / processes)`` — 1.0 is a perfectly
        balanced schedule, ``processes`` is one worker doing all the
        work while the rest idle.
        """
        if not self.worker_busy_seconds or self.cpu_seconds <= 0.0:
            return 1.0
        fair = self.cpu_seconds / self.processes
        if fair <= 0.0:
            return 1.0
        return max(self.worker_busy_seconds.values()) / fair


# ----------------------------------------------------------------------
# Worker plumbing
# ----------------------------------------------------------------------
#: Parent-side registry of prepared engines, set *before* the pool is
#: created so fork-started workers inherit the entry (and the already
#: built indexes behind it) copy-on-write.
_PARENT_MINERS: Dict[int, MiningEngine] = {}
_TOKENS = itertools.count(1)

#: Worker-side state, installed by the pool initializer.
_WORKER_STATE: Dict[str, Any] = {}


def _init_executor_worker(
    token: int,
    database: GraphDatabase,
    config: MinerConfig,
    task: str = "closed",
    k: Optional[int] = None,
    gamma: Optional[float] = None,
) -> None:
    miner = _PARENT_MINERS.get(token)
    if miner is None:
        # spawn/forkserver start methods: no inherited parent state, so
        # rebuild (and warm) the engine from the pickled initargs.
        miner = engine_for_task(database, config, task, k, gamma).prepare()
    _WORKER_STATE["miner"] = miner


def _execute_task(
    payload: Tuple[
        int, int, Tuple[Label, ...], Optional[Tuple[Label, ...]], bool, int, int, bool
    ],
) -> Tuple[int, Tuple[Label, ...], int, MiningResult, Tuple[MiningEvent, ...], float, int]:
    """Run one :class:`MiningTask` in a worker; the result channel.

    Returns the task identity, its :class:`MiningResult`, the recorded
    event substream (when capturing), the measured mining seconds (the
    live feedback that recalibrates cost estimates), and the worker
    pid (straggler accounting).
    """
    generation, abs_sup, roots, first_extensions, include_root, seq, sample_every, capture = payload
    miner: MiningEngine = _WORKER_STATE["miner"]
    started = time.perf_counter()
    hooks = None
    recorder = None
    if capture:
        recorder = _ListSink()
        hooks = SearchHooks(sinks=(recorder,), sample_every=sample_every)
        hooks.begin_root(roots[0])
    result = miner.mine(
        abs_sup,
        root_labels=roots,
        hooks=hooks,
        first_extensions=first_extensions,
        include_root=include_root,
    )
    events: Tuple[MiningEvent, ...] = ()
    if recorder is not None:
        hooks.flush()
        events = tuple(recorder.events)
    elapsed = time.perf_counter() - started
    return generation, roots, seq, result, events, elapsed, os.getpid()


def _replay_substreams(
    substreams: Sequence[Sequence[MiningEvent]], sample_every: int
) -> Tuple[MiningEvent, ...]:
    """Concatenate split-task substreams in canonical task order.

    Split tasks record every prefix (``sample_every=1``); the serial
    session samples every N-th prefix *of the whole root* and numbers
    them with a root-wide ordinal.  Replaying in task order walks the
    prefixes in exactly the serial DFS order, so re-deriving the
    sampling here — count every prefix, keep each N-th, rewrite its
    ordinal — reproduces the serial stream byte for byte.
    """
    out: List[MiningEvent] = []
    counter = 0
    for events in substreams:
        for event in events:
            if isinstance(event, PrefixVisited):
                counter += 1
                if sample_every and counter % sample_every == 0:
                    out.append(replace(event, ordinal=counter))
            else:
                out.append(event)
    return tuple(out)


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------
class MiningExecutor:
    """A persistent worker pool mining CLAN's DFS roots adaptively.

    Examples
    --------
    >>> from repro.graphdb import paper_example_database
    >>> with MiningExecutor(paper_example_database(), processes=2) as ex:
    ...     sorted(str(p.form) for p in ex.mine(2))
    ['abcd', 'bde']

    Parameters
    ----------
    database, config:
        As for :class:`~repro.core.engine.MiningEngine`; structural
        redundancy pruning must be on (root partitioning).
    processes:
        Pool size (default: CPU count).
    task / k:
        The engine task to run (any of
        :data:`repro.core.engine.ENGINE_TASKS`; ``k`` for ``"topk"``).
        Defaults to closed/frequent following ``config.closed_only``.
        Top-k roots are never split (the branch-and-bound state is
        root-wide), but distribute across workers like any other.
    scheduler:
        ``"stealing"`` (default): one task per root, pulled heaviest
        first, heavy roots split into level-2 subtrees when they
        dominate the remaining queue.  ``"static"``: the legacy
        round-robin chunks, kept as the comparison baseline.
    split_factor:
        Split threshold multiplier over the fair share
        (:data:`DEFAULT_SPLIT_FACTOR`); ``0.0`` splits every splittable
        root (used by the equivalence tests), large values never split.
    chunks_per_process:
        Static scheduler's chunk multiplicity (ignored by stealing).
    cache:
        Optional :class:`~repro.core.cache.MiningCache`.  Roots it can
        answer skip the work queue entirely (their stored patterns,
        statistics, and event substreams are replayed), and every root
        actually mined by :meth:`iter_roots` is stored back.
        :meth:`mine`'s legacy static chunk path ignores it (chunks are
        not per-root units).

    The pool is created lazily on first use and survives across
    :meth:`mine` calls; :meth:`close` (or the context manager) tears it
    down.  After each run, :attr:`last_report` holds an
    :class:`ExecutorReport` with task/split counts and per-worker busy
    time.
    """

    def __init__(
        self,
        database: GraphDatabase,
        config: Optional[MinerConfig] = None,
        processes: Optional[int] = None,
        scheduler: str = STEALING,
        split_factor: float = DEFAULT_SPLIT_FACTOR,
        chunks_per_process: int = 4,
        cache: Optional[MiningCache] = None,
        task: Optional[str] = None,
        k: Optional[int] = None,
        gamma: Optional[float] = None,
    ) -> None:
        if scheduler not in SCHEDULERS:
            raise MiningError(
                f"unknown scheduler {scheduler!r}; use one of {SCHEDULERS}"
            )
        if config is None:
            config = MinerConfig()
        if not config.structural_redundancy_pruning:
            raise MiningError(
                "parallel mining partitions DFS roots and requires structural "
                "redundancy pruning"
            )
        if processes is None:
            processes = multiprocessing.cpu_count()
        if processes < 1:
            raise MiningError(f"processes must be >= 1, got {processes}")
        if split_factor < 0:
            raise MiningError(f"split_factor must be >= 0, got {split_factor}")
        self.database = database
        self.config = config
        self.processes = processes
        self.scheduler = scheduler
        self.split_factor = split_factor
        self.chunks_per_process = chunks_per_process
        self.cache = cache
        if task is None:
            task = "closed" if config.closed_only else "frequent"
        self.task = task
        self.k = k
        self.gamma = gamma
        self.last_report: Optional[ExecutorReport] = None
        # Shared index warm-up: build every index in the parent now, so
        # the forked workers inherit them copy-on-write.
        self._miner = engine_for_task(database, config, task, k, gamma).prepare()
        self._token = next(_TOKENS)
        self._pool: Optional[Any] = None
        self._generation = 0
        self._closed = False

    # -- lifecycle ------------------------------------------------------
    def __enter__(self) -> "MiningExecutor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        """Terminate the pool and release the parent-side miner registry."""
        if self._closed:
            return
        self._closed = True
        _PARENT_MINERS.pop(self._token, None)
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def _ensure_pool(self) -> Any:
        if self._closed:
            raise MiningError("this MiningExecutor is closed; create a new one")
        if self._pool is None:
            # Registered before Pool() so the forked children see it.
            _PARENT_MINERS[self._token] = self._miner
            context = multiprocessing.get_context()
            self._pool = context.Pool(
                processes=self.processes,
                initializer=_init_executor_worker,
                initargs=(
                    self._token,
                    self.database,
                    self.config,
                    self.task,
                    self.k,
                    self.gamma,
                ),
            )
        return self._pool

    # -- the drained entry point ---------------------------------------
    def mine(self, min_sup: float) -> MiningResult:
        """Mine the whole database; byte-identical to serial ClanMiner.

        Statistics are summed across tasks, ``elapsed_seconds`` is
        wall-clock, and ``statistics.cpu_seconds`` is the summed
        in-worker mining time.
        """
        started = time.perf_counter()
        abs_sup = self.database.absolute_support(min_sup)
        roots = tuple(self.database.frequent_labels(abs_sup))
        merged = MiningResult(min_sup=abs_sup, closed_only=self.config.closed_only)
        collected: List[Any] = []
        if self.scheduler == STATIC:
            parts = self._run_static(abs_sup, roots)
        else:
            parts = (
                part for _root, part, _events in self.iter_roots(abs_sup, roots)
            )
        for part in parts:
            merged.statistics.merge(part.statistics)
            collected.extend(part)
        # Restore the serial engine's deterministic order (and, for
        # top-k, pick the global k best from the per-root candidates —
        # the same selection the serial engine's finalize applies).
        for pattern in finalize_patterns(self.task, collected, self.k):
            merged.add(pattern)
        # The parent's frequent_labels() root scan stands in for the
        # serial miner's label-support scan, so parallel database_scans
        # equals serial (workers inherit prepared indexes and never
        # rescan for label supports).
        merged.statistics.database_scans += 1
        # The serial root loop also counts each infrequent root label it
        # skips; those labels never become tasks here, so account for
        # them once to keep statistics parity with the serial engine.
        merged.statistics.infrequent_extensions += (
            len(self.database.label_supports()) - len(roots)
        )
        if self.cache is not None and self.last_report is not None:
            hits = self.last_report.roots_from_cache
            merged.statistics.roots_from_cache += hits
            merged.statistics.cache_hits += hits
            merged.statistics.cache_misses += len(roots) - hits
        merged.elapsed_seconds = time.perf_counter() - started
        if self.last_report is not None:
            self.last_report.elapsed_seconds = merged.elapsed_seconds
        return merged

    # -- the streaming entry point (session integration) ---------------
    def iter_roots(
        self,
        min_sup: float,
        roots: Sequence[Label],
        sample_every: int = 0,
        capture_events: bool = False,
        allow_sweep: bool = False,
    ) -> Iterator[Tuple[Label, MiningResult, Tuple[MiningEvent, ...]]]:
        """Mine the given roots, yielding each in canonical order.

        Yields ``(root, merged_result, events)`` for every root, in the
        order given (the canonical serial order), regardless of the
        order workers finish in — split tasks are merged and their
        event substreams replayed in canonical task order first, which
        is what preserves the serial==parallel byte-identity contract.
        The consumer may stop iterating at any root boundary (budgets,
        cancellation); in-flight work is then simply abandoned.

        With a :attr:`cache`, roots answered from it never enter the
        work queue; every mined root is stored back.  By default only
        exact-tier entries (with replayable statistics, and events when
        ``capture_events``) are accepted, keeping the byte-identity
        contract; ``allow_sweep=True`` additionally accepts
        patterns-only entries derived from a lower cached threshold
        (:func:`~repro.core.cache.mine_with_cache`'s sweep tier).
        """
        abs_sup = self.database.absolute_support(min_sup)
        roots = tuple(roots)
        report = ExecutorReport(scheduler=self.scheduler, processes=self.processes)
        report.roots = len(roots)
        self.last_report = report
        if not roots:
            return
        started = time.perf_counter()

        # The sweep tier derives patterns by support-filtering (Lemma
        # 4.3's monotonicity); only strategies whose output is support-
        # filterable may use it — maximal/top-k stay exact-replay only.
        allow_sweep = allow_sweep and self._miner.strategy.supports_sweep
        cached: Dict[Label, CachedRoot] = {}
        fingerprint = config_digest = ""
        if self.cache is not None:
            from ..io.runlog import database_fingerprint

            fingerprint = database_fingerprint(self.database)
            config_digest = engine_digest(self.task, self.config, self.k, self.gamma)
            for root in roots:
                entry = self.cache.lookup(
                    fingerprint,
                    config_digest,
                    abs_sup,
                    root,
                    need_statistics=not allow_sweep,
                    need_events=capture_events,
                    sample_every=sample_every,
                    allow_sweep=allow_sweep,
                )
                if entry is not None:
                    cached[root] = entry
        report.roots_from_cache = len(cached)
        to_mine = tuple(root for root in roots if root not in cached)

        # Everything cached: replay without ever touching the pool.
        pool = self._ensure_pool() if to_mine else None
        self._generation += 1
        generation = self._generation
        arrivals: "queue.Queue[Any]" = queue.Queue()

        if self.scheduler == STEALING:
            estimates = estimate_root_costs(self.database, to_mine)
        else:
            estimates = {root: 1.0 for root in to_mine}
        #: root -> its task plan, in replay (seq) order.  A plan grows
        #: from one whole-subtree task to the split tasks at most once.
        plan: Dict[Label, List[MiningTask]] = {
            root: [MiningTask(roots=(root,), cost=estimates[root])] for root in to_mine
        }
        finished: Dict[Label, Dict[int, Tuple[MiningResult, Tuple[MiningEvent, ...]]]] = {
            root: {} for root in to_mine
        }

        # Pending tasks: a heap ordered heaviest-first under stealing,
        # submission order under static (priority = arrival counter).
        tiebreak = itertools.count()
        pending: List[Tuple[float, int, MiningTask]] = []
        #: Every task not yet completed (queued or in flight), keyed by
        #: (root, seq) — the basis of the remaining-work sum the split
        #: threshold compares against.
        outstanding: Dict[Tuple[Label, int], MiningTask] = {}

        def push(task: MiningTask) -> None:
            if self.scheduler == STEALING:
                priority = -task.cost
            else:
                priority = 0.0
            outstanding[(task.roots[0], task.seq)] = task
            heapq.heappush(pending, (priority, next(tiebreak), task))

        for root in to_mine:
            push(plan[root][0])

        # Live calibration: measured worker seconds per estimated cost
        # unit, globally and per root.  A root whose completed split
        # tasks run slower than the global rate inflates its remaining
        # siblings' costs — the "timings fed back through the result
        # channel" refinement — which in turn raises the remaining-work
        # sum and so sharpens later split decisions.
        measured_total = 0.0
        estimated_total = 0.0
        root_measured: Dict[Label, float] = {}
        root_estimated: Dict[Label, float] = {}

        def calibrated(task: MiningTask) -> float:
            root = task.roots[0]
            if (
                root_estimated.get(root, 0.0) > 0.0
                and root_measured.get(root, 0.0) > 0.0
                and measured_total > 0.0
            ):
                scale = root_measured[root] / root_estimated[root]
                baseline = measured_total / estimated_total
                if baseline > 0.0:
                    return task.cost * scale / baseline
            return task.cost

        def remaining_work() -> float:
            return sum(calibrated(task) for task in outstanding.values())

        def try_split(task: MiningTask) -> Optional[List[MiningTask]]:
            extensions = self._miner.root_extension_plan(abs_sup, task.roots[0])
            if len(extensions) < 2:
                return None
            total_support = sum(sup for _label, sup in extensions) or 1
            subtasks = []
            for index, (label, sup) in enumerate(extensions):
                subtasks.append(
                    MiningTask(
                        roots=task.roots,
                        first_extensions=(label,),
                        include_root=index == 0,
                        cost=task.cost * sup / total_support,
                        seq=index,
                    )
                )
            return subtasks

        def submit(task: MiningTask) -> None:
            root = task.roots[0]
            task_sample = sample_every
            if capture_events and len(plan[root]) > 1:
                # Split tasks record every prefix; the parent re-derives
                # the sampling during canonical-order replay.
                task_sample = 1 if sample_every else 0
            pool.apply_async(
                _execute_task,
                (
                    (
                        generation,
                        abs_sup,
                        task.roots,
                        task.first_extensions,
                        task.include_root,
                        task.seq,
                        task_sample,
                        capture_events,
                    ),
                ),
                callback=arrivals.put,
                error_callback=arrivals.put,
            )

        # Keep slightly more tasks in flight than workers so nobody
        # idles between arrivals, but not so many that queue residents
        # lose their chance to split.
        high_water = self.processes + 2
        in_flight = 0
        flush_index = 0

        while flush_index < len(roots):
            next_root = roots[flush_index]

            # Cache hit: replay the stored result in place of mining.
            entry = cached.get(next_root)
            if entry is not None:
                part = entry.result(self.config.closed_only)
                entry_events: Tuple[MiningEvent, ...] = ()
                if capture_events and entry.events is not None:
                    entry_events = entry.events
                report.elapsed_seconds = time.perf_counter() - started
                flush_index += 1
                yield next_root, part, entry_events
                continue

            # Mined root whose tasks all arrived: merge, store, yield.
            tasks = plan[next_root]
            done = finished[next_root]
            if len(done) == len(tasks):
                merged_part, merged_events = self._merge_root(
                    tasks, done, sample_every, capture_events
                )
                if self.cache is not None:
                    self.cache.store(
                        fingerprint,
                        config_digest,
                        CachedRoot(
                            root=next_root,
                            abs_sup=abs_sup,
                            patterns=tuple(merged_part),
                            statistics=merged_part.statistics.snapshot(),
                            events=merged_events if capture_events else None,
                            events_sample_every=sample_every if capture_events else 0,
                        ),
                    )
                report.elapsed_seconds = time.perf_counter() - started
                flush_index += 1
                yield next_root, merged_part, merged_events
                continue

            # The front root is still mining: keep the queue fed, then
            # block on the next arrival (the outer loop re-checks the
            # front afterwards).
            while pending and in_flight < high_water:
                _, _, task = heapq.heappop(pending)
                if (
                    self.scheduler == STEALING
                    and task.splittable
                    and calibrated(task)
                    > self.split_factor * (remaining_work() / self.processes)
                ):
                    subtasks = try_split(task)
                    if subtasks is not None:
                        report.splits += 1
                        plan[task.roots[0]] = subtasks
                        del outstanding[(task.roots[0], task.seq)]
                        for subtask in subtasks:
                            push(subtask)
                        continue
                submit(task)
                in_flight += 1

            arrival = arrivals.get()
            if isinstance(arrival, BaseException):
                raise MiningError(f"parallel worker failed: {arrival}") from arrival
            task_generation, task_roots, seq, part, events, seconds, pid = arrival
            if task_generation != generation:  # pragma: no cover - stale run
                continue
            in_flight -= 1
            root = task_roots[0]
            task_cost = plan[root][seq].cost
            del outstanding[(root, seq)]
            measured_total += seconds
            estimated_total += task_cost
            root_measured[root] = root_measured.get(root, 0.0) + seconds
            root_estimated[root] = root_estimated.get(root, 0.0) + task_cost
            report.record(pid, seconds)
            finished[root][seq] = (part, events)

        report.elapsed_seconds = time.perf_counter() - started

    # ------------------------------------------------------------------
    def _merge_root(
        self,
        tasks: List[MiningTask],
        done: Dict[int, Tuple[MiningResult, Tuple[MiningEvent, ...]]],
        sample_every: int,
        capture_events: bool,
    ) -> Tuple[MiningResult, Tuple[MiningEvent, ...]]:
        """Fold one root's task results back into the serial shape."""
        if len(tasks) == 1:
            return done[0]
        parts = [done[task.seq][0] for task in tasks]
        merged = MiningResult(
            min_sup=parts[0].min_sup, closed_only=self.config.closed_only
        )
        collected: List[Any] = []
        for part in parts:
            merged.statistics.merge(part.statistics)
            collected.extend(part)
        # Within one root, task order ≡ extension order ≡ canonical
        # order, but sort anyway: MiningResult.add rejects duplicates,
        # an independent safety net under the split's disjointness.
        for pattern in sorted(collected, key=lambda p: p.form.labels):
            merged.add(pattern)
        merged.elapsed_seconds = sum(part.elapsed_seconds for part in parts)
        events: Tuple[MiningEvent, ...] = ()
        if capture_events:
            events = _replay_substreams(
                [done[task.seq][1] for task in tasks], sample_every
            )
        return merged, events

    def _run_static(
        self, abs_sup: int, roots: Tuple[Label, ...]
    ) -> List[MiningResult]:
        """The legacy baseline: round-robin chunks, no splitting."""
        report = ExecutorReport(scheduler=self.scheduler, processes=self.processes)
        report.roots = len(roots)
        self.last_report = report
        if not roots:
            return []
        pool = self._ensure_pool()
        self._generation += 1
        generation = self._generation
        chunks = partition_roots(roots, self.processes * self.chunks_per_process)
        handles = [
            pool.apply_async(
                _execute_task,
                ((generation, abs_sup, chunk, None, True, index, 0, False),),
            )
            for index, chunk in enumerate(chunks)
        ]
        parts: List[MiningResult] = []
        for handle in handles:
            _generation, _roots, _seq, part, _events, seconds, pid = handle.get()
            report.record(pid, seconds)
            parts.append(part)
        return parts


# ----------------------------------------------------------------------
# One-call convenience wrapper (formerly repro.core.parallel)
# ----------------------------------------------------------------------
def mine_closed_cliques_parallel(
    database: GraphDatabase,
    min_sup: float,
    processes: Optional[int] = None,
    config: Optional[MinerConfig] = None,
    chunks_per_process: int = 4,
    scheduler: str = STEALING,
) -> MiningResult:
    """Mine closed cliques with a process pool over DFS roots.

    Results are identical to the serial miner (tested); statistics
    are summed across workers, with ``cpu_seconds`` aggregating the
    in-worker mining time and ``elapsed_seconds`` reporting this
    call's wall clock.  With ``processes=1`` the pool is bypassed
    entirely, which keeps the call cheap to use in code that sometimes
    runs small inputs.  The candidate-intersection kernel
    (``config.kernel``, bitset by default) travels with the pickled
    config, and the parent warms every kernel index before forking so
    workers inherit them copy-on-write.  ``scheduler`` selects the
    adaptive work-stealing executor (default) or the legacy static
    round-robin chunks.

    Lives here since ``repro.core.parallel`` folded into this module;
    the old import path has completed the deprecation cycle and no
    longer exists.
    """
    started = time.perf_counter()
    if config is None:
        config = MinerConfig()
    if not config.structural_redundancy_pruning:
        raise MiningError(
            "parallel mining partitions DFS roots and requires structural "
            "redundancy pruning"
        )
    if processes is None:
        processes = multiprocessing.cpu_count()

    if processes <= 1:
        from .miner import ClanMiner

        result = ClanMiner(database, config).mine(min_sup)
        result.elapsed_seconds = time.perf_counter() - started
        return result

    with MiningExecutor(
        database,
        config,
        processes=processes,
        scheduler=scheduler,
        chunks_per_process=chunks_per_process,
    ) as executor:
        result = executor.mine(min_sup)
    result.elapsed_seconds = time.perf_counter() - started
    return result
