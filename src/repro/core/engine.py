"""The task-parameterised enumeration engine (paper Algorithm 1).

:class:`MiningEngine` owns the depth-first canonical-form search that
used to live inside :class:`repro.core.miner.ClanMiner`, factored so
the *task* — which prefixes become output patterns, which subtrees can
be cut — is supplied by a small :class:`TaskStrategy` object instead of
being hard-wired.  Every mining task then rides the same machinery:

* the :class:`~repro.core.config.MinerConfig` kernels (``set`` or
  ``bitset``) and embedding strategies,
* root partitioning and level-2 splitting
  (:meth:`MiningEngine.root_extension_plan`,
  ``first_extensions``/``include_root``) for the work-stealing
  executor,
* the :class:`~repro.core.session.SearchHooks` instrumentation points
  for events, budgets, and checkpoints,
* one :class:`~repro.core.statistics.MinerStatistics` object filled
  with the same counters regardless of task.

The five built-in strategies map to the paper like so:

========== ==========================================================
strategy    emission / pruning rule
========== ==========================================================
closed      emit iff no extension ties the support (Lemma 4.3);
            prune subtrees under a fully-connected smaller-label
            extension (Lemma 4.4)
frequent    emit every frequent prefix; same Lemma 4.4 prune
maximal     emit iff *no* extension label is frequent at all — the
            Lemma 4.3 scan with "ties the support" relaxed to
            "is frequent"; Lemma 4.4 stays sound because equal
            support to a frequent prefix implies frequency
topk        closed emission into a bounded heap, plus a
            branch-and-bound size cut: subtrees whose multiplicity
            bound cannot beat the current k-th best size are skipped
quasi       γ-quasi-clique relaxation over a feasibility-pruned
            embedding store (``root_store``); emit iff enough
            transactions hold a qualifying embedding, closed filter
            applied *globally* (Lemma 4.3 does not relax), and the
            Lemma 4.4 cut replaced by a c-closure bound on
            non-adjacent pairs (see :mod:`repro.core.quasiclique`)
========== ==========================================================

Determinism contract: a strategy may keep *per-root* state only
(reset in :meth:`TaskStrategy.begin_root`), so mining the same roots
serially, through the executor, or replayed from the cache composes to
byte-identical final results.  Global selections (top-k's "k best
overall") happen in :func:`finalize_patterns`, applied identically at
every merge site.
"""

from __future__ import annotations

import heapq
import time
from bisect import bisect_left
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

from ..exceptions import MiningError
from ..graphdb.core_index import PseudoDatabase
from ..graphdb.database import GraphDatabase
from .canonical import CanonicalForm, Label
from .config import MinerConfig
from .embeddings import EmbeddingStore, warm_kernel_indexes
from .pattern import CliquePattern
from .results import MiningResult
from .statistics import MinerStatistics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .session import SearchHooks

#: Tasks the engine can run directly.
ENGINE_TASKS = ("closed", "frequent", "maximal", "topk", "quasi")


# ----------------------------------------------------------------------
# Task strategies
# ----------------------------------------------------------------------
class TaskStrategy:
    """What to emit and what to cut, per mining task.

    The engine calls the hooks in a fixed order at every prefix (see
    :meth:`MiningEngine._search`); a strategy answers three questions:

    * :meth:`prune_subtree` — can the whole subtree be cut here (the
      Lemma 4.4 test by default; quasi substitutes a c-closure bound)?
    * :meth:`visit` — does this prefix become an output pattern?
    * :meth:`descend` — is the subtree below still worth exploring?

    The search loop is allocation-free and *lazy*: prefixes travel as
    bare canonical label tuples (``labels``), and no
    :class:`CanonicalForm`, :class:`CliquePattern`, witness map, or
    transaction tuple exists until a strategy decides to emit.  A
    ``visit`` override therefore receives ``labels`` (canonical by
    construction — wrap with :meth:`CanonicalForm.wrap` at emission
    time) and must treat ``store`` as borrowed for the duration of the
    call: the engine recycles child stores through a free list once
    their subtree finishes, so a strategy may *read* the store (and
    copy out ``transactions()``/``witnesses()``, which return fresh
    objects) but must never retain a reference to it past the call.

    :meth:`root_store` lets a strategy substitute the embedding store
    the DFS grows (quasi swaps in the feasibility-pruned store);
    ``begin_root``/``end_root`` bracket each DFS root so strategies may
    keep per-root state; ``finalize`` runs once per ``mine`` call.
    Class attributes declare how the stack above may treat the task:
    ``splittable`` gates level-2 root splitting (the executor), and
    ``supports_sweep`` gates the cache's support-monotone sweep tier
    (sound only when the output is support-filterable, Lemma 4.3).
    """

    task: str = "closed"
    #: May the executor split this task's roots into level-2 subtrees?
    splittable: bool = True
    #: May the cache derive this task's results from lower-support runs?
    supports_sweep: bool = False

    def begin_root(self, label: Label) -> None:
        """Reset any per-root state before a DFS root is mined."""

    def root_store(
        self, engine: "MiningEngine", pseudo, label: Label, context: Optional[dict] = None
    ) -> EmbeddingStore:
        """Build the embedding store one DFS root grows from.

        The default is the clique store; strategies whose definition
        relaxes the clique condition (quasi) substitute their own.
        Called with the engine's :class:`PseudoDatabase` (``None`` when
        low-degree pruning is off) at both mining and split-planning
        sites, so every execution path grows the same embeddings.
        ``context`` is the per-mine-call scratch dict (kernels use it
        to share batched state across the call's roots); ``None`` at
        standalone sites like split planning.
        """
        config = engine.config
        return EmbeddingStore.for_label(
            engine.database,
            pseudo,
            label,
            config.embedding_strategy,
            config.kernel,
            context,
        )

    def prune_subtree(
        self,
        engine: "MiningEngine",
        labels: Tuple[Label, ...],
        store: EmbeddingStore,
        abs_sup: int,
    ) -> Optional[str]:
        """Decide whether the whole subtree at ``labels`` can be cut.

        Returns a reason string (recorded in statistics and streamed in
        :class:`~repro.core.session.SubtreePruned` events) or ``None``
        to keep searching.  The default is the Lemma 4.4 non-closed
        prefix test, gated on ``config.nonclosed_prefix_pruning``; it
        runs after :meth:`EmbeddingStore.extension_plan` has seeded the
        store's tie cache.  A strategy override must only cut subtrees
        that provably contain no output pattern, and must be a pure
        function of the store — split tasks and cache replays re-run it.
        """
        if not engine.config.nonclosed_prefix_pruning:
            return None
        if store.nonclosed_extension_label(labels[-1]) is not None:
            return "nonclosed_prefix"
        return None

    def visit(
        self,
        engine: "MiningEngine",
        labels: Tuple[Label, ...],
        store: EmbeddingStore,
        frequent_extensions: Sequence[Tuple[Label, int]],
        blocked: bool,
        result: MiningResult,
        stats: MinerStatistics,
        hooks: Optional["SearchHooks"],
    ) -> None:
        """Decide whether this prefix is an output pattern."""
        raise NotImplementedError  # pragma: no cover - abstract

    def descend(
        self,
        labels: Tuple[Label, ...],
        store: EmbeddingStore,
        frequent_extensions: Sequence[Tuple[Label, int]],
        stats: MinerStatistics,
    ) -> bool:
        """Whether to explore the subtree below this prefix."""
        return True

    def end_root(
        self,
        engine: "MiningEngine",
        result: MiningResult,
        stats: MinerStatistics,
        hooks: Optional["SearchHooks"],
    ) -> None:
        """Flush any per-root state after a DFS root finishes."""

    def finalize(self, result: MiningResult) -> MiningResult:
        """Post-process one ``mine`` call's result (identity by default)."""
        return result


class ClosedStrategy(TaskStrategy):
    """Closed cliques: Lemma 4.3 emission, Lemma 4.4 subtree cut."""

    task = "closed"
    supports_sweep = True

    def visit(self, engine, labels, store, frequent_extensions, blocked, result, stats, hooks):
        # Lines 06-07: closure check (Lemma 4.3) and output.
        if not blocked:
            engine._emit(labels, store, result, stats, hooks)
        else:
            stats.closure_rejections += 1


class FrequentStrategy(TaskStrategy):
    """All frequent cliques: every frequent prefix is output."""

    task = "frequent"
    supports_sweep = True

    def visit(self, engine, labels, store, frequent_extensions, blocked, result, stats, hooks):
        engine._emit(labels, store, result, stats, hooks)


class MaximalStrategy(TaskStrategy):
    """Maximal frequent cliques.

    C maximal ⇔ no extension label β has sup(C ◇ β) ≥ min_sup, with β
    ranging over *all* labels, old and new (a prefix-restricted check
    would wrongly call the running example's ``bcd`` maximal).  The
    Lemma 4.4 cut stays sound: a fully-connected same-support smaller
    extension means every clique in the subtree extends frequently.
    """

    task = "maximal"

    def visit(self, engine, labels, store, frequent_extensions, blocked, result, stats, hooks):
        if not frequent_extensions:
            engine._emit(labels, store, result, stats, hooks)
        else:
            stats.closure_rejections += 1


class TopKStrategy(TaskStrategy):
    """The k largest closed cliques, with a branch-and-bound size cut.

    Keeps one bounded heap *per DFS root* (reset in ``begin_root``,
    drained into the result in ``end_root``) so that serial, split,
    and cache-replayed runs of the same roots produce byte-identical
    per-root results; :func:`finalize_patterns` then selects the global
    k best under the total order ``(size, reversed labels)``.  The
    per-root heap threshold is at most the global one, so the bound cut
    is sound (merely more conservative than a global heap's).  Roots
    are never split (``splittable`` is False): the bound's state is
    root-wide, and a level-2 split would weaken it nondeterministically.
    """

    task = "topk"
    splittable = False

    def __init__(self, k: int) -> None:
        if k < 1:
            raise MiningError(f"top-k mining needs k >= 1, got {k}")
        self.k = k
        self._heap = _TopKHeap(k)

    def begin_root(self, label):
        self._heap = _TopKHeap(self.k)

    def visit(self, engine, labels, store, frequent_extensions, blocked, result, stats, hooks):
        config = engine.config
        if len(labels) < config.min_size:
            return
        if not blocked:
            pattern = CliquePattern(
                form=CanonicalForm.wrap(labels),
                support=store.support,
                transactions=store.transactions(),
                witnesses=store.witnesses() if config.collect_witnesses else {},
            )
            self._heap.offer(pattern)
            stats.closed_cliques += 1
            if hooks is not None:
                hooks.pattern(pattern)
        else:
            stats.closure_rejections += 1

    def descend(self, labels, store, frequent_extensions, stats):
        last_label = labels[-1] if labels else None
        valid = [
            label
            for label, _ in frequent_extensions
            if last_label is None or label >= last_label
        ]
        if not valid:
            return True  # the extension loop handles the small labels
        # Branch and bound: can this subtree still reach the heap?  The
        # cut is strict because size ties are broken by label order, so
        # a subtree that can only *match* the k-th size may still win.
        bound = len(labels) + store.multiplicity_bound(valid)
        if bound < self._heap.threshold():
            stats.redundancy_skips += 1  # reuse the counter for bound cuts
            return False
        return True

    def end_root(self, engine, result, stats, hooks):
        for pattern in self._heap.patterns():
            result.add(pattern)

    def finalize(self, result):
        final = MiningResult(
            min_sup=result.min_sup,
            closed_only=result.closed_only,
            statistics=result.statistics,
            elapsed_seconds=result.elapsed_seconds,
            truncated=result.truncated,
            completed_roots=result.completed_roots,
        )
        for pattern in finalize_patterns("topk", list(result), k=self.k):
            final.add(pattern)
        return final


class _TopKHeap:
    """Keeps the k best (size, form) entries; min-heap on size."""

    def __init__(self, k: int) -> None:
        self.k = k
        self._heap: List[Tuple[int, Tuple[Label, ...], CliquePattern]] = []

    def offer(self, pattern: CliquePattern) -> None:
        # Tie-break on the reversed label tuple so the heap order is
        # total; the reversed-ness is arbitrary but deterministic.
        entry = (pattern.size, tuple(reversed(pattern.labels)), pattern)
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, entry)
        elif entry[:2] > self._heap[0][:2]:
            heapq.heapreplace(self._heap, entry)

    def threshold(self) -> int:
        """Sizes at or below this cannot improve the heap once full."""
        if len(self._heap) < self.k:
            return 0
        return self._heap[0][0]

    def patterns(self) -> List[CliquePattern]:
        """The kept patterns, largest first (ties by the heap's order)."""
        return [
            entry[2]
            for entry in sorted(self._heap, key=lambda e: (e[0], e[1]), reverse=True)
        ]


#: Strategy ``visit`` functions the search loop knows how to inline.
#: The hot loop resolves ``type(strategy).visit`` against this table
#: once per root: the three stateless emission rules (closed, frequent,
#: maximal) become straight-line code with no method dispatch, while
#: stateful strategies (top-k, quasi, user subclasses) keep the full
#: ``visit`` call.  Keyed by the *function* object, so a subclass that
#: overrides ``visit`` automatically falls back to the dispatching path.
_INLINE_VISITS = {
    ClosedStrategy.visit: 1,
    FrequentStrategy.visit: 2,
    MaximalStrategy.visit: 3,
}


def _extension_multiplicity_bound(
    store: EmbeddingStore, valid_labels: List[Label]
) -> int:
    """Soft-legacy alias of :meth:`EmbeddingStore.multiplicity_bound`.

    The bound became a store method so each kernel can implement it in
    its own representation (the slab kernel's is a vectorized column
    sum); kept as a wrapper for existing importers.
    """
    return store.multiplicity_bound(valid_labels)


# ----------------------------------------------------------------------
# Strategy / digest factories
# ----------------------------------------------------------------------
def make_strategy(
    task: str, k: Optional[int] = None, gamma: Optional[float] = None
) -> TaskStrategy:
    """Build the :class:`TaskStrategy` for an engine task."""
    if task == "closed":
        return ClosedStrategy()
    if task == "frequent":
        return FrequentStrategy()
    if task == "maximal":
        return MaximalStrategy()
    if task == "topk":
        if k is None:
            raise MiningError("task='topk' requires k=<number of patterns>")
        return TopKStrategy(k)
    if task == "quasi":
        if gamma is None:
            raise MiningError(
                "task='quasi' requires gamma=<density in [0.5, 1.0]>"
            )
        # Imported here: quasiclique builds on this module's TaskStrategy.
        from .quasiclique import QuasiTaskStrategy

        return QuasiTaskStrategy(gamma)
    raise MiningError(
        f"unknown engine task {task!r}; the engine runs {ENGINE_TASKS}"
    )


def engine_for_task(
    database: GraphDatabase,
    config: Optional[MinerConfig],
    task: str = "closed",
    k: Optional[int] = None,
    gamma: Optional[float] = None,
) -> "MiningEngine":
    """Build a prepared-on-demand engine for any engine task.

    ``config=None`` resolves to the task's natural default (closed-style
    search for everything but ``frequent``); a config whose
    ``closed_only`` contradicts the task is rejected — a frequent
    strategy under Lemma 4.4 pruning would silently skip subtrees.
    """
    strategy = make_strategy(task, k, gamma)
    if config is None:
        config = MinerConfig() if task != "frequent" else MinerConfig.all_frequent()
    elif config.closed_only != (task != "frequent"):
        raise MiningError(
            f"config.closed_only={config.closed_only} contradicts task {task!r}"
        )
    if task == "quasi" and config.max_size is None:
        raise MiningError(
            "task='quasi' requires max_size (the γ-quasi-clique feasibility "
            "and c-closure bounds need a finite size ceiling)"
        )
    return MiningEngine(database, config, strategy=strategy)


def engine_digest(
    task: str,
    config: MinerConfig,
    k: Optional[int] = None,
    gamma: Optional[float] = None,
) -> str:
    """The cache digest for a (task, config[, k/gamma]) combination.

    Closed/frequent keep the bare :meth:`MinerConfig.digest` (their
    task is already encoded in ``config.closed_only``, and persisted
    caches from earlier releases carry those digests); maximal, top-k,
    and quasi prefix the task (and its parameter) so their per-root
    entries can never collide with a closed run of the same config.
    """
    digest = config.digest()
    if task in ("closed", "frequent"):
        return digest
    if task == "maximal":
        return f"maximal:{digest}"
    if task == "topk":
        if k is None:
            raise MiningError("task='topk' requires k=<number of patterns>")
        return f"topk:{k}:{digest}"
    if task == "quasi":
        if gamma is None:
            raise MiningError(
                "task='quasi' requires gamma=<density in [0.5, 1.0]>"
            )
        return f"quasi:{gamma!r}:{digest}"
    raise MiningError(
        f"unknown engine task {task!r}; the engine runs {ENGINE_TASKS}"
    )


def finalize_patterns(
    task: str,
    patterns: List[CliquePattern],
    k: Optional[int] = None,
) -> List[CliquePattern]:
    """Order (and for top-k, select) merged per-root patterns.

    Applied identically at every merge site — the serial engine, the
    session, the executor, and the cache — so all execution paths
    compose per-root outputs into the same final pattern list.  For
    top-k this is where the *global* k best are chosen from the
    per-root candidates, under the same total order the per-root heaps
    use; for quasi it is the *global* closed filter (pattern-level
    closedness is not per-prefix decidable for quasi-cliques, so
    emission keeps every frequent pattern and closedness is resolved
    here).  The quasi filter composes over any partition of the
    emissions — a killed pattern's ⊂-maximal killer is itself unkilled,
    so it survives every piecewise application and still kills at the
    last one — which is what keeps per-root (cache), per-split-task
    (executor), and whole-run (serial) filtering byte-identical after
    the final merge.  For every other task it is the canonical-form
    sort the merge sites always applied.
    """
    if task == "topk":
        if k is None:
            raise MiningError("task='topk' requires k=<number of patterns>")
        ordered = sorted(
            patterns,
            key=lambda p: (p.size, tuple(reversed(p.labels))),
            reverse=True,
        )
        return ordered[:k]
    if task == "quasi":
        kept = [
            p
            for p in patterns
            if not any(
                q.support == p.support and p.form.is_proper_subclique_of(q.form)
                for q in patterns
            )
        ]
        return sorted(kept, key=lambda p: p.form.labels)
    return sorted(patterns, key=lambda p: p.form.labels)


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class MiningEngine:
    """Task-parameterised frequent clique enumerator.

    One engine = one database snapshot + one config + one strategy.
    :class:`repro.core.miner.ClanMiner` is the closed/frequent special
    case and keeps the historical name.
    """

    def __init__(
        self,
        database: GraphDatabase,
        config: Optional[MinerConfig] = None,
        strategy: Optional[TaskStrategy] = None,
    ) -> None:
        self.database = database
        self.config = config if config is not None else MinerConfig()
        self.strategy = strategy if strategy is not None else (
            ClosedStrategy() if self.config.closed_only else FrequentStrategy()
        )
        # Database-wide indexes, built once per engine (lazily by mine,
        # eagerly by prepare).  The engine snapshots the database at
        # first use — create a new engine after mutating it, as
        # IncrementalMiner does.
        self._pseudo: Optional[PseudoDatabase] = None
        self._label_supports: Optional[Dict[Label, int]] = None
        #: ``sorted(self._label_supports)``, built alongside it so the
        #: session/executor root-by-root callers do not re-sort the full
        #: label space on every single-root ``mine`` call.
        self._sorted_labels: Optional[Tuple[Label, ...]] = None

    @property
    def task(self) -> str:
        """The strategy's task name (``closed``/``frequent``/...)."""
        return self.strategy.task

    def prepare(self) -> "MiningEngine":
        """Build the label-support, core-number, and kernel indexes now.

        :meth:`mine` builds them lazily (counting one database scan);
        root-by-root callers — :class:`repro.core.session.MiningSession`
        and its pool workers — call this eagerly so repeated ``mine``
        calls on the same engine pay for the indexes once and per-root
        statistics do not depend on which root ran first.  The parallel
        executor calls it in the parent *before* forking, so workers
        inherit every index copy-on-write instead of rebuilding it
        (:func:`repro.core.embeddings.warm_kernel_indexes`).
        """
        if self._label_supports is None:
            self._label_supports = self.database.label_supports()
        if self._sorted_labels is None:
            self._sorted_labels = tuple(sorted(self._label_supports))
        if self._pseudo is None and self.config.low_degree_pruning:
            self._pseudo = PseudoDatabase(self.database)
        warm_kernel_indexes(self.database, self.config.kernel)
        return self

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def mine(
        self,
        min_sup: float,
        root_labels: Optional[Tuple[Label, ...]] = None,
        hooks: Optional["SearchHooks"] = None,
        first_extensions: Optional[Tuple[Label, ...]] = None,
        include_root: bool = True,
    ) -> MiningResult:
        """Mine with the given support threshold (absolute int or fraction).

        Returns a :class:`MiningResult` of the strategy's patterns,
        with search statistics and elapsed wall-clock time attached.

        ``root_labels`` restricts the search to the DFS subtrees rooted
        at those 1-cliques (canonical forms starting with one of them).
        Every subtree is self-contained — closure checking and pruning
        only consult the subtree's own embeddings — so partitioning the
        roots partitions the per-root output exactly; this is what the
        parallel executor builds on.  Note it requires structural
        redundancy pruning (otherwise patterns are reachable from any
        of their labels).

        ``first_extensions`` restricts the search one level further: to
        the level-2 subtrees rooted at ``root ◇ β`` for the given β
        labels only (requires exactly one root label).  The same
        self-containedness argument applies one level down, so the
        level-2 subtrees of one root partition the root's output —
        minus the root's own 1-clique pattern and its root-level
        statistics and events, which belong to exactly one split task:
        the one mined with ``include_root=True``.  Callers (the
        work-stealing executor, :mod:`repro.core.executor`) must only
        split roots that are frequent and not Lemma-4.4 pruned, and
        must hand each frequent valid extension to exactly one task.
        Only strategies with ``splittable`` set may be split
        (:meth:`root_extension_plan` returns ``[]`` otherwise).

        ``hooks`` is the session layer's instrumentation object (see
        :class:`repro.core.session.SearchHooks`): when given, it is
        notified at every prefix, emitted pattern, and pruned subtree,
        and may abort the search by raising
        :class:`~repro.core.session.SearchAborted` at a prefix boundary.
        When ``None`` (the default) the search runs exactly as before —
        the only added cost is one ``is not None`` test per hook site.
        """
        started = time.perf_counter()
        abs_sup = self.database.absolute_support(min_sup)
        config = self.config
        strategy = self.strategy
        if root_labels is not None and not config.structural_redundancy_pruning:
            raise MiningError(
                "root_labels partitioning requires structural redundancy pruning"
            )
        if first_extensions is not None:
            if root_labels is None or len(root_labels) != 1:
                raise MiningError(
                    "first_extensions requires exactly one root label; it splits "
                    "a single DFS root into its level-2 subtrees"
                )
        elif not include_root:
            raise MiningError(
                "include_root=False only makes sense with first_extensions; "
                "a whole-subtree mine always owns its root"
            )
        stats = MinerStatistics()
        result = MiningResult(min_sup=abs_sup, closed_only=config.closed_only, statistics=stats)

        pseudo = None
        if config.low_degree_pruning:
            if self._pseudo is None:
                self._pseudo = PseudoDatabase(self.database)
            pseudo = self._pseudo
        if self._label_supports is None:
            self._label_supports = self.database.label_supports()
            stats.database_scans += 1
        if self._sorted_labels is None:
            self._sorted_labels = tuple(sorted(self._label_supports))
        label_supports = self._label_supports
        seen_forms: Set[Tuple[Label, ...]] = set()

        if root_labels is None:
            roots = self._sorted_labels
        else:
            # Root-restricted calls (the session's and executor's
            # per-root mines) visit only the requested roots instead of
            # filtering the whole alphabet each call; unknown labels
            # are dropped exactly as the full scan would skip them.
            roots = sorted(label for label in set(root_labels) if label in label_supports)

        # Per-mine-call scratch shared across this call's roots; the
        # slab kernel hosts its level-batched forest here.  Created
        # fresh per call so no work leaks between (or is reused by)
        # separate mine calls.
        context: dict = {"roots": roots}
        # Child-store free list, shared across this call's roots: stores
        # whose subtree finished are recycled through ``extend(...,
        # reuse=...)`` instead of re-allocated per extension.  Exposed
        # in the context so kernels can also refill root stores from it.
        pool: list = []
        context["store_pool"] = pool

        if first_extensions is None:
            # The whole root sweep runs inside one _search call: the
            # hoisted dispatch/config preamble is paid per mine call,
            # not per root (market sweeps have thousands of tiny roots).
            self._search(
                abs_sup, result, stats, seen_forms, hooks, pool,
                roots=roots, pseudo=pseudo, context=context,
            )
        else:
            for label in roots:
                if label_supports[label] < abs_sup:
                    stats.infrequent_extensions += 1
                    continue
                strategy.begin_root(label)
                store = strategy.root_store(self, pseudo, label, context)
                self._mine_restricted(
                    (label,),
                    store,
                    abs_sup,
                    result,
                    stats,
                    seen_forms,
                    hooks,
                    tuple(first_extensions),
                    include_root,
                    pool,
                )
                strategy.end_root(self, result, stats, hooks)

        result.elapsed_seconds = time.perf_counter() - started
        stats.cpu_seconds = result.elapsed_seconds
        return strategy.finalize(result)

    # ------------------------------------------------------------------
    # Root splitting support (the work-stealing executor's primitive)
    # ------------------------------------------------------------------
    def root_extension_plan(self, min_sup: float, root: Label) -> list:
        """The frequent valid level-2 extensions of one DFS root.

        Returns ``[(label, support), ...]`` for every frequent extension
        label ≥ ``root`` — the labels whose level-2 subtrees together
        with the root's own pattern make up the root's entire output.
        Returns ``[]`` when the root cannot (or must not) be split:
        infrequent root, Lemma 4.4 prunes the whole subtree, the size
        ceiling forbids 2-cliques, or the strategy is not splittable
        (top-k carries root-wide branch-and-bound state).  The executor
        uses a non-empty plan to re-enqueue a heavy root as independent
        ``first_extensions`` tasks; an empty plan means "mine the root
        whole".

        Does not touch mining statistics: split planning is scheduler
        overhead, and per-root statistics must sum to the serial run's.
        """
        config = self.config
        if not config.structural_redundancy_pruning:
            raise MiningError(
                "root splitting requires structural redundancy pruning"
            )
        if not self.strategy.splittable:
            return []
        if config.max_size is not None and config.max_size <= 1:
            return []
        self.prepare()
        abs_sup = self.database.absolute_support(min_sup)
        if self._label_supports.get(root, 0) < abs_sup:
            return []
        pseudo = self._pseudo if config.low_degree_pruning else None
        store = self.strategy.root_store(self, pseudo, root)
        if config.max_embeddings is not None and store.embedding_count > config.max_embeddings:
            return []
        frequent_extensions, _, _ = store.extension_plan(abs_sup)
        if self.strategy.prune_subtree(self, (root,), store, abs_sup) is not None:
            return []
        return [(label, sup) for label, sup in frequent_extensions if label >= root]

    # ------------------------------------------------------------------
    # Iterative search (Algorithm 1, explicit stack)
    # ------------------------------------------------------------------
    def _search(
        self,
        abs_sup: int,
        result: MiningResult,
        stats: MinerStatistics,
        seen_forms: Set[Tuple[Label, ...]],
        hooks: Optional["SearchHooks"] = None,
        pool: Optional[list] = None,
        roots: Optional[Sequence[Label]] = None,
        pseudo=None,
        context: Optional[dict] = None,
        start: Optional[Tuple[Tuple[Label, ...], EmbeddingStore]] = None,
    ) -> None:
        """Depth-first enumeration, explicit-stack form.

        Drives either a whole root sweep (``roots`` — each frequent
        root gets ``begin_root``/``root_store``/``end_root`` around its
        subtree) or one prebuilt subtree (``start=(labels, store)``,
        the split-task path).  This is the engine's hot loop;
        everything per-node is kept allocation-free:

        * prefixes travel as bare label tuples — ``CanonicalForm`` /
          ``CliquePattern`` / witnesses materialise only at emission;
        * search frames are 4-slot lists recycled by stack depth, and
          finished child stores return to ``pool`` for
          ``extend(..., reuse=...)`` to refill in place;
        * strategy dispatch is resolved once per call — the built-in
          emission rules run inline, overridden hooks via pre-bound
          methods;
        * statistics accumulate in plain locals, folded into ``stats``
          exactly once (in the ``finally``, so budget aborts and
          invariant errors keep exact counters; ``end_root`` therefore
          must not read ``stats`` mid-sweep, and no built-in strategy
          does);
        * hooks with nothing to check per node (no budget, token,
          deadline, or sampling) skip ``enter_prefix`` entirely and get
          their prefix counters settled from the local node count.
        """
        config = self.config
        strategy = self.strategy
        cls = type(strategy)

        redundancy = config.structural_redundancy_pruning
        nonclosed_pruning = config.nonclosed_prefix_pruning
        min_size = config.min_size
        max_size = config.max_size
        max_embeddings = config.max_embeddings
        closed_only = config.closed_only
        collect_witnesses = config.collect_witnesses

        # Dispatch hoisting: default hooks are inlined, overrides are
        # pre-bound so the loop never walks the MRO.
        inline_prune = cls.prune_subtree is TaskStrategy.prune_subtree
        inline_descend = cls.descend is TaskStrategy.descend
        visit_kind = _INLINE_VISITS.get(cls.visit, 0)
        visit = strategy.visit
        prune = strategy.prune_subtree
        descend = strategy.descend
        result_add = result.add
        wrap_form = CanonicalForm.wrap
        make_pattern = CliquePattern

        # Hook dispatch: hooks that can neither abort nor sample have
        # no per-node work — skip ``enter_prefix`` and settle their
        # prefix counters once, from the local node count.
        enter = None
        sinks_armed = False
        if hooks is not None:
            sinks_armed = bool(hooks.sinks)
            if (
                hooks.budget is not None
                or hooks.token is not None
                or hooks.deadline_at is not None
                or hooks.sample_every
            ):
                enter = hooks.enter_prefix

        # Statistics as plain locals (see the flush in the finally).
        n_nodes = 0
        n_frequent = 0
        n_closed = 0
        n_rejected = 0
        n_prunes = 0
        n_infrequent = 0
        n_skips = 0
        n_dups = 0
        n_scans = 0
        emb_created = 0
        emb_peak = 0
        depth = 0
        by_size: Dict[int, int] = {}

        if pool is None:
            pool = []
        # Root sweeping: the per-root ceremony stays out of the node
        # loop, entered only when the stack drains.
        root_iter = iter(roots) if roots is not None else None
        label_supports = self._label_supports
        begin_root = (
            None if cls.begin_root is TaskStrategy.begin_root else strategy.begin_root
        )
        end_root = (
            None if cls.end_root is TaskStrategy.end_root else strategy.end_root
        )
        make_root_store = strategy.root_store
        in_root = False

        # The explicit stack: reusable frames [labels, store,
        # extensions, next_index], recycled by depth so steady-state
        # descent allocates nothing.
        frames: List[list] = []
        top = -1
        if start is not None:
            labels, store = start
            pending = True  # ``labels``/``store`` hold an unprocessed node
        else:
            labels = store = None  # type: ignore[assignment]
            pending = False

        try:
            while True:
                if pending:
                    pending = False
                    # ---- one DFS node (Algorithm 1 lines 01-07) ----
                    if not redundancy:
                        # Fallback duplicate detection: the paper's
                        # "simple way".  Checked before the node is
                        # counted so duplicates only show up in their
                        # own counter, not the per-size histogram.
                        if labels in seen_forms:
                            n_dups += 1
                            labels = store = None  # type: ignore[assignment]
                            continue
                        seen_forms.add(labels)
                    emb = store.embedding_count
                    n_nodes += 1
                    size = len(labels)
                    if size > depth:
                        depth = size
                    emb_created += emb
                    if emb > emb_peak:
                        emb_peak = emb
                    if enter is not None:
                        enter(labels, store)
                    if max_embeddings is not None and emb > max_embeddings:
                        raise MiningError(
                            f"prefix {wrap_form(labels)} materialised {emb} "
                            f"embeddings, exceeding the max_embeddings bound "
                            f"of {max_embeddings}"
                        )
                    n_frequent += 1
                    by_size[size] = by_size.get(size, 0) + 1

                    # Lines 01-03: one scan finds every extension
                    # label's support — frequent extensions (label,
                    # support), the infrequent count, and the Lemma 4.3
                    # closure verdict (some extension ties the support).
                    frequent_extensions, n_inf, blocked = store.extension_plan(abs_sup)
                    n_scans += 1

                    # Lines 04-05: the subtree cut (Lemma 4.4 inline
                    # for the default, the strategy's own otherwise).
                    if inline_prune:
                        if (
                            nonclosed_pruning
                            and store.nonclosed_extension_label(labels[-1]) is not None
                        ):
                            n_prunes += 1
                            if sinks_armed:
                                hooks.pruned(labels, "nonclosed_prefix")
                            if redundancy and len(pool) < 64:
                                pool.append(store)
                            labels = store = None  # type: ignore[assignment]
                            continue
                    else:
                        reason = prune(self, labels, store, abs_sup)
                        if reason is not None:
                            n_prunes += 1
                            if hooks is not None:
                                hooks.pruned(labels, reason)
                            if redundancy and len(pool) < 64:
                                pool.append(store)
                            labels = store = None  # type: ignore[assignment]
                            continue

                    # Lines 06-07: the emission rule.  The three
                    # built-ins run inline; the pattern, its form, and
                    # its witness map materialise only here.
                    if visit_kind:
                        if (
                            (visit_kind == 2)
                            or (visit_kind == 1 and not blocked)
                            or (visit_kind == 3 and not frequent_extensions)
                        ):
                            if size >= min_size and (
                                max_size is None or size <= max_size
                            ):
                                pattern = make_pattern(
                                    form=wrap_form(labels),
                                    support=store.support,
                                    transactions=store.transactions(),
                                    witnesses=store.witnesses()
                                    if collect_witnesses
                                    else {},
                                )
                                result_add(pattern)
                                if closed_only:
                                    n_closed += 1
                                if hooks is not None:
                                    hooks.pattern(pattern)
                        elif visit_kind != 2:
                            n_rejected += 1
                    else:
                        visit(
                            self,
                            labels,
                            store,
                            frequent_extensions,
                            blocked,
                            result,
                            stats,
                            hooks,
                        )

                    # Lines 08-09: queue the frequent valid extensions.
                    if max_size is not None and size >= max_size:
                        if redundancy and len(pool) < 64:
                            pool.append(store)
                        labels = store = None  # type: ignore[assignment]
                        continue
                    n_infrequent += n_inf
                    if not inline_descend and not descend(
                        labels, store, frequent_extensions, stats
                    ):
                        if redundancy and len(pool) < 64:
                            pool.append(store)
                        labels = store = None  # type: ignore[assignment]
                        continue
                    extensions = frequent_extensions
                    if redundancy:
                        # The frequent list is label-ascending, so the
                        # canonical skips (label < last) form a prefix —
                        # count them in one bisect.
                        skipped = bisect_left(extensions, (labels[-1],))
                        if skipped:
                            n_skips += skipped
                            extensions = extensions[skipped:]
                    if not extensions:
                        if redundancy and len(pool) < 64:
                            pool.append(store)
                        labels = store = None  # type: ignore[assignment]
                        continue
                    top += 1
                    if top == len(frames):
                        frames.append([labels, store, extensions, 0])
                    else:
                        frame = frames[top]
                        frame[0] = labels
                        frame[1] = store
                        frame[2] = extensions
                        frame[3] = 0
                    labels = store = None  # type: ignore[assignment]
                    continue

                # ---- advance the deepest frame ---------------------
                if top < 0:
                    # Stack drained: close the active root, open the
                    # next frequent one (infrequent roots only count).
                    if in_root:
                        in_root = False
                        if end_root is not None:
                            end_root(self, result, stats, hooks)
                    if root_iter is None:
                        break
                    root = next(root_iter, None)
                    while root is not None and label_supports[root] < abs_sup:
                        n_infrequent += 1
                        root = next(root_iter, None)
                    if root is None:
                        break
                    if begin_root is not None:
                        begin_root(root)
                    store = make_root_store(self, pseudo, root, context)
                    labels = (root,)
                    in_root = True
                    pending = True
                    continue
                frame = frames[top]
                extensions = frame[2]
                i = frame[3]
                if i == len(extensions):
                    done = frame[1]
                    frame[0] = frame[1] = frame[2] = None
                    top -= 1
                    if redundancy and len(pool) < 64:
                        pool.append(done)
                    continue
                frame[3] = i + 1
                label, ext_support = extensions[i]
                parent_labels = frame[0]
                if redundancy:
                    store = frame[1].extend(
                        label, parent_labels[-1], pool.pop() if pool else None
                    )
                    labels = parent_labels + (label,)
                else:
                    store = frame[1].extend_unordered(label)
                    labels = tuple(sorted(parent_labels + (label,)))
                if store.support != ext_support:  # pragma: no cover - invariant
                    raise MiningError(
                        f"extension scan predicted support {ext_support} for "
                        f"{wrap_form(labels)} but materialisation found "
                        f"{store.support}"
                    )
                pending = True
        finally:
            # One additive flush per call: exact under aborts, and
            # composable with the counters strategies touched directly
            # through ``stats`` mid-search.
            stats.absorb_search(
                prefixes=n_nodes,
                max_depth=depth,
                embeddings=emb_created,
                peak_embeddings=emb_peak,
                frequent=n_frequent,
                frequent_by_size=by_size,
                closed=n_closed,
                rejections=n_rejected,
                prunes=n_prunes,
                infrequent=n_infrequent,
                redundancy_skips=n_skips,
                duplicates=n_dups,
                scans=n_scans,
            )
            if hooks is not None and enter is None:
                hooks.total_prefixes += n_nodes
                hooks.root_prefixes += n_nodes

    # ------------------------------------------------------------------
    def _mine_restricted(
        self,
        labels: Tuple[Label, ...],
        store: EmbeddingStore,
        abs_sup: int,
        result: MiningResult,
        stats: MinerStatistics,
        seen_forms: Set[Tuple[Label, ...]],
        hooks: Optional["SearchHooks"],
        first_extensions: Tuple[Label, ...],
        include_root: bool,
        pool: Optional[list] = None,
    ) -> None:
        """One split task: selected level-2 subtrees of one DFS root.

        Mirrors :meth:`_search`'s node step at the root level, then
        descends only into ``first_extensions``.  Exactness is the
        root-partitioning argument one level down: under structural
        redundancy pruning the subtree rooted at ``root ◇ β`` consults
        only its own embeddings, so level-2 subtrees are independent.
        Root-level work — the prefix/frequent/scan statistics, the
        root's events, Lemma 4.4, the root's own pattern — happens
        exactly once across a root's split tasks, in the one with
        ``include_root=True``; sibling tasks extend straight into their
        subtrees.  Summing the split tasks' statistics therefore
        reproduces the serial root's counters exactly.  Only splittable
        strategies reach this path (the splitter respects
        :meth:`root_extension_plan`), and every splittable strategy
        descends unconditionally.
        """
        config = self.config
        strategy = self.strategy
        last_label = labels[-1]
        if include_root:
            stats.record_prefix(len(labels))
            stats.record_embeddings(store.embedding_count)
            if hooks is not None:
                hooks.enter_prefix(labels, store)
            if config.max_embeddings is not None and store.embedding_count > config.max_embeddings:
                raise MiningError(
                    f"prefix {CanonicalForm.wrap(labels)} materialised "
                    f"{store.embedding_count} embeddings, exceeding the "
                    f"max_embeddings bound of {config.max_embeddings}"
                )
            stats.record_frequent(len(labels))
            frequent_extensions, n_infrequent, blocked = store.extension_plan(abs_sup)
            stats.database_scans += 1
            if (
                strategy.prune_subtree(self, labels, store, abs_sup) is not None
            ):  # pragma: no cover - splitter precondition
                raise MiningError(
                    f"split task for root {CanonicalForm.wrap(labels)} reached a "
                    f"subtree prune; the splitter must not split pruned roots"
                )
            strategy.visit(
                self, labels, store, frequent_extensions, blocked, result, stats, hooks
            )
            if config.max_size is not None and len(labels) >= config.max_size:
                return
            stats.infrequent_extensions += n_infrequent
            wanted = set(first_extensions)
            for label, ext_support in frequent_extensions:
                if label < last_label:
                    stats.redundancy_skips += 1
                    continue
                if label not in wanted:
                    continue
                child_store = store.extend(label, last_label)
                child_labels = labels + (label,)
                if child_store.support != ext_support:  # pragma: no cover - invariant
                    raise MiningError(
                        f"extension scan predicted support {ext_support} for "
                        f"{CanonicalForm.wrap(child_labels)} but materialisation "
                        f"found {child_store.support}"
                    )
                self._search(
                    abs_sup, result, stats, seen_forms, hooks, pool,
                    start=(child_labels, child_store),
                )
            return
        if config.max_size is not None and len(labels) >= config.max_size:
            return
        for label in first_extensions:
            if label < last_label:  # pragma: no cover - splitter precondition
                raise MiningError(
                    f"split extension {label!r} sorts below root {last_label!r}; "
                    f"structural redundancy pruning forbids it"
                )
            child_store = store.extend(label, last_label)
            child_labels = labels + (label,)
            if child_store.support < abs_sup:  # pragma: no cover - splitter precondition
                raise MiningError(
                    f"split task extension {CanonicalForm.wrap(child_labels)} is "
                    f"infrequent ({child_store.support} < {abs_sup}); the splitter "
                    f"must only hand out frequent extensions"
                )
            self._search(
                abs_sup, result, stats, seen_forms, hooks, pool,
                start=(child_labels, child_store),
            )

    # ------------------------------------------------------------------
    def _emit(
        self,
        labels: Tuple[Label, ...],
        store: EmbeddingStore,
        result: MiningResult,
        stats: MinerStatistics,
        hooks: Optional["SearchHooks"] = None,
    ) -> None:
        """Report one pattern, honouring the size window.

        ``labels`` is the bare canonical label tuple the search loop
        carries; the :class:`CanonicalForm`, transaction tuple, and
        witness map materialise here, at emission time, and nowhere
        earlier.
        """
        config = self.config
        size = len(labels)
        if size < config.min_size:
            return
        if config.max_size is not None and size > config.max_size:
            return
        pattern = CliquePattern(
            form=CanonicalForm.wrap(labels),
            support=store.support,
            transactions=store.transactions(),
            witnesses=store.witnesses() if config.collect_witnesses else {},
        )
        result.add(pattern)
        if config.closed_only:
            stats.closed_cliques += 1
        if hooks is not None:
            hooks.pattern(pattern)
